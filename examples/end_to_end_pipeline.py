"""End-to-end pipeline: file I/O → maintenance → checkpoint → queries.

A realistic operational loop for a topology service:

1. load an AS-level-style topology from an edge-list file,
2. maintain a spanner backbone and a spectral sparsifier side by side,
3. checkpoint both structures with pickle,
4. crash (simulated), restore from the checkpoint, keep ingesting churn,
5. answer distance and cut queries from the restored structures.

Run:  python examples/end_to_end_pipeline.py
"""

import pickle
import tempfile
from pathlib import Path

from repro.graph import power_law_graph, read_edge_list, write_edge_list
from repro.queries import DynamicCutOracle, DynamicDistanceOracle
from repro.sparsifier import FullyDynamicSpectralSparsifier
from repro.spanner import FullyDynamicSpanner
from repro.workloads import churn_stream


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_pipeline_"))
    n = 120

    # 1. "download" the topology (power-law degrees, like AS graphs)
    topo_file = workdir / "topology.txt"
    edges = power_law_graph(n, 900, seed=7)
    write_edge_list(topo_file, edges, header="synthetic AS-level topology")
    n_loaded, loaded, _ = read_edge_list(topo_file)
    print(f"loaded {len(loaded)} links over {n_loaded} ASes from {topo_file}")

    # 2. maintain both structures
    spanner = FullyDynamicSpanner(n, loaded, k=2, seed=1, base_capacity=128)
    sparsifier = FullyDynamicSpectralSparsifier(
        n, loaded, t=2, seed=1, instances=3
    )
    print(f"backbone: {spanner.spanner_size()} links; "
          f"sparsifier: {sparsifier.sparsifier_size()} weighted links")

    stream = churn_stream(n, len(loaded), churn_fraction=0.05,
                          num_batches=6, seed=2)
    # churn_stream regenerates its own initial graph; re-map its batches
    # onto our loaded one by replaying only the deletions that exist
    live = set(loaded)
    for i, batch in enumerate(stream.batches[:3]):
        dels = [e for e in batch.deletions if e in live]
        ins = [e for e in batch.insertions if e not in live]
        spanner.update(insertions=ins, deletions=dels)
        sparsifier.update(insertions=ins, deletions=dels)
        live = (live - set(dels)) | set(ins)

    # 3. checkpoint
    ckpt = workdir / "state.pkl"
    ckpt.write_bytes(pickle.dumps((spanner, sparsifier, sorted(live))))
    print(f"checkpointed to {ckpt} ({ckpt.stat().st_size} bytes)")

    # 4. "crash" and restore
    del spanner, sparsifier
    spanner, sparsifier, live_list = pickle.loads(ckpt.read_bytes())
    live = set(live_list)
    for batch in stream.batches[3:]:
        dels = [e for e in batch.deletions if e in live]
        ins = [e for e in batch.insertions if e not in live]
        spanner.update(insertions=ins, deletions=dels)
        sparsifier.update(insertions=ins, deletions=dels)
        live = (live - set(dels)) | set(ins)
    print(f"restored and ingested {len(stream.batches) - 3} more batches; "
          f"graph now has {len(live)} links")

    # 5. queries from the restored structures
    dist = DynamicDistanceOracle(n, spanner, stretch=spanner.stretch)
    cuts = DynamicCutOracle(n, sparsifier)
    pairs = [(0, n - 1), (1, n // 2), (2, n // 3)]
    print("\nqueries against the restored backbone:")
    for (a, b), d in zip(pairs, dist.batch_distances(pairs)):
        print(f"  dist({a}, {b}) <= {d:.0f}  (within {spanner.stretch}x)")
    side = set(range(n // 2))
    print(f"  cut(first half) ~= {cuts.cut_value(side):.0f} "
          f"from {cuts.sparsifier_size()} weighted links")


if __name__ == "__main__":
    main()

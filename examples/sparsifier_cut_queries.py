"""Approximate cut queries on a churning graph via a dynamic sparsifier.

Scenario: a capacity-planning tool needs cut sizes between machine groups
in a datacenter network whose links churn continuously.  Exact cut
computation touches every edge; the Theorem 1.6 dynamic spectral sparsifier
maintains a small weighted graph whose cuts approximate the real ones, and
it absorbs the churn in batches.

Run:  python examples/sparsifier_cut_queries.py
"""

import numpy as np

from repro.graph import gnm_random_graph
from repro.sparsifier import FullyDynamicSpectralSparsifier
from repro.verify import cut_weight
from repro.workloads import churn_stream


def main() -> None:
    # dense graph: sparsifiers only pay off once m >> n * t * polylog(n)
    n, m = 60, 1500
    stream = churn_stream(n, m, churn_fraction=0.1, num_batches=8, seed=3)

    sparsifier = FullyDynamicSpectralSparsifier(
        n, stream.initial_edges, t=1, seed=3, instances=2,
    )
    rng = np.random.default_rng(3)

    print(f"datacenter graph: n={n}, m≈{m}, churn 10%/batch")
    print(f"{'batch':>5}  {'|sparsifier|':>12}  {'worst cut error':>15}")
    for idx, (batch, live_edges) in enumerate(stream.replay()):
        sparsifier.update(
            insertions=batch.insertions, deletions=batch.deletions
        )
        g_w = {e: 1.0 for e in live_edges}
        h_w = sparsifier.weighted_edges()
        worst = 0.0
        for _ in range(20):
            side = set(np.flatnonzero(rng.random(n) < 0.5).tolist())
            if not side or len(side) == n:
                continue
            exact = cut_weight(g_w, side)
            approx = cut_weight(h_w, side)
            if exact > 0:
                worst = max(worst, abs(approx / exact - 1.0))
        print(f"{idx:>5}  {len(h_w):>12}  {worst:>14.1%}")

    print(
        "\nthe sparsifier answers cut queries from "
        f"{len(sparsifier.weighted_edges())} weighted edges instead of "
        f"{m}; larger bundle size t tightens the error (bench E7 sweeps it)."
    )


if __name__ == "__main__":
    main()

"""Approximate distance queries on a changing road network.

Scenario: a logistics dispatcher needs hop-distance estimates between
depots on a grid-like road network where road segments close (incidents)
and reopen in batches.  Running BFS over the full network per query is
wasteful; the :class:`~repro.queries.DynamicDistanceOracle` answers from
the maintained (2k−1)-spanner instead — provably at most 2k−1 times the
true distance, over far fewer edges — and ingests each incident batch as a
single update.

Run:  python examples/distance_oracle_logistics.py
"""

import random

from repro.graph import adjacency_from_edges, bfs_distances, grid_graph, norm_edge
from repro.queries import DynamicDistanceOracle
from repro.spanner import FullyDynamicSpanner


def main() -> None:
    rows = cols = 18
    n = rows * cols
    edges = grid_graph(rows, cols)
    # add express diagonals so the spanner has something to sparsify
    diagonals = [
        norm_edge(r * cols + c, (r + 1) * cols + c + 1)
        for r in range(rows - 1)
        for c in range(cols - 1)
    ]
    edges = sorted(set(edges) | set(diagonals))
    k = 2

    spanner = FullyDynamicSpanner(n, edges, k=k, seed=3, base_capacity=64)
    oracle = DynamicDistanceOracle(n, spanner, stretch=spanner.stretch)

    print(f"road network: {rows}x{cols} grid + diagonals, "
          f"{len(edges)} segments")
    print(f"spanner backbone: {oracle.spanner_size()} segments "
          f"(stretch guarantee {spanner.stretch})")

    rng = random.Random(3)
    closed: list = []
    alive = set(edges)
    depots = [0, cols - 1, n - cols, n - 1, n // 2]

    for day in range(1, 6):
        # incidents: close 25 random segments, reopen yesterday's
        reopen, closed = closed, []
        candidates = sorted(alive)
        for e in rng.sample(candidates, 25):
            closed.append(e)
            alive.remove(e)
        alive |= set(reopen)
        oracle.update(insertions=reopen, deletions=closed)

        # dispatcher queries: all depot pairs
        pairs = [
            (a, b) for i, a in enumerate(depots) for b in depots[i + 1:]
        ]
        estimates = oracle.batch_distances(pairs)
        adj = adjacency_from_edges(n, alive)
        print(f"\nday {day}: {len(closed)} closures, {len(reopen)} reopenings"
              f" -> backbone {oracle.spanner_size()} segments")
        print(f"  {'pair':>12}  {'true':>4}  {'estimate':>8}  {'ratio':>5}")
        for (a, b), est in zip(pairs[:5], estimates[:5]):
            true = bfs_distances(adj, a).get(b)
            ratio = est / true if true else float("nan")
            print(f"  {a:>5}->{b:<5}  {true:>4}  {est:>8.0f}  {ratio:>5.2f}")

    print(
        f"\nevery estimate is guaranteed within {spanner.stretch}x of the "
        "true distance;\nqueries touched only the backbone, not the full "
        "network."
    )


if __name__ == "__main__":
    main()

"""Quickstart: maintain a (2k-1)-spanner of a changing graph.

The fully-dynamic spanner (Theorem 1.1) ingests arbitrary batches of edge
insertions and deletions and hands back the *delta* of a provably-sparse
subgraph whose distances approximate the full graph within 2k-1.

Run:  python examples/quickstart.py
"""

from repro.graph import gnm_random_graph
from repro.pram import CostModel, brent_time
from repro.spanner import FullyDynamicSpanner
from repro.verify import spanner_stretch


def main() -> None:
    n, m, k = 200, 5000, 3
    edges = gnm_random_graph(n, m, seed=42)

    # A cost model records the PRAM work/depth of everything the structure
    # does, so you can ask "how long would this take on p processors?"
    # (base_capacity bounds the verbatim level-0 partition; the default is
    # the paper's 2^{l0} ~ n^{1+1/k}, which at this tiny scale would hold
    # the whole graph — cap it lower so the decremental machinery shows.)
    cost = CostModel()
    spanner = FullyDynamicSpanner(n, edges, k=k, seed=7, cost=cost,
                                  base_capacity=256)

    h = spanner.spanner_edges()
    print(f"graph: n={n}, m={m}")
    print(f"spanner: {len(h)} edges (stretch guarantee {spanner.stretch})")
    print(f"measured stretch: {spanner_stretch(n, edges, h):.0f}")

    # Batch update: drop 150 edges, add 100 new ones -- one call.
    deleted = edges[:150]
    inserted = [(u, (u + n // 2) % n) for u in range(100)]
    inserted = [
        e for e in ({tuple(sorted(e)) for e in inserted} - set(edges))
    ]
    cost.reset()
    d_ins, d_del = spanner.update(insertions=inserted, deletions=deleted)
    print(
        f"\nafter one batch of {len(inserted)} insertions + "
        f"{len(deleted)} deletions:"
    )
    print(f"  spanner delta: +{len(d_ins)} / -{len(d_del)} edges")
    print(f"  spanner size now: {spanner.spanner_size()}")

    snap = cost.snapshot()
    print(f"  PRAM cost of the batch: work={snap.work}, depth={snap.depth}")
    for p in (1, 16, 256):
        print(f"  simulated time on {p:4d} processors: "
              f"{brent_time(snap, p):10.1f}")

    # The spanner is still valid for the new graph.
    current = (set(edges) - set(deleted)) | set(inserted)
    s = spanner_stretch(n, current, spanner.spanner_edges())
    print(f"  measured stretch after the batch: {s:.0f} "
          f"(guarantee {spanner.stretch})")


if __name__ == "__main__":
    main()

"""Fault-tolerant backbones from spanner bundles.

Scenario: an overlay network wants a backbone that keeps approximating
distances even if an adversary knocks out an entire backbone layer.  A
t-bundle (Theorem 1.5) is exactly that: H_1 is a spanner of G, H_2 is a
spanner of G without H_1, and so on — so after *losing all of H_1*, the
rest of the bundle still spans what remains.  Meanwhile, links keep
failing (decrementally) and the bundle absorbs each batch with O(1)
amortized changes.

Run:  python examples/bundle_robust_backbone.py
"""

import random

from repro.bundle import DecrementalTBundle
from repro.graph import gnm_random_graph
from repro.verify import is_spanner, spanner_stretch


def main() -> None:
    n, m, t = 80, 800, 3
    edges = gnm_random_graph(n, m, seed=11)
    bundle = DecrementalTBundle(n, edges, t=t, seed=11, instances=6)

    print(f"overlay: n={n}, m={m}; bundle of t={t} chained spanners")
    for i in range(t):
        print(f"  |H_{i + 1}| = {len(bundle.level_edges(i))}")
    print(f"  total backbone: {bundle.bundle_size()} edges")

    # Fault tolerance: remove layer 1 from the graph AND the backbone;
    # layer 2 still spans the remainder (that is its definition).
    h1 = bundle.level_edges(0)
    rest_graph = set(edges) - h1
    h2 = bundle.level_edges(1)
    ok = is_spanner(n, rest_graph, h2, bundle.stretch_bound())
    print(
        f"\nknock out all of H_1 ({len(h1)} edges): H_2 still spans the "
        f"remaining graph -> {ok}"
    )
    s = spanner_stretch(n, rest_graph, h2)
    print(f"measured stretch of H_2 on G - H_1: {s:.0f}")

    # Ongoing link failures: batches of deletions, O(1) amortized recourse.
    rng = random.Random(11)
    alive = sorted(set(edges))
    rng.shuffle(alive)
    total_recourse = 0
    failed = 0
    for _ in range(6):
        batch, alive = alive[:60], alive[60:]
        ins, dels = bundle.batch_delete(batch)
        total_recourse += len(ins) + len(dels)
        failed += len(batch)
    print(
        f"\nafter {failed} link failures: backbone changed "
        f"{total_recourse} times total "
        f"({total_recourse / failed:.2f} changes per failure — "
        "Theorem 1.5 promises O(1) amortized)"
    )


if __name__ == "__main__":
    main()

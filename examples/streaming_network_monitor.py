"""Streaming network monitor: a sparse backbone of a sliding-window graph.

Scenario: a monitoring service watches "recent interactions" between hosts
(the last W observed flows).  Every tick, a batch of new flows arrives and
the oldest expire — a textbook batch-dynamic workload.  The service keeps
the Theorem 1.3 sparse spanner as its probe backbone: O(n) edges no matter
how dense the window gets, with Õ(log n)-approximate distances for latency
triangulation.

Run:  python examples/streaming_network_monitor.py
"""

import random

from repro.contraction import SparseSpannerDynamic
from repro.verify import pairwise_stretch
from repro.workloads import sliding_window_stream


def main() -> None:
    n_hosts = 150
    window = 1200
    ticks = 12
    flows_per_tick = 300

    stream = sliding_window_stream(
        n_hosts, window=window, num_batches=ticks,
        batch_size=flows_per_tick, seed=2024,
    )
    backbone = SparseSpannerDynamic(n_hosts, seed=7)
    rng = random.Random(7)

    print(f"{'tick':>4}  {'live flows':>10}  {'backbone':>8}  "
          f"{'delta':>11}  {'sampled stretch':>15}")
    for tick, (batch, live_edges) in enumerate(stream.replay()):
        d_ins, d_del = backbone.update(
            insertions=batch.insertions, deletions=batch.deletions
        )
        pairs = [
            (rng.randrange(n_hosts), rng.randrange(n_hosts))
            for _ in range(25)
        ]
        stretch = pairwise_stretch(
            n_hosts, live_edges, backbone.spanner_edges(), pairs
        )
        print(
            f"{tick:>4}  {len(live_edges):>10}  "
            f"{backbone.spanner_size():>8}  "
            f"+{len(d_ins):>4}/-{len(d_del):>4}  {stretch:>15.1f}"
        )

    print(
        f"\nbackbone stays ~O(n) = O({n_hosts}) edges while the window "
        f"holds up to {window} flows;\nworst-case stretch guarantee: "
        f"{backbone.stretch_bound()} (measured far lower, as usual)."
    )


if __name__ == "__main__":
    main()

"""E7 — Theorem 1.6 / Lemma 6.6 "table": spectral sparsifier quality.

Claims under test:
  * the pencil eigenvalue spread tightens as the bundle size t grows
    (the paper's t = Θ(ε⁻² ...) knob, swept instead of hardwired),
  * the sparsifier never disconnects the graph (bundle level 1 is a
    spanner),
  * sampled cut error tracks the spectral spread,
  * amortized recourse O(1) per deletion (decremental chain).
"""

import random

import numpy as np

from repro.graph import gnm_random_graph
from repro.harness import format_table
from repro.sparsifier import DecrementalSpectralSparsifier
from repro.verify import max_cut_error, pencil_eigenvalue_range


def unit(edges):
    return {tuple(e): 1.0 for e in edges}


def _series():
    n, m = 40, 500
    edges = gnm_random_graph(n, m, seed=21)
    rng = np.random.default_rng(21)
    cuts = []
    for _ in range(30):
        side = set(np.flatnonzero(rng.random(n) < 0.5).tolist())
        if side and len(side) < n:
            cuts.append(side)
    rows = []
    for t in (1, 2, 4, 8):
        sp = DecrementalSpectralSparsifier(
            n, edges, t=t, seed=t, instances=5
        )
        w = sp.weighted_edges()
        lo, hi = pencil_eigenvalue_range(n, unit(edges), w)
        err = max_cut_error(n, unit(edges), w, cuts)
        rows.append(
            {
                "t": t,
                "n": n,
                "m": m,
                "|H|": sp.sparsifier_size(),
                "lambda_min": round(lo, 3),
                "lambda_max": round(hi, 3),
                "spread": round(hi / lo, 3),
                "cut_err": round(err, 3),
                "rounds_k": sp.k,
            }
        )
    return rows


def test_e7_quality_vs_t(benchmark, report):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    report.append(
        format_table(
            rows,
            "E7: spectral sparsifier quality vs bundle size t "
            "(Lemma 6.6 / Theorem 1.6)",
        )
    )
    for row in rows:
        assert row["lambda_min"] > 0, "sparsifier disconnected the graph"
        assert row["cut_err"] <= max(
            1 - row["lambda_min"], row["lambda_max"] - 1
        ) + 1e-6
    # headline shape: spread tightens as t grows
    assert rows[-1]["spread"] <= rows[0]["spread"] + 1e-9


def test_e7_decremental_recourse(benchmark, report):
    n, m, t = 40, 400, 2
    edges = gnm_random_graph(n, m, seed=23)

    def run():
        sp = DecrementalSpectralSparsifier(n, edges, t=t, seed=23,
                                           instances=4)
        rng = random.Random(23)
        alive = list(edges)
        rng.shuffle(alive)
        recourse = 0
        while alive:
            batch, alive = alive[:40], alive[40:]
            ins, dels = sp.batch_delete(batch)
            recourse += len(ins) + len(dels)
        return recourse / m

    per_edge = benchmark.pedantic(run, rounds=1, iterations=1)
    report.append(
        f"E7 recourse: {per_edge:.3f} sparsifier changes per deleted edge "
        "(Lemma 6.6 claims O(1) amortized)"
    )
    assert per_edge <= 4.0


def test_e7_chain_throughput(benchmark):
    n, m, t = 40, 300, 2
    edges = gnm_random_graph(n, m, seed=29)

    def run():
        sp = DecrementalSpectralSparsifier(n, edges, t=t, seed=29,
                                           instances=4)
        alive = list(edges)
        while alive:
            batch, alive = alive[:60], alive[60:]
            sp.batch_delete(batch)
        return sp.sparsifier_size()

    assert benchmark(run) == 0

"""A2 — ablation: cluster-change counts vs the Lemma 3.6 bound.

Lemma 3.6 is the engine of the decremental spanner's amortization: each
vertex changes cluster at most 2 t log n times in expectation over a full
deletion run.  We measure the empirical average and worst case across
graph families.
"""

import math
import random

from repro.graph import gnm_random_graph, grid_graph, ring_of_cliques
from repro.harness import format_table
from repro.spanner import DecrementalSpanner


def _run(name, n, edges, k, seed):
    sp = DecrementalSpanner(n, edges, k=k, seed=seed)
    t = sp.sc.t
    rng = random.Random(seed)
    alive = list(edges)
    rng.shuffle(alive)
    while alive:
        batch, alive = alive[:30], alive[30:]
        sp.batch_delete(batch)
    total = sp.sc.total_cluster_changes
    bound = 2 * t * math.log2(max(n, 2))
    return {
        "graph": name,
        "n": n,
        "m": len(edges),
        "k": k,
        "t": t,
        "avg_chg/vertex": round(total / n, 2),
        "bound(2t lg n)": round(bound, 1),
        "ratio": round(total / n / bound, 4),
    }


def _series():
    rows = []
    rows.append(_run("gnm", 100, gnm_random_graph(100, 600, seed=1), 3, 1))
    rows.append(_run("grid", 100, grid_graph(10, 10), 3, 2))
    rows.append(
        _run("ring-of-cliques", 96, ring_of_cliques(12, 8), 3, 3)
    )
    rows.append(_run("gnm-k5", 100, gnm_random_graph(100, 600, seed=4), 5, 4))
    return rows


def test_a2_cluster_change_bound(benchmark, report):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    report.append(
        format_table(rows, "A2 ablation: cluster changes per vertex vs "
                           "Lemma 3.6 bound")
    )
    for row in rows:
        assert row["avg_chg/vertex"] <= row["bound(2t lg n)"], row

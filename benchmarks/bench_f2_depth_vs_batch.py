"""F2 — figure: depth per batch vs batch size, and Brent simulated time.

The defining property of a *batch*-dynamic parallel algorithm: processing a
batch of b updates takes poly(log n) depth — independent of b — so the
simulated runtime W/p + D keeps dropping as processors are added.
"""

from repro.harness import format_table
from repro.pram import CostModel, brent_time
from repro.spanner import FullyDynamicSpanner
from repro.workloads import deletion_stream


def _depth_series():
    n, m = 200, 1200
    rows = []
    for batch_size in (10, 40, 160, 640):
        wl = deletion_stream(n, m, batch_size=batch_size, seed=31)
        cost = CostModel()
        sp = FullyDynamicSpanner(
            n, wl.initial_edges, k=2, seed=31, cost=cost, base_capacity=128
        )
        cost.reset()
        worst = 0
        for batch in wl.batches:
            with cost.frame() as fr:
                sp.update(deletions=batch.deletions)
            worst = max(worst, fr.depth)
        rows.append(
            {
                "batch_size": batch_size,
                "batches": len(wl.batches),
                "max_depth": worst,
                "total_work": cost.work,
            }
        )
    return rows


def _brent_series():
    n, m = 200, 1200
    wl = deletion_stream(n, m, batch_size=100, seed=33)
    cost = CostModel()
    sp = FullyDynamicSpanner(
        n, wl.initial_edges, k=2, seed=33, cost=cost, base_capacity=128
    )
    cost.reset()
    for batch in wl.batches:
        sp.update(deletions=batch.deletions)
    snap = cost.snapshot()
    return [
        {
            "p": p,
            "simulated_time(W/p+D)": round(brent_time(snap, p), 1),
        }
        for p in (1, 4, 16, 64, 256, 1024)
    ], snap


def test_f2_depth_flat_in_batch_size(benchmark, report):
    rows = benchmark.pedantic(_depth_series, rounds=1, iterations=1)
    report.append(
        format_table(rows, "F2a: max depth per batch vs batch size "
                           "(flat = parallel)")
    )
    depths = [row["max_depth"] for row in rows]
    # 64x larger batches may only add a small factor of depth
    assert depths[-1] <= 4 * depths[0]


def _sparse_depth_series():
    from repro.contraction import SparseSpannerDynamic

    n, m = 150, 900
    rows = []
    for batch_size in (10, 40, 160, 640):
        wl = deletion_stream(n, m, batch_size=batch_size, seed=5)
        cost = CostModel()
        sp = SparseSpannerDynamic(n, wl.initial_edges, seed=5, cost=cost,
                                  base_capacity=64)
        cost.reset()
        worst = 0
        for batch in wl.batches:
            with cost.frame() as fr:
                sp.update(deletions=batch.deletions)
            worst = max(worst, fr.depth)
        rows.append({"batch_size": batch_size, "max_depth": worst})
    return rows


def test_f2_sparse_spanner_depth(benchmark, report):
    rows = benchmark.pedantic(_sparse_depth_series, rounds=1, iterations=1)
    report.append(
        format_table(rows, "F2c: Theorem 1.3 max depth per batch vs batch "
                           "size")
    )
    depths = [row["max_depth"] for row in rows]
    # 64x larger batches: depth may grow only by a small constant factor
    assert depths[-1] <= 2 * depths[0]


def test_f2_brent_speedup(benchmark, report):
    rows, snap = benchmark.pedantic(_brent_series, rounds=1, iterations=1)
    report.append(
        format_table(
            rows,
            f"F2b: Brent simulated time (total W={snap.work}, D={snap.depth})",
        )
    )
    times = [row["simulated_time(W/p+D)"] for row in rows]
    assert times == sorted(times, reverse=True)
    # with enough processors the runtime approaches the depth
    assert times[-1] <= 1.2 * snap.depth + 1

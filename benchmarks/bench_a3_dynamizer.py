"""A3 — ablation: Bentley–Saxe rebuild amortization (§3.4).

The fully-dynamic reduction's cost driver: every inserted edge is rebuilt
into at most O(log n) decremental instances over its lifetime.  We measure
rebuilt-edges per inserted edge across insertion patterns and verify the
log-shaped amortization.
"""

import math

from repro.harness import format_table
from repro.spanner import FullyDynamicSpanner
from repro.workloads import insertion_stream, mixed_stream


def _series():
    rows = []
    n = 100
    for label, wl in [
        ("drip (b=1)", insertion_stream(n, 400, batch_size=1, seed=61)),
        ("small (b=16)", insertion_stream(n, 400, batch_size=16, seed=62)),
        ("bulk (b=400)", insertion_stream(n, 400, batch_size=400, seed=63)),
        (
            "mixed churn",
            mixed_stream(n, 200, batch_size=20, num_batches=30, seed=64),
        ),
    ]:
        sp = FullyDynamicSpanner(n, wl.initial_edges, k=2, seed=61,
                                 base_capacity=8)
        inserted = len(wl.initial_edges)
        for batch in wl.batches:
            sp.update(insertions=batch.insertions,
                      deletions=batch.deletions)
            inserted += len(batch.insertions)
        rows.append(
            {
                "pattern": label,
                "inserted": inserted,
                "rebuild_count": sp.rebuild_count,
                "rebuilt_edges": sp.rebuilt_edge_count,
                "rebuilt/inserted": round(
                    sp.rebuilt_edge_count / max(inserted, 1), 2
                ),
                "bound(lg m)": round(math.log2(max(inserted, 2)) + 1, 1),
            }
        )
    return rows


def test_a3_rebuild_amortization(benchmark, report):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    report.append(
        format_table(rows, "A3 ablation: Bentley-Saxe rebuilds per "
                           "inserted edge (bound: O(log m))")
    )
    for row in rows:
        assert row["rebuilt/inserted"] <= row["bound(lg m)"], row
    # bulk insertion builds each edge once; drip pays the log factor
    bulk = next(r for r in rows if r["pattern"].startswith("bulk"))
    drip = next(r for r in rows if r["pattern"].startswith("drip"))
    assert bulk["rebuilt/inserted"] <= 1.5
    assert drip["rebuilt/inserted"] > bulk["rebuilt/inserted"]

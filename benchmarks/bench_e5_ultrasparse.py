"""E5 — Theorem 1.4 "table": ultra-sparse spanner, sweep over x.

Claims under test:
  * spanner size <= n + O(n/x): the non-tree surplus shrinks as x grows,
  * measured stretch grows with x (the x·log x factor), staying below the
    Lemma 5.1 composition bound.
"""

import random

from repro.graph import gnm_random_graph
from repro.harness import format_table
from repro.ultrasparse import UltraSparseSpannerDynamic
from repro.verify import pairwise_stretch


def _series():
    n, m = 200, 3000
    edges = gnm_random_graph(n, m, seed=5)
    rng = random.Random(5)
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(40)]
    rows = []
    for x in (2.0, 3.0, 4.0):
        sp = UltraSparseSpannerDynamic(n, edges, x=x, seed=int(x))
        size = sp.spanner_size()
        stretch = pairwise_stretch(n, edges, sp.spanner_edges(), pairs)
        rows.append(
            {
                "x": x,
                "n": n,
                "m": m,
                "|H|": size,
                "surplus": size - n,
                "surplus_bound(8n/x)": round(8 * n / x),
                "stretch": round(stretch, 1),
                "stretch_bound": round(sp.stretch_bound()),
            }
        )
    return rows


def test_e5_table(benchmark, report):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    report.append(
        format_table(rows, "E5: ultra-sparse spanner, n + O(n/x) edges "
                           "(Theorem 1.4)")
    )
    for row in rows:
        assert row["surplus"] <= row["surplus_bound(8n/x)"]
        assert row["stretch"] <= row["stretch_bound"]
    # surplus shrinks as x grows (the headline ultra-sparsity shape)
    assert rows[-1]["surplus"] <= rows[0]["surplus"]


def test_e5_dynamic_stream(benchmark, report):
    """Size stays ultra-sparse through a deletion stream."""
    n, m, x = 150, 1500, 3.0
    edges = gnm_random_graph(n, m, seed=7)

    def run():
        sp = UltraSparseSpannerDynamic(n, edges, x=x, seed=7)
        rng = random.Random(7)
        alive = list(edges)
        rng.shuffle(alive)
        worst_surplus = sp.spanner_size() - n
        for _ in range(6):
            batch, alive = alive[:100], alive[100:]
            sp.update(deletions=batch)
            worst_surplus = max(worst_surplus, sp.spanner_size() - n)
        return worst_surplus

    surplus = benchmark.pedantic(run, rounds=1, iterations=1)
    report.append(
        f"E5 dynamic: worst surplus over deletion stream = {surplus} "
        f"(n = {n}, x = {x})"
    )
    assert surplus <= 8 * n / x


def test_e5_update_throughput(benchmark):
    n, m, x = 100, 800, 2.0
    edges = gnm_random_graph(n, m, seed=9)

    def run():
        sp = UltraSparseSpannerDynamic(n, edges, x=x, seed=9)
        sp.update(deletions=edges[:100])
        return sp.spanner_size()

    assert benchmark(run) > 0

"""A5 — ablation: bundle-based sparsification vs naive uniform sampling.

Why does the paper build t-bundles at all?  Uniform sampling at the same
output size destroys low-connectivity cuts (a bridge survives w.p. p),
while the bundle-first design keeps every bridge by construction.  We
compare both at matched sizes on a barbell graph (one bridge path) and
report the bridge-cut error.
"""

from repro.graph import barbell_graph
from repro.harness import format_table
from repro.sparsifier import DecrementalSpectralSparsifier
from repro.sparsifier.uniform_baseline import uniform_sample_sparsifier
from repro.verify import cut_weight, pencil_eigenvalue_range


def _series():
    edges = barbell_graph(14, 3)  # two K14's joined by a 3-vertex path
    n = 31
    g_w = {e: 1.0 for e in edges}
    bridge_side = set(range(14))
    exact_cut = cut_weight(g_w, bridge_side)
    rows = []
    bundle = DecrementalSpectralSparsifier(
        n, edges, t=2, seed=1, instances=4
    )
    w_bundle = bundle.weighted_edges()
    p = len(w_bundle) / len(edges)  # match the output size
    trials = 20
    bridge_fail = 0
    worst_err = 0.0
    for s in range(trials):
        w_uni = uniform_sample_sparsifier(edges, p=p, seed=s)
        cut = cut_weight(w_uni, bridge_side)
        if cut == 0:
            bridge_fail += 1
        else:
            worst_err = max(worst_err, abs(cut / exact_cut - 1.0))
    lo, hi = pencil_eigenvalue_range(n, g_w, w_bundle)
    rows.append(
        {
            "method": "t-bundle (paper)",
            "size": len(w_bundle),
            "bridge_cut": round(cut_weight(w_bundle, bridge_side), 2),
            "exact_cut": exact_cut,
            "disconnect_rate": 0.0,
            "pencil_lo": round(lo, 3),
            "pencil_hi": round(hi, 3),
        }
    )
    rows.append(
        {
            "method": f"uniform p={p:.2f}",
            "size": round(p * len(edges)),
            "bridge_cut": "varies",
            "exact_cut": exact_cut,
            "disconnect_rate": round(bridge_fail / trials, 2),
            "pencil_lo": 0.0 if bridge_fail else "n/a",
            "pencil_hi": "inf" if bridge_fail else "n/a",
        }
    )
    return rows, bridge_fail, trials


def test_a5_bundles_preserve_bridges(benchmark, report):
    rows, bridge_fail, trials = benchmark.pedantic(
        _series, rounds=1, iterations=1
    )
    report.append(
        format_table(
            rows,
            "A5 ablation: bundle sparsifier vs uniform sampling on a "
            "barbell (one bridge edge crosses the cut)",
        )
    )
    # the bundle ALWAYS preserves the bridge cut exactly (bridges are in
    # every spanner); uniform sampling drops it in a visible fraction
    assert rows[0]["bridge_cut"] == rows[0]["exact_cut"]
    assert rows[0]["pencil_lo"] > 0
    assert bridge_fail > 0, (
        "uniform sampling should disconnect the bridge sometimes at this p"
    )

"""F3 — figure: batch-dynamic vs static-recompute crossover.

The reason dynamic algorithms exist: when the batch is small relative to m,
updating beats recomputing from scratch.  We compare wall-clock per batch of
(a) Theorem 1.1 updates against (b) rerunning Baswana–Sen / MPVX on the
whole current graph, across batch sizes, and report the crossover.
"""

import time

from repro.graph import gnm_random_graph
from repro.harness import format_table
from repro.spanner import (
    FullyDynamicSpanner,
    baswana_sen_spanner,
    mpvx_spanner,
)
from repro.workloads import churn_stream


def _series():
    n, m, k = 300, 2400, 2
    rows = []
    for frac in (0.01, 0.05, 0.2, 0.5):
        wl = churn_stream(n, m, churn_fraction=frac, num_batches=5, seed=41)
        # dynamic
        sp = FullyDynamicSpanner(n, wl.initial_edges, k=k, seed=41,
                                 base_capacity=256)
        t0 = time.perf_counter()
        for batch in wl.batches:
            sp.update(insertions=batch.insertions,
                      deletions=batch.deletions)
        dyn = (time.perf_counter() - t0) / len(wl.batches)
        # static recompute baselines on the evolving graph
        t_bs = t_mpvx = 0.0
        for i, (batch, edges) in enumerate(wl.replay()):
            t0 = time.perf_counter()
            baswana_sen_spanner(n, sorted(edges), k=k, seed=i)
            t_bs += time.perf_counter() - t0
            t0 = time.perf_counter()
            mpvx_spanner(n, sorted(edges), k=k, seed=i)
            t_mpvx += time.perf_counter() - t0
        t_bs /= len(wl.batches)
        t_mpvx /= len(wl.batches)
        rows.append(
            {
                "batch_frac": frac,
                "batch_edges": int(2 * m * frac),
                "dynamic_ms": round(dyn * 1e3, 2),
                "static_BS_ms": round(t_bs * 1e3, 2),
                "static_MPVX_ms": round(t_mpvx * 1e3, 2),
                "speedup_vs_BS": round(t_bs / dyn, 2),
            }
        )
    return rows


def test_f3_crossover(benchmark, report):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    report.append(
        format_table(rows, "F3: dynamic update vs static recompute per "
                           "batch (n=300, m=2400, k=2)")
    )
    # at the smallest batches, dynamic must win clearly
    assert rows[0]["speedup_vs_BS"] > 1.0, (
        "dynamic slower than static even at 1% batches"
    )
    # speedup should shrink as batches grow (crossover shape)
    assert rows[0]["speedup_vs_BS"] >= rows[-1]["speedup_vs_BS"] * 0.8

"""A6 — ablation: oblivious vs adaptive adversaries.

All of the paper's guarantees are stated *against an oblivious adversary*
(one that fixes the update sequence in advance).  This ablation shows the
assumption has teeth: an adaptive adversary that watches the structure and
always deletes its current shortest-path-tree edges forces far more
cluster churn and recourse than any fixed deletion order — the failure
mode the adaptive-adversary line of work ([BSS22, BvdBG+22], §1.2)
addresses.
"""

import random

from repro.graph import gnm_random_graph
from repro.harness import format_table
from repro.spanner import DecrementalSpanner


def _run_oblivious(n, edges, k, seed):
    sp = DecrementalSpanner(n, edges, k=k, seed=seed)
    rng = random.Random(seed)
    alive = list(edges)
    rng.shuffle(alive)
    recourse = 0
    while alive:
        batch, alive = alive[:10], alive[10:]
        ins, dels = sp.batch_delete(batch)
        recourse += len(ins) + len(dels)
    return recourse, sp.sc.total_cluster_changes


def _run_adaptive(n, edges, k, seed):
    """Adversary peeks at the maintained tree and targets it."""
    sp = DecrementalSpanner(n, edges, k=k, seed=seed)
    alive = set(edges)
    recourse = 0
    while alive:
        tree = [e for e in sp.sc.tree_edges() if e in alive]
        batch = sorted(tree)[:10] if tree else sorted(alive)[:10]
        for e in batch:
            alive.remove(e)
        ins, dels = sp.batch_delete(batch)
        recourse += len(ins) + len(dels)
    return recourse, sp.sc.total_cluster_changes


def _series():
    n, m, k = 60, 400, 3
    rows = []
    for label, runner in (("oblivious (paper model)", _run_oblivious),
                          ("adaptive (targets tree)", _run_adaptive)):
        recs, churns = [], []
        for seed in range(5):
            edges = gnm_random_graph(n, m, seed=seed + 30)
            r, c = runner(n, edges, k, seed)
            recs.append(r)
            churns.append(c)
        rows.append(
            {
                "adversary": label,
                "avg_recourse": round(sum(recs) / len(recs), 1),
                "avg_cluster_changes": round(sum(churns) / len(churns), 1),
                "recourse/edge": round(sum(recs) / len(recs) / m, 3),
            }
        )
    return rows


def test_a6_adaptive_costs_more(benchmark, report):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    report.append(
        format_table(rows, "A6 ablation: oblivious vs adaptive adversary "
                           "(n=60, m=400, k=3, 5 seeds)")
    )
    obl, ada = rows
    # the adaptive adversary must hurt measurably (that's why the paper
    # needs the obliviousness assumption) — but correctness never breaks
    assert ada["avg_cluster_changes"] >= obl["avg_cluster_changes"]
    assert ada["avg_recourse"] >= obl["avg_recourse"]

"""E1 — Theorem 1.1 "table": fully-dynamic (2k−1)-spanner.

Claims under test (paper Theorem 1.1):
  * spanner size Õ(n^{1+1/k}),
  * stretch <= 2k−1 at every point of a mixed update stream,
  * amortized recourse O(k log² n) per updated edge,
  * amortized work Õ(k) per edge, depth poly(log n) per batch.

Run: pytest benchmarks/bench_e1_fully_dynamic_spanner.py --benchmark-only -s
"""

import math
import random

from repro.harness import format_table, run_workload
from repro.spanner import FullyDynamicSpanner
from repro.verify import pairwise_stretch
from repro.workloads import mixed_stream


def _series():
    rows = []
    for n, k in [(64, 2), (128, 2), (256, 2), (128, 3), (256, 3)]:
        m = 4 * n
        wl = mixed_stream(
            n, m, batch_size=32, num_batches=20, seed=n + k
        )
        # base_capacity small enough to engage the decremental levels
        stats = run_workload(
            f"n={n},k={k}",
            wl,
            lambda edges, cost, n=n, k=k: FullyDynamicSpanner(
                n, edges, k=k, seed=n * k, cost=cost,
                base_capacity=max(16, m // 8),
            ),
        )
        size_bound = n ** (1 + 1 / k) * math.log2(n)
        rows.append(
            dict(
                stats.row(),
                **{
                    "size_bound(n^{1+1/k}lg n)": round(size_bound),
                    "size/bound": round(
                        stats.output_size_final / size_bound, 3
                    ),
                    "recourse_bound(k lg^2 n)": round(
                        k * math.log2(n) ** 2, 1
                    ),
                },
            )
        )
    return rows


def test_e1_table(benchmark, report):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    report.append(format_table(rows, "E1: fully-dynamic (2k-1)-spanner (Theorem 1.1)"))
    for row in rows:
        assert row["size/bound"] < 2.0, "size exceeds Õ(n^{1+1/k})"
        assert row["recourse/upd"] <= row["recourse_bound(k lg^2 n)"]


def test_e1_stretch_holds_mid_stream(benchmark, report):
    n, k, m = 96, 2, 350
    rng = random.Random(0)

    def run():
        wl = mixed_stream(n, m, batch_size=25, num_batches=12, seed=1)
        sp = FullyDynamicSpanner(n, wl.initial_edges, k=k, seed=1,
                                 base_capacity=64)
        worst = 0.0
        for batch, edges in wl.replay():
            sp.update(insertions=batch.insertions,
                      deletions=batch.deletions)
            pairs = [
                (rng.randrange(n), rng.randrange(n)) for _ in range(30)
            ]
            s = pairwise_stretch(n, edges, sp.spanner_edges(), pairs)
            worst = max(worst, s)
        return worst

    worst = benchmark.pedantic(run, rounds=1, iterations=1)
    report.append(
        f"E1 stretch check: worst sampled stretch {worst:.2f} "
        f"(guarantee {2 * k - 1})"
    )
    assert worst <= 2 * k - 1


def test_e1_update_throughput(benchmark):
    n, k, m = 128, 2, 512
    wl = mixed_stream(n, m, batch_size=64, num_batches=8, seed=3)

    def run():
        sp = FullyDynamicSpanner(n, wl.initial_edges, k=k, seed=3,
                                 base_capacity=64)
        for batch in wl.batches:
            sp.update(insertions=batch.insertions,
                      deletions=batch.deletions)
        return sp.spanner_size()

    size = benchmark(run)
    assert size > 0

"""S1 — serving engine: throughput vs. flush deadline and shard count.

Not a paper table: this measures the *serving layer* (PR 1,
``repro.service``) that turns single-edge client requests into the batch
updates the paper's structures amortize over.  Two sweeps:

* flush deadline (the micro-batching latency knob) at fixed shards —
  longer deadlines form bigger coalesced batches, trading request latency
  for throughput;
* shard count at a fixed deadline, with real worker processes — shards
  hold disjoint edge partitions, so update work parallelizes across the
  GIL boundary.  Wall-clock gains require real cores (CI containers often
  pin one), so the scaling assertion uses the cost model: per-flush
  *summed* shard work over *critical-path* (max-shard) work is the
  simulated parallel speedup sharding buys.

Run: pytest benchmarks/bench_srv_service_throughput.py --benchmark-only -s
"""

import multiprocessing as mp

from repro.harness import format_table
from repro.service import ServeConfig, run_serve

_HAS_FORK = "fork" in mp.get_all_start_methods()


def _row(label: str, cfg: ServeConfig) -> dict:
    report = run_serve(cfg, verify=True)
    assert report.verified, f"{label}: replay verification failed"
    m = report.metrics
    total_work = m.get("batch_work.mean", 0.0) * m.get(
        "batch_work.count", 0
    )
    critical = m.get("batch_critical_work.mean", 0.0) * m.get(
        "batch_critical_work.count", 0
    )
    return {
        "label": label,
        "shards": cfg.shards,
        "deadline_ms": cfg.max_delay * 1000,
        "served": report.served,
        "applied": report.applied_ops,
        "shed": report.shed,
        "batch_p50": m.get("batch_size.p50", 0.0),
        "coalesce%": round(
            100 * m.get("coalesce_ratio.p50", 0.0), 1
        ),
        "flush_p99_ms": round(
            1000 * m.get("flush_latency_s.p99", 0.0), 2
        ),
        "sim_speedup": round(total_work / critical, 2) if critical else 1.0,
        "wall_s": round(report.wall_seconds, 3),
        "req/s": round(report.throughput_rps),
    }


def _deadline_series() -> list[dict]:
    rows = []
    for deadline_ms in (0.5, 2.0, 8.0):
        cfg = ServeConfig(
            n=192, m=768, requests=6000, seed=11, shards=2,
            processes=_HAS_FORK, max_delay=deadline_ms / 1000.0,
            queue_capacity=4096, max_batch=100_000,  # deadline-driven
        )
        rows.append(_row(f"deadline={deadline_ms}ms", cfg))
    return rows


def _shard_series() -> list[dict]:
    # heavier per-flush work than the deadline sweep: the shard win only
    # shows once per-shard batch work amortizes the pipe round-trip
    rows = []
    for shards in (1, 2, 4):
        cfg = ServeConfig(
            n=384, m=2304, requests=6000, seed=11, shards=shards,
            processes=_HAS_FORK, max_delay=8e-3, query_prob=0.02,
            queue_capacity=8192, max_batch=100_000, base_capacity=64,
        )
        rows.append(_row(f"shards={shards}", cfg))
    return rows


def test_s1_throughput_vs_deadline(benchmark, report):
    rows = benchmark.pedantic(_deadline_series, rounds=1, iterations=1)
    report.append(format_table(
        rows, "S1a: serving throughput vs flush deadline (2 shards)"
    ))
    # longer deadlines must form bigger batches
    assert rows[-1]["batch_p50"] > rows[0]["batch_p50"]


def test_s1_throughput_vs_shards(benchmark, report):
    rows = benchmark.pedantic(_shard_series, rounds=1, iterations=1)
    report.append(format_table(
        rows, "S1b: serving throughput vs shard count (8ms deadline)"
    ))
    for row in rows:
        assert row["applied"] > 0
    # disjoint shards parallelize: critical-path work must shrink
    assert rows[0]["sim_speedup"] == 1.0
    assert rows[-1]["sim_speedup"] > 1.5


def test_s1_serve_throughput(benchmark):
    cfg = ServeConfig(
        n=128, m=512, requests=2000, seed=7, shards=2, processes=False,
    )

    def run():
        return run_serve(cfg, verify=False)

    report = benchmark(run)
    assert report.applied_ops > 0

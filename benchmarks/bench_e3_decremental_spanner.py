"""E3 — Lemma 3.3 "table": decremental (2k−1)-spanner.

Claims under test:
  * initial size O(n^{1+1/k}),
  * expected cluster changes per vertex O(k log n) over a full deletion
    run (via Lemma 3.6),
  * amortized recourse O(k log n) per deleted edge.
"""

import math
import random

from repro.graph import gnm_random_graph
from repro.harness import format_table
from repro.spanner import DecrementalSpanner


def _run_one(n, m, k, seed):
    edges = gnm_random_graph(n, m, seed=seed)
    sp = DecrementalSpanner(n, edges, k=k, seed=seed)
    init_size = sp.spanner_size()
    rng = random.Random(seed)
    alive = list(edges)
    rng.shuffle(alive)
    recourse = 0
    while alive:
        batch, alive = alive[:40], alive[40:]
        ins, dels = sp.batch_delete(batch)
        recourse += len(ins) + len(dels)
    return init_size, recourse, sp.sc.total_cluster_changes


def _series():
    rows = []
    for n, k in [(80, 2), (160, 2), (80, 3), (160, 3)]:
        m = 5 * n
        init_size, recourse, cluster_changes = _run_one(n, m, k, seed=n * k)
        logn = math.log2(n)
        rows.append(
            {
                "n": n,
                "m": m,
                "k": k,
                "init_size": init_size,
                "size_bound(n^{1+1/k})": round(n ** (1 + 1 / k)),
                "recourse/edge": round(recourse / m, 3),
                "rec_bound(k lg n)": round(k * logn, 1),
                "clu_chg/vertex": round(cluster_changes / n, 2),
                "clu_bound(2k lg n)": round(2 * k * logn, 1),
            }
        )
    return rows


def test_e3_table(benchmark, report):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    report.append(
        format_table(rows, "E3: decremental (2k-1)-spanner (Lemma 3.3)")
    )
    for row in rows:
        assert row["init_size"] <= 4 * row["size_bound(n^{1+1/k})"]
        assert row["recourse/edge"] <= 2 * row["rec_bound(k lg n)"]
        # Lemma 3.6 bound on expected cluster changes
        assert row["clu_chg/vertex"] <= 2 * row["clu_bound(2k lg n)"]


def test_e3_deletion_throughput(benchmark):
    n, m, k = 120, 600, 3
    edges = gnm_random_graph(n, m, seed=1)

    def run():
        sp = DecrementalSpanner(n, edges, k=k, seed=1)
        alive = list(edges)
        while alive:
            batch, alive = alive[:60], alive[60:]
            sp.batch_delete(batch)
        return sp.spanner_size()

    assert benchmark(run) == 0

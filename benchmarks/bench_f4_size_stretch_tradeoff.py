"""F4 — figure: size–stretch tradeoff across k.

The (2k−1) / n^{1+1/k} frontier (tight under the Erdős girth conjecture):
measured spanner size should track n^{1+1/k} as k sweeps, while measured
stretch stays below 2k−1.
"""

import random

from repro.graph import gnm_random_graph
from repro.harness import format_table
from repro.spanner import FullyDynamicSpanner
from repro.verify import spanner_stretch


def _series():
    n = 128
    m = n * (n - 1) // 4  # dense enough that sparsification is visible
    edges = gnm_random_graph(n, m, seed=43)
    rows = []
    for k in (1, 2, 3, 4, 6):
        # default base capacity = the paper's 2^{l0} >= n^{1+1/k}, so the
        # initial graph lands in a decremental instance, not verbatim E_0
        sp = FullyDynamicSpanner(n, edges, k=k, seed=k)
        h = sp.spanner_edges()
        stretch = spanner_stretch(n, edges, h)
        rows.append(
            {
                "k": k,
                "guarantee(2k-1)": 2 * k - 1,
                "measured_stretch": stretch,
                "|H|": len(h),
                "n^{1+1/k}": round(n ** (1 + 1 / k)),
                "|H|/n^{1+1/k}": round(len(h) / n ** (1 + 1 / k), 2),
            }
        )
    return rows


def test_f4_tradeoff(benchmark, report):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    report.append(
        format_table(rows, "F4: size-stretch tradeoff (n=128, m=4064)")
    )
    for row in rows:
        assert row["measured_stretch"] <= row["guarantee(2k-1)"]
        assert row["|H|/n^{1+1/k}"] <= 5.0
    sizes = [row["|H|"] for row in rows]
    # headline trend: growing k sparsifies hard (individual sizes carry
    # O(log n)-factor randomness, so only the coarse ordering is asserted)
    assert sizes[1] < sizes[0] / 1.5  # k=2 well below k=1
    assert sizes[3] < sizes[1] / 2  # k=4 well below k=2
    # k = 1 keeps everything
    assert sizes[0] == len(gnm_random_graph(128, 128 * 127 // 4, seed=43))

"""A1 — ablation: the paper's Las Vegas resampling (Algorithm 2 lines 1–3)
vs the original Monte Carlo [MPVX15] single shot.

The paper's modification resamples the exponential shifts until
``max delta_u < k``, upgrading "stretch 2k−1 with constant probability" to
"with high probability".  We measure the failure fraction of each variant
over repeated trials.
"""

from repro.graph import gnm_random_graph
from repro.harness import format_table
from repro.spanner import mpvx_spanner
from repro.verify import spanner_stretch


def _series():
    n, m, k, trials = 60, 400, 3, 40
    edges = gnm_random_graph(n, m, seed=51)
    rows = []
    for las_vegas in (True, False):
        failures = 0
        sizes = []
        for s in range(trials):
            h = mpvx_spanner(n, edges, k=k, seed=s, las_vegas=las_vegas)
            sizes.append(len(h))
            if spanner_stretch(n, edges, h) > 2 * k - 1:
                failures += 1
        rows.append(
            {
                "variant": "Las Vegas (paper)" if las_vegas else
                           "Monte Carlo [MPVX15]",
                "trials": trials,
                "stretch_failures": failures,
                "fail_rate": round(failures / trials, 3),
                "avg_size": round(sum(sizes) / trials, 1),
            }
        )
    return rows


def test_a1_las_vegas_vs_monte_carlo(benchmark, report):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    report.append(
        format_table(rows, "A1 ablation: Las Vegas resampling vs Monte "
                           "Carlo single shot (n=60, m=400, k=3)")
    )
    lv, mc = rows
    assert lv["stretch_failures"] == 0, (
        "Las Vegas variant must never exceed 2k-1"
    )
    # Monte Carlo may fail; at minimum it can't beat Las Vegas
    assert mc["stretch_failures"] >= lv["stretch_failures"]

"""E4 — Theorem 1.3 "table": sparse spanner via nested contractions.

Claims under test:
  * O(n) spanner edges (vs the Õ(n^{1+1/k}) of Theorem 1.1 at small k),
  * measured stretch far below the worst-case composition bound, scaling
    like Õ(log n),
  * recourse O(log³ n)-ish per updated edge.
"""

import math
import random

from repro.contraction import SparseSpannerDynamic
from repro.harness import format_table, run_workload
from repro.verify import pairwise_stretch
from repro.workloads import mixed_stream


def _series():
    rows = []
    for n in (64, 128, 256):
        m = 6 * n
        wl = mixed_stream(n, m, batch_size=32, num_batches=12, seed=n)
        stats = run_workload(
            f"n={n}",
            wl,
            lambda edges, cost, n=n: SparseSpannerDynamic(
                n, edges, seed=n, cost=cost,
                base_capacity=max(16, m // 8),
            ),
        )
        rows.append(
            dict(
                stats.row(),
                **{
                    "size/n": round(stats.output_size_final / n, 2),
                    "rec_bound(lg^3 n)": round(math.log2(n) ** 3, 1),
                },
            )
        )
    return rows


def test_e4_table(benchmark, report):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    report.append(
        format_table(rows, "E4: sparse spanner, O(n) edges (Theorem 1.3)")
    )
    for row in rows:
        assert row["size/n"] <= 8.0, "spanner is not O(n)"
        assert row["recourse/upd"] <= 3 * row["rec_bound(lg^3 n)"]


def test_e4_measured_stretch(benchmark, report):
    n, m = 128, 800

    def run():
        rng = random.Random(2)
        wl = mixed_stream(n, m, batch_size=40, num_batches=8, seed=2)
        sp = SparseSpannerDynamic(n, wl.initial_edges, seed=2,
                                  base_capacity=64)
        worst = 0.0
        for batch, edges in wl.replay():
            sp.update(insertions=batch.insertions,
                      deletions=batch.deletions)
            pairs = [(rng.randrange(n), rng.randrange(n))
                     for _ in range(25)]
            worst = max(
                worst, pairwise_stretch(n, edges, sp.spanner_edges(), pairs)
            )
        return worst, sp.stretch_bound()

    worst, bound = benchmark.pedantic(run, rounds=1, iterations=1)
    report.append(
        f"E4 stretch: measured {worst:.1f} vs worst-case bound {bound} "
        f"(log2 n = {math.log2(n):.1f})"
    )
    assert worst <= bound


def test_e4_update_throughput(benchmark):
    n, m = 128, 600
    wl = mixed_stream(n, m, batch_size=50, num_batches=6, seed=4)

    def run():
        sp = SparseSpannerDynamic(n, wl.initial_edges, seed=4,
                                  base_capacity=64)
        for batch in wl.batches:
            sp.update(insertions=batch.insertions,
                      deletions=batch.deletions)
        return sp.spanner_size()

    assert benchmark(run) >= 0

"""F1 — figure: amortized work per update vs n.

The paper's headline efficiency claim: batch updates cost polylog work per
edge.  We sweep n at fixed average degree and batch fraction and check the
measured work/update grows like a polylog (quantified as: doubling n at most
adds a constant factor ~ (log 2n / log n)^c, far below the linear growth a
non-dynamic algorithm would show).
"""

import math

from repro.harness import format_table, run_workload
from repro.spanner import FullyDynamicSpanner
from repro.workloads import mixed_stream


def _series():
    rows = []
    k = 2
    for n in (64, 128, 256, 512):
        m = 4 * n
        wl = mixed_stream(n, m, batch_size=n // 4, num_batches=10, seed=n)
        stats = run_workload(
            f"n={n}",
            wl,
            lambda edges, cost, n=n: FullyDynamicSpanner(
                n, edges, k=k, seed=n, cost=cost,
                base_capacity=max(16, n // 2),
            ),
        )
        rows.append(
            {
                "n": n,
                "m": m,
                "work/upd": round(stats.work_per_update, 1),
                "polylog_ref(k lg^3 n)": round(k * math.log2(n) ** 3, 1),
                "ratio": round(
                    stats.work_per_update / (k * math.log2(n) ** 3), 3
                ),
            }
        )
    return rows


def test_f1_work_scaling(benchmark, report):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    report.append(
        format_table(rows, "F1: amortized work per update vs n "
                           "(should track polylog, not n)")
    )
    # the work/polylog ratio must stay within a constant band while n
    # grows 8x — i.e. no linear-in-n blowup.
    ratios = [row["ratio"] for row in rows]
    assert max(ratios) <= 6 * min(r for r in ratios if r > 0)
    # and absolute work/update must be far below m (static recompute cost)
    for row in rows:
        assert row["work/upd"] < row["m"]

"""S — substrate microbenchmarks: the building blocks' own claims.

* Lemma 3.1: ``NextWith(k, f)`` costs O((q−k+1) log U) work — linear in
  the scan distance, log-depth.
* Lemma 4.1: one contraction gives E|V'| = n/x and E|H| = O(n·x).
* HDT spanning forest: amortized update cost grows polylogarithmically
  with n (not linearly).
"""

import random

from repro.connectivity import DynamicSpanningForest
from repro.contraction import contract
from repro.graph import gnm_random_graph
from repro.harness import format_table
from repro.pram import CostModel
from repro.structures import PriorityArray


def _nextwith_series():
    cm = CostModel()
    size = 4096
    pa = PriorityArray(1 << 14, [(i, 16000 - i) for i in range(size)],
                       cost=cm)
    rows = []
    for target_pos in (8, 64, 512, 4096):
        cm.reset()
        q = pa.next_with(1, lambda v: v == target_pos - 1)
        assert q == target_pos
        rows.append(
            {
                "scan_distance": target_pos,
                "work": cm.work,
                "work/distance": round(cm.work / target_pos, 1),
                "depth": cm.depth,
            }
        )
    return rows


def _contract_series():
    rows = []
    n, m = 600, 3000
    edges = gnm_random_graph(n, m, seed=81)
    for x in (2.0, 4.0, 8.0):
        vs, hs = [], []
        for s in range(5):
            contracted, kept, head, _ = contract(n, edges, x, seed=s)
            vs.append(sum(1 for h in set(head) if h != -1))
            hs.append(len(kept))
        rows.append(
            {
                "x": x,
                "E|V'|_measured": round(sum(vs) / 5, 1),
                "n/x": round(n / x, 1),
                "E|H|_measured": round(sum(hs) / 5, 1),
                "bound(4nx)": round(4 * n * x),
            }
        )
    return rows


def _hdt_series():
    rows = []
    for n in (50, 100, 200, 400):
        rng = random.Random(n)
        cm = CostModel()
        dsf = DynamicSpanningForest(n, cost=cm)
        present: set = set()
        ops = 1500
        for _ in range(ops):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            e = (min(u, v), max(u, v))
            if e in present:
                dsf.delete(*e)
                present.remove(e)
            else:
                dsf.insert(*e)
                present.add(e)
        rows.append(
            {
                "n": n,
                "ops": ops,
                "work/op": round(cm.work / ops, 2),
                "polylog_ref(lg^2 n)": round(
                    (n.bit_length()) ** 2, 1
                ),
            }
        )
    return rows


def test_s_nextwith_work_shape(benchmark, report):
    rows = benchmark.pedantic(_nextwith_series, rounds=1, iterations=1)
    report.append(
        format_table(rows, "S1: Lemma 3.1 NextWith — work linear in scan "
                           "distance, depth polylog")
    )
    ratios = [row["work/distance"] for row in rows]
    # work per scanned position is a flat O(log U) constant
    assert max(ratios) <= 3 * min(ratios)
    for row in rows:
        assert row["depth"] <= 14 * 14  # O(log^2 U)


def test_s_contract_expectations(benchmark, report):
    rows = benchmark.pedantic(_contract_series, rounds=1, iterations=1)
    report.append(
        format_table(rows, "S2: Lemma 4.1 Contract(G, x) — E|V'| = n/x, "
                           "E|H| = O(n x)  (n=600, m=3000, 5 seeds)")
    )
    for row in rows:
        assert row["E|V'|_measured"] <= 2.0 * row["n/x"] + 10
        assert row["E|H|_measured"] <= row["bound(4nx)"]
    # |V'| really shrinks with x
    assert rows[-1]["E|V'|_measured"] < rows[0]["E|V'|_measured"]


def test_s_hdt_scaling(benchmark, report):
    rows = benchmark.pedantic(_hdt_series, rounds=1, iterations=1)
    report.append(
        format_table(rows, "S3: HDT spanning forest — amortized work per "
                           "update vs n (polylog shape)")
    )
    works = [row["work/op"] for row in rows]
    # 8x more vertices may only add a small factor (polylog, not linear)
    assert works[-1] <= 4 * works[0]

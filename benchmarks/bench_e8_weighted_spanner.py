"""E8 — extension: fully-dynamic weighted spanner (weight-class reduction).

Not in the paper (its results are unweighted); this bench validates the
natural extension built on Theorem 1.1: stretch ≤ (2k−1)(1+ε) under
weighted mixed streams, with size O(log_{1+ε} W) times the unweighted
figure and the ε knob trading size for stretch.
"""

import numpy as np

from repro.graph import gnm_random_graph
from repro.harness import format_table
from repro.spanner import WeightedFullyDynamicSpanner
from repro.spanner.weighted import weighted_spanner_stretch


def _series():
    n, m, k = 60, 1400, 2
    rng = np.random.default_rng(71)
    edges = gnm_random_graph(n, m, seed=71)
    weights = {e: float(w) for e, w in zip(edges, rng.uniform(1, 10, m))}
    rows = []
    for eps in (0.25, 0.5, 1.0, 2.0):
        sp = WeightedFullyDynamicSpanner(
            n, weights, k=k, epsilon=eps, seed=int(eps * 100),
            base_capacity=16,
        )
        # churn: delete a third, reinsert with fresh weights
        dels = edges[: m // 3]
        sp.update(deletions=dels)
        reins = {
            e: float(w) for e, w in zip(dels, rng.uniform(1, 10, len(dels)))
        }
        sp.update(insertions=reins)
        current = dict(weights)
        current.update(reins)
        s = weighted_spanner_stretch(n, current, sp.spanner_edges())
        rows.append(
            {
                "epsilon": eps,
                "classes": len(sp.class_sizes()),
                "|H|": sp.spanner_size(),
                "stretch": round(s, 2),
                "guarantee": round(sp.stretch, 2),
            }
        )
    return rows


def test_e8_weighted_extension(benchmark, report):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    report.append(
        format_table(rows, "E8 extension: weighted fully-dynamic spanner "
                           "(weights in [1, 10], k=2)")
    )
    for row in rows:
        assert row["stretch"] <= row["guarantee"] + 1e-9
    # the tradeoff: larger epsilon -> fewer classes -> smaller spanner
    assert rows[-1]["classes"] < rows[0]["classes"]
    assert rows[-1]["|H|"] <= rows[0]["|H|"]

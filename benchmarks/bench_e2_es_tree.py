"""E2 — Theorem 1.2 "table": batch-dynamic decremental BFS (ES tree).

Claims under test:
  * total deletion work O(L · m · log n) over a full deletion run,
  * depth per batch O(L log² n), independent of batch size,
  * distances always equal a fresh bounded BFS (spot-checked).

Run: pytest benchmarks/bench_e2_es_tree.py --benchmark-only -s
"""

import math
import random

from repro.bfs import BatchDynamicESTree, bounded_bfs_directed
from repro.harness import format_table
from repro.pram import CostModel


def _random_digraph(n, m, seed):
    rng = random.Random(seed)
    edges = set()
    while len(edges) < m:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.add((u, v))
    return sorted(edges)


def _series():
    rows = []
    for n, m, limit in [(100, 600, 4), (200, 1200, 4), (200, 1200, 8),
                        (400, 2400, 4)]:
        edges = _random_digraph(n, m, seed=n + limit)
        cm = CostModel()
        tree = BatchDynamicESTree(n, edges, source=0, limit=limit, cost=cm)
        init_work = cm.work
        cm.reset()
        rng = random.Random(limit)
        alive = list(edges)
        rng.shuffle(alive)
        max_depth = 0
        while alive:
            batch, alive = alive[:50], alive[50:]
            with cm.frame() as fr:
                tree.batch_delete(batch)
            max_depth = max(max_depth, fr.depth)
        logn = math.log2(n)
        bound = limit * m * logn
        rows.append(
            {
                "n": n,
                "m": m,
                "L": limit,
                "init_work": init_work,
                "del_work": cm.work,
                "work_bound(Lm lg n)": round(bound),
                "work/bound": round(cm.work / bound, 3),
                "maxdepth": max_depth,
                "depth_bound(L lg^2 n)": round(limit * logn**2),
            }
        )
    return rows


def test_e2_table(benchmark, report):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    report.append(
        format_table(rows, "E2: batch-dynamic ES tree (Theorem 1.2)")
    )
    for row in rows:
        # generous constants; the shape is what matters
        assert row["work/bound"] <= 25.0
        assert row["maxdepth"] <= 60 * row["depth_bound(L lg^2 n)"]


def test_e2_depth_independent_of_batch_size(benchmark, report):
    """The parallel claim: deleting in one huge batch costs no more depth
    than many small batches."""
    n, m, limit = 150, 900, 5
    edges = _random_digraph(n, m, seed=9)

    def depth_for(batch_size):
        cm = CostModel()
        tree = BatchDynamicESTree(n, edges, source=0, limit=limit, cost=cm)
        cm.reset()
        alive = list(edges)
        worst = 0
        while alive:
            batch, alive = alive[:batch_size], alive[batch_size:]
            with cm.frame() as fr:
                tree.batch_delete(batch)
            worst = max(worst, fr.depth)
        return worst

    def run():
        return {b: depth_for(b) for b in (10, 100, 900)}

    depths = benchmark.pedantic(run, rounds=1, iterations=1)
    report.append(
        "E2 depth vs batch size (should be flat): "
        + ", ".join(f"b={b}: depth={d}" for b, d in depths.items())
    )
    assert depths[900] <= 3 * depths[10]


def test_e2_deletion_throughput(benchmark):
    n, m, limit = 200, 1200, 4
    edges = _random_digraph(n, m, seed=5)

    def run():
        tree = BatchDynamicESTree(n, edges, source=0, limit=limit)
        alive = list(edges)
        while alive:
            batch, alive = alive[:100], alive[100:]
            tree.batch_delete(batch)
        return tree.dist_of(1)

    benchmark(run)


def test_e2_correctness_spot_check(benchmark):
    n, m, limit = 120, 700, 5
    edges = _random_digraph(n, m, seed=13)

    def run():
        tree = BatchDynamicESTree(n, edges, source=0, limit=limit)
        rng = random.Random(13)
        alive = list(edges)
        rng.shuffle(alive)
        ok = True
        while alive:
            batch, alive = alive[:80], alive[80:]
            tree.batch_delete(batch)
            adj = [[] for _ in range(n)]
            for u, v in alive:
                adj[u].append(v)
            ok &= tree.distances() == bounded_bfs_directed(
                n, adj, 0, limit
            )
        return ok

    assert benchmark.pedantic(run, rounds=1, iterations=1)

"""Shared fixtures for the benchmark suite.

Every bench prints the paper-style table it regenerates (captured with
``pytest benchmarks/ --benchmark-only -s`` or via the ``bench_output.txt``
tee) and times one representative configuration with pytest-benchmark.
"""

import pytest


@pytest.fixture(scope="session")
def report():
    """Collector that prints all experiment tables at session end."""
    tables: list[str] = []
    yield tables
    if tables:
        print("\n\n" + "\n\n".join(tables))

"""E6 — Theorem 1.5 "table": decremental t-bundle spanners.

Claims under test:
  * bundle size scales linearly in t (O(n t log n)),
  * amortized recourse O(1) per deleted edge (the monotonicity payoff),
  * every level H_i is a valid spanner of G minus the previous levels
    (checked on a small instance).
"""

import math
import random

from repro.bundle import DecrementalTBundle
from repro.graph import gnm_random_graph
from repro.harness import format_table


def _series():
    rows = []
    n, m = 100, 1200
    edges = gnm_random_graph(n, m, seed=11)
    for t in (1, 2, 4):
        bundle = DecrementalTBundle(n, edges, t=t, seed=t, instances=6)
        init_size = bundle.bundle_size()
        rng = random.Random(t)
        alive = list(edges)
        rng.shuffle(alive)
        recourse = 0
        while alive:
            batch, alive = alive[:60], alive[60:]
            ins, dels = bundle.batch_delete(batch)
            recourse += len(ins) + len(dels)
        rows.append(
            {
                "t": t,
                "n": n,
                "m": m,
                "bundle_size": init_size,
                "size_bound(nt lg n)": round(n * t * math.log2(n)),
                "recourse/edge": round(recourse / m, 3),
                "recourse_bound(O(1))": 4,
            }
        )
    return rows


def test_e6_table(benchmark, report):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    report.append(
        format_table(rows, "E6: decremental t-bundle spanner (Theorem 1.5)")
    )
    for row in rows:
        assert row["bundle_size"] <= row["size_bound(nt lg n)"]
        assert row["recourse/edge"] <= row["recourse_bound(O(1))"]
    # size grows (roughly linearly) with t
    assert rows[-1]["bundle_size"] > rows[0]["bundle_size"]


def test_e6_bundle_property_mid_stream(benchmark, report):
    """Chained-spanner property verified at several points of the run."""
    n, m, t = 30, 200, 2
    edges = gnm_random_graph(n, m, seed=13)

    def run():
        bundle = DecrementalTBundle(n, edges, t=t, seed=13, instances=5)
        rng = random.Random(13)
        alive = list(edges)
        rng.shuffle(alive)
        checks = 0
        while alive:
            batch, alive = alive[:40], alive[40:]
            bundle.batch_delete(batch)
            bundle.check_invariants()  # includes per-level spanner checks
            checks += 1
        return checks

    checks = benchmark.pedantic(run, rounds=1, iterations=1)
    report.append(f"E6 property check: bundle chain valid at {checks} "
                  "checkpoints")
    assert checks >= 4


def test_e6_deletion_throughput(benchmark):
    n, m, t = 80, 600, 2
    edges = gnm_random_graph(n, m, seed=17)

    def run():
        bundle = DecrementalTBundle(n, edges, t=t, seed=17, instances=4)
        alive = list(edges)
        while alive:
            batch, alive = alive[:80], alive[80:]
            bundle.batch_delete(batch)
        return bundle.bundle_size()

    assert benchmark(run) == 0

"""A4 — baseline: incremental greedy spanner vs Theorem 1.1 on
insertion-only streams.

Greedy achieves the *optimal* O(n^{1+1/k}) size with zero recourse but
pays a spanner-BFS per edge and cannot delete; Theorem 1.1 pays a log
factor in size to get batch deletions and polylog depth.  This quantifies
the price of full dynamism.
"""

from repro.graph import gnm_random_graph
from repro.harness import format_table, sparkline
from repro.pram import CostModel
from repro.spanner import FullyDynamicSpanner
from repro.spanner.incremental_greedy import IncrementalGreedySpanner


def _series():
    rows = []
    k = 2
    for n in (64, 128, 256):
        m = n * (n - 1) // 4
        edges = gnm_random_graph(n, m, seed=n)
        greedy_cost = CostModel()
        greedy = IncrementalGreedySpanner(n, edges, k=k, cost=greedy_cost)
        dyn_cost = CostModel()
        dyn = FullyDynamicSpanner(n, edges, k=k, seed=n, cost=dyn_cost)
        bound = n ** (1 + 1 / k)
        rows.append(
            {
                "n": n,
                "m": m,
                "greedy_size": greedy.spanner_size(),
                "thm1.1_size": dyn.spanner_size(),
                "greedy/n^{1+1/k}": round(greedy.spanner_size() / bound, 2),
                "thm1.1/n^{1+1/k}": round(dyn.spanner_size() / bound, 2),
                "greedy_work/edge": round(greedy_cost.work / m, 1),
                "thm1.1_work/edge": round(dyn_cost.work / m, 1),
            }
        )
    return rows


def test_a4_greedy_vs_dynamic(benchmark, report):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    table = format_table(
        rows,
        "A4 baseline: greedy (optimal size, no deletions) vs Theorem 1.1",
    )
    trend = sparkline([r["greedy_work/edge"] for r in rows])
    report.append(table + f"\ngreedy work/edge trend (grows): {trend}")
    for row in rows:
        # greedy beats its worst-case bound handily on random graphs; the
        # dynamic structure pays its documented O(log n) factor over it
        assert row["greedy/n^{1+1/k}"] <= 1.0
        assert row["thm1.1/n^{1+1/k}"] <= 8.0
        # the dynamism payoff: greedy's per-edge work grows with n (a BFS
        # over the spanner per insertion) while Theorem 1.1's stays polylog
        assert row["thm1.1_work/edge"] <= 3 * (
            (row["n"].bit_length()) ** 2
        )
    works = [r["greedy_work/edge"] for r in rows]
    assert works[-1] > 2 * works[0], "greedy work should grow with n"

"""Wire-level fault injection and the resilient client.

Covers the failure-domain tentpole: the :class:`FaultProxy` primitives
(latency, torn frames, resets, partitions), the fail-fast
:class:`NetClient` poisoning contract (a mid-response ``ProtocolError``
latches the connection closed), and the :class:`ResilientClient`
behaviors layered on top — reconnect + retry, idempotent exactly-once
writes across lost ACKs, circuit breaking, read failover, and hedging.
"""

import threading
import time

import pytest

from repro.net import (
    ConnectionClosed,
    FaultProxy,
    NetClient,
    NetServerConfig,
    ResilientClient,
    RetryPolicy,
    TenantConfig,
    TenantManager,
    ThreadedServer,
)
from repro.net.resilient import DeadlineExceeded
from repro.service.metrics import MetricsRegistry


def _spec(n=24, edges=((0, 1), (1, 2), (2, 3)), seed=5):
    return {"kind": "spanner", "n": n, "k": 2,
            "edges": [list(e) for e in edges], "seed": seed}


def _manager(name="default", **kwargs) -> TenantManager:
    tm = TenantManager()
    tm.create(TenantConfig(name=name, spec=_spec(), **kwargs))
    return tm


def _tight_policy(**over) -> RetryPolicy:
    kw = dict(deadline_s=8.0, attempt_timeout_s=0.4, backoff_base_s=0.01,
              backoff_cap_s=0.1, breaker_threshold=3, breaker_reset_s=0.1,
              seed=7)
    kw.update(over)
    return RetryPolicy(**kw)


class TestFaultProxy:
    def test_transparent_forwarding(self):
        with _manager() as tm, ThreadedServer(tm) as srv, \
                FaultProxy(srv.host, srv.port) as proxy:
            with NetClient(proxy.host, proxy.port) as c:
                assert c.submit("insert", 5, 9) == "accepted"
                c.flush()
                assert (5, 9) in c.edges()
            stats = proxy.stats()
            assert stats["connections"] == 1
            assert stats["bytes_c2s"] > 0 and stats["bytes_s2c"] > 0

    def test_latency_slows_the_round_trip(self):
        with _manager() as tm, ThreadedServer(tm) as srv, \
                FaultProxy(srv.host, srv.port) as proxy:
            with NetClient(proxy.host, proxy.port) as c:
                t0 = time.perf_counter()
                c.query("size")
                fast = time.perf_counter() - t0
                proxy.set_latency(0.05)
                t0 = time.perf_counter()
                c.query("size")
                slow = time.perf_counter() - t0
            assert slow >= 0.08           # two pumped chunks (req + resp)
            assert slow > fast

    def test_torn_response_poisons_the_client(self):
        """Satellite regression: a mid-response tear must raise, latch the
        client closed, and turn every further call into a typed
        :class:`ConnectionClosed` — never a silently mis-paired frame."""
        with _manager() as tm, ThreadedServer(tm) as srv, \
                FaultProxy(srv.host, srv.port) as proxy:
            c = NetClient(proxy.host, proxy.port)
            proxy.tear_next("s2c")
            with pytest.raises((ConnectionClosed, Exception)) as ei:
                c.query("size")
            assert not isinstance(ei.value, AssertionError)
            assert c.closed
            with pytest.raises(ConnectionClosed, match="closed"):
                c.query("size")
            with pytest.raises(ConnectionClosed, match="closed"):
                c.submit("insert", 1, 2)
            assert proxy.stats()["torn_frames"] == 1

    def test_reset_all_kills_live_links(self):
        with _manager() as tm, ThreadedServer(tm) as srv, \
                FaultProxy(srv.host, srv.port) as proxy:
            c = NetClient(proxy.host, proxy.port)
            c.query("size")
            assert proxy.reset_all() == 1
            with pytest.raises((ConnectionClosed, Exception)):
                c.query("size")
            assert c.closed
            # a fresh connection through the healed proxy works
            with NetClient(proxy.host, proxy.port) as c2:
                assert c2.query("size") >= 0

    def test_partition_black_holes_then_heals(self):
        with _manager() as tm, ThreadedServer(tm) as srv, \
                FaultProxy(srv.host, srv.port) as proxy:
            proxy.partition()
            assert proxy.partitioned
            # connect succeeds (parked) but the handshake never answers:
            # only the client's own deadline saves it
            with pytest.raises(OSError):
                NetClient(proxy.host, proxy.port, timeout=0.2)
            assert proxy.stats()["blackholed"] >= 1
            proxy.heal()
            assert not proxy.partitioned
            with NetClient(proxy.host, proxy.port) as c:
                assert c.query("size") >= 0

    def test_server_error_does_not_poison(self):
        """A server *error envelope* is a healthy transport: the client
        must stay usable after it."""
        with _manager() as tm, ThreadedServer(tm) as srv:
            with NetClient(srv.host, srv.port) as c:
                from repro.net.protocol import ServerError
                with pytest.raises(ServerError):
                    c.call("no_such_verb")
                assert not c.closed
                assert c.query("size") >= 0


class TestResilientClient:
    def test_reconnects_and_retries_through_resets(self):
        with _manager() as tm, ThreadedServer(tm) as srv, \
                FaultProxy(srv.host, srv.port) as proxy:
            with ResilientClient(proxy.host, proxy.port,
                                 policy=_tight_policy()) as rc:
                assert rc.submit("insert", 4, 7) == "accepted"
                proxy.reset_all()
                # the next call sees the dead socket, reconnects, retries
                assert rc.submit("insert", 5, 8) == "accepted"
                assert rc.flush() >= 1
                assert rc.reconnects >= 1
            direct = NetClient(srv.host, srv.port)
            assert {(4, 7), (5, 8)} <= direct.edges()
            direct.close()

    def test_torn_ack_is_deduplicated_exactly_once(self):
        """The op applies, the ACK tears: the retry must return the
        recorded outcome (``deduped``) instead of re-offering the write —
        where a bare retry would see ``rejected_duplicate``."""
        with _manager() as tm, ThreadedServer(tm) as srv, \
                FaultProxy(srv.host, srv.port) as proxy:
            with ResilientClient(proxy.host, proxy.port,
                                 policy=_tight_policy()) as rc:
                rc.submit("insert", 3, 9)
                proxy.tear_next("s2c")   # tear the next ACK
                info = rc.submit_info("insert", 6, 11)
                assert info["status"] == "accepted"
                assert info.get("deduped") is True
                assert rc.dedup_replays == 1
                rc.flush()
            tenant = tm.get("default")
            assert tenant.idempotency.dedup_hits == 1
            assert (tenant.service.metrics
                    .counter("idempotent_dedup_hits").value) == 1
            direct = NetClient(srv.host, srv.port)
            assert {(3, 9), (6, 11)} <= direct.edges()
            direct.close()

    def test_breaker_opens_after_repeated_transport_failures(self):
        with _manager() as tm, ThreadedServer(tm) as srv, \
                FaultProxy(srv.host, srv.port) as proxy:
            policy = _tight_policy(deadline_s=2.0, attempt_timeout_s=0.1,
                                   breaker_threshold=2, breaker_reset_s=60.0)
            with ResilientClient(proxy.host, proxy.port,
                                 policy=policy) as rc:
                rc.query("size")
                proxy.partition()
                with pytest.raises((DeadlineExceeded, ConnectionError)):
                    rc.query("size")
                assert rc.breaker_trips >= 1

    def test_read_failover_to_replica_endpoint(self):
        """With the primary partitioned, reads land on the replica set."""
        from repro.net.replica import LogShippingReplica, ReplicaConfig

        with _manager() as tm, ThreadedServer(tm) as srv, \
                FaultProxy(srv.host, srv.port) as proxy:
            direct = NetClient(srv.host, srv.port)
            direct.submit("insert", 7, 13)
            direct.flush()
            replica = LogShippingReplica(
                NetClient(srv.host, srv.port), ReplicaConfig())
            replica.catch_up()
            rsrv = ThreadedServer(replica.tenants,
                                  NetServerConfig(read_only=True)).start()
            try:
                with ResilientClient(
                        proxy.host, proxy.port,
                        replicas=[(rsrv.host, rsrv.port)],
                        policy=_tight_policy(attempt_timeout_s=0.2)) as rc:
                    proxy.partition()
                    # write path is pinned to the primary and must fail...
                    with pytest.raises((DeadlineExceeded, ConnectionError)):
                        rc.submit("insert", 1, 2, deadline_s=0.5)
                    # ...but reads fail over to the replica
                    assert [7, 13] in rc.query("edges") or \
                        (7, 13) in rc.edges()
            finally:
                rsrv.stop()
                replica.close()
                direct.close()

    def test_hedged_read_fires_under_latency(self):
        from repro.net.replica import LogShippingReplica, ReplicaConfig

        with _manager() as tm, ThreadedServer(tm) as srv, \
                FaultProxy(srv.host, srv.port) as proxy:
            replica = LogShippingReplica(
                NetClient(srv.host, srv.port), ReplicaConfig())
            replica.catch_up()
            rsrv = ThreadedServer(replica.tenants,
                                  NetServerConfig(read_only=True)).start()
            try:
                policy = _tight_policy(hedge_after_s=0.02)
                with ResilientClient(
                        proxy.host, proxy.port,
                        replicas=[(rsrv.host, rsrv.port)],
                        policy=policy) as rc:
                    proxy.set_latency(0.2)
                    sizes = [rc.query("size") for _ in range(2)]
                    assert all(s >= 0 for s in sizes)
                    assert rc.hedged >= 1
            finally:
                rsrv.stop()
                replica.close()

    def test_retry_after_hint_floors_the_backoff(self):
        """An admission shed's ``retry_after`` is honored: the retried
        call succeeds without surfacing the shed to the caller."""
        from repro.service.admission import AdmissionConfig

        with _manager(admission=AdmissionConfig(
                max_pending=2, min_retry_after=0.01)) as tm, \
                ThreadedServer(tm) as srv:
            with ResilientClient(srv.host, srv.port,
                                 policy=_tight_policy()) as rc:
                for i in range(12):
                    assert rc.submit("insert", i, i + 12) in (
                        "accepted", "coalesced_dedup", "coalesced_cancel")
                rc.flush()
                assert rc.retries >= 1   # at least one shed was absorbed

    def test_deadline_exceeded_is_typed(self):
        with _manager() as tm, ThreadedServer(tm) as srv, \
                FaultProxy(srv.host, srv.port) as proxy:
            with ResilientClient(proxy.host, proxy.port,
                                 policy=_tight_policy(
                                     deadline_s=0.5,
                                     attempt_timeout_s=0.1)) as rc:
                rc.query("size")
                proxy.partition()
                with pytest.raises((DeadlineExceeded, ConnectionError)):
                    rc.query("size")
                assert rc.deadline_exceeded + rc.breaker_trips >= 1

    def test_bind_metrics_exports_counters(self):
        with _manager() as tm, ThreadedServer(tm) as srv, \
                FaultProxy(srv.host, srv.port) as proxy:
            reg = MetricsRegistry()
            with ResilientClient(proxy.host, proxy.port,
                                 policy=_tight_policy()) as rc:
                rc.bind_metrics(reg)
                rc.submit("insert", 2, 17)
                proxy.reset_all()
                rc.submit("insert", 3, 18)
            text = reg.render_prometheus()
            assert "client_retries" in text
            assert "client_reconnects" in text
            assert "client_breaker_state" in text
            assert reg.counter("client_reconnects").value >= 1

    def test_idem_keys_are_client_unique(self):
        with _manager() as tm, ThreadedServer(tm) as srv:
            with ResilientClient(srv.host, srv.port,
                                 client_id="abc") as rc:
                assert rc.next_idem_key() == "abc-1"
                assert rc.next_idem_key() == "abc-2"

"""Tests for the Lemma 3.1 PriorityArray, including a model-based
hypothesis suite against a sorted-list reference."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pram import CostModel
from repro.structures import PriorityArray


def make(items, universe=1 << 12):
    return PriorityArray(universe, items)


class TestBasics:
    def test_empty(self):
        pa = make([])
        assert len(pa) == 0
        assert pa.next_with(1, lambda v: True) == 1

    def test_positions_sorted_by_decreasing_priority(self):
        pa = make([("a", 5), ("b", 9), ("c", 1)])
        assert pa.query(1) == "b"
        assert pa.query(2) == "a"
        assert pa.query(3) == "c"

    def test_find_returns_value_and_rank(self):
        pa = make([("a", 5), ("b", 9), ("c", 1)])
        assert pa.find(9) == ("b", 1)
        assert pa.find(5) == ("a", 2)
        assert pa.find(1) == ("c", 3)

    def test_find_missing_raises(self):
        pa = make([("a", 5)])
        with pytest.raises(KeyError):
            pa.find(6)

    def test_update_value(self):
        pa = make([("a", 5), ("b", 9)])
        pa.update_value(2, "a2")
        assert pa.query(2) == "a2"
        assert pa.find(5) == ("a2", 2)

    def test_update_priority_moves_element(self):
        pa = make([("a", 5), ("b", 9), ("c", 1)])
        pa.update_priority(3, 100)  # "c" jumps to front
        assert pa.query(1) == "c"
        assert pa.find(100) == ("c", 1)
        assert pa.priority_at(1) == 100

    def test_update_priority_to_same_is_noop(self):
        pa = make([("a", 5)])
        pa.update_priority(1, 5)
        assert pa.find(5) == ("a", 1)

    def test_duplicate_priority_rejected(self):
        with pytest.raises(ValueError):
            make([("a", 5), ("b", 5)])
        pa = make([("a", 5), ("b", 9)])
        with pytest.raises(ValueError):
            pa.update_priority(1, 5)
        with pytest.raises(ValueError):
            pa.insert("c", 9)

    def test_priority_out_of_universe_rejected(self):
        pa = make([("a", 5)], universe=10)
        with pytest.raises(ValueError):
            pa.insert("b", 10)
        with pytest.raises(ValueError):
            pa.insert("b", -1)

    def test_insert_and_delete_extensions(self):
        pa = make([("a", 5)])
        pa.insert("b", 7)
        assert pa.query(1) == "b"
        assert pa.delete_priority(7) == "b"
        assert len(pa) == 1
        with pytest.raises(KeyError):
            pa.delete_priority(7)

    def test_query_out_of_range(self):
        pa = make([("a", 5)])
        with pytest.raises(IndexError):
            pa.query(0)
        with pytest.raises(IndexError):
            pa.query(2)


class TestNextWith:
    def test_finds_first_match_at_or_after_k(self):
        pa = make([(i, 100 - i) for i in range(10)])  # values 0..9 at pos 1..10
        assert pa.next_with(1, lambda v: v >= 7) == 8
        assert pa.next_with(9, lambda v: v >= 7) == 9
        assert pa.next_with(1, lambda v: v == 0) == 1

    def test_returns_len_plus_one_when_absent(self):
        pa = make([(i, i) for i in range(5)])
        assert pa.next_with(1, lambda v: v == 99) == 6

    def test_respects_start_position(self):
        pa = make([(i, 100 - i) for i in range(10)])
        # value at position 3 is 2; searching from 4 must skip it.
        assert pa.next_with(4, lambda v: v == 2) == 11

    def test_work_charge_proportional_to_distance(self):
        cm = CostModel()
        pa = PriorityArray(1 << 12, [(i, 4000 - i) for i in range(1000)], cost=cm)
        cm.reset()
        pa.next_with(1, lambda v: v == 2)  # near: position 3
        near = cm.work
        cm.reset()
        pa.next_with(1, lambda v: v == 900)  # far: position 901
        far = cm.work
        assert far > 50 * near / 10  # clearly grows with distance
        # Depth stays polylog even for the far search.
        assert cm.depth <= 3 * 12 * 12


class TestBoundaries:
    """Degenerate universes and last-position edge cases (satellite of the
    fuzzing-oracle PR: these paths back the Lemma 3.1 charge table)."""

    def test_universe_one_holds_single_element(self):
        pa = PriorityArray(1, [("only", 0)])
        assert len(pa) == 1
        assert pa.query(1) == "only"
        assert pa.priority_at(1) == 0
        assert pa.find(0) == ("only", 1)
        assert pa.count_ge(0) == 1
        assert pa.next_with(1, lambda v: v == "only") == 1
        assert pa.next_with(1, lambda v: False) == 2
        assert pa.delete_priority(0) == "only"
        assert len(pa) == 0

    def test_universe_one_rejects_any_other_priority(self):
        pa = PriorityArray(1)
        with pytest.raises(ValueError):
            pa.insert("x", 1)
        with pytest.raises(ValueError):
            pa.insert("x", -1)
        pa.insert("x", 0)
        with pytest.raises(ValueError):
            pa.insert("y", 0)  # only one slot in a size-1 universe

    def test_nonpositive_universe_rejected(self):
        with pytest.raises(ValueError, match="universe"):
            PriorityArray(0)
        with pytest.raises(ValueError, match="universe"):
            PriorityArray(-3)

    def test_next_with_match_at_last_position(self):
        pa = make([(i, 100 - i) for i in range(10)])
        # the only match sits at position len(self): the final exponential
        # phase is clipped to [pos, n] and must still inspect it
        assert pa.next_with(1, lambda v: v == 9) == 10
        assert pa.next_with(10, lambda v: v == 9) == 10
        assert pa.next_with(11, lambda v: True) == 11  # start past the end

    def test_next_with_start_below_one_rejected(self):
        pa = make([("a", 5)])
        with pytest.raises(IndexError):
            pa.next_with(0, lambda v: True)

    def test_boundary_priorities_of_universe(self):
        pa = PriorityArray(8, [("lo", 0), ("hi", 7)])
        assert pa.priority_at(1) == 7
        assert pa.priority_at(2) == 0
        assert pa.count_ge(7) == 1
        assert pa.count_ge(0) == 2

    def test_update_priority_collision_leaves_state_intact(self):
        pa = make([("a", 5), ("b", 9)])
        with pytest.raises(ValueError, match="duplicate priority 9"):
            pa.update_priority(2, 9)  # "a" onto "b"'s priority
        # the failed move must not have deleted or moved anything
        assert pa.find(5) == ("a", 2)
        assert pa.find(9) == ("b", 1)
        assert len(pa) == 2

    def test_update_priority_out_of_universe_rejected(self):
        pa = make([("a", 5)], universe=10)
        with pytest.raises(ValueError, match="outside universe"):
            pa.update_priority(1, 10)
        assert pa.find(5) == ("a", 1)

    def test_count_ge_out_of_universe_rejected(self):
        pa = make([("a", 5)], universe=10)
        with pytest.raises(ValueError, match="outside universe"):
            pa.count_ge(10)


class TestCostCharges:
    def test_query_charges_log(self):
        cm = CostModel()
        pa = PriorityArray(1 << 10, [(i, i) for i in range(100)], cost=cm)
        cm.reset()
        pa.query(50)
        assert 1 <= cm.work <= 20
        assert cm.depth <= 20


# ---------------------------------------------------------------------------
# Model-based testing: compare against a plain sorted list.
# ---------------------------------------------------------------------------

ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "query", "find", "reprioritize"]),
        st.integers(0, 999),
        st.integers(0, 999),
    ),
    max_size=60,
)


@settings(max_examples=150, deadline=None)
@given(ops)
def test_model_based_against_sorted_list(operations):
    universe = 1000
    pa = PriorityArray(universe)
    model: dict[int, str] = {}  # priority -> value

    def positions():
        return sorted(model, reverse=True)

    for op, a, b in operations:
        if op == "insert" and a not in model:
            model[a] = f"v{a}"
            pa.insert(f"v{a}", a)
        elif op == "delete" and model:
            p = positions()[a % len(model)]
            assert pa.delete_priority(p) == model.pop(p)
        elif op == "query" and model:
            k = (a % len(model)) + 1
            assert pa.query(k) == model[positions()[k - 1]]
        elif op == "find" and model:
            p = positions()[a % len(model)]
            value, rank = pa.find(p)
            assert value == model[p]
            assert rank == positions().index(p) + 1
        elif op == "reprioritize" and model and b not in model:
            k = (a % len(model)) + 1
            p_old = positions()[k - 1]
            pa.update_priority(k, b)
            model[b] = model.pop(p_old)
        # Global invariant: full position scan matches the model.
        assert len(pa) == len(model)
        got = [(k, p, v) for k, p, v in pa.items_by_position()]
        want = [
            (i + 1, p, model[p]) for i, p in enumerate(positions())
        ]
        assert got == want


@settings(max_examples=60, deadline=None)
@given(
    st.sets(st.integers(0, 499), min_size=1, max_size=40),
    st.integers(0, 499),
)
def test_next_with_matches_linear_scan(priorities, threshold):
    pa = PriorityArray(500, [(p, p) for p in priorities])
    order = sorted(priorities, reverse=True)
    for k in range(1, len(order) + 2):
        expect = next(
            (
                i + 1
                for i in range(k - 1, len(order))
                if order[i] <= threshold
            ),
            len(order) + 1,
        )
        assert pa.next_with(k, lambda v: v <= threshold) == expect

"""Smoke-run every example script and pin down seed-determinism."""

import importlib.util
import pathlib
import sys

import pytest

from repro.contraction import SparseSpannerDynamic
from repro.graph import gnm_random_graph
from repro.sparsifier import FullyDynamicSpectralSparsifier
from repro.spanner import FullyDynamicSpanner, mpvx_spanner
from repro.ultrasparse import UltraSparseSpannerDynamic

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def _load_and_run(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[path.stem] = mod
    spec.loader.exec_module(mod)
    mod.main()


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(path, capsys):
    """Every example must run end-to-end and print something sensible."""
    _load_and_run(path)
    out = capsys.readouterr().out
    assert len(out.splitlines()) >= 5


class TestSeedDeterminism:
    """Same seed -> byte-identical output (the reproducibility contract
    EXPERIMENTS.md relies on)."""

    def test_static_spanner(self):
        edges = gnm_random_graph(30, 120, seed=5)
        a = mpvx_spanner(30, edges, k=3, seed=9)
        b = mpvx_spanner(30, edges, k=3, seed=9)
        assert a == b
        c = mpvx_spanner(30, edges, k=3, seed=10)
        # different seed may differ (sanity that the seed matters at all)
        assert isinstance(c, set)

    def test_fully_dynamic_spanner_stream(self):
        edges = gnm_random_graph(20, 70, seed=6)

        def run():
            sp = FullyDynamicSpanner(20, edges, k=2, seed=3,
                                     base_capacity=4)
            trace = [tuple(sorted(sp.spanner_edges()))]
            for i in range(0, 60, 12):
                sp.update(deletions=edges[i : i + 12])
                trace.append(tuple(sorted(sp.spanner_edges())))
            return trace

        assert run() == run()

    def test_sparse_and_ultra(self):
        edges = gnm_random_graph(24, 90, seed=7)
        a = SparseSpannerDynamic(24, edges, rates=[2.0], seed=4,
                                 base_capacity=8).spanner_edges()
        b = SparseSpannerDynamic(24, edges, rates=[2.0], seed=4,
                                 base_capacity=8).spanner_edges()
        assert a == b
        u1 = UltraSparseSpannerDynamic(24, edges, x=2.0, seed=4,
                                       inner_rates=[2.0], k_final=2,
                                       base_capacity=8).spanner_edges()
        u2 = UltraSparseSpannerDynamic(24, edges, x=2.0, seed=4,
                                       inner_rates=[2.0], k_final=2,
                                       base_capacity=8).spanner_edges()
        assert u1 == u2

    def test_sparsifier(self):
        edges = gnm_random_graph(16, 60, seed=8)
        a = FullyDynamicSpectralSparsifier(
            16, edges, t=2, seed=5, instances=3, base_capacity=4
        ).weighted_edges()
        b = FullyDynamicSpectralSparsifier(
            16, edges, t=2, seed=5, instances=3, base_capacity=4
        ).weighted_edges()
        assert a == b

"""Tests for the decremental sparsifier chain (Lemma 6.6) and the
fully-dynamic spectral sparsifier (Theorem 1.6)."""

import random

import numpy as np
import pytest

from repro.graph import DynamicGraph, gnm_random_graph, barbell_graph
from repro.sparsifier import (
    DecrementalSpectralSparsifier,
    FullyDynamicSpectralSparsifier,
    paper_bundle_size,
)
from repro.verify import max_cut_error, pencil_eigenvalue_range


def unit(edges):
    return {tuple(e): 1.0 for e in edges}


class TestPaperBundleSize:
    def test_grows_with_inverse_epsilon(self):
        assert paper_bundle_size(100, 1000, 0.1) > paper_bundle_size(
            100, 1000, 0.5
        )
        assert paper_bundle_size(100, 1000, 0.5) >= 1


class TestDecrementalChain:
    def test_huge_t_reproduces_graph_exactly(self):
        """With t >= m the first bundle absorbs the whole graph, so the
        sparsifier is G itself at weight 1 (ratio exactly 1)."""
        n, m = 14, 40
        edges = gnm_random_graph(n, m, seed=1)
        sp = DecrementalSpectralSparsifier(n, edges, t=m, seed=1, instances=6)
        w = sp.weighted_edges()
        assert set(w) == set(edges)
        assert all(v == 1.0 for v in w.values())
        lo, hi = pencil_eigenvalue_range(n, unit(edges), w)
        assert lo == pytest.approx(1.0) and hi == pytest.approx(1.0)

    def test_structure_and_invariants(self):
        n, m = 20, 120
        edges = gnm_random_graph(n, m, seed=2)
        sp = DecrementalSpectralSparsifier(n, edges, t=2, seed=2, instances=4)
        sp.check_invariants()
        assert sp.k >= 1
        w = sp.weighted_edges()
        assert set(w) <= set(edges)
        # weights are powers of four
        assert all(
            abs(v - 4 ** round(np.log(v) / np.log(4))) < 1e-9
            for v in w.values()
        )

    def test_connectivity_preserved(self):
        """Bundle level 1 contains a spanner, so the sparsifier can never
        disconnect the graph."""
        import math

        n, m = 18, 70
        edges = gnm_random_graph(n, m, seed=3)
        sp = DecrementalSpectralSparsifier(n, edges, t=2, seed=3, instances=5)
        lo, hi = pencil_eigenvalue_range(
            n, unit(edges), sp.weighted_edges()
        )
        assert lo > 0 and math.isfinite(hi)

    @pytest.mark.parametrize("seed", range(3))
    def test_deletion_stream_consistency(self, seed):
        rng = random.Random(seed)
        n, m = 16, 60
        edges = gnm_random_graph(n, m, seed=seed + 5)
        sp = DecrementalSpectralSparsifier(
            n, edges, t=2, seed=seed, instances=4
        )
        tracked = sp.output_edges()
        alive = list(edges)
        rng.shuffle(alive)
        while alive:
            b = min(len(alive), rng.choice([1, 4, 9]))
            batch, alive = alive[:b], alive[b:]
            ins, dels = sp.batch_delete(batch)
            assert not (ins & dels)
            tracked = (tracked - dels) | ins
            assert tracked == sp.output_edges()
            assert tracked <= set(alive)
            sp.check_invariants()
        assert tracked == set()

    def test_quality_improves_with_t(self):
        """Bench E7's shape in miniature: larger bundles -> tighter
        eigenvalue range."""
        n, m = 16, 90
        edges = gnm_random_graph(n, m, seed=7)
        spreads = []
        for t in (1, 4, 16):
            sp = DecrementalSpectralSparsifier(
                n, edges, t=t, seed=7, instances=5
            )
            lo, hi = pencil_eigenvalue_range(
                n, unit(edges), sp.weighted_edges()
            )
            spreads.append(hi / lo)
        assert spreads[-1] <= spreads[0] + 1e-9
        assert spreads[-1] == pytest.approx(1.0, abs=1e-6)  # t=16: all bundled

    def test_delete_missing_raises(self):
        sp = DecrementalSpectralSparsifier(4, [(0, 1)], t=1, seed=1,
                                           instances=2)
        with pytest.raises(KeyError):
            sp.batch_delete([(1, 2)])


class TestFullyDynamic:
    def test_insert_then_delete_consistency(self):
        n = 14
        sp = FullyDynamicSpectralSparsifier(
            n, t=2, seed=1, instances=4, base_capacity=4
        )
        edges = gnm_random_graph(n, 40, seed=1)
        sp.insert_batch(edges)
        assert sp.m == 40
        sp.check_invariants()
        sp.delete_batch(edges[:20])
        assert sp.m == 20
        sp.check_invariants()
        assert sp.output_edges() <= set(edges[20:])

    @pytest.mark.parametrize("seed", range(3))
    def test_mixed_stream(self, seed):
        rng = random.Random(seed)
        n = 12
        universe = [(u, v) for u in range(n) for v in range(u + 1, n)]
        g = DynamicGraph(n)
        sp = FullyDynamicSpectralSparsifier(
            n, t=2, seed=seed, instances=3, base_capacity=4
        )
        tracked: set = set()
        for _ in range(15):
            absent = [e for e in universe if e not in g]
            ins = rng.sample(absent, min(len(absent), rng.randrange(0, 6)))
            present = sorted(g.edges())
            dels = rng.sample(present, min(len(present), rng.randrange(0, 4)))
            d_ins, d_dels = sp.update(insertions=ins, deletions=dels)
            g.insert_batch(ins)
            g.delete_batch(dels)
            tracked = (tracked - d_dels) | d_ins
            assert tracked == sp.output_edges()
            assert tracked <= g.edge_set()
            sp.check_invariants()

    def test_weighted_union_quality(self):
        """Lemma 6.7: the per-partition weighted union approximates the
        whole graph; with large t it is exact."""
        n = 12
        edges = gnm_random_graph(n, 40, seed=9)
        sp = FullyDynamicSpectralSparsifier(
            n, t=100, seed=9, instances=4, base_capacity=4
        )
        sp.insert_batch(edges)
        w = sp.weighted_edges()
        assert set(w) == set(edges)
        lo, hi = pencil_eigenvalue_range(n, unit(edges), w)
        assert lo == pytest.approx(1.0) and hi == pytest.approx(1.0)

    def test_cut_quality_on_barbell(self):
        """The bridge cut of a barbell must be preserved exactly — bundles
        always claim bridges (a spanner must keep every bridge)."""
        edges = barbell_graph(5, 3)
        n = 13
        sp = FullyDynamicSpectralSparsifier(
            n, t=2, seed=4, instances=4, base_capacity=64
        )
        sp.insert_batch(edges)
        w = sp.weighted_edges()
        err = max_cut_error(n, unit(edges), w, [set(range(5))])
        assert err == pytest.approx(0.0)

"""Tests for the decremental (2k−1)-spanner (Lemma 3.3)."""

import random

import pytest

from repro.graph import gnm_random_graph, ring_of_cliques
from repro.spanner.decremental import DecrementalSpanner
from repro.verify.stretch import is_spanner, spanner_stretch


class TestInitial:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_initial_spanner_valid(self, k):
        n, m = 40, 150
        edges = gnm_random_graph(n, m, seed=k)
        sp = DecrementalSpanner(n, edges, k=k, seed=7)
        assert is_spanner(n, edges, sp.spanner_edges(), 2 * k - 1)
        sp.check_invariants()

    def test_k1_keeps_every_edge(self):
        # stretch 1 forces H = G
        n, m = 20, 60
        edges = gnm_random_graph(n, m, seed=2)
        sp = DecrementalSpanner(n, edges, k=1, seed=3)
        assert sp.spanner_edges() == set(edges)

    def test_spanner_subset_of_graph(self):
        n, m = 30, 90
        edges = gnm_random_graph(n, m, seed=5)
        sp = DecrementalSpanner(n, edges, k=3, seed=11)
        assert sp.spanner_edges() <= set(edges)

    def test_empty_graph(self):
        sp = DecrementalSpanner(5, [], k=2, seed=1)
        assert sp.spanner_edges() == set()
        sp.check_invariants()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            DecrementalSpanner(3, [], k=0)

    def test_ring_of_cliques_size_shrinks(self):
        edges = ring_of_cliques(6, 6)
        n = 36
        sp = DecrementalSpanner(n, edges, k=2, seed=1)
        # dense cliques must lose most intra-clique edges
        assert sp.spanner_size() < len(edges)


class TestDeletions:
    @pytest.mark.parametrize("seed", range(6))
    def test_spanner_valid_after_every_batch(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(10, 26)
        m = rng.randrange(n, 3 * n)
        k = rng.choice([2, 3, 4])
        edges = gnm_random_graph(n, m, seed=seed + 100)
        sp = DecrementalSpanner(n, edges, k=k, seed=seed)
        spanner = sp.spanner_edges()
        alive = list(edges)
        rng.shuffle(alive)
        while alive:
            b = min(len(alive), rng.choice([1, 2, 5]))
            batch, alive = alive[:b], alive[b:]
            ins, dels = sp.batch_delete(batch)
            assert not (ins & dels)
            spanner = (spanner - dels) | ins
            assert spanner == sp.spanner_edges(), "delta stream inconsistent"
            assert spanner <= set(alive)
            assert is_spanner(n, alive, spanner, 2 * k - 1), (
                f"seed={seed} alive={alive}"
            )
            sp.check_invariants()

    def test_delete_missing_edge_raises(self):
        sp = DecrementalSpanner(3, [(0, 1)], k=2, seed=1)
        with pytest.raises(KeyError):
            sp.batch_delete([(1, 2)])

    def test_full_deletion_empties_spanner(self):
        n, m = 15, 40
        edges = gnm_random_graph(n, m, seed=8)
        sp = DecrementalSpanner(n, edges, k=3, seed=8)
        sp.batch_delete(edges)
        assert sp.spanner_edges() == set()
        sp.check_invariants()

    def test_recourse_is_bounded(self):
        """Total |ins| + |dels| across a full deletion stream should be
        O(m k log n), far below the trivial O(m^2)."""
        rng = random.Random(3)
        n, m, k = 40, 160, 3
        edges = gnm_random_graph(n, m, seed=3)
        sp = DecrementalSpanner(n, edges, k=k, seed=3)
        total = sp.spanner_size()
        alive = list(edges)
        rng.shuffle(alive)
        while alive:
            batch, alive = alive[:8], alive[8:]
            ins, dels = sp.batch_delete(batch)
            total += len(ins) + len(dels)
        import math

        bound = 20 * m * k * math.log2(n)
        assert total <= bound


class TestStretchQuality:
    def test_stretch_stays_within_guarantee_mid_stream(self):
        rng = random.Random(17)
        n, m, k = 30, 120, 2
        edges = gnm_random_graph(n, m, seed=17)
        sp = DecrementalSpanner(n, edges, k=k, seed=17)
        alive = list(edges)
        rng.shuffle(alive)
        for _ in range(10):
            batch, alive = alive[:6], alive[6:]
            sp.batch_delete(batch)
            s = spanner_stretch(n, alive, sp.spanner_edges())
            assert s <= 2 * k - 1

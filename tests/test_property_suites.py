"""Cross-module hypothesis property suites.

Each property here is one the paper's correctness argument leans on;
hypothesis searches for counterexamples over graph structure, randomness
seeds, and batch schedules simultaneously.
"""

import math
import random

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.bundle import MonotoneDecrementalSpanner
from repro.graph import gnm_random_graph, norm_edge
from repro.sparsifier import DecrementalSpectralSparsifier
from repro.spanner import (
    baswana_sen_spanner,
    low_diameter_decomposition,
    mpvx_spanner,
    static_clusters,
)
from repro.ultrasparse import compute_all_heads, threshold
from repro.verify import (
    is_spanner,
    laplacian,
    pencil_eigenvalue_range,
    quadratic_form,
    spanner_stretch,
)


def graph_strategy(max_n=14, max_m=40):
    @st.composite
    def build(draw):
        n = draw(st.integers(2, max_n))
        cap = min(n * (n - 1) // 2, max_m)
        m = draw(st.integers(0, cap))
        seed = draw(st.integers(0, 10**6))
        return n, gnm_random_graph(n, m, seed=seed)

    return build()


class TestClusteringProperties:
    @settings(max_examples=60, deadline=None)
    @given(graph_strategy(), st.integers(0, 10**6))
    def test_static_clusters_partition_and_self_centers(self, g, seed):
        n, edges = g
        rng = np.random.default_rng(seed)
        deltas = rng.exponential(scale=0.7, size=n)
        cluster, parent, dist = static_clusters(n, edges, deltas)
        # every vertex clustered; centers are their own cluster
        assert all(0 <= c < n for c in cluster)
        for v in range(n):
            assert cluster[cluster[v]] == cluster[v]
            if parent[v] is None:
                assert cluster[v] == v
            else:
                assert cluster[parent[v]] == cluster[v]
                assert dist[parent[v]] == dist[v] - 1

    @settings(max_examples=40, deadline=None)
    @given(graph_strategy(), st.integers(0, 10**6))
    def test_ldd_forest_is_acyclic_and_intra_cluster(self, g, seed):
        n, edges = g
        ldd = low_diameter_decomposition(n, edges, beta=0.5, seed=seed)
        import networkx as nx

        f = nx.Graph(ldd.forest_edges())
        f.add_nodes_from(range(n))
        assert nx.is_forest(f)
        assert ldd.forest_edges() | ldd.cut_edges(edges) <= {
            norm_edge(u, v) for u, v in edges
        } | ldd.forest_edges()


class TestStaticSpannerProperties:
    @settings(max_examples=30, deadline=None)
    @given(graph_strategy(), st.integers(1, 4), st.integers(0, 10**6))
    def test_both_static_algorithms_valid(self, g, k, seed):
        n, edges = g
        for h in (
            baswana_sen_spanner(n, edges, k=k, seed=seed),
            mpvx_spanner(n, edges, k=k, seed=seed),
        ):
            assert h <= set(edges)
            assert is_spanner(n, edges, h, 2 * k - 1)

    @settings(max_examples=30, deadline=None)
    @given(graph_strategy(), st.integers(0, 10**6))
    def test_spanner_preserves_connectivity_exactly(self, g, seed):
        n, edges = g
        h = mpvx_spanner(n, edges, k=3, seed=seed)
        import networkx as nx

        gg = nx.Graph(edges)
        gg.add_nodes_from(range(n))
        hh = nx.Graph(h)
        hh.add_nodes_from(range(n))
        assert {frozenset(c) for c in nx.connected_components(gg)} == {
            frozenset(c) for c in nx.connected_components(hh)
        }


class TestUltraHeadProperties:
    @settings(max_examples=50, deadline=None)
    @given(graph_strategy(), st.integers(0, 10**6))
    def test_head_fixpoint_and_sampled_selfheads(self, g, seed):
        n, edges = g
        rng = np.random.default_rng(seed)
        x = 2.0
        unmark = (rng.random(n) >= 1.0 / x).astype(int).tolist()
        rand = rng.random(n).tolist()
        adj = [set() for _ in range(n)]
        for u, v in edges:
            adj[u].add(v)
            adj[v].add(u)
        infos = compute_all_heads(n, adj, unmark, rand, x)
        t = threshold(x)
        for v, info in enumerate(infos):
            if unmark[v] == 0:
                assert info.head == v  # sampled vertices head themselves
            if info.head not in (-1, v):
                h = info.head
                # heads are fixpoints: head(head(v)) == head(v)
                assert infos[h].head == h
                # and the head is sampled or an unclustered heavy vertex
                assert unmark[h] == 0 or len(adj[h]) >= t
            if info.par is not None:
                assert info.par in adj[v]  # parent is a real neighbor


class TestMonotonicityProperty:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**5))
    def test_spanner_only_shrinks_or_swaps_bounded(self, seed):
        """Lemma 6.4 monotonicity: the total number of edges EVER in the
        maintained spanner over a full deletion run is bounded by the
        per-vertex churn budget, not by m."""
        rng = random.Random(seed)
        n, m = 16, 60
        edges = gnm_random_graph(n, m, seed=seed)
        sp = MonotoneDecrementalSpanner(n, edges, seed=seed, instances=3)
        ever = set(sp.output_edges())
        alive = list(edges)
        rng.shuffle(alive)
        while alive:
            batch, alive = alive[:7], alive[7:]
            ins, _ = sp.batch_delete(batch)
            ever |= ins
        cap = 3 * 2 * (sp.cap + 1) * n * math.log2(max(n, 2))
        assert len(ever) <= cap


class TestSpectralProperties:
    @settings(max_examples=25, deadline=None)
    @given(graph_strategy(max_n=10, max_m=25), st.integers(0, 10**6))
    def test_pencil_range_bounds_random_quadratic_forms(self, g, seed):
        n, edges = g
        assume(edges)
        rng = np.random.default_rng(seed)
        h = {e: float(w) for e, w in zip(edges, rng.uniform(0.5, 2.0, len(edges)))}
        g_w = {e: 1.0 for e in edges}
        lo, hi = pencil_eigenvalue_range(n, g_w, h)
        Lg, Lh = laplacian(n, g_w), laplacian(n, h)
        for _ in range(5):
            x = rng.normal(size=n)
            qg, qh = quadratic_form(Lg, x), quadratic_form(Lh, x)
            if qh > 1e-9:
                ratio = qg / qh
                assert lo - 1e-6 <= ratio <= hi + 1e-6

    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 10**5))
    def test_chain_weights_partition_the_kept_edges(self, seed):
        n, m = 14, 45
        edges = gnm_random_graph(n, m, seed=seed)
        sp = DecrementalSpectralSparsifier(n, edges, t=2, seed=seed,
                                           instances=3)
        w = sp.weighted_edges()
        # each kept edge appears in exactly one level (weights consistent)
        for e, weight in w.items():
            assert sp.weight_of(e) == weight
        sp.check_invariants()


class TestStretchOracleProperties:
    @settings(max_examples=30, deadline=None)
    @given(graph_strategy(max_n=12, max_m=30))
    def test_subgraph_stretch_at_least_one(self, g):
        n, edges = g
        assume(edges)
        # any spanning subgraph has stretch >= 1; the full graph exactly 1
        assert spanner_stretch(n, edges, edges) == 1.0

    @settings(max_examples=30, deadline=None)
    @given(graph_strategy(max_n=12, max_m=30), st.integers(0, 10**6))
    def test_stretch_monotone_in_subgraph(self, g, seed):
        n, edges = g
        assume(len(edges) >= 2)
        rng = random.Random(seed)
        sub = rng.sample(edges, len(edges) // 2)
        s_small = spanner_stretch(n, edges, sub)
        s_big = spanner_stretch(n, edges, edges)
        assert s_small >= s_big

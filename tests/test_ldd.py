"""Tests for the low-diameter decomposition API ([MPX13], Lemma 6.5)."""

import math

import numpy as np
import pytest

from repro.graph import gnm_random_graph, grid_graph, norm_edge
from repro.spanner.ldd import low_diameter_decomposition


class TestBasics:
    def test_clusters_partition_vertices(self):
        n, m = 50, 200
        edges = gnm_random_graph(n, m, seed=1)
        ldd = low_diameter_decomposition(n, edges, beta=0.3, seed=1)
        members = [v for vs in ldd.clusters().values() for v in vs]
        assert sorted(members) == list(range(n))
        # every center is in its own cluster
        for c, vs in ldd.clusters().items():
            assert c in vs
            assert ldd.cluster[c] == c

    def test_forest_edges_are_graph_edges(self):
        n, m = 40, 150
        edges = gnm_random_graph(n, m, seed=2)
        ldd = low_diameter_decomposition(n, edges, beta=0.4, seed=2)
        assert ldd.forest_edges() <= {norm_edge(u, v) for u, v in edges}

    def test_forest_spans_clusters_intra(self):
        n, m = 40, 150
        edges = gnm_random_graph(n, m, seed=3)
        ldd = low_diameter_decomposition(n, edges, beta=0.4, seed=3)
        for v in range(n):
            p = ldd.parent[v]
            if p is not None:
                assert ldd.cluster[p] == ldd.cluster[v]

    def test_radius_within_cap(self):
        n, m = 60, 240
        edges = gnm_random_graph(n, m, seed=4)
        ldd = low_diameter_decomposition(n, edges, beta=0.5, seed=4)
        assert ldd.max_cluster_radius() <= ldd.radius_bound() + 1

    def test_cut_edges_complement_same_cluster(self):
        n, m = 30, 90
        edges = gnm_random_graph(n, m, seed=5)
        ldd = low_diameter_decomposition(n, edges, beta=0.3, seed=5)
        cut = ldd.cut_edges(edges)
        for u, v in edges:
            assert (norm_edge(u, v) in cut) == (
                ldd.cluster[u] != ldd.cluster[v]
            )

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            low_diameter_decomposition(4, [], beta=0.0)

    def test_isolated_vertices_singletons(self):
        ldd = low_diameter_decomposition(3, [], beta=0.5, seed=6)
        assert ldd.cluster == [0, 1, 2]


class TestLemma65:
    def test_cut_probability_scales_with_beta(self):
        """Lemma 6.5: Pr[edge cut] = O(beta).  Average over seeds on a
        grid (where locality makes the effect visible)."""
        edges = grid_graph(12, 12)
        n = 144
        rates = {}
        for beta in (0.1, 0.4):
            cuts = []
            for s in range(15):
                ldd = low_diameter_decomposition(
                    n, edges, beta=beta, seed=s
                )
                cuts.append(len(ldd.cut_edges(edges)) / len(edges))
            rates[beta] = sum(cuts) / len(cuts)
        assert rates[0.1] < rates[0.4]
        # O(beta) with a small constant
        assert rates[0.1] <= 4 * 0.1
        assert rates[0.4] <= 4 * 0.4

    def test_small_beta_gives_big_clusters(self):
        edges = grid_graph(10, 10)
        ldd_small = low_diameter_decomposition(100, edges, beta=0.05, seed=7)
        ldd_big = low_diameter_decomposition(100, edges, beta=1.5, seed=7)
        assert len(ldd_small.clusters()) < len(ldd_big.clusters())

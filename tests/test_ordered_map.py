"""Tests for the treap-backed OrderedMap ([PP01] stand-in)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures import OrderedMap


class TestBasics:
    def test_insert_and_contains(self):
        om = OrderedMap(seed=1)
        om.insert(3, "c")
        om.insert(1, "a")
        assert 3 in om and 1 in om and 2 not in om
        assert len(om) == 2

    def test_duplicate_key_rejected(self):
        om = OrderedMap(seed=1)
        om.insert(1, "a")
        with pytest.raises(ValueError):
            om.insert(1, "b")

    def test_delete_returns_value(self):
        om = OrderedMap([(i, i * 10) for i in range(8)], seed=1)
        assert om.delete(3) == 30
        assert 3 not in om
        with pytest.raises(KeyError):
            om.delete(3)

    def test_delete_missing_between_keys(self):
        om = OrderedMap([(0, "a"), (10, "b")], seed=1)
        with pytest.raises(KeyError):
            om.delete(5)
        assert len(om) == 2 and 0 in om and 10 in om

    def test_get(self):
        om = OrderedMap([(1, "a")], seed=1)
        assert om.get(1) == "a"
        assert om.get(2, "dflt") == "dflt"

    def test_min_item(self):
        om = OrderedMap([(5, "e"), (2, "b"), (9, "i")], seed=1)
        assert om.min_item() == (2, "b")
        om.delete(2)
        assert om.min_item() == (5, "e")

    def test_min_of_empty_raises(self):
        with pytest.raises(KeyError):
            OrderedMap(seed=1).min_item()

    def test_tuple_keys_order_lexicographically(self):
        om = OrderedMap(seed=1)
        om.insert((1, 0.5, 7), "x")
        om.insert((0, 0.9, 3), "y")
        om.insert((0, 0.1, 5), "z")
        assert om.min_item() == ((0, 0.1, 5), "z")

    def test_kth_and_rank(self):
        keys = [4, 1, 7, 3, 9]
        om = OrderedMap([(k, str(k)) for k in keys], seed=1)
        for i, k in enumerate(sorted(keys), start=1):
            assert om.kth(i) == (k, str(k))
            assert om.rank(k) == i - 1
        assert om.rank(5) == 3  # strictly smaller: 1,3,4
        with pytest.raises(IndexError):
            om.kth(0)
        with pytest.raises(IndexError):
            om.kth(6)

    def test_items_in_order(self):
        om = OrderedMap([(k, None) for k in (5, 1, 3)], seed=1)
        assert [k for k, _ in om.items()] == [1, 3, 5]

    def test_batch_insert_delete(self):
        om = OrderedMap(seed=1)
        om.batch_insert([(i, i) for i in range(10)])
        assert len(om) == 10
        vals = om.batch_delete([2, 4, 6])
        assert vals == [2, 4, 6]
        assert len(om) == 7
        with pytest.raises(KeyError):
            om.batch_delete([99])


@settings(max_examples=120, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from("idg"), st.integers(0, 50)), max_size=80
    )
)
def test_model_based_against_dict(operations):
    om = OrderedMap(seed=7)
    model: dict[int, int] = {}
    for op, key in operations:
        if op == "i" and key not in model:
            model[key] = key * 2
            om.insert(key, key * 2)
        elif op == "d" and key in model:
            assert om.delete(key) == model.pop(key)
        elif op == "g":
            assert om.get(key, -1) == model.get(key, -1)
        assert len(om) == len(model)
        assert list(om.items()) == sorted(model.items())
        if model:
            assert om.min_item() == min(model.items())

"""Tests for the ``python -m repro.cli`` driver."""

import pytest

from repro.cli import build_parser, main


BASE = ["--n", "40", "--m", "120", "--batch-size", "20", "--batches", "3",
        "--seed", "1"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["spanner"])
        assert args.n == 200 and args.k == 2 and args.workload == "mixed"

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["spanner", "--workload", "bogus"])


class TestCommands:
    @pytest.mark.parametrize(
        "argv",
        [
            ["spanner", "--k", "2", "--workload", "mixed"],
            ["spanner", "--k", "3", "--workload", "delete",
             "--base-capacity", "8"],
            ["sparse", "--workload", "churn", "--base-capacity", "8"],
            ["ultra", "--x", "2", "--workload", "mixed"],
            ["bundle", "--t", "2", "--workload", "delete"],
            ["sparsifier", "--t", "2", "--workload", "mixed"],
            ["estree", "--limit", "4", "--workload", "delete"],
        ],
    )
    def test_command_runs_and_prints_table(self, argv, capsys):
        assert main(argv + BASE) == 0
        out = capsys.readouterr().out
        assert "repro run:" in out
        assert "Brent runtimes" in out
        assert "work/upd" in out

    def test_bundle_forces_delete_workload(self, capsys):
        assert main(["bundle", "--workload", "mixed"] + BASE) == 0
        err = capsys.readouterr().err
        assert "forcing --workload delete" in err

    def test_insert_workload(self, capsys):
        assert main(["spanner", "--workload", "insert"] + BASE) == 0
        out = capsys.readouterr().out
        assert "updates" in out

    def test_sliding_workload(self, capsys):
        assert main(["sparse", "--workload", "sliding",
                     "--base-capacity", "8"] + BASE) == 0
        assert "repro run:" in capsys.readouterr().out


class TestProfileFlag:
    def test_profile_prints_report(self, capsys):
        assert main(["spanner", "--profile"] + BASE) == 0
        out = capsys.readouterr().out
        assert "function calls" in out
        assert "repro run:" in out


class TestInputFile:
    def test_edge_list_input(self, tmp_path, capsys):
        from repro.graph import gnm_random_graph, write_edge_list

        p = tmp_path / "g.txt"
        write_edge_list(p, gnm_random_graph(20, 60, seed=2))
        assert main(["spanner", "--input", str(p), "--workload", "delete",
                     "--batch-size", "20", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "updates" in out and "60" in out

    def test_input_forces_delete(self, tmp_path, capsys):
        from repro.graph import write_edge_list

        p = tmp_path / "g.txt"
        write_edge_list(p, [(0, 1), (1, 2)])
        assert main(["spanner", "--input", str(p), "--workload", "mixed",
                     "--batch-size", "2"]) == 0
        assert "forcing" in capsys.readouterr().err

"""Tests for the ``python -m repro.cli`` driver."""

import pytest

from repro.cli import build_parser, main


BASE = ["--n", "40", "--m", "120", "--batch-size", "20", "--batches", "3",
        "--seed", "1"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["spanner"])
        assert args.n == 200 and args.k == 2 and args.workload == "mixed"

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["spanner", "--workload", "bogus"])


class TestCommands:
    @pytest.mark.parametrize(
        "argv",
        [
            ["spanner", "--k", "2", "--workload", "mixed"],
            ["spanner", "--k", "3", "--workload", "delete",
             "--base-capacity", "8"],
            ["sparse", "--workload", "churn", "--base-capacity", "8"],
            ["ultra", "--x", "2", "--workload", "mixed"],
            ["bundle", "--t", "2", "--workload", "delete"],
            ["sparsifier", "--t", "2", "--workload", "mixed"],
            ["estree", "--limit", "4", "--workload", "delete"],
        ],
    )
    def test_command_runs_and_prints_table(self, argv, capsys):
        assert main(argv + BASE) == 0
        out = capsys.readouterr().out
        assert "repro run:" in out
        assert "Brent runtimes" in out
        assert "work/upd" in out

    def test_bundle_forces_delete_workload(self, capsys):
        assert main(["bundle", "--workload", "mixed"] + BASE) == 0
        err = capsys.readouterr().err
        assert "forcing --workload delete" in err

    def test_insert_workload(self, capsys):
        assert main(["spanner", "--workload", "insert"] + BASE) == 0
        out = capsys.readouterr().out
        assert "updates" in out

    def test_sliding_workload(self, capsys):
        assert main(["sparse", "--workload", "sliding",
                     "--base-capacity", "8"] + BASE) == 0
        assert "repro run:" in capsys.readouterr().out


class TestProfileFlag:
    def test_profile_prints_report(self, capsys):
        assert main(["spanner", "--profile"] + BASE) == 0
        out = capsys.readouterr().out
        assert "function calls" in out
        assert "repro run:" in out


class TestInputFile:
    def test_edge_list_input(self, tmp_path, capsys):
        from repro.graph import gnm_random_graph, write_edge_list

        p = tmp_path / "g.txt"
        write_edge_list(p, gnm_random_graph(20, 60, seed=2))
        assert main(["spanner", "--input", str(p), "--workload", "delete",
                     "--batch-size", "20", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "updates" in out and "60" in out

    def test_input_forces_delete(self, tmp_path, capsys):
        from repro.graph import write_edge_list

        p = tmp_path / "g.txt"
        write_edge_list(p, [(0, 1), (1, 2)])
        assert main(["spanner", "--input", str(p), "--workload", "mixed",
                     "--batch-size", "2"]) == 0
        assert "forcing" in capsys.readouterr().err


class TestVersionFlag:
    def test_version_prints_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")


class TestServeFamilyJson:
    """Satellite: --json on every serve-family subcommand."""

    def test_serve_workload_mode_json(self, capsys):
        import json

        rc = main([
            "serve", "--n", "48", "--m", "160", "--requests", "400",
            "--shards", "2", "--no-processes", "--seed", "1", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verified"] is True
        assert payload["served"] >= 400
        assert payload["interrupted"] is False

    def test_serve_listen_json_drains_on_sigterm(self, capsys):
        import json
        import os
        import re
        import signal
        import threading

        timer = threading.Timer(
            0.8, lambda: os.kill(os.getpid(), signal.SIGTERM))
        timer.start()
        try:
            rc = main([
                "serve", "--listen", "127.0.0.1:0", "--n", "32",
                "--m", "90", "--shards", "1", "--seed", "3",
                "--tenants", "alpha,beta", "--json",
            ])
        finally:
            timer.cancel()
        assert rc == 0
        out = capsys.readouterr().out
        assert re.search(r"NET-LISTEN 127\.0\.0\.1 \d+", out)
        payload = json.loads(out.strip().splitlines()[-1])
        assert payload["tenants"] == ["alpha", "beta"]
        assert payload["port"] > 0

    def test_replica_once_json(self, capsys):
        import json

        from repro.net import (
            NetServerConfig,
            TenantConfig,
            TenantManager,
            ThreadedServer,
        )

        spec = {"kind": "spanner", "n": 20, "k": 2,
                "edges": [(0, 1), (1, 2)], "seed": 9}
        with TenantManager() as tm:
            tm.create(TenantConfig(name="default", spec=spec,
                                   autostart=False))
            svc = tm.get("default").service
            for i in range(5):
                svc.submit_update("insert", 3 + i, 4 + i)
            svc.flush()
            with ThreadedServer(tm, NetServerConfig()) as srv:
                rc = main([
                    "replica", "--primary",
                    f"{srv.host}:{srv.port}", "--once", "--json",
                ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["records_applied"] == 1
        assert payload["last_applied_seq"] == 1
        assert payload["lag_commits"] == 0

    def test_bench_net_smoke_json(self, capsys):
        import json

        rc = main([
            "bench-net", "--replicas", "1", "--requests", "120",
            "--smoke", "--json", "--seed", "7",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verified"] is True
        assert payload["replicas"] == 1
        assert payload["reads"] + payload["writes"] > 0
        assert payload["read_throughput_rps"] > 0
        assert payload["converged"] is True

    def test_chaos_replica_smoke_json(self, capsys):
        import json

        rc = main([
            "chaos", "--replica", "--smoke", "--requests", "200",
            "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["divergences"] == 0


class TestNetParser:
    def test_serve_listen_flags(self):
        args = build_parser().parse_args(
            ["serve", "--listen", ":7421", "--tenants", "a,b",
             "--query-slots", "4", "--service-time-us", "500",
             "--max-inflight-queries", "16"])
        assert args.listen == ":7421"
        assert args.tenants == "a,b"
        assert args.query_slots == 4
        assert args.service_time_us == 500
        assert args.max_inflight_queries == 16

    def test_replica_requires_primary(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replica"])

    def test_bench_net_defaults(self):
        args = build_parser().parse_args(["bench-net"])
        assert args.replicas == 1
        assert args.read_fraction == 0.95
        assert args.mode == "inproc"
        assert not args.kill_replica

    def test_parse_hostport_forms(self):
        from repro.cli import _parse_hostport

        assert _parse_hostport("10.0.0.5:80") == ("10.0.0.5", 80)
        assert _parse_hostport(":7000") == ("127.0.0.1", 7000)
        assert _parse_hostport("7000") == ("127.0.0.1", 7000)

"""Array-substrate equivalence and edge-case regression suite.

The tentpole contract: :class:`~repro.graph.array_graph.ArrayDynamicGraph`
is a drop-in for :class:`~repro.graph.dynamic_graph.DynamicGraph` — same
edge/degree/neighbor views, same ``norm_edge`` semantics and error
contracts — and the batched query layer charges byte-identical cost-model
totals on both substrates.  Hypothesis drives random interleaved
insert/delete/compact sequences against the dict-backed reference.

Also the PR's edge-case bugfix sweep:

* ``gnm_random_graph`` / ``random_connected_graph`` terminate at every
  legal density (round-bounded rejection sampling with a rejection-free
  completion fallback) and raise a descriptive ``ValueError`` past the
  ``C(n, 2)`` ceiling;
* the empty-batch contract (no sources / no items → empty result, zero
  charges) is uniform across ``multi_source_bfs``, ``answer_queries``,
  and ``bfs_distances_bounded``;
* self-loops are rejected with ``ValueError`` at every entry point —
  both substrates directly, the service engine, and the wire protocol;
* the ES-tree bucket scans produce identical answers *and* identical
  charges whether run inline, on a sequential backend, or shipped to a
  process pool.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    ArrayDynamicGraph,
    DynamicGraph,
    complete_graph,
    gnm_random_graph,
    make_graph,
    norm_edge,
    random_connected_graph,
)
from repro.pram.cost import CostModel
from repro.queries.batch import answer_queries, multi_source_bfs


def _ref_views(g: DynamicGraph):
    return (
        set(g.edges()),
        [g.degree(v) for v in range(len(g._adj))],
        [set(g.neighbors(v)) for v in range(len(g._adj))],
    )


def _arr_views(g: ArrayDynamicGraph):
    return (
        set(g.edges()),
        [g.degree(v) for v in range(len(g))],
        [set(g.neighbors(v)) for v in range(len(g))],
    )


# -- hypothesis equivalence ---------------------------------------------------


@st.composite
def _script(draw):
    """(n, initial edges, interleaved ops) over a small vertex universe."""
    n = draw(st.integers(2, 12))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    initial = draw(st.lists(st.sampled_from(pairs), unique=True,
                            max_size=len(pairs)))
    ops = draw(st.lists(
        st.tuples(st.sampled_from(["insert", "delete", "compact"]),
                  st.lists(st.sampled_from(pairs), unique=True,
                           max_size=6)),
        max_size=8,
    ))
    return n, initial, ops


class TestEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(_script())
    def test_interleaved_ops_match_dict_substrate(self, script):
        n, initial, ops = script
        ref = DynamicGraph(n, initial)
        arr = ArrayDynamicGraph(n, initial)
        for kind, edges in ops:
            if kind == "compact":
                arr.compact()
                continue
            present = {norm_edge(u, v) for u, v in edges} & set(ref.edges())
            batch = (
                sorted({norm_edge(u, v) for u, v in edges} - present)
                if kind == "insert" else sorted(present)
            )
            if kind == "insert":
                ref.insert_batch(batch)
                arr.insert_batch(batch)
            else:
                ref.delete_batch(batch)
                arr.delete_batch(batch)
            assert _ref_views(ref) == _arr_views(arr)
        assert _ref_views(ref) == _arr_views(arr)

    @settings(max_examples=40, deadline=None)
    @given(_script(), st.integers(0, 2**31))
    def test_answer_queries_charges_identical(self, script, qseed):
        import numpy as np

        n, initial, _ = script
        edge_set = {norm_edge(u, v) for u, v in initial}
        dict_adj: dict[int, set[int]] = {}
        for a, b in edge_set:
            dict_adj.setdefault(a, set()).add(b)
            dict_adj.setdefault(b, set()).add(a)
        arr = ArrayDynamicGraph(n, edge_set)
        rng = np.random.default_rng(qseed)
        items = [("size", None)]
        for _ in range(int(rng.integers(1, 8))):
            kind = ("distance", "connected", "contains")[
                int(rng.integers(0, 3))
            ]
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            items.append((kind, (u, v)))
        results = {}
        for name, adj in (("dict", dict_adj), ("array", arr)):
            cm = CostModel()
            answers, stats = answer_queries(
                items, edge_set=edge_set, adjacency=adj, n=n, cost=cm,
            )
            results[name] = (answers, stats.work, stats.depth)
        assert results["dict"] == results["array"]

    def test_error_contracts_match(self):
        for make in (DynamicGraph, ArrayDynamicGraph):
            g = make(4, [(0, 1)])
            with pytest.raises(ValueError, match="duplicate"):
                g.insert_batch([(1, 2), (2, 1)])
            with pytest.raises(ValueError, match="duplicate"):
                g.insert_batch([(0, 1)])
            with pytest.raises(KeyError):
                g.delete_batch([(2, 3)])
            with pytest.raises(ValueError):
                g.insert_batch([(0, 9)])
            # failed batches left the graph untouched
            assert set(g.edges()) == {(0, 1)}

    def test_make_graph_selects_substrate(self):
        assert isinstance(make_graph(4, [(0, 1)]), ArrayDynamicGraph)
        assert isinstance(
            make_graph(4, [(0, 1)], substrate="dict"), DynamicGraph
        )
        with pytest.raises(ValueError, match="substrate"):
            make_graph(4, [], substrate="csr")


# -- generator termination at the density boundary ---------------------------


class TestGnmBoundary:
    def test_m_above_ceiling_raises(self):
        with pytest.raises(ValueError, match="exceeds max"):
            gnm_random_graph(5, 11, seed=0)

    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_exact_count_at_and_near_ceiling(self, n):
        max_m = n * (n - 1) // 2
        for m in {max_m, max_m - 1, max_m // 2, max_m // 2 + 1} - {-1}:
            if m < 0:
                continue
            edges = gnm_random_graph(n, m, seed=7)
            assert len(edges) == m
            assert len(set(edges)) == m
            assert all(u < v for u, v in edges)

    def test_rejection_free_fallback_completes(self, monkeypatch):
        import repro.graph.generators as gen

        # force the fallback on the first round: the complement sampler
        # must top the set up to exactly m simple edges on its own
        monkeypatch.setattr(gen, "_MAX_REJECTION_ROUNDS", 0)
        for n, m in ((8, 14), (12, 20), (5, 5)):
            edges = gen.gnm_random_graph(n, m, seed=3)
            assert len(edges) == m == len(set(edges))
            assert all(0 <= u < v < n for u, v in edges)

    def test_stream_stable_away_from_boundary(self):
        # bounding the rounds must not perturb the sampled graph for
        # ordinary densities (the fallback only engages at the cap)
        assert gnm_random_graph(64, 128, seed=11) == \
            gnm_random_graph(64, 128, seed=11)

    def test_random_connected_graph_at_ceiling(self):
        n = 7
        max_m = n * (n - 1) // 2
        edges = random_connected_graph(n, max_m, seed=2)
        assert sorted(edges) == complete_graph(n)
        with pytest.raises(ValueError, match="exceeds max"):
            random_connected_graph(n, max_m + 1, seed=2)


# -- empty-batch contract -----------------------------------------------------


class TestEmptyBatchContract:
    @pytest.mark.parametrize("substrate", ["dict", "array"])
    def test_multi_source_bfs_no_sources(self, substrate):
        adj = make_graph(6, [(0, 1), (1, 2)], substrate=substrate)
        if substrate == "dict":
            adj = {v: set(adj.neighbors(v)) for v in range(6)}
        cm = CostModel()
        with cm.frame() as fr:
            out = multi_source_bfs(adj, [], n=6, cost=cm)
        assert out == {}
        assert (fr.work, fr.depth) == (0, 0)

    def test_answer_queries_empty_batch(self):
        cm = CostModel()
        answers, stats = answer_queries(
            [], edge_set={(0, 1)}, adjacency={0: {1}, 1: {0}}, n=2,
            cost=cm,
        )
        assert answers == []
        assert (stats.work, stats.depth) == (0, 0)

    def test_charge_hash_op_zero_is_noop(self):
        cm = CostModel()
        cm.charge_hash_op(0)
        cm.charge_hash_op(-3)
        assert (cm.work, cm.depth) == (0, 0)
        cm.charge_hash_op(2)
        assert (cm.work, cm.depth) == (2, 1)

    def test_oracle_invariance_check(self):
        from repro.oracle.queries import check_empty_batch

        assert check_empty_batch(6, {(0, 1), (1, 2)}) == []
        assert check_empty_batch(0, set()) == []


# -- self-loop rejection at every entry point --------------------------------


class TestSelfLoopRejection:
    def test_direct_both_substrates(self):
        for substrate in ("dict", "array"):
            with pytest.raises(ValueError, match="self-loop"):
                make_graph(4, [(2, 2)], substrate=substrate)
            g = make_graph(4, [(0, 1)], substrate=substrate)
            with pytest.raises(ValueError, match="self-loop"):
                g.insert_batch([(3, 3)])
            with pytest.raises(ValueError, match="self-loop"):
                g.delete_batch([(1, 1)])
            assert set(g.edges()) == {(0, 1)}

    def test_engine_submit(self):
        from repro.service.engine import LocalExecutor, SpannerService

        svc = SpannerService(LocalExecutor(
            {"kind": "spanner", "n": 8, "edges": [(0, 1)], "k": 2,
             "seed": 1}
        ))
        try:
            with pytest.raises(ValueError, match="self-loop"):
                svc.submit_update("insert", 3, 3)
            with pytest.raises(ValueError, match="self-loop"):
                svc.submit_update("delete", 0, 0)
        finally:
            svc.close()

    def test_wire_submit(self):
        from repro.net import (
            NetClient,
            ServerError,
            TenantConfig,
            TenantManager,
            ThreadedServer,
        )

        tm = TenantManager()
        tm.create(TenantConfig(name="default", spec={
            "kind": "spanner", "n": 8, "k": 2, "edges": [[0, 1]],
            "seed": 1,
        }))
        with tm, ThreadedServer(tm) as srv:
            with NetClient(srv.host, srv.port) as c:
                with pytest.raises(ServerError, match="self-loop"):
                    c.submit("insert", 5, 5)
                # the connection survives the rejected request
                assert c.submit("insert", 5, 6) == "accepted"


# -- pooled ES-tree bucket scans ----------------------------------------------


class TestPooledPhaseScans:
    def test_pool_matches_inline_answers_and_charges(self):
        from repro.bfs.es_tree import BatchDynamicESTree
        from repro.graph import gnm_random_graph
        from repro.parallel import ProcessPoolBackend, SequentialBackend

        n, limit = 40, 6
        und = gnm_random_graph(n, 150, seed=9)
        edges = [(u, v) for u, v in und] + [(v, u) for u, v in und]
        batches = [
            [(u, v), (v, u)]
            for u, v in gnm_random_graph(n, 150, seed=9)[::7]
        ]

        def run(backend):
            cm = CostModel()
            if backend is not None:
                cm.set_backend(backend)
            t = BatchDynamicESTree(n, edges, source=0, limit=limit,
                                   cost=cm)
            changes = []
            for b in batches:
                changes.append([
                    (c.vertex, c.old_parent, c.new_parent, c.new_dist)
                    for c in t.batch_delete(b)
                ])
            return t.distances(), changes, cm.work, cm.depth

        inline = run(None)
        seq = run(SequentialBackend(min_items=1))
        pool_backend = ProcessPoolBackend(2, min_items=1)
        try:
            pooled = run(pool_backend)
        finally:
            pool_backend.close()
        assert inline == seq
        assert inline == pooled

"""Tests for the profiling helpers and repo-wide documentation hygiene."""

import importlib
import inspect
import pkgutil

import pytest

import repro
from repro.harness import profile_callable, profile_workload
from repro.spanner import FullyDynamicSpanner
from repro.workloads import deletion_stream


class TestProfiling:
    def test_profile_callable_returns_result_and_report(self):
        result, report = profile_callable(lambda: sum(range(1000)))
        assert result == 499500
        assert "function calls" in report

    def test_profile_workload_runs_everything(self):
        wl = deletion_stream(15, 40, batch_size=10, seed=1)
        report = profile_workload(
            wl,
            lambda edges: FullyDynamicSpanner(15, edges, k=2, seed=1,
                                              base_capacity=4),
            top=5,
        )
        assert "cumulative" in report
        # the hot path should surface our own modules
        assert "fully_dynamic" in report or "dynamizer" in report or (
            "es_tree" in report or "decremental" in report
        )


def _walk_public_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "._" in info.name:
            continue
        yield importlib.import_module(info.name)


class TestDocumentationHygiene:
    """Every public module, class, and function carries a docstring —
    deliverable (e) of the reproduction."""

    def test_all_modules_have_docstrings(self):
        for mod in _walk_public_modules():
            assert mod.__doc__ and mod.__doc__.strip(), (
                f"module {mod.__name__} lacks a docstring"
            )

    def test_all_public_classes_and_functions_documented(self):
        missing = []
        for mod in _walk_public_modules():
            for name in getattr(mod, "__all__", []):
                obj = getattr(mod, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not (obj.__doc__ and obj.__doc__.strip()):
                        missing.append(f"{mod.__name__}.{name}")
                if inspect.isclass(obj):
                    for mname, meth in vars(obj).items():
                        if mname.startswith("_"):
                            continue
                        if inspect.isfunction(meth) and not (
                            meth.__doc__ and meth.__doc__.strip()
                        ):
                            missing.append(
                                f"{mod.__name__}.{name}.{mname}"
                            )
        assert not missing, f"undocumented public items: {sorted(set(missing))}"

    def test_every_package_exports_all(self):
        for mod in _walk_public_modules():
            if hasattr(mod, "__path__"):  # packages only
                assert hasattr(mod, "__all__"), (
                    f"package {mod.__name__} lacks __all__"
                )


class TestApiDocGenerator:
    def test_generator_produces_current_docs(self, tmp_path):
        """docs/api.md is reproducible from the docstrings."""
        import pathlib
        import subprocess
        import sys

        root = pathlib.Path(__file__).parent.parent
        before = (root / "docs" / "api.md").read_text()
        subprocess.run(
            [sys.executable, str(root / "tools" / "gen_api_docs.py")],
            check=True,
            cwd=root,
            capture_output=True,
        )
        after = (root / "docs" / "api.md").read_text()
        assert before == after, (
            "docs/api.md is stale — run python tools/gen_api_docs.py"
        )
        assert "## `repro.spanner`" in after
        assert "FullyDynamicSpanner" in after

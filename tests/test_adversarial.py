"""Adversarial (oblivious) update patterns.

The paper's guarantees hold against an *oblivious* adversary — one that
fixes the update sequence in advance but may pick it as nastily as it
likes.  These streams target each structure's weak spots: always deleting
current tree/spanner edges would require adaptivity, so instead we use the
legal equivalents — hub wipes, repeated churn of the same edges, long
cascade chains, and boundary-size batches.
"""

import random

import pytest

from repro.bfs import BatchDynamicESTree, bounded_bfs_directed
from repro.bundle import DecrementalTBundle
from repro.graph import gnm_random_graph, grid_graph, norm_edge
from repro.spanner import DecrementalSpanner, FullyDynamicSpanner
from repro.ultrasparse import UltraSparseSpannerDynamic
from repro.verify import is_spanner


class TestESTreeAdversarial:
    def test_delete_layer_by_layer(self):
        """Delete the graph level by level from the source outward —
        maximizes cascade depth per batch."""
        rows, cols = 6, 8
        n = rows * cols
        und = grid_graph(rows, cols)
        edges = [(u, v) for u, v in und] + [(v, u) for u, v in und]
        tree = BatchDynamicESTree(n, edges, source=0, limit=n)
        # deletion order: edges incident to vertices closest to source first
        adj = [[] for _ in range(n)]
        for u, v in edges:
            adj[u].append(v)
        dist0 = bounded_bfs_directed(n, adj, 0, n)
        order = sorted(und, key=lambda e: min(dist0[e[0]], dist0[e[1]]))
        alive = list(order)
        while alive:
            batch, alive = alive[:6], alive[6:]
            dir_batch = [(u, v) for u, v in batch] + [
                (v, u) for u, v in batch
            ]
            tree.batch_delete(dir_batch)
            adj = [[] for _ in range(n)]
            for u, v in alive:
                adj[u].append(v)
                adj[v].append(u)
            assert tree.distances() == bounded_bfs_directed(n, adj, 0, n)

    def test_single_long_path_teardown(self):
        """A path deleted from the far end — every deletion is a tree edge."""
        n = 60
        edges = [(i, i + 1) for i in range(n - 1)]
        dir_edges = edges + [(v, u) for u, v in edges]
        tree = BatchDynamicESTree(n, dir_edges, source=0, limit=n)
        for i in reversed(range(n - 1)):
            tree.batch_delete([(i, i + 1), (i + 1, i)])
            assert tree.dist_of(i) == i
            assert tree.dist_of(i + 1) == n + 1  # detached


class TestSpannerAdversarial:
    def test_hub_wipe(self):
        """Delete every edge of the highest-degree vertex in one batch —
        maximal single-vertex cascade."""
        n, m, k = 40, 300, 2
        edges = gnm_random_graph(n, m, seed=3)
        sp = DecrementalSpanner(n, edges, k=k, seed=3)
        deg = [0] * n
        for u, v in edges:
            deg[u] += 1
            deg[v] += 1
        hub = max(range(n), key=deg.__getitem__)
        batch = [e for e in edges if hub in e]
        sp.batch_delete(batch)
        remaining = [e for e in edges if hub not in e]
        assert is_spanner(n, remaining, sp.spanner_edges(), 2 * k - 1)
        sp.check_invariants()

    def test_repeated_same_edge_churn(self):
        """Insert/delete the same edge 30 times — stresses the dynamizer's
        INDEX and partition bookkeeping."""
        n = 12
        base = gnm_random_graph(n, 30, seed=4)
        target = None
        for u in range(n):
            for v in range(u + 1, n):
                if (u, v) not in base:
                    target = (u, v)
                    break
            if target:
                break
        sp = FullyDynamicSpanner(n, base, k=2, seed=4, base_capacity=4)
        for _ in range(30):
            sp.insert_batch([target])
            assert target in sp
            sp.delete_batch([target])
            assert target not in sp
        sp.check_invariants()
        assert is_spanner(n, base, sp.spanner_edges(), 3)

    def test_batch_size_boundary_cases(self):
        """Batches of size exactly base_capacity and base_capacity ± 1 hit
        the chunking boundaries of the Bentley–Saxe split."""
        n, base = 20, 4
        sp = FullyDynamicSpanner(n, k=2, seed=5, base_capacity=base)
        universe = [(u, v) for u in range(n) for v in range(u + 1, n)]
        idx = 0
        for size in (base - 1, base, base + 1, 2 * base, 2 * base + 1):
            batch = universe[idx : idx + size]
            idx += size
            sp.insert_batch(batch)
            sp.check_invariants()
        assert sp.m == idx

    def test_alternating_insert_delete_full_graph(self):
        n = 14
        edges = gnm_random_graph(n, 50, seed=6)
        sp = FullyDynamicSpanner(n, k=2, seed=6, base_capacity=4)
        for _ in range(4):
            sp.insert_batch(edges)
            assert is_spanner(n, edges, sp.spanner_edges(), 3)
            sp.delete_batch(edges)
            assert sp.spanner_edges() == set()
        sp.check_invariants()


class TestUltraSparseAdversarial:
    def test_heavy_light_oscillation(self):
        """Push a vertex's degree back and forth across the heavy/light
        threshold — the most delicate transition in §5.2."""
        x = 2.0
        from repro.ultrasparse import threshold

        t = threshold(x)  # 20
        n = t + 10
        hub = 0
        spokes = [norm_edge(hub, i) for i in range(1, t + 2)]
        sp = UltraSparseSpannerDynamic(
            n, spokes, x=x, seed=7, inner_rates=[2.0], k_final=2,
            base_capacity=4,
        )
        assert sp._is_heavy(hub)
        sp.check_invariants()
        for _ in range(3):
            # drop below threshold
            sp.update(deletions=spokes[: t // 2])
            assert not sp._is_heavy(hub)
            sp.check_invariants()
            # climb back above
            sp.update(insertions=spokes[: t // 2])
            assert sp._is_heavy(hub)
            sp.check_invariants()

    def test_bottom_component_merge_split(self):
        """Grow and shatter a ⊥-component so the HDT forest (H_2) churns."""
        n = 16
        sp = UltraSparseSpannerDynamic(
            n, x=4.0, seed=1002, inner_rates=[2.0], k_final=2,
            base_capacity=4,
        )
        # find a seed where enough vertices are unsampled (⊥-prone)
        path = [
            norm_edge(i, i + 1) for i in range(n - 1)
        ]
        sp.update(insertions=path)
        sp.check_invariants()
        # shatter the path into pieces
        sp.update(deletions=path[::2])
        sp.check_invariants()
        sp.update(insertions=path[::2])
        sp.check_invariants()


class TestBundleAdversarial:
    def test_delete_exactly_the_initial_bundle(self):
        """First wipe out every edge the bundle chose, then the rest."""
        n, m, t = 24, 150, 2
        edges = gnm_random_graph(n, m, seed=8)
        bundle = DecrementalTBundle(n, edges, t=t, seed=8, instances=4)
        first = sorted(bundle.bundle_edges())
        bundle.batch_delete(first)
        bundle.check_invariants()
        rest = sorted(set(edges) - set(first))
        bundle.batch_delete(rest)
        assert bundle.bundle_edges() == set()
        bundle.check_invariants()

"""Tests for the asynchronous serving engine (``repro.service``).

Covers the satellite checklist: coalescing correctness (cancellation,
dedup), deadline-triggered flush, the backpressure rejection path, and a
multiprocessing shard round trip (skip-marked on platforms without
``fork``), plus snapshot consistency and the end-to-end serve demo.
"""

import multiprocessing as mp

import pytest

from repro.graph import gnm_random_graph
from repro.service import (
    AdmissionConfig,
    AdmissionController,
    AdaptiveBatcher,
    BatcherConfig,
    CoalescingQueue,
    LocalExecutor,
    MetricsRegistry,
    ServeConfig,
    ServiceConfig,
    ShardedExecutor,
    SpannerService,
    build_backend,
    edge_shard,
    run_serve,
    split_by_shard,
)
from repro.pram import CostModel
from repro.service.queue import (
    ACCEPTED,
    COALESCED_CANCEL,
    COALESCED_DEDUP,
    REJECTED_ABSENT,
    REJECTED_DUPLICATE,
)
from repro.workloads import UpdateBatch, Workload, request_stream

_HAS_FORK = "fork" in mp.get_all_start_methods()


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# -- UpdateBatch.coalesce ----------------------------------------------------


class TestCoalesceClassmethod:
    def test_empty(self):
        b = UpdateBatch.coalesce([])
        assert b.insertions == [] and b.deletions == []

    def test_plain_ops_pass_through(self):
        b = UpdateBatch.coalesce(
            [("insert", (0, 1)), ("delete", (2, 3))]
        )
        assert b.insertions == [(0, 1)]
        assert b.deletions == [(2, 3)]

    def test_insert_then_delete_cancels(self):
        b = UpdateBatch.coalesce(
            [("insert", (0, 1)), ("delete", (0, 1))]
        )
        assert b.size == 0

    def test_duplicate_inserts_dedupe(self):
        b = UpdateBatch.coalesce(
            [("insert", (0, 1)), ("insert", (0, 1))]
        )
        assert b.insertions == [(0, 1)] and b.deletions == []

    def test_duplicate_deletes_dedupe(self):
        b = UpdateBatch.coalesce(
            [("delete", (0, 1)), ("delete", (0, 1))]
        )
        assert b.deletions == [(0, 1)] and b.insertions == []

    def test_delete_then_insert_is_replace(self):
        b = UpdateBatch.coalesce(
            [("delete", (0, 1)), ("insert", (0, 1))]
        )
        assert b.insertions == [(0, 1)] and b.deletions == [(0, 1)]

    def test_replace_then_delete_collapses_to_delete(self):
        b = UpdateBatch.coalesce(
            [("delete", (0, 1)), ("insert", (0, 1)), ("delete", (0, 1))]
        )
        assert b.deletions == [(0, 1)] and b.insertions == []

    def test_cancel_then_fresh_insert_survives(self):
        b = UpdateBatch.coalesce(
            [("insert", (0, 1)), ("delete", (0, 1)), ("insert", (0, 1))]
        )
        assert b.insertions == [(0, 1)] and b.deletions == []

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown op"):
            UpdateBatch.coalesce([("upsert", (0, 1))])

    def test_coalesced_batch_is_replay_legal(self):
        ops = [
            ("insert", (0, 2)), ("delete", (0, 1)), ("insert", (0, 1)),
            ("insert", (1, 2)), ("delete", (1, 2)), ("delete", (2, 3)),
        ]
        batch = UpdateBatch.coalesce(ops)
        w = Workload(5, [(0, 1), (2, 3)], [batch])
        (_, final), = list(w.replay())
        assert final == {(0, 1), (0, 2)}


# -- CoalescingQueue ---------------------------------------------------------


class TestCoalescingQueue:
    def test_offer_outcomes(self):
        q = CoalescingQueue(present=[(0, 1)], clock=FakeClock())
        assert q.offer("insert", (1, 2)) == ACCEPTED
        assert q.offer("insert", (1, 2)) == COALESCED_DEDUP
        assert q.offer("delete", (1, 2)) == COALESCED_CANCEL
        assert q.offer("insert", (0, 1)) == REJECTED_DUPLICATE
        assert q.offer("delete", (4, 5)) == REJECTED_ABSENT
        assert q.offer("delete", (0, 1)) == ACCEPTED
        assert q.offer("delete", (0, 1)) == COALESCED_DEDUP

    def test_offer_normalizes_edges(self):
        q = CoalescingQueue(clock=FakeClock())
        q.offer("insert", (3, 1))
        assert q.pending_ops() == [("insert", (1, 3))]

    def test_drain_applies_to_live_view(self):
        q = CoalescingQueue(present=[(0, 1)], clock=FakeClock())
        q.offer("delete", (0, 1))
        q.offer("insert", (1, 2))
        res = q.drain()
        assert res.batch.deletions == [(0, 1)]
        assert res.batch.insertions == [(1, 2)]
        assert q.live_edges == {(1, 2)}
        assert q.depth == 0

    def test_cancelled_pair_never_reaches_batch(self):
        q = CoalescingQueue(clock=FakeClock())
        q.offer("insert", (1, 2))
        q.offer("delete", (1, 2))
        res = q.drain()
        assert res.batch.size == 0
        assert res.raw_ops == 2
        assert res.coalesced_away == 2
        assert res.coalesce_ratio == 1.0

    def test_validation_tracks_pending_not_just_live(self):
        q = CoalescingQueue(present=[(0, 1)], clock=FakeClock())
        q.offer("delete", (0, 1))
        # effectively absent now: a delete is a dedupe, an insert is legal
        assert not q.effectively_present((0, 1))
        assert q.offer("insert", (0, 1)) == COALESCED_CANCEL
        assert q.effectively_present((0, 1))

    def test_drained_batches_replay_against_initial_edges(self):
        edges, requests = request_stream(24, 60, 400, seed=9)
        q = CoalescingQueue(present=edges, clock=FakeClock())
        batches = []
        for i, (op, payload) in enumerate(requests):
            if op == "query":
                continue
            q.offer(op, payload)
            if i % 37 == 0:
                batches.append(q.drain().batch)
        batches.append(q.drain().batch)
        w = Workload(24, edges, batches)
        final = set(edges)
        for _, final in w.replay():
            pass
        assert final == q.live_edges

    def test_timeout_expires_whole_edge_groups(self):
        clk = FakeClock()
        q = CoalescingQueue(clock=clk)
        q.offer("insert", (0, 1), timeout=0.5)
        clk.advance(1.0)
        q.offer("insert", (2, 3), timeout=0.5)
        res = q.drain()
        assert res.expired_ops == 1
        assert q.expired == 1
        assert res.batch.insertions == [(2, 3)]
        # the expired insert never applied: membership unchanged
        assert q.live_edges == {(2, 3)}

    def test_partial_group_expiry_keeps_group(self):
        clk = FakeClock()
        q = CoalescingQueue(present=[(0, 1)], clock=clk)
        q.offer("delete", (0, 1), timeout=0.5)
        clk.advance(1.0)
        # fresh re-insert on the same edge: group must NOT be dropped,
        # otherwise the (still wanted) re-insert would vanish
        q.offer("insert", (0, 1), timeout=0.5)
        res = q.drain()
        assert res.expired_ops == 0
        assert res.batch.deletions == [(0, 1)]
        assert res.batch.insertions == [(0, 1)]

    def test_mixed_deadline_groups_expire_independently(self):
        clk = FakeClock()
        q = CoalescingQueue(present=[(4, 5)], clock=clk)
        q.offer("insert", (0, 1), timeout=0.5)  # whole group expires
        q.offer("delete", (4, 5), timeout=0.5)  # expired, but kept by ...
        clk.advance(1.0)
        q.offer("insert", (4, 5), timeout=0.5)  # ... this still-live op
        q.offer("insert", (2, 3))               # no deadline at all
        res = q.drain()
        assert res.expired_ops == 1             # only the (0, 1) group
        assert q.expired == 1
        assert sorted(res.batch.insertions) == [(2, 3), (4, 5)]
        assert res.batch.deletions == [(4, 5)]
        assert q.live_edges == {(2, 3), (4, 5)}

    def test_expired_insert_can_be_reoffered_after_drain(self):
        clk = FakeClock()
        q = CoalescingQueue(clock=clk)
        assert q.offer("insert", (0, 1), timeout=0.5) == ACCEPTED
        clk.advance(1.0)
        res = q.drain()
        assert res.expired_ops == 1 and res.batch.size == 0
        assert q.live_edges == set()
        # the edge never became live, so the same insert is legal again
        assert q.offer("insert", (0, 1)) == ACCEPTED
        res = q.drain()
        assert res.batch.insertions == [(0, 1)]
        assert q.live_edges == {(0, 1)}

    def test_coalesce_ratio_when_everything_expires(self):
        clk = FakeClock()
        q = CoalescingQueue(clock=clk)
        q.offer("insert", (0, 1), timeout=0.5)
        q.offer("delete", (0, 1), timeout=0.5)  # cancels the insert
        q.offer("insert", (2, 3), timeout=0.5)
        clk.advance(1.0)
        res = q.drain()
        assert res.raw_ops == 3
        assert res.expired_ops == 3
        assert res.batch.size == 0
        # nothing survived to be coalesced: the ratio is 0/0, defined as 0
        assert res.coalesced_away == 0
        assert res.coalesce_ratio == 0.0


# -- AdaptiveBatcher ---------------------------------------------------------


class TestAdaptiveBatcher:
    def test_size_trigger(self):
        b = AdaptiveBatcher(BatcherConfig(max_batch=4, max_delay=10.0))
        assert not b.should_flush(3, 0.0, 0.0)
        assert b.should_flush(4, 0.0, 0.0)

    def test_deadline_trigger(self):
        b = AdaptiveBatcher(BatcherConfig(max_batch=100, max_delay=0.01))
        assert not b.should_flush(1, 0.0, 0.005)
        assert b.should_flush(1, 0.0, 0.01)

    def test_empty_queue_never_flushes(self):
        b = AdaptiveBatcher(BatcherConfig())
        assert not b.should_flush(0, None, 1e9)

    def test_adapts_max_batch_to_work(self):
        cfg = BatcherConfig(
            max_batch=64, target_batch_work=1000, min_batch=8,
            max_batch_cap=512, ewma_alpha=1.0,
        )
        b = AdaptiveBatcher(cfg)
        b.record_flush(batch_size=10, work=100)   # 10 work/op -> ideal 100
        assert b.current_max_batch == 100
        b.record_flush(batch_size=10, work=10000)  # 1000 work/op -> floor
        assert b.current_max_batch == 8
        b.record_flush(batch_size=10, work=10)     # 1 work/op -> ceiling
        assert b.current_max_batch == 512

    def test_seconds_until_deadline(self):
        b = AdaptiveBatcher(BatcherConfig(max_delay=0.01))
        assert b.seconds_until_deadline(None, 5.0) == 0.01
        assert b.seconds_until_deadline(5.0, 5.004) == pytest.approx(0.006)
        assert b.seconds_until_deadline(5.0, 6.0) == 0.0


# -- AdmissionController -----------------------------------------------------


class TestAdmission:
    def test_admits_below_capacity(self):
        a = AdmissionController(AdmissionConfig(max_pending=10))
        d = a.admit(depth=9, flush_interval=0.01)
        assert d.admitted and d.retry_after is None
        assert a.shed_count == 0

    def test_sheds_at_capacity_with_retry_after(self):
        a = AdmissionController(AdmissionConfig(max_pending=10))
        d = a.admit(depth=10, flush_interval=0.01)
        assert not d.admitted
        assert d.retry_after is not None and d.retry_after >= 0.01
        assert a.shed_count == 1

    def test_retry_after_grows_with_overflow(self):
        a = AdmissionController(AdmissionConfig(max_pending=10))
        small = a.admit(depth=10, flush_interval=0.01).retry_after
        large = a.admit(depth=100, flush_interval=0.01).retry_after
        assert large > small

    def test_retry_after_formula_pinned(self):
        # retry_after = (overflow / max_pending) * flush_interval, floored
        # at flush_interval and min_retry_after (as documented on
        # AdmissionConfig) — this pins the exact arithmetic
        cfg = AdmissionConfig(max_pending=10, min_retry_after=0.001)
        a = AdmissionController(cfg)
        fi = 0.02
        # overflow=1: the proportional term (fi/10) is below one flush
        # interval, so the hint floors at exactly flush_interval
        assert a.admit(depth=10, flush_interval=fi).retry_after == \
            pytest.approx(fi)
        # overflow=51: proportional term dominates
        assert a.admit(depth=60, flush_interval=fi).retry_after == \
            pytest.approx(fi * 51 / 10)
        # tiny flush interval: min_retry_after is the floor
        assert a.admit(depth=10, flush_interval=1e-6).retry_after == \
            pytest.approx(cfg.min_retry_after)


# -- metrics -----------------------------------------------------------------


class TestMetrics:
    def test_counter_and_gauge(self):
        m = MetricsRegistry()
        m.counter("x").inc()
        m.counter("x").inc(4)
        m.gauge("g").set(2.5)
        snap = m.snapshot()
        assert snap["x"] == 5 and snap["g"] == 2.5
        with pytest.raises(ValueError):
            m.counter("x").inc(-1)

    def test_histogram_percentiles(self):
        m = MetricsRegistry()
        h = m.histogram("lat")
        for i in range(1, 101):
            h.observe(i)
        assert h.count == 100
        assert h.percentile(50) == pytest.approx(50, abs=1)
        assert h.percentile(99) == pytest.approx(99, abs=1)
        assert h.summary()["max"] == 100

    def test_histogram_reservoir_bounded(self):
        h = MetricsRegistry().histogram("x", reservoir=8)
        for i in range(1000):
            h.observe(i)
        assert h.count == 1000
        assert len(h._samples) == 8

    def test_histogram_tracks_whole_drifting_stream(self):
        # Regression: once full, the reservoir used to overwrite a rotating
        # slot on every observation, silently degrading into a sliding
        # window of the most recent values — on a drifting stream p50
        # reported ~the latest value instead of the stream median.  The
        # stride-doubling decimation keeps a uniform systematic sample of
        # the whole stream.
        n = 100_000
        h = MetricsRegistry().histogram("drift", reservoir=64)
        for i in range(n):
            h.observe(float(i))
        assert len(h._samples) <= 64
        # observation 0 survives forever (index 0 is on every stride grid)
        assert min(h._samples) == 0.0
        # median of the retained sample sits near the stream median, far
        # from the window median ~n the old scheme produced
        assert 0.25 * n < h.percentile(50) < 0.75 * n

    def test_histogram_rejects_degenerate_reservoir(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("tiny", reservoir=1)

    def test_render_mentions_everything(self):
        m = MetricsRegistry()
        m.counter("shed").inc(3)
        m.histogram("batch_size").observe(17)
        out = m.render()
        assert "shed" in out and "batch_size" in out and "p99" in out


# -- SpannerService over a LocalExecutor -------------------------------------


def _local_service(n=32, m=96, seed=5, **batcher_kw):
    edges = gnm_random_graph(n, m, seed=seed)
    spec = {"kind": "spanner", "n": n, "edges": edges, "seed": seed,
            "k": 2, "base_capacity": 16}
    clk = FakeClock()
    svc = SpannerService(
        LocalExecutor(spec),
        config=ServiceConfig(
            batcher=BatcherConfig(**batcher_kw) if batcher_kw
            else BatcherConfig(max_batch=8, max_delay=0.01),
        ),
        clock=clk,
    )
    return svc, clk, edges, spec


class TestSpannerService:
    def test_snapshot_hides_pending_updates(self):
        svc, clk, edges, _ = _local_service()
        before = svc.query("size")
        svc.submit_update("delete", *edges[0])
        assert svc.query("size") == before  # not flushed yet
        svc.flush()
        assert svc.graph_edges() == set(edges[1:])

    def test_fresh_consistency_reads_own_writes(self):
        svc, clk, edges, _ = _local_service()
        e = edges[0]
        assert svc.query("contains", e)
        svc.submit_update("delete", *e)
        assert not svc.query("contains", e, consistency="fresh")

    def test_size_trigger_flushes_inline(self):
        svc, clk, edges, _ = _local_service()
        for e in edges[:8]:  # max_batch=8
            svc.submit_update("delete", *e)
        assert svc.queue.depth == 0
        assert svc.metrics.snapshot()["flushes"] == 1

    def test_deadline_trigger_via_pump(self):
        svc, clk, edges, _ = _local_service()
        svc.submit_update("delete", *edges[0])
        assert not svc.pump()          # deadline not reached
        clk.advance(0.02)              # > max_delay=0.01
        assert svc.pump()
        assert svc.graph_edges() == set(edges[1:])

    def test_backpressure_sheds_with_retry_after(self):
        edges = gnm_random_graph(16, 40, seed=1)
        spec = {"kind": "spanner", "n": 16, "edges": edges, "seed": 1,
                "k": 2, "base_capacity": 16}
        svc = SpannerService(
            LocalExecutor(spec),
            config=ServiceConfig(
                batcher=BatcherConfig(max_batch=100, max_delay=10.0),
                admission=AdmissionConfig(max_pending=4),
            ),
            clock=FakeClock(),
        )
        responses = [
            svc.submit_update("delete", *e) for e in edges[:6]
        ]
        assert [r.accepted for r in responses] == [True] * 4 + [False] * 2
        shed = responses[-1]
        assert shed.outcome == "shed"
        assert shed.retry_after is not None and shed.retry_after > 0
        assert svc.metrics.snapshot()["shed"] == 2
        # after a flush the queue has room again
        svc.flush()
        assert svc.submit_update("delete", *edges[4]).accepted

    def test_rejected_ops_do_not_enter_queue(self):
        svc, clk, edges, _ = _local_service()
        present = set(edges)
        absent = next(
            (u, v)
            for u in range(32) for v in range(u + 1, 32)
            if (u, v) not in present
        )
        bogus = svc.submit_update("delete", *absent)
        assert not bogus.accepted
        assert bogus.outcome == "rejected_absent"
        assert svc.queue.depth == 0

    def test_distance_query_matches_snapshot_bfs(self):
        svc, clk, edges, _ = _local_service()
        u, v = edges[0]
        assert svc.query("distance", (u, v)) >= 1.0
        assert svc.query("distance", (u, u)) == 0
        assert svc.query("connected", (u, v))

    def test_service_equivalent_to_synchronous_replay(self):
        svc, clk, edges, spec = _local_service()
        _, requests = request_stream(32, 0, 300, seed=8)
        # drive requests whose edges exist/absent per the service view
        for op, payload in requests:
            if op == "query":
                continue
            clk.advance(0.001)
            svc.pump()
            svc.submit_update(op, *payload)
        svc.flush()
        rebuilt = build_backend(spec, CostModel())
        for batch in svc.executor.applied_batches:
            rebuilt.update(
                insertions=batch.insertions, deletions=batch.deletions
            )
        assert rebuilt.output_edges() == svc.snapshot_edges()

    def test_background_flusher_thread(self):
        import time as _time

        edges = gnm_random_graph(16, 40, seed=2)
        spec = {"kind": "spanner", "n": 16, "edges": edges, "seed": 2,
                "k": 2, "base_capacity": 16}
        svc = SpannerService(
            LocalExecutor(spec),
            config=ServiceConfig(
                batcher=BatcherConfig(max_batch=1000, max_delay=0.01),
            ),
        )  # real clock
        svc.start()
        try:
            svc.submit_update("delete", *edges[0])
            deadline = _time.monotonic() + 2.0
            while svc.queue.depth and _time.monotonic() < deadline:
                _time.sleep(0.005)
            assert svc.queue.depth == 0, "flusher thread never fired"
        finally:
            svc.stop()
        assert svc.graph_edges() == set(edges[1:])


# -- sharded executor --------------------------------------------------------


class TestShardRouting:
    def test_router_is_total_and_stable(self):
        edges = gnm_random_graph(40, 200, seed=3)
        for s in (1, 2, 5):
            parts = split_by_shard(edges, s)
            assert sum(len(p) for p in parts) == len(edges)
            for i, part in enumerate(parts):
                for e in part:
                    assert edge_shard(e, s) == i

    def test_reasonable_balance(self):
        edges = gnm_random_graph(64, 600, seed=4)
        parts = split_by_shard(edges, 4)
        sizes = [len(p) for p in parts]
        assert min(sizes) > 0.5 * (600 / 4)


class TestShardedExecutorInproc:
    def test_matches_unsharded_graph(self):
        edges = gnm_random_graph(32, 120, seed=6)
        spec = {"kind": "spanner", "n": 32, "edges": edges, "seed": 6,
                "k": 2, "base_capacity": 16}
        ex = ShardedExecutor(spec, shards=3, processes=False)
        assert ex.initial_edges() == set(edges)
        batch = UpdateBatch(deletions=edges[:30])
        res = ex.apply(batch)
        assert res.work >= res.critical_work > 0
        # graph semantics: shards jointly hold exactly the surviving edges
        union_after = ex.gather_edges()
        w = Workload(32, edges, [batch])
        (_, final), = list(w.replay())
        # spanner edges are a subgraph of the survivors
        assert union_after <= final
        assert sum(ex.scatter_sizes()) == len(union_after)
        ex.close()

    def test_per_shard_seeds_differ(self):
        spec = {"kind": "spanner", "n": 8, "edges": [], "seed": 5, "k": 2}
        ex = ShardedExecutor(spec, shards=3, processes=False)
        assert [s["seed"] for s in ex.shard_specs] == [5, 6, 7]
        ex.close()

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardedExecutor({"kind": "spanner", "n": 4}, shards=0)


@pytest.mark.skipif(not _HAS_FORK, reason="platform lacks fork")
class TestShardedExecutorMultiprocessing:
    def test_round_trip_smoke(self):
        edges = gnm_random_graph(24, 80, seed=7)
        spec = {"kind": "spanner", "n": 24, "edges": edges, "seed": 7,
                "k": 2, "base_capacity": 16}
        with ShardedExecutor(
            spec, shards=2, processes=True, start_method="fork"
        ) as ex:
            before = ex.gather_edges()
            assert before  # workers answered
            res = ex.apply(UpdateBatch(deletions=edges[:10]))
            assert res.work > 0
            after = ex.gather_edges()
            assert after == (before - res.delta_del) | res.delta_ins
            # identical to the in-process execution of the same batches
            ref = ShardedExecutor(spec, shards=2, processes=False)
            ref.apply(UpdateBatch(deletions=edges[:10]))
            assert ref.gather_edges() == after
            ref.close()


# -- end-to-end serve demo ---------------------------------------------------


class TestServeDemo:
    def test_small_run_verifies(self):
        cfg = ServeConfig(
            n=48, m=160, requests=1200, shards=2, processes=False, seed=13
        )
        report = run_serve(cfg)
        assert report.verified
        assert report.served >= 1200
        assert report.applied_ops > 0
        assert report.flushes > 0
        assert report.coalesced > 0
        assert report.shed > 0  # bursts overflow the bounded queue
        assert report.metrics["coalesce_ratio.count"] > 0
        assert "flush_latency_s" in report.metrics_text

    def test_sparsifier_backend(self):
        cfg = ServeConfig(
            n=32, m=120, requests=400, shards=2, processes=False,
            seed=2, backend="sparsifier", burst_every=0,
        )
        report = run_serve(cfg)
        assert report.verified
        assert report.applied_ops > 0

    def test_cli_serve_command(self, capsys):
        from repro.cli import main

        rc = main([
            "serve", "--n", "48", "--m", "160", "--requests", "800",
            "--shards", "2", "--no-processes", "--seed", "1",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "repro serve" in out
        assert "coalesce_ratio" in out
        assert "shed" in out
        assert "verification: OK" in out


# -- replication hooks on the engine ------------------------------------------


class TestEngineReplication:
    def test_apply_replicated_matches_local_flush(self):
        """Primary flushes; a sibling engine fed apply_replicated from
        the primary's commit hooks reaches bit-identical state."""
        primary, _, edges, spec = _local_service()
        replica = SpannerService(LocalExecutor(dict(spec)))
        shipped: list[tuple[int, UpdateBatch]] = []
        primary.commit_hooks.append(lambda seq, b: shipped.append((seq, b)))
        for e in edges[:6]:
            primary.submit_update("delete", *e)
        primary.flush()
        primary.submit_update("insert", 300, 301)
        primary.flush()
        for seq, batch in shipped:
            replica.apply_replicated(seq, batch)
        assert replica.committed_seq == primary.committed_seq
        assert replica.snapshot_edges() == primary.snapshot_edges()
        assert replica.graph_edges() == primary.graph_edges()
        assert (replica.metrics.snapshot()["replicated_batches"]
                == len(shipped))

    def test_apply_replicated_rejects_gaps(self):
        svc, _, edges, _ = _local_service()
        batch = UpdateBatch(insertions=[(200, 201)])
        with pytest.raises(ValueError, match="gap"):
            svc.apply_replicated(5, batch)
        svc.apply_replicated(1, batch)
        with pytest.raises(ValueError, match="gap"):
            svc.apply_replicated(1, batch)  # replay of an applied seq

    def test_align_seq_bootstraps_numbering(self):
        svc, _, edges, _ = _local_service()
        svc.align_seq(41)
        assert svc.committed_seq == 41
        res = svc.apply_replicated(42, UpdateBatch(insertions=[(1, 2)]))
        assert res.delta_ins == {(1, 2)}
        assert svc.query_info("size").as_of_seq == 42

    def test_align_seq_refused_after_any_commit(self):
        svc, _, edges, _ = _local_service()
        svc.submit_update("delete", *edges[0])
        svc.flush()
        with pytest.raises(RuntimeError, match="align_seq"):
            svc.align_seq(10)

    def test_local_writes_refused_after_replicated_state(self):
        """A replica's queue must refuse to mix local ops with shipped
        batches (replicas are read-only)."""
        svc, _, edges, _ = _local_service()
        svc.submit_update("delete", *edges[0])
        with pytest.raises(RuntimeError, match="read-only"):
            svc.apply_replicated(1, UpdateBatch(insertions=[(7, 8)]))

    def test_set_degraded_stale_tag_round_trip(self):
        """Satellite: query_info carries the staleness marker while the
        degraded flag is raised, and clears it on the way out."""
        svc, _, edges, _ = _local_service()
        assert svc.query_info("size").stale is False
        svc.set_degraded(True)
        info = svc.query_info("size")
        assert info.stale is True
        assert info.as_of_seq == svc.committed_seq
        resp = svc.submit_update("insert", 400, 401)
        assert not resp.accepted
        assert resp.outcome == "shed_degraded"
        assert resp.retry_after is not None and resp.retry_after > 0
        svc.set_degraded(False)
        assert svc.query_info("size").stale is False
        assert svc.submit_update("insert", 400, 401).accepted

    def test_admission_query_quota(self):
        ctrl = AdmissionController(AdmissionConfig(max_inflight_queries=2))
        assert ctrl.admit_query(0, 0.001).admitted
        assert ctrl.admit_query(1, 0.001).admitted
        shed = ctrl.admit_query(2, 0.001)
        assert not shed.admitted
        assert shed.retry_after is not None and shed.retry_after > 0
        assert ctrl.query_shed_count == 1
        # no cap configured -> always admitted
        open_ctrl = AdmissionController(AdmissionConfig())
        assert open_ctrl.admit_query(10**6).admitted


# -- batched reads ------------------------------------------------------------


class TestQueryBatching:
    def test_query_batch_matches_singleton(self):
        svc, clk, edges, _ = _local_service(n=40, m=120)
        import numpy as np

        rng = np.random.default_rng(17)
        items = [("size", None), ("edges", None)]
        for _ in range(40):
            kind = ("distance", "connected", "contains")[
                int(rng.integers(0, 3))]
            items.append((kind, tuple(map(int, rng.integers(0, 40, 2)))))
        results = svc.query_batch(items)
        for (kind, payload), res in zip(items, results):
            assert res.value == svc.query(kind, payload)
            assert res.stale is False
        svc.close()

    def test_query_batch_accepts_query_batch_object(self):
        from repro.queries import QueryBatch

        svc, _, _, _ = _local_service()
        out = svc.query_batch(QueryBatch([("size", None)]))
        assert out[0].value == svc.query("size")
        svc.close()

    def test_query_batch_metrics_and_stats(self):
        svc, _, _, _ = _local_service()
        svc.query_batch([("size", None), ("size", None),
                         ("distance", (0, 1)), ("distance", (1, 0))])
        m = svc.metrics
        assert m.counter("query_batches").value == 1
        assert m.counter("requests_query").value == 4
        assert m.counter("queries_deduped").value == 2
        assert svc.last_query_stats.queries == 4
        assert svc.last_query_stats.unique == 2
        svc.close()

    def test_query_batch_fresh_flushes_first(self):
        svc, _, edges, _ = _local_service()
        before = svc.query("size")
        svc.submit_update("delete", *edges[0])
        # snapshot consistency: the default answers pre-flush
        assert svc.query_batch([("size", None)])[0].value == before
        res = svc.query_batch(
            [("contains", edges[0])], consistency="fresh")
        assert res[0].value is False
        svc.close()

    def test_query_batch_rejects_unknown(self):
        svc, _, _, _ = _local_service()
        with pytest.raises(ValueError):
            svc.query_batch([("nope", (0, 1))])
        with pytest.raises(ValueError):
            svc.query_batch([("size", None)], consistency="wat")
        svc.close()

    def test_submit_query_resolves_on_flush(self):
        svc, clk, edges, _ = _local_service()
        pending = svc.submit_query("size")
        assert not pending.done
        svc.flush()
        assert pending.done
        assert pending.result(timeout=0.1).value == svc.query("size")
        svc.close()

    def test_submit_query_sees_batched_writes(self):
        # reads drain *after* the same cycle's updates apply:
        # the answer reflects the write submitted before the flush
        svc, _, edges, _ = _local_service()
        gone = edges[0]
        p = svc.submit_query("contains", gone)
        svc.submit_update("delete", *gone)
        svc.flush()
        assert p.result(timeout=0.1).value is False
        svc.close()

    def test_pending_reads_count_toward_flush_trigger(self):
        svc, clk, _, _ = _local_service(max_batch=4, max_delay=10.0)
        ps = [svc.submit_query("size") for _ in range(4)]
        # the 4th enqueued read crossed max_batch: flushed inline
        assert all(p.done for p in ps)
        assert svc.metrics.counter("reads_coalesced").value == 4
        svc.close()

    def test_flush_with_only_pending_reads(self):
        svc, _, _, _ = _local_service()
        p = svc.submit_query("connected", (0, 1))
        assert svc.flush() is not None
        assert p.done
        assert svc.flush() is None  # nothing left
        svc.close()

    def test_pending_query_timeout(self):
        svc, _, _, _ = _local_service()
        p = svc.submit_query("size")
        with pytest.raises(TimeoutError):
            p.result(timeout=0.01)
        svc.flush()
        svc.close()

    def test_stop_drains_pending_reads(self):
        svc, _, _, _ = _local_service()
        p = svc.submit_query("size")
        svc.stop()
        assert p.done
        svc.close()


class TestStalenessTagRace:
    def test_stale_tag_sampled_atomically_with_snapshot(self):
        """Regression: the degraded flag used to be sampled *before*
        taking the snapshot lock, so a recovery completing (or starting)
        between the two reads tagged the answer inconsistently.  The tag
        must reflect the degraded state at snapshot-read time."""
        svc, _, _, _ = _local_service()

        class FlipOnAcquire:
            """Proxy lock: degraded flips only once the lock is held."""

            def __init__(self, inner, event):
                self.inner = inner
                self.event = event

            def __enter__(self):
                self.inner.acquire()
                self.event.set()  # recovery starts "now"
                return self

            def __exit__(self, *exc):
                self.inner.release()

        import threading

        svc._snap_lock = FlipOnAcquire(threading.Lock(), svc._degraded)
        res = svc.query_info("size")
        # degraded was set before the snapshot was read, so the answer
        # must carry stale=True; pre-fix code sampled stale=False first
        assert res.stale is True
        assert svc.metrics.counter("stale_reads").value == 1
        svc._degraded.clear()
        svc.close()

    def test_query_batch_stale_tag_inside_lock(self):
        svc, _, _, _ = _local_service()
        svc.set_degraded(True)
        results = svc.query_batch([("size", None), ("size", None)])
        assert all(r.stale for r in results)
        assert svc.metrics.counter("stale_reads").value == 2
        svc.set_degraded(False)
        assert not svc.query_batch([("size", None)])[0].stale
        svc.close()

"""Tests for the weighted Baswana–Sen spanner extension."""

import math

import numpy as np
import pytest

from repro.graph import complete_graph, gnm_random_graph
from repro.spanner.weighted import (
    baswana_sen_weighted_spanner,
    weighted_spanner_stretch,
)


def random_weights(edges, seed, low=1.0, high=10.0):
    rng = np.random.default_rng(seed)
    return {e: float(w) for e, w in zip(edges, rng.uniform(low, high, len(edges)))}


class TestWeightedSpanner:
    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize("seed", range(4))
    def test_stretch_guarantee(self, k, seed):
        n, m = 30, 140
        edges = gnm_random_graph(n, m, seed=seed)
        weights = random_weights(edges, seed)
        h = baswana_sen_weighted_spanner(n, weights, k=k, seed=seed)
        assert h <= set(edges)
        s = weighted_spanner_stretch(n, weights, h)
        assert s <= 2 * k - 1 + 1e-9, f"k={k} seed={seed} stretch={s}"

    def test_k1_keeps_everything(self):
        edges = gnm_random_graph(10, 20, seed=1)
        weights = random_weights(edges, 1)
        assert baswana_sen_weighted_spanner(10, weights, k=1) == set(edges)

    def test_unit_weights_match_unweighted_size_scale(self):
        n, k = 40, 2
        edges = complete_graph(n)
        weights = {e: 1.0 for e in edges}
        sizes = [
            len(baswana_sen_weighted_spanner(n, weights, k=k, seed=s))
            for s in range(5)
        ]
        avg = sum(sizes) / len(sizes)
        assert avg <= 6 * k * n ** (1 + 1 / k)
        assert avg < len(edges) / 2

    def test_extreme_weight_skew(self):
        """Heavy edges should be dropped preferentially: with one huge-
        weight edge parallel to a light path, the spanner may drop the
        heavy edge but must keep its stretch."""
        n = 4
        weights = {
            (0, 1): 1.0,
            (1, 2): 1.0,
            (2, 3): 1.0,
            (0, 3): 100.0,
        }
        h = baswana_sen_weighted_spanner(n, weights, k=2, seed=0)
        s = weighted_spanner_stretch(n, weights, h)
        assert s <= 3.0 + 1e-9

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            baswana_sen_weighted_spanner(3, {(0, 1): 1.0}, k=0)
        with pytest.raises(ValueError):
            baswana_sen_weighted_spanner(3, {(0, 1): -1.0}, k=2)

    def test_disconnection_detected_by_stretch_oracle(self):
        weights = {(0, 1): 1.0, (2, 3): 1.0}
        assert weighted_spanner_stretch(4, weights, [(0, 1)]) == math.inf

    def test_stretch_oracle_exact_on_triangle(self):
        weights = {(0, 1): 1.0, (1, 2): 1.0, (0, 2): 1.5}
        # dropping (0,2) leaves detour 2.0 -> stretch 2/1.5
        s = weighted_spanner_stretch(3, weights, [(0, 1), (1, 2)])
        assert s == pytest.approx(2.0 / 1.5)

"""Tests for the witness-producing verifiers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import gnm_random_graph
from repro.spanner import mpvx_spanner
from repro.verify import (
    find_cut_violation,
    find_stretch_violation,
    is_spanner,
    shortest_detour,
)


class TestShortestDetour:
    def test_direct_edge(self):
        assert shortest_detour(3, [(0, 1)], 0, 1) == [0, 1]

    def test_two_hop(self):
        assert shortest_detour(3, [(0, 1), (1, 2)], 0, 2) == [0, 1, 2]

    def test_disconnected(self):
        assert shortest_detour(3, [(0, 1)], 0, 2) is None

    def test_same_vertex(self):
        assert shortest_detour(3, [(0, 1)], 1, 1) == [1]

    def test_cap_respected(self):
        edges = [(i, i + 1) for i in range(5)]
        assert shortest_detour(6, edges, 0, 5, cap=3) is None
        assert shortest_detour(6, edges, 0, 3, cap=3) == [0, 1, 2, 3]


class TestStretchViolation:
    def test_valid_spanner_returns_none(self):
        n, m = 25, 90
        edges = gnm_random_graph(n, m, seed=1)
        h = mpvx_spanner(n, edges, k=2, seed=1)
        assert find_stretch_violation(n, edges, h, 3) is None

    def test_violation_has_witness(self):
        # square 0-1-2-3-0; dropping edge (0,3) leaves a 3-hop detour,
        # which violates a claimed bound of 2.
        g = [(0, 1), (1, 2), (2, 3), (0, 3)]
        h = [(0, 1), (1, 2), (2, 3)]
        v = find_stretch_violation(4, g, h, 2)
        assert v is not None
        assert v.edge == (0, 3)
        assert v.detour_length == 3
        assert v.detour == [0, 1, 2, 3]
        assert "exceeds bound" in str(v)

    def test_disconnection_witnessed(self):
        g = [(0, 1), (1, 2)]
        h = [(0, 1)]
        v = find_stretch_violation(3, g, h, 5)
        assert v is not None
        assert v.detour is None
        assert v.detour_length == math.inf

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 12), st.integers(0, 10**6))
    def test_agrees_with_is_spanner(self, n, seed):
        import random

        rng = random.Random(seed)
        cap = n * (n - 1) // 2
        edges = gnm_random_graph(n, rng.randrange(0, cap + 1), seed=seed)
        sub = [e for e in edges if rng.random() < 0.6]
        t = rng.choice([1, 2, 3, 5])
        cert = find_stretch_violation(n, edges, sub, t)
        assert (cert is None) == is_spanner(n, edges, sub, t)


class TestCutViolation:
    def test_good_sparsifier_none(self):
        g = {(0, 1): 1.0, (1, 2): 1.0}
        h = {(0, 1): 1.05, (1, 2): 0.95}
        assert find_cut_violation(3, g, h, 0.1, [{0}, {2}, {0, 2}]) is None

    def test_bad_cut_witnessed(self):
        g = {(0, 1): 1.0, (1, 2): 1.0}
        h = {(0, 1): 1.0, (1, 2): 3.0}
        v = find_cut_violation(3, g, h, 0.5, [{0}, {2}])
        assert v is not None
        assert v.side == frozenset({2})
        assert v.exact == 1.0 and v.approx == 3.0
        assert "outside" in str(v)

    def test_empty_and_full_cuts_skipped(self):
        g = {(0, 1): 1.0}
        h = {(0, 1): 9.0}
        assert find_cut_violation(2, g, h, 0.1, [set(), {0, 1}]) is None

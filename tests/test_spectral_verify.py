"""Tests for the spectral/cut verification oracles."""

import math

import numpy as np
import pytest

from repro.graph import complete_graph, gnm_random_graph
from repro.verify import (
    cut_weight,
    is_spectral_sparsifier,
    laplacian,
    max_cut_error,
    pencil_eigenvalue_range,
    quadratic_form,
)


def unit(edges):
    return {e: 1.0 for e in edges}


class TestLaplacian:
    def test_triangle(self):
        L = laplacian(3, unit([(0, 1), (1, 2), (0, 2)]))
        assert np.allclose(L, [[2, -1, -1], [-1, 2, -1], [-1, -1, 2]])

    def test_weighted(self):
        L = laplacian(2, {(0, 1): 3.0})
        assert np.allclose(L, [[3, -3], [-3, 3]])

    def test_quadratic_form_is_cut_for_indicators(self):
        edges = gnm_random_graph(8, 16, seed=1)
        L = laplacian(8, unit(edges))
        side = {0, 2, 5}
        x = np.array([1.0 if v in side else 0.0 for v in range(8)])
        assert quadratic_form(L, x) == pytest.approx(
            cut_weight(unit(edges), side)
        )


class TestPencil:
    def test_identical_graphs_ratio_one(self):
        edges = gnm_random_graph(10, 25, seed=2)
        lo, hi = pencil_eigenvalue_range(10, unit(edges), unit(edges))
        assert lo == pytest.approx(1.0) and hi == pytest.approx(1.0)

    def test_uniform_scaling(self):
        edges = gnm_random_graph(10, 25, seed=3)
        h = {e: 2.0 for e in edges}
        lo, hi = pencil_eigenvalue_range(10, unit(edges), h)
        assert lo == pytest.approx(0.5) and hi == pytest.approx(0.5)

    def test_disconnection_detected(self):
        g = unit([(0, 1), (1, 2)])
        h = {(0, 1): 1.0}
        lo, hi = pencil_eigenvalue_range(3, g, h)
        assert lo == 0.0 and hi == math.inf

    def test_spanning_tree_of_complete_graph(self):
        n = 8
        g = unit(complete_graph(n))
        h = unit([(0, i) for i in range(1, n)])  # star
        lo, hi = pencil_eigenvalue_range(n, g, h)
        # star of K_n: quadratic forms differ by at most factor n
        assert 0 < lo <= hi <= n + 1e-9

    def test_is_spectral_sparsifier(self):
        edges = gnm_random_graph(10, 30, seed=4)
        assert is_spectral_sparsifier(10, unit(edges), unit(edges), 0.01)
        h = {e: 1.3 for e in edges}
        assert not is_spectral_sparsifier(10, unit(edges), h, 0.1)
        assert is_spectral_sparsifier(10, unit(edges), h, 0.5)

    def test_empty_graphs(self):
        assert pencil_eigenvalue_range(4, {}, {}) == (1.0, 1.0)


class TestCuts:
    def test_cut_weight(self):
        w = {(0, 1): 2.0, (1, 2): 3.0, (0, 2): 5.0}
        assert cut_weight(w, {0}) == 7.0
        assert cut_weight(w, {1}) == 5.0
        assert cut_weight(w, {0, 1}) == 8.0

    def test_max_cut_error(self):
        g = unit([(0, 1), (1, 2)])
        h = {(0, 1): 1.0, (1, 2): 2.0}
        err = max_cut_error(3, g, h, [{0}, {2}, {0, 2}])
        assert err == pytest.approx(0.5)  # cut {2}: 1 vs 2

    def test_one_sided_zero_cut_is_inf(self):
        g = unit([(0, 1)])
        h = {}
        assert max_cut_error(2, g, h, [{0}]) == math.inf

    def test_spectral_implies_cut(self):
        """Every (1±ε)-spectral sparsifier is a (1±ε)-cut sparsifier (the
        paper's indicator-vector remark)."""
        rng = np.random.default_rng(5)
        n = 9
        edges = gnm_random_graph(n, 22, seed=5)
        h = {e: float(w) for e, w in zip(edges, rng.uniform(0.9, 1.1, len(edges)))}
        lo, hi = pencil_eigenvalue_range(n, unit(edges), h)
        cuts = [set(np.flatnonzero(rng.random(n) < 0.5).tolist())
                for _ in range(40)]
        cuts = [c for c in cuts if c and len(c) < n]
        err = max_cut_error(n, unit(edges), h, cuts)
        # every cut ratio lies within the pencil eigenvalue range
        assert err <= max(1.0 - lo, hi - 1.0) + 1e-9

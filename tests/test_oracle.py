"""Tests for the differential fuzzing oracle (``repro.oracle``).

Covers the invariant checkers, the per-batch oracle loop, the ddmin
shrinker, the pytest-case emitter, the campaign driver, and the serving
engine's ``self_check`` integration — including that the oracle actually
*catches* injected bugs, not only that it stays quiet on correct code.
"""

import pytest

from repro.graph.generators import gnm_random_graph
from repro.oracle import (
    STRUCTURES,
    Divergence,
    FuzzConfig,
    Violation,
    check_workload,
    emit_pytest_case,
    make_adapter,
    run_fuzz,
    shrink_workload,
    verify_service,
    write_pytest_case,
)
from repro.oracle.adapters import OracleAdapter
from repro.oracle.invariants import (
    check_forest,
    check_output_subset,
    check_same_components,
    check_spanner_stretch,
    check_size,
    depth_envelope,
    recourse_envelope,
    size_envelope_spanner,
    size_envelope_ultrasparse,
)
from repro.oracle.shrink import shrink_divergence
from repro.workloads import (
    UpdateBatch,
    Workload,
    deletion_stream,
    insertion_stream,
    mixed_stream,
)


# -- invariant checkers ------------------------------------------------------


class TestInvariantCheckers:
    def test_output_subset(self):
        assert check_output_subset({(0, 1), (1, 2)}, {(0, 1)}) is None
        v = check_output_subset({(0, 1)}, {(0, 1), (2, 3)})
        assert v is not None and v.kind == "output-not-subgraph"
        assert "(2, 3)" in v.detail

    def test_same_components_accepts_spanning_subgraph(self):
        graph = {(0, 1), (1, 2), (0, 2), (3, 4)}
        assert check_same_components(5, graph, {(0, 1), (1, 2), (3, 4)}) \
            is None

    def test_same_components_detects_split(self):
        graph = {(0, 1), (1, 2)}
        v = check_same_components(3, graph, {(0, 1)})  # 2 is cut off
        assert v is not None and v.kind == "connectivity"

    def test_same_components_detects_merge(self):
        # output not a subgraph: it merges two graph components
        v = check_same_components(4, {(0, 1), (2, 3)},
                                  {(0, 1), (1, 2), (2, 3)})
        assert v is not None and v.kind == "connectivity"

    def test_forest_accepts_spanning_forest(self):
        graph = {(0, 1), (1, 2), (0, 2), (3, 4)}
        assert check_forest(5, graph, {(0, 1), (1, 2), (3, 4)}) is None

    def test_forest_rejects_cycle(self):
        graph = {(0, 1), (1, 2), (0, 2)}
        v = check_forest(3, graph, {(0, 1), (1, 2), (0, 2)})
        assert v is not None and v.kind == "forest-cycle"

    def test_forest_rejects_non_spanning(self):
        graph = {(0, 1), (1, 2)}
        v = check_forest(3, graph, {(0, 1)})
        assert v is not None and v.kind == "forest-not-spanning"

    def test_stretch_detects_disconnection(self):
        graph = {(0, 1), (1, 2)}
        v = check_spanner_stretch(3, graph, {(0, 1)}, stretch=3)
        assert v is not None and v.kind == "stretch"

    def test_stretch_accepts_detour_within_bound(self):
        # triangle: dropping one edge leaves a 2-hop detour, fine for k>=2
        graph = {(0, 1), (1, 2), (0, 2)}
        assert check_spanner_stretch(3, graph, {(0, 1), (1, 2)}, 3) is None

    def test_stretch_caps_at_n(self):
        # claimed stretch beyond n-1 degenerates to connectivity
        graph = {(0, 1), (1, 2)}
        assert check_spanner_stretch(3, graph, graph, stretch=10 ** 6) \
            is None

    def test_size_envelopes_monotone_and_generous(self):
        assert check_size(10, size_envelope_spanner(20, 2)) is None
        v = check_size(10 ** 6, size_envelope_spanner(20, 2))
        assert v is not None and v.kind == "size-envelope"
        assert size_envelope_spanner(100, 2) > size_envelope_spanner(50, 2)
        assert size_envelope_ultrasparse(100, 2.0) \
            > size_envelope_ultrasparse(100, 4.0)
        assert recourse_envelope(50, 2, 100, 30) > 30
        assert depth_envelope(50) > depth_envelope(10)


# -- check_workload: clean runs + error reporting ----------------------------


class TestCheckWorkload:
    @pytest.mark.parametrize("structure", sorted(STRUCTURES))
    def test_clean_on_seeded_workload(self, structure):
        if STRUCTURES[structure].deletions_only:
            wl = deletion_stream(16, 40, batch_size=5, seed=3)
        else:
            wl = mixed_stream(16, 40, batch_size=5, num_batches=8, seed=3)
        assert check_workload(structure, wl, seed=7, deep_every=1) is None

    def test_unknown_structure_is_a_crash_divergence(self):
        wl = insertion_stream(6, 5, batch_size=5, seed=0)
        div = check_workload("no-such-structure", wl)
        assert div is not None and div.violation.kind == "crash"

    def test_illegal_workload_reported_with_batch_index(self):
        wl = Workload(4, [], [
            UpdateBatch(insertions=[(0, 1)]),
            UpdateBatch(deletions=[(2, 3)]),  # absent
        ])
        div = check_workload("hdt", wl)
        assert div is not None
        assert div.violation.kind == "illegal-workload"
        assert div.violation.batch_index == 1

    def test_make_adapter_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown structure"):
            make_adapter("nope", 4, [])


# -- injected bugs: the oracle must catch a lying adapter --------------------


class _ForgetfulSetAdapter(OracleAdapter):
    """Identity dynamic set with an injected delta bug: deletions touching
    vertex 0 are applied internally but omitted from the reported delta."""

    name = "buggy-set"

    def _build(self, n, edges, seed):
        self._edges = set(edges)

    def _apply(self, batch):
        dels = set(batch.deletions)
        ins = set(batch.insertions)
        self._edges -= dels
        self._edges |= ins
        return ins, {e for e in dels if 0 not in e}

    def output_edges(self):
        return set(self._edges)


class TestOracleCatchesInjectedBugs:
    @pytest.fixture
    def buggy_registry(self, monkeypatch):
        monkeypatch.setitem(STRUCTURES, "buggy-set", _ForgetfulSetAdapter)

    def test_delta_drift_detected(self, buggy_registry):
        wl = deletion_stream(8, 16, batch_size=3, seed=2)
        div = check_workload("buggy-set", wl)
        assert div is not None
        assert div.violation.kind == "delta-drift"

    def test_shrink_minimizes_to_one_op(self, buggy_registry):
        wl = deletion_stream(10, 30, batch_size=4, seed=5)
        div = check_workload("buggy-set", wl)
        assert div is not None
        small = shrink_divergence(div)
        assert small.violation.kind == "delta-drift"
        # minimal reproducer: one batch deleting one vertex-0 edge of a
        # one-edge graph, compacted to two vertices
        assert len(small.workload.batches) == 1
        assert small.workload.total_updates == 1
        assert len(small.workload.initial_edges) == 1
        assert small.workload.n == 2
        assert small.shrink_stats["predicate_evals"] > 0

    def test_emitted_case_is_runnable(self, buggy_registry, tmp_path):
        wl = deletion_stream(8, 16, batch_size=3, seed=2)
        div = shrink_divergence(check_workload("buggy-set", wl))
        src = emit_pytest_case(div)
        compile(src, "<emitted>", "exec")  # valid module
        assert "buggy-set" in src and "delta_drift" in src
        path = write_pytest_case(div, tmp_path)
        assert path.name.startswith("test_fuzz_buggy_set_delta_drift")
        # the emitted test fails while the bug exists (that is its job)
        ns: dict = {}
        exec(compile(path.read_text(), str(path), "exec"), ns)
        (test_fn,) = [v for k, v in ns.items() if k.startswith("test_")]
        with pytest.raises(AssertionError, match="delta-drift"):
            test_fn()

    def test_emitted_case_passes_once_fixed(self):
        # a divergence whose workload no longer fails (bug fixed): the
        # emitted regression test must pass
        wl = deletion_stream(8, 16, batch_size=3, seed=2)
        fake = Divergence(
            "hdt", {}, wl, Violation("delta-drift", "fixed"), seed=1
        )
        ns: dict = {}
        exec(compile(emit_pytest_case(fake), "<emitted>", "exec"), ns)
        (test_fn,) = [v for k, v in ns.items() if k.startswith("test_")]
        test_fn()  # no divergence -> no assert


# -- shrinker on a synthetic predicate ---------------------------------------


class TestShrinkWorkload:
    def test_ddmin_reaches_minimal_core(self):
        wl = deletion_stream(12, 30, batch_size=4, seed=9)

        def still_fails(cand):
            return any(
                (0, 1) in b.deletions or (1, 0) in b.deletions
                for b in cand.batches
            )

        if not still_fails(wl):  # ensure the target edge is in the stream
            wl.initial_edges.append((0, 1))
            wl.batches.append(UpdateBatch(deletions=[(0, 1)]))
        small, stats = shrink_workload(wl, still_fails)
        assert still_fails(small)
        assert small.total_updates == 1
        assert len(small.initial_edges) == 1  # legality keeps (0,1) initial
        assert small.n == 2  # vertex compaction relabeled to {0, 1}
        assert 0 < stats["predicate_evals"] <= stats["budget"]

    def test_budget_degrades_to_partial_shrink(self):
        wl = deletion_stream(12, 30, batch_size=4, seed=9)

        def still_fails(cand):
            return cand.total_updates >= 1

        small, stats = shrink_workload(wl, still_fails, budget=3)
        assert still_fails(small)  # never returns a passing workload
        assert stats["predicate_evals"] <= 3


# -- campaign driver ---------------------------------------------------------


class TestRunFuzz:
    def test_small_campaign_clean_and_deterministic(self):
        cfg = FuzzConfig(seeds=2, max_n=20)
        r1 = run_fuzz(cfg)
        r2 = run_fuzz(cfg)
        assert r1.ok and r2.ok
        assert set(r1.stats) == set(STRUCTURES)
        assert [s.ops for s in r1.stats.values()] \
            == [s.ops for s in r2.stats.values()]
        rows = r1.rows()
        assert all(row["divergences"] == 0 for row in rows)
        assert all(row["ops"] > 0 for row in rows)

    def test_time_budget_truncates(self):
        cfg = FuzzConfig(seeds=50, time_budget=0.0)
        report = run_fuzz(cfg)
        assert sum(s.workloads for s in report.stats.values()) <= 1

    def test_structure_subset(self):
        cfg = FuzzConfig(seeds=1, structures=("hdt",))
        report = run_fuzz(cfg)
        assert list(report.stats) == ["hdt"]

    def test_cli_fuzz_smoke(self, capsys):
        from repro.cli import main

        rc = main(["fuzz", "--seeds", "1", "--structures", "hdt,dynamizer",
                   "--max-n", "16"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no divergences" in out

    def test_cli_fuzz_rejects_unknown_structure(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--structures", "nope"]) == 2


# -- serving-engine integration ----------------------------------------------


def _service(n=24, m=60, seed=11):
    from repro.service import (
        BatcherConfig,
        LocalExecutor,
        ServiceConfig,
        SpannerService,
    )

    edges = gnm_random_graph(n, m, seed=seed)
    spec = {"kind": "spanner", "n": n, "edges": edges, "seed": seed,
            "k": 2, "base_capacity": 16}
    svc = SpannerService(
        LocalExecutor(spec),
        config=ServiceConfig(
            batcher=BatcherConfig(max_batch=8, max_delay=10.0)
        ),
        clock=lambda: 0.0,
    )
    return svc, edges


class TestServiceSelfCheck:
    def test_clean_service_verifies(self):
        svc, edges = _service()
        for e in edges[:10]:
            svc.submit_update("delete", *e)
        svc.submit_update("insert", *edges[0])
        result = svc.self_check(deep=True)
        assert result.ok, str(result)
        assert "OK" in str(result)

    def test_corrupted_snapshot_detected(self):
        svc, edges = _service()
        for e in edges[:5]:
            svc.submit_update("delete", *e)
        svc.flush()
        svc._snapshot.add((0, 1023))  # corrupt the served view
        result = verify_service(svc, svc.executor)
        assert not result.ok
        assert any(v.kind == "snapshot-drift" for v in result.violations)
        assert "FAILED" in str(result)

    def test_corrupted_batch_log_detected(self):
        svc, edges = _service()
        for e in edges[:5]:
            svc.submit_update("delete", *e)
        svc.flush()
        # tamper with the applied-batch log: replaying it must now diverge
        svc.executor.applied_batches.append(
            UpdateBatch(deletions=[edges[6]])
        )
        result = verify_service(svc, svc.executor)
        assert not result.ok
        kinds = {v.kind for v in result.violations}
        assert kinds & {"snapshot-drift", "live-drift", "queue-drift"}

    def test_run_serve_reports_verification(self):
        from repro.service import ServeConfig, run_serve

        report = run_serve(
            ServeConfig(n=32, m=96, requests=400, shards=2,
                        processes=False),
            verify=True,
        )
        assert report.verified, str(report.verification)
        assert report.verification.ok

"""Tests for the fully-dynamic (2k−1)-spanner (Theorem 1.1)."""

import random

import pytest

from repro.graph import DynamicGraph, gnm_random_graph
from repro.spanner.fully_dynamic import FullyDynamicSpanner
from repro.verify.stretch import is_spanner


class TestBasics:
    def test_initial_spanner(self):
        n, m, k = 30, 100, 2
        edges = gnm_random_graph(n, m, seed=1)
        sp = FullyDynamicSpanner(n, edges, k=k, seed=1)
        assert is_spanner(n, edges, sp.spanner_edges(), sp.stretch)
        sp.check_invariants()

    def test_empty_start_insert_only(self):
        sp = FullyDynamicSpanner(10, k=2, seed=4)
        ins, dels = sp.insert_batch([(0, 1), (1, 2), (2, 3)])
        assert sp.spanner_edges() == {(0, 1), (1, 2), (2, 3)}
        assert ins == {(0, 1), (1, 2), (2, 3)} and not dels

    def test_stretch_property(self):
        assert FullyDynamicSpanner(5, k=4, seed=0).stretch == 7

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            FullyDynamicSpanner(5, k=0)

    def test_small_base_capacity_forces_decremental_levels(self):
        """With a tiny base capacity the dynamizer must actually exercise
        the decremental spanner instances."""
        n, m, k = 25, 120, 2
        edges = gnm_random_graph(n, m, seed=3)
        sp = FullyDynamicSpanner(n, edges, k=k, seed=3, base_capacity=4)
        assert max(sp.level_sizes()) >= 2
        assert is_spanner(n, edges, sp.spanner_edges(), sp.stretch)
        sp.check_invariants()


class TestMixedUpdateStream:
    @pytest.mark.parametrize("seed,k", [(0, 2), (1, 3), (2, 2), (3, 4)])
    def test_spanner_valid_through_stream(self, seed, k):
        rng = random.Random(seed)
        n = 18
        universe = [(u, v) for u in range(n) for v in range(u + 1, n)]
        g = DynamicGraph(n)
        sp = FullyDynamicSpanner(n, k=k, seed=seed, base_capacity=4)
        spanner: set = set()
        for step in range(30):
            absent = [e for e in universe if e not in g]
            ins = rng.sample(absent, min(len(absent), rng.randrange(0, 8)))
            present = sorted(g.edges())
            dels = rng.sample(present, min(len(present), rng.randrange(0, 6)))
            d_ins, d_dels = sp.update(insertions=ins, deletions=dels)
            g.insert_batch(ins)
            g.delete_batch(dels)
            spanner = (spanner - d_dels) | d_ins
            assert spanner == sp.spanner_edges()
            assert sp.m == g.m
            assert is_spanner(n, g.edge_set(), spanner, sp.stretch), (
                f"seed={seed} step={step}"
            )
            sp.check_invariants()

    def test_delete_everything_then_rebuild(self):
        n, k = 15, 2
        edges = gnm_random_graph(n, 50, seed=9)
        sp = FullyDynamicSpanner(n, edges, k=k, seed=9, base_capacity=4)
        sp.delete_batch(edges)
        assert sp.spanner_edges() == set()
        assert sp.m == 0
        edges2 = gnm_random_graph(n, 30, seed=10)
        sp.insert_batch(edges2)
        assert is_spanner(n, edges2, sp.spanner_edges(), sp.stretch)


class TestSizeBound:
    def test_spanner_much_smaller_than_dense_graph(self):
        import math

        n, k = 60, 2
        m = n * (n - 1) // 2  # complete graph
        edges = gnm_random_graph(n, m, seed=5)
        sp = FullyDynamicSpanner(n, edges, k=k, seed=5, base_capacity=64)
        # Theorem 1.1: O(n^{1+1/k} log n) expected; generous constant 8.
        bound = 8 * n ** (1 + 1 / k) * math.log2(n)
        assert sp.spanner_size() <= bound
        assert sp.spanner_size() < m / 2  # actually sparsifies

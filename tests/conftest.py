"""Shared test configuration.

Hypothesis is derandomized so the released suite is fully reproducible:
every run explores the same example set.  (During development, run with
``HYPOTHESIS_PROFILE=explore`` to search fresh examples.)
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "explore",
    derandomize=False,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))

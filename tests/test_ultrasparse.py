"""Tests for the ultra-sparse spanner (Theorem 1.4) and its head rules."""

import math
import random

import pytest

from repro.graph import DynamicGraph, gnm_random_graph, grid_graph
from repro.ultrasparse import (
    BOTTOM,
    UltraSparseSpannerDynamic,
    compute_all_heads,
    compute_head_heavy,
    threshold,
)
from repro.verify.stretch import is_spanner, spanner_stretch


class TestThreshold:
    def test_values(self):
        assert threshold(2) == 20
        assert threshold(4) == 80
        assert threshold(2) >= 2


class TestHeavyRule:
    def test_sampled_vertex_heads_itself(self):
        info = compute_head_heavy(0, {1, 2}, [0, 1, 1], [0.5, 0.1, 0.2])
        assert info.head == 0 and info.par is None

    def test_min_rand_sampled_neighbor(self):
        info = compute_head_heavy(0, {1, 2}, [1, 0, 0], [0.5, 0.3, 0.1])
        assert info.head == 2 and info.par == 2 and info.dist == 1

    def test_no_sampled_neighbor_joins_dprime(self):
        info = compute_head_heavy(0, {1, 2}, [1, 1, 1], [0.5, 0.3, 0.1])
        assert info.head == 0 and info.par is None


class TestStaticHeads:
    def test_light_finds_sampled_within_radius(self):
        # path graph, all light; vertex 4 sampled
        n = 6
        adj = [set() for _ in range(n)]
        for i in range(n - 1):
            adj[i].add(i + 1)
            adj[i + 1].add(i)
        unmark = [1, 1, 1, 1, 0, 1]
        rand = [0.1 * i for i in range(n)]
        infos = compute_all_heads(n, adj, unmark, rand, x=2.0)
        assert all(i.head == 4 for i in infos)
        # parents point along the path toward 4
        assert infos[0].par == 1 and infos[5].par == 4
        assert infos[4].par is None

    def test_no_candidates_gives_bottom(self):
        n = 3
        adj = [set() for _ in range(n)]
        adj[0].add(1)
        adj[1].update({0, 2})
        adj[2].add(1)
        infos = compute_all_heads(n, adj, [1, 1, 1], [0.1, 0.2, 0.3], x=2.0)
        assert all(i.head == BOTTOM for i in infos)

    def test_light_uses_heavy_head_as_candidate(self):
        # star center 0 (heavy), leaf 1 sampled, plus a light tail 2-3
        # attached to the star center.
        x = 2.0
        t = threshold(x)  # 20
        n = t + 4
        adj = [set() for _ in range(n)]
        for leaf in range(1, t + 1):
            adj[0].add(leaf)
            adj[leaf].add(0)
        adj[0].add(t + 1)
        adj[t + 1].update({0, t + 2})
        adj[t + 2].add(t + 1)
        unmark = [1] * n
        unmark[1] = 0  # only vertex 1 is sampled
        rand = [(i * 0.37) % 1.0 for i in range(n)]
        infos = compute_all_heads(n, adj, unmark, rand, x=x)
        assert len(adj[0]) >= t  # heavy center
        assert infos[0].head == 1  # sampled neighbor
        # the tail vertex t+2 is light; its BFS reaches heavy 0 (distance 2
        # via t+1) and uses HEAD(0) = 1
        assert infos[t + 2].head == 1


class TestDynamicMatchesStatic:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_stream(self, seed):
        rng = random.Random(seed)
        n = 14
        universe = [(u, v) for u in range(n) for v in range(u + 1, n)]
        sp = UltraSparseSpannerDynamic(
            n, x=2.0, seed=seed, inner_rates=[2.0], k_final=2,
            base_capacity=4,
        )
        g = DynamicGraph(n)
        spanner: set = set()
        for step in range(20):
            absent = [e for e in universe if e not in g]
            ins = rng.sample(absent, min(len(absent), rng.randrange(0, 6)))
            present = sorted(g.edges())
            dels = rng.sample(present, min(len(present), rng.randrange(0, 4)))
            d_ins, d_dels = sp.update(insertions=ins, deletions=dels)
            g.insert_batch(ins)
            g.delete_batch(dels)
            spanner = (spanner - d_dels) | d_ins
            assert spanner == sp.spanner_edges(), f"step {step}"
            assert spanner <= g.edge_set()
            sp.check_invariants()

    def test_spanner_property_through_stream(self):
        rng = random.Random(31)
        n = 18
        universe = [(u, v) for u in range(n) for v in range(u + 1, n)]
        sp = UltraSparseSpannerDynamic(
            n, x=2.0, seed=31, inner_rates=[2.0], k_final=2, base_capacity=4
        )
        g = DynamicGraph(n)
        for step in range(15):
            absent = [e for e in universe if e not in g]
            ins = rng.sample(absent, min(len(absent), rng.randrange(0, 8)))
            present = sorted(g.edges())
            dels = rng.sample(present, min(len(present), rng.randrange(0, 4)))
            sp.update(insertions=ins, deletions=dels)
            g.insert_batch(ins)
            g.delete_batch(dels)
            assert is_spanner(
                n, g.edge_set(), sp.spanner_edges(), sp.stretch_bound()
            ), f"step {step}"

    def test_heavy_vertices_appear(self):
        """A dense enough graph must actually exercise the heavy path."""
        n = 60
        edges = gnm_random_graph(n, 800, seed=4)  # avg degree ~ 26 > 20
        sp = UltraSparseSpannerDynamic(
            n, edges, x=2.0, seed=4, inner_rates=[2.0], k_final=2,
            base_capacity=8,
        )
        assert any(sp._is_heavy(v) for v in range(n))
        sp.check_invariants()
        assert is_spanner(n, edges, sp.spanner_edges(), sp.stretch_bound())

    def test_grid_all_light(self):
        edges = grid_graph(5, 6)
        n = 30
        sp = UltraSparseSpannerDynamic(
            n, edges, x=2.0, seed=9, inner_rates=[2.0], k_final=2,
            base_capacity=4,
        )
        assert not any(sp._is_heavy(v) for v in range(n))
        sp.check_invariants()
        assert is_spanner(n, edges, sp.spanner_edges(), sp.stretch_bound())


class TestSizeClaim:
    def test_ultra_sparse_size(self):
        """Theorem 1.4: at most n + O(n/x) edges.  On a dense graph the
        spanner must be close to a spanning tree."""
        n = 150
        m = n * (n - 1) // 4
        edges = gnm_random_graph(n, m, seed=12)
        sp = UltraSparseSpannerDynamic(n, edges, x=3.0, seed=12)
        size = sp.spanner_size()
        assert size <= n + 8 * n / 3.0
        assert size < m / 10

    def test_invalid_x(self):
        with pytest.raises(ValueError):
            UltraSparseSpannerDynamic(5, x=1.5)

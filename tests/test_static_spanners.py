"""Tests for the static spanner baselines (Baswana–Sen, MPVX)."""

import math

import pytest

from repro.graph import (
    complete_graph,
    gnm_random_graph,
    grid_graph,
    ring_of_cliques,
)
from repro.spanner import baswana_sen_spanner, mpvx_spanner
from repro.verify.stretch import is_spanner, spanner_stretch


class TestBaswanaSen:
    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize("seed", range(4))
    def test_stretch_guarantee(self, k, seed):
        n, m = 30, 120
        edges = gnm_random_graph(n, m, seed=seed)
        h = baswana_sen_spanner(n, edges, k=k, seed=seed)
        assert is_spanner(n, edges, h, 2 * k - 1), f"k={k} seed={seed}"

    def test_k1_identity(self):
        edges = gnm_random_graph(10, 20, seed=0)
        assert baswana_sen_spanner(10, edges, k=1, seed=0) == set(edges)

    def test_size_on_complete_graph(self):
        n, k = 40, 2
        edges = complete_graph(n)
        sizes = [
            len(baswana_sen_spanner(n, edges, k=k, seed=s)) for s in range(5)
        ]
        avg = sum(sizes) / len(sizes)
        # expected O(k n^{1+1/k}); generous constant
        assert avg <= 6 * k * n ** (1 + 1 / k)
        assert avg < len(edges) / 2

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            baswana_sen_spanner(5, [], k=0)

    def test_grid(self):
        edges = grid_graph(6, 6)
        h = baswana_sen_spanner(36, edges, k=3, seed=1)
        assert is_spanner(36, edges, h, 5)


class TestMPVX:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    @pytest.mark.parametrize("seed", range(4))
    def test_las_vegas_stretch_guarantee(self, k, seed):
        n, m = 30, 120
        edges = gnm_random_graph(n, m, seed=seed + 50)
        h = mpvx_spanner(n, edges, k=k, seed=seed, las_vegas=True)
        assert is_spanner(n, edges, h, 2 * k - 1), f"k={k} seed={seed}"

    def test_monte_carlo_is_still_a_subgraph_spanner_of_some_stretch(self):
        n, m, k = 25, 100, 3
        edges = gnm_random_graph(n, m, seed=7)
        h = mpvx_spanner(n, edges, k=k, seed=7, las_vegas=False)
        assert h <= set(edges)
        assert math.isfinite(spanner_stretch(n, edges, h))

    def test_size_on_complete_graph(self):
        n, k = 40, 2
        edges = complete_graph(n)
        sizes = [len(mpvx_spanner(n, edges, k=k, seed=s)) for s in range(5)]
        avg = sum(sizes) / len(sizes)
        assert avg <= 8 * n ** (1 + 1 / k)

    def test_ring_of_cliques(self):
        edges = ring_of_cliques(5, 6)
        h = mpvx_spanner(30, edges, k=2, seed=3)
        assert is_spanner(30, edges, h, 3)
        assert len(h) < len(edges)

    def test_empty_graph(self):
        assert mpvx_spanner(5, [], k=2, seed=0) == set()

"""Unit tests for the work/depth cost model."""

import pytest

from repro.pram import NULL_COST_MODEL, Cost, CostModel, brent_time, log2ceil


class TestCharge:
    def test_sequential_charges_accumulate(self):
        cm = CostModel()
        cm.charge(work=3)
        cm.charge(work=2, depth=1)
        assert cm.work == 5
        assert cm.depth == 4  # 3 (defaulted) + 1

    def test_depth_defaults_to_work(self):
        cm = CostModel()
        cm.charge(work=7)
        assert cm.depth == 7

    def test_tree_op_charge(self):
        cm = CostModel()
        cm.charge_tree_op(size=1024, count=5)
        assert cm.work == 5 * 10
        assert cm.depth == 10  # batched

    def test_hash_op_charge(self):
        cm = CostModel()
        cm.charge_hash_op(count=100)
        assert cm.work == 100
        assert cm.depth == 1

    def test_reset(self):
        cm = CostModel()
        cm.charge(work=5)
        cm.reset()
        assert cm.work == 0 and cm.depth == 0


class TestAggregateCharging:
    def test_pfor_cost_equals_uniform_parallel_region(self):
        explicit, aggregate = CostModel(), CostModel()
        with explicit.parallel() as par:
            for _ in range(7):
                with par.task():
                    explicit.charge(work=3, depth=2)
        aggregate.pfor_cost(7, 3, depth=2)
        assert (explicit.work, explicit.depth) == (21, 2)
        assert (aggregate.work, aggregate.depth) == (21, 2)

    def test_pfor_cost_depth_defaults_to_per_item_work(self):
        cm = CostModel()
        cm.pfor_cost(5, 4)
        assert cm.work == 20 and cm.depth == 4

    def test_pfor_cost_empty_round_is_free(self):
        cm = CostModel()
        cm.pfor_cost(0, 100, depth=3)
        assert cm.work == 0 and cm.depth == 0

    def test_charge_many_equals_sequential_hash_ops(self):
        explicit, aggregate = CostModel(), CostModel()
        for _ in range(6):
            explicit.charge_hash_op()
        aggregate.charge_many(work=6, depth=6)
        assert (explicit.work, explicit.depth) == (6, 6)
        assert (aggregate.work, aggregate.depth) == (6, 6)

    def test_aggregate_charges_land_in_enclosing_frame(self):
        cm = CostModel()
        with cm.frame() as fr:
            cm.pfor_cost(4, 2, depth=1)
            cm.charge_many(work=3, depth=3)
        assert fr.work == 11 and fr.depth == 4
        assert cm.work == 11 and cm.depth == 4

    def test_null_model_ignores_aggregate_charges(self):
        NULL_COST_MODEL.charge_many(work=50, depth=50)
        NULL_COST_MODEL.pfor_cost(10, 5, depth=1)
        assert NULL_COST_MODEL.work == 0
        assert NULL_COST_MODEL.depth == 0


class TestResetSafety:
    def test_reset_inside_frame_raises(self):
        cm = CostModel()
        with cm.frame():
            cm.charge(work=2)
            with pytest.raises(RuntimeError, match="open"):
                cm.reset()
        # the region unwound normally and the model is still usable
        assert cm.work == 2
        cm.reset()
        cm.charge(work=3)
        assert cm.work == 3 and cm.depth == 3

    def test_reset_inside_parallel_task_raises(self):
        cm = CostModel()
        with cm.parallel() as par:
            with par.task():
                cm.charge(work=1)
                with pytest.raises(RuntimeError, match="exit them first"):
                    cm.reset()
        assert cm.work == 1

    def test_reset_error_counts_open_regions(self):
        cm = CostModel()
        with cm.frame(), cm.frame():
            with pytest.raises(RuntimeError, match="2 open"):
                cm.reset()


class TestParallel:
    def test_parallel_sums_work_maxes_depth(self):
        cm = CostModel()
        with cm.parallel() as par:
            for d in (3, 7, 2):
                with par.task():
                    cm.charge(work=d, depth=d)
        assert cm.work == 12
        assert cm.depth == 7

    def test_nested_parallel(self):
        cm = CostModel()
        with cm.parallel() as outer:
            with outer.task():
                with cm.parallel() as inner:
                    for _ in range(4):
                        with inner.task():
                            cm.charge(work=5, depth=5)
            with outer.task():
                cm.charge(work=100, depth=2)
        assert cm.work == 120
        assert cm.depth == 5  # max(inner depth 5, 2)

    def test_sequential_then_parallel_composes(self):
        cm = CostModel()
        cm.charge(work=1, depth=1)
        with cm.parallel() as par:
            with par.task():
                cm.charge(work=4, depth=4)
        cm.charge(work=1, depth=1)
        assert cm.depth == 6

    def test_pfor_returns_results(self):
        cm = CostModel()
        out = cm.pfor(range(5), lambda x: x * x)
        assert out == [0, 1, 4, 9, 16]

    def test_parallel_map(self):
        cm = CostModel()
        with cm.parallel() as par:
            out = par.map([1, 2, 3], lambda x: x + 1)
        assert out == [2, 3, 4]

    def test_empty_parallel_region_is_free(self):
        cm = CostModel()
        with cm.parallel():
            pass
        assert cm.work == 0 and cm.depth == 0


class TestFrame:
    def test_frame_measures_subcomputation(self):
        cm = CostModel()
        cm.charge(work=2)
        with cm.frame() as fr:
            cm.charge(work=5, depth=3)
        assert fr.work == 5 and fr.depth == 3
        assert cm.work == 7 and cm.depth == 5

    def test_frame_with_parallel_inside(self):
        cm = CostModel()
        with cm.frame() as fr:
            with cm.parallel() as par:
                for _ in range(3):
                    with par.task():
                        cm.charge(work=4, depth=4)
        assert fr.work == 12 and fr.depth == 4


class TestNullModel:
    def test_null_records_nothing(self):
        NULL_COST_MODEL.charge(work=100)
        NULL_COST_MODEL.charge_tree_op(1000, count=10)
        with NULL_COST_MODEL.parallel() as par:
            with par.task():
                NULL_COST_MODEL.charge(work=9)
        assert NULL_COST_MODEL.work == 0
        assert NULL_COST_MODEL.depth == 0


class TestBrent:
    def test_one_processor_is_work_plus_depth(self):
        assert brent_time(Cost(100, 10), 1) == 110.0

    def test_many_processors_approaches_depth(self):
        assert brent_time(Cost(1000, 7), 10**9) == pytest.approx(7.0, abs=1e-5)

    @pytest.mark.parametrize("processors", [0, -1, -100])
    def test_invalid_processors(self, processors):
        # regression: p=0 used to ZeroDivisionError and p<0 returned a
        # nonsensical negative time; both must be a ValueError
        with pytest.raises(ValueError, match="processors"):
            brent_time(Cost(1, 1), processors)


class TestLog2Ceil:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, 1), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (1024, 10)],
    )
    def test_values(self, n, expected):
        assert log2ceil(n) == expected


class TestExceptionSafety:
    def test_frame_propagates_cost_on_exception(self):
        cm = CostModel()
        with pytest.raises(RuntimeError):
            with cm.frame():
                cm.charge(work=5)
                raise RuntimeError("boom")
        # the stack is restored and the work already done is accounted
        assert cm.work == 5
        cm.charge(work=1)
        assert cm.work == 6

    def test_task_pops_frame_on_exception(self):
        cm = CostModel()
        with pytest.raises(ValueError):
            with cm.parallel() as par:
                with par.task():
                    cm.charge(work=3)
                    raise ValueError("boom")
        # the task frame was popped; subsequent charges hit the root
        cm.charge(work=2)
        assert cm.work >= 2

    def test_nested_frames_unwind_cleanly(self):
        cm = CostModel()
        try:
            with cm.frame():
                with cm.frame():
                    cm.charge(work=1)
                    raise KeyError("x")
        except KeyError:
            pass
        assert len(cm._stack) == 1


class TestBackendRouting:
    """set_backend decouples execution from charging (repro.parallel)."""

    class _Recorder:
        """Minimal ExecutionBackend stand-in: runs inline via absorb."""

        def __init__(self):
            self.calls = 0

        def map_scope(self, model, scope, items, fn):
            self.calls += 1
            out = []
            for item in items:
                out.append(fn(item))
                scope.absorb(2, 1)  # pretend each branch charged (2, 1)
            return out

    def test_default_is_inline(self):
        assert CostModel().backend is None

    def test_map_routes_through_backend(self):
        cm = CostModel()
        rec = self._Recorder()
        cm.set_backend(rec)
        assert cm.backend is rec
        out = cm.pfor([1, 2, 3], lambda x: x + 1)
        assert out == [2, 3, 4]
        assert rec.calls == 1
        assert (cm.work, cm.depth) == (6, 1)  # sum works, max depths
        cm.set_backend(None)
        assert cm.backend is None
        cm.pfor([1], lambda x: x)
        assert rec.calls == 1  # no longer routed

    def test_backend_is_per_model(self):
        cm = CostModel()
        cm.set_backend(self._Recorder())
        assert CostModel().backend is None

    def test_absorb_matches_task(self):
        by_task, by_absorb = CostModel(), CostModel()
        with by_task.parallel() as par:
            for w, d in [(3, 2), (5, 1), (1, 4)]:
                with par.task():
                    by_task.charge_many(w, d)
        with by_absorb.parallel() as par:
            for w, d in [(1, 4), (3, 2), (5, 1)]:  # any order
                par.absorb(w, d)
        assert (by_task.work, by_task.depth) \
            == (by_absorb.work, by_absorb.depth) == (9, 4)

"""Tests for the batch-dynamic Even–Shiloach tree (Theorem 1.2).

The Las Vegas oracle: after any deletion batch, the maintained distances
must equal a fresh bounded BFS on the remaining graph, and the tree edges
must form a valid shortest-path tree.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfs import BatchDynamicESTree, bounded_bfs_directed
from repro.pram import CostModel


def directed_adj(n, edges):
    adj = [[] for _ in range(n)]
    for u, v in edges:
        adj[u].append(v)
    return adj


def reference_dist(n, edges, source, limit):
    return bounded_bfs_directed(n, directed_adj(n, edges), source, limit)


def check_tree_valid(tree, n, edges_alive, source, limit):
    """Parents must be alive edges one level up; every vertex within the
    limit except the source must have a parent."""
    alive = set(edges_alive)
    dist = reference_dist(n, list(alive), source, limit)
    for v in range(n):
        if v == source:
            assert tree.parent_of(v) is None
            continue
        if dist[v] <= limit:
            p = tree.parent_of(v)
            assert p is not None, f"vertex {v} at dist {dist[v]} unparented"
            assert (p, v) in alive
            assert dist[p] == dist[v] - 1
        else:
            assert tree.parent_of(v) is None


class TestBoundedBFS:
    def test_simple_path(self):
        n = 5
        edges = [(0, 1), (1, 2), (2, 3), (3, 4)]
        d = bounded_bfs_directed(n, directed_adj(n, edges), 0, 2)
        assert d == [0, 1, 2, 3, 3]  # beyond limit -> L+1 = 3

    def test_directedness(self):
        n = 3
        edges = [(1, 0), (1, 2)]
        d = bounded_bfs_directed(n, directed_adj(n, edges), 0, 2)
        assert d == [0, 3, 3]

    def test_work_charged(self):
        cm = CostModel()
        n = 50
        edges = [(i, i + 1) for i in range(n - 1)]
        bounded_bfs_directed(n, directed_adj(n, edges), 0, n, cost=cm)
        assert cm.work > 0
        assert cm.depth <= (n + 1) * 10  # O(L log n)

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            bounded_bfs_directed(3, [[], [], []], 5, 2)
        with pytest.raises(ValueError):
            bounded_bfs_directed(3, [[], [], []], 0, -1)


class TestESTreeInit:
    def test_initial_distances_match_bfs(self):
        n, edges = 6, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5)]
        tree = BatchDynamicESTree(n, edges, source=0, limit=4)
        assert tree.distances() == reference_dist(n, edges, 0, 4)
        check_tree_valid(tree, n, edges, 0, 4)

    def test_limit_truncates(self):
        n, edges = 5, [(0, 1), (1, 2), (2, 3), (3, 4)]
        tree = BatchDynamicESTree(n, edges, source=0, limit=2)
        assert tree.distances() == [0, 1, 2, 3, 3]
        assert tree.parent_of(3) is None and tree.parent_of(4) is None

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError):
            BatchDynamicESTree(3, [(0, 1), (0, 1)], source=0, limit=2)

    def test_tree_edges(self):
        n, edges = 4, [(0, 1), (1, 2), (2, 3)]
        tree = BatchDynamicESTree(n, edges, source=0, limit=3)
        assert sorted(tree.tree_edges()) == [(0, 1), (1, 2), (2, 3)]


class TestESTreeDeletions:
    def test_delete_non_tree_edge_no_changes(self):
        n, edges = 4, [(0, 1), (0, 2), (1, 3), (2, 3)]
        tree = BatchDynamicESTree(n, edges, source=0, limit=3)
        p3 = tree.parent_of(3)
        other = (2, 3) if p3 == 1 else (1, 3)
        changes = tree.batch_delete([other])
        assert changes == []
        assert tree.parent_of(3) == p3

    def test_delete_tree_edge_with_sibling_parent(self):
        n, edges = 4, [(0, 1), (0, 2), (1, 3), (2, 3)]
        tree = BatchDynamicESTree(n, edges, source=0, limit=3)
        p3 = tree.parent_of(3)
        changes = tree.batch_delete([(p3, 3)])
        assert len(changes) == 1
        ch = changes[0]
        assert ch.vertex == 3 and ch.old_parent == p3
        assert ch.new_dist == 2  # distance unchanged
        assert tree.parent_of(3) in {1, 2} - {p3}

    def test_delete_increases_distance(self):
        # 0 -> 1 -> 2 and 0 -> 3 -> 4 -> 2: deleting (1,2) moves 2 to dist 3
        n = 5
        edges = [(0, 1), (1, 2), (0, 3), (3, 4), (4, 2)]
        tree = BatchDynamicESTree(n, edges, source=0, limit=4)
        assert tree.dist_of(2) == 2
        changes = tree.batch_delete([(1, 2)])
        assert tree.dist_of(2) == 3
        assert tree.parent_of(2) == 4
        assert any(c.vertex == 2 and c.new_dist == 3 for c in changes)

    def test_cascade_detaches_subtree(self):
        # path 0->1->2->3, limit 3; deleting (0,1) detaches everything.
        n = 4
        edges = [(0, 1), (1, 2), (2, 3)]
        tree = BatchDynamicESTree(n, edges, source=0, limit=3)
        changes = tree.batch_delete([(0, 1)])
        assert tree.distances() == [0, 4, 4, 4]
        assert all(tree.parent_of(v) is None for v in range(4))
        assert {c.vertex for c in changes} == {1, 2, 3}

    def test_distance_beyond_limit_detaches(self):
        # cycle detour longer than limit
        n = 5
        edges = [(0, 1), (1, 2), (0, 3), (3, 4), (4, 2)]
        tree = BatchDynamicESTree(n, edges, source=0, limit=2)
        tree.batch_delete([(1, 2)])
        assert tree.dist_of(2) == 3  # L+1
        assert tree.parent_of(2) is None

    def test_batch_of_multiple_deletions(self):
        n = 6
        edges = [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (2, 4), (4, 5)]
        tree = BatchDynamicESTree(n, edges, source=0, limit=5)
        tree.batch_delete([(1, 3), (2, 3), (2, 4)])
        alive = [(0, 1), (0, 2), (3, 4), (4, 5)]
        assert tree.distances() == reference_dist(n, alive, 0, 5)
        check_tree_valid(tree, n, alive, 0, 5)

    def test_delete_dead_edge_raises(self):
        tree = BatchDynamicESTree(3, [(0, 1)], source=0, limit=2)
        tree.batch_delete([(0, 1)])
        with pytest.raises(KeyError):
            tree.batch_delete([(0, 1)])

    def test_source_in_edges_deletable(self):
        tree = BatchDynamicESTree(3, [(1, 0), (0, 1), (1, 2)], source=0, limit=2)
        tree.batch_delete([(1, 0)])
        assert tree.dist_of(0) == 0


class TestRandomizedOracle:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_deletion_schedule(self, seed):
        rng = random.Random(seed)
        n = 30
        edges = set()
        while len(edges) < 120:
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                edges.add((u, v))
        edges = sorted(edges)
        limit = rng.choice([3, 5, 8, n])
        tree = BatchDynamicESTree(n, edges, source=0, limit=limit)
        alive = list(edges)
        rng.shuffle(alive)
        while alive:
            b = min(len(alive), rng.choice([1, 2, 5, 11]))
            batch, alive = alive[:b], alive[b:]
            tree.batch_delete(batch)
            assert tree.distances() == reference_dist(n, alive, 0, limit)
            check_tree_valid(tree, n, alive, 0, limit)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10**6), st.integers(2, 18), st.integers(1, 6))
    def test_property_random_graphs(self, seed, n, limit):
        rng = random.Random(seed)
        m = rng.randrange(0, n * (n - 1) + 1)
        all_pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
        rng.shuffle(all_pairs)
        edges = all_pairs[:m]
        tree = BatchDynamicESTree(n, edges, source=0, limit=limit)
        assert tree.distances() == reference_dist(n, edges, 0, limit)
        alive = list(edges)
        while alive:
            b = rng.randrange(1, len(alive) + 1)
            batch, alive = alive[:b], alive[b:]
            tree.batch_delete(batch)
            assert tree.distances() == reference_dist(n, alive, 0, limit)


class TestWorkDepthClaims:
    def test_amortized_work_bound_shape(self):
        """Total deletion work should be O(L * m * log n), not O(m^2)."""
        rng = random.Random(7)
        n, limit = 60, 4
        edges = set()
        while len(edges) < 400:
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                edges.add((u, v))
        edges = sorted(edges)
        cm = CostModel()
        tree = BatchDynamicESTree(n, edges, source=0, limit=limit, cost=cm)
        cm.reset()
        alive = list(edges)
        rng.shuffle(alive)
        while alive:
            batch, alive = alive[:20], alive[20:]
            tree.batch_delete(batch)
        m, logn = 400, 12
        assert cm.work <= 60 * limit * m * logn  # generous constant

    def test_depth_per_batch_bounded(self):
        """Depth of one batch must be O(L log^2 n) regardless of batch size."""
        rng = random.Random(11)
        n, limit = 80, 3
        edges = set()
        while len(edges) < 600:
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                edges.add((u, v))
        edges = sorted(edges)
        cm = CostModel()
        tree = BatchDynamicESTree(n, edges, source=0, limit=limit, cost=cm)
        with cm.frame() as fr:
            tree.batch_delete(edges)  # delete everything in one batch
        logn = 14
        assert fr.depth <= 40 * limit * logn * logn
        assert fr.work > fr.depth  # the batch really was parallel


class TestPriorityHooks:
    def test_priorities_determine_parent_choice(self):
        # two parents at same level: the higher-priority edge wins at init
        n = 4
        edges = [(0, 1), (0, 2), (1, 3), (2, 3)]
        pri = {(0, 1): 5, (0, 2): 6, (1, 3): 10, (2, 3): 20}
        tree = BatchDynamicESTree(n, edges, source=0, limit=3,
                                  priority=pri, universe=64)
        assert tree.parent_of(3) == 2  # priority 20 > 10

    def test_update_priority_and_rescan(self):
        n = 4
        edges = [(0, 1), (0, 2), (1, 3), (2, 3)]
        pri = {(0, 1): 5, (0, 2): 6, (1, 3): 10, (2, 3): 20}
        tree = BatchDynamicESTree(n, edges, source=0, limit=3,
                                  priority=pri, universe=64)
        assert tree.parent_of(3) == 2
        # Demote the parent edge below the sibling; a rescan from the old
        # slot must find the sibling.
        tree.update_edge_priority(2, 3, 4)
        cand = tree.find_parent_candidate(3)
        assert cand == 1
        tree.set_parent(3, 1)
        assert tree.parent_of(3) == 1
        assert tree.parent_edge_priority(3) == 10

    def test_promotion_keeps_parent(self):
        n = 4
        edges = [(0, 1), (0, 2), (1, 3), (2, 3)]
        pri = {(0, 1): 5, (0, 2): 6, (1, 3): 10, (2, 3): 20}
        tree = BatchDynamicESTree(n, edges, source=0, limit=3,
                                  priority=pri, universe=64)
        tree.update_edge_priority(2, 3, 30)
        assert tree.parent_of(3) == 2
        assert tree.find_parent_candidate(3) == 2

    def test_set_parent_validates(self):
        tree = BatchDynamicESTree(3, [(0, 1), (1, 2)], source=0, limit=2)
        with pytest.raises(ValueError):
            tree.set_parent(2, 0)  # (0,2) not an edge

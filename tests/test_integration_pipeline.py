"""Integration: every theorem structure driven by one shared update stream.

This is the "whole paper at once" test: a single evolving graph feeds
Theorems 1.1–1.6 side by side, and after every batch each structure's
defining guarantee is checked against the same ground truth.
"""

import pytest

from repro.bundle import DecrementalTBundle
from repro.contraction import SparseSpannerDynamic
from repro.graph import DynamicGraph, gnm_random_graph
from repro.queries import DynamicCutOracle, DynamicDistanceOracle
from repro.sparsifier import (
    DecrementalSpectralSparsifier,
    FullyDynamicSpectralSparsifier,
)
from repro.spanner import FullyDynamicSpanner
from repro.ultrasparse import UltraSparseSpannerDynamic
from repro.verify import is_spanner, pencil_eigenvalue_range
from repro.workloads import deletion_stream, mixed_stream


class TestFullyDynamicPipeline:
    """Thms 1.1, 1.3, 1.4, 1.6 under one mixed stream."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_all_structures_valid_throughout(self, seed):
        n, m = 16, 60
        wl = mixed_stream(n, m, batch_size=8, num_batches=10, seed=seed)
        g = DynamicGraph(n, wl.initial_edges)
        g0 = sorted(g.edges())

        spanner = FullyDynamicSpanner(n, g0, k=2, seed=seed,
                                      base_capacity=4)
        sparse = SparseSpannerDynamic(n, g0, rates=[2.0], k_final=2,
                                      seed=seed, base_capacity=4)
        ultra = UltraSparseSpannerDynamic(
            n, g0, x=2.0, seed=seed, inner_rates=[2.0], k_final=2,
            base_capacity=4,
        )
        sparsifier = FullyDynamicSpectralSparsifier(
            n, g0, t=2, seed=seed, instances=3, base_capacity=4
        )
        structures = [spanner, sparse, ultra, sparsifier]

        for batch, edges in wl.replay():
            for s in structures:
                s.update(insertions=batch.insertions,
                         deletions=batch.deletions)
            g.delete_batch(batch.deletions)
            g.insert_batch(batch.insertions)
            assert g.edge_set() == edges

            assert is_spanner(n, edges, spanner.spanner_edges(),
                              spanner.stretch)
            assert is_spanner(n, edges, sparse.spanner_edges(),
                              sparse.stretch_bound())
            assert is_spanner(n, edges, ultra.spanner_edges(),
                              ultra.stretch_bound())
            # sparsifier: never disconnects, output within graph
            assert sparsifier.output_edges() <= edges
            if edges:
                lo, hi = pencil_eigenvalue_range(
                    n,
                    {e: 1.0 for e in edges},
                    sparsifier.weighted_edges(),
                )
                assert lo > 0
            for s in structures:
                s.check_invariants()


class TestDecrementalPipeline:
    """Thms 1.2 (inside 1.1), 1.5, and Lemma 6.6 under one deletion
    stream."""

    def test_bundle_and_chain_together(self):
        n, m = 18, 80
        wl = deletion_stream(n, m, batch_size=10, seed=5)
        edges0 = list(wl.initial_edges)

        bundle = DecrementalTBundle(n, edges0, t=2, seed=5, instances=4)
        chain = DecrementalSpectralSparsifier(n, edges0, t=2, seed=5,
                                              instances=4)
        current = set(edges0)
        for batch in wl.batches:
            bundle.batch_delete(batch.deletions)
            chain.batch_delete(batch.deletions)
            current -= set(batch.deletions)
            assert bundle.bundle_edges() <= current
            assert chain.output_edges() <= current
            bundle.check_invariants()
            chain.check_invariants()
        assert bundle.bundle_edges() == set()
        assert chain.output_edges() == set()


class TestOracleStack:
    """Query oracles composed over the dynamic structures, end to end."""

    def test_distance_and_cut_oracles_together(self):
        n, m = 14, 50
        wl = mixed_stream(n, m, batch_size=6, num_batches=8, seed=9)
        g0 = list(wl.initial_edges)
        sp = FullyDynamicSpanner(n, g0, k=2, seed=9, base_capacity=4)
        dist_oracle = DynamicDistanceOracle(n, sp, stretch=sp.stretch)
        sf = FullyDynamicSpectralSparsifier(n, g0, t=50, seed=9,
                                            instances=3, base_capacity=4)
        cut_oracle = DynamicCutOracle(n, sf)

        for batch, edges in wl.replay():
            dist_oracle.update(insertions=batch.insertions,
                               deletions=batch.deletions)
            cut_oracle.update(insertions=batch.insertions,
                              deletions=batch.deletions)
            # distance oracle: subgraph lower bound holds trivially; check
            # upper bound on a few pairs via exact BFS
            from repro.graph import adjacency_from_edges, bfs_distances

            adj = adjacency_from_edges(n, edges)
            true0 = bfs_distances(adj, 0)
            for v in (1, n // 2, n - 1):
                est = dist_oracle.distance(0, v)
                if v in true0:
                    assert true0[v] <= est <= sp.stretch * true0[v] or (
                        v == 0
                    )
                else:
                    assert est == float("inf")
            # cut oracle with huge t is exact
            side = set(range(n // 2))
            exact = sum(
                1 for u, v in edges if (u in side) != (v in side)
            )
            assert cut_oracle.cut_value(side) == pytest.approx(exact)

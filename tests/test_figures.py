"""Tests for the ASCII figure helpers."""

import pytest

from repro.harness import ascii_plot, sparkline


class TestSparkline:
    def test_monotone_ramp(self):
        s = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert s == "▁▂▃▄▅▆▇█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▄▄▄"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_preserved(self):
        assert len(sparkline(range(37))) == 37


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        out = ascii_plot(
            [1, 2, 3, 4],
            {"work": [10, 20, 30, 40], "depth": [5, 5, 5, 5]},
            title="T",
        )
        assert "T" in out
        assert "o work" in out and "x depth" in out
        assert "o" in out.splitlines()[1] or any(
            "o" in line for line in out.splitlines()
        )

    def test_log_scales(self):
        out = ascii_plot(
            [1, 10, 100],
            {"y": [1, 100, 10000]},
            logx=True,
            logy=True,
        )
        assert "1e+04" in out or "10000" in out or "1e+4" in out

    def test_no_data(self):
        assert "(no data)" in ascii_plot([], {}, title="E")

    def test_single_point(self):
        out = ascii_plot([1.0], {"y": [2.0]})
        assert "y" in out

    def test_axis_labels_show_ranges(self):
        out = ascii_plot([2, 8], {"y": [3, 30]})
        assert "30" in out and "3" in out
        assert "2" in out and "8" in out

"""Tests for the generic Bentley–Saxe dynamizer."""

import random

import pytest

from repro.graph import gnm_random_graph, norm_edge
from repro.spanner.dynamizer import BentleySaxeDynamizer


class IdentityStructure:
    """Trivial decremental structure: output = its whole edge set."""

    def __init__(self, edges):
        self._edges = set(edges)

    def output_edges(self):
        return set(self._edges)

    def batch_delete(self, edges):
        dels = set()
        for e in edges:
            self._edges.remove(e)
            dels.add(e)
        return set(), dels


class HalfStructure:
    """Keeps every other edge (deterministic) — exercises output != edges."""

    def __init__(self, edges):
        self._edges = set(edges)
        self._out = {e for i, e in enumerate(sorted(edges)) if i % 2 == 0}

    def output_edges(self):
        return set(self._out)

    def batch_delete(self, edges):
        dels = set()
        for e in edges:
            self._edges.remove(e)
            if e in self._out:
                self._out.remove(e)
                dels.add(e)
        return set(), dels


def make(edges, base=4, structure=IdentityStructure):
    return BentleySaxeDynamizer(edges, structure, base)


class TestInit:
    def test_empty(self):
        dyn = make([])
        assert dyn.output_edges() == set()
        dyn.check_invariants()

    def test_small_initial_set_goes_to_level0(self):
        edges = [(0, 1), (1, 2)]
        dyn = make(edges, base=4)
        assert dyn.level_sizes() == {0: 2}
        assert dyn.output_edges() == set(edges)

    def test_large_initial_set_finds_level(self):
        edges = [(0, i) for i in range(1, 20)]
        dyn = make(edges, base=4)
        (lvl,) = dyn.level_sizes()
        assert 4 << lvl >= 19
        dyn.check_invariants()

    def test_duplicate_initial_edges_rejected(self):
        with pytest.raises(ValueError):
            make([(0, 1), (1, 0)])

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            BentleySaxeDynamizer([], IdentityStructure, 0)


class TestInsert:
    def test_insert_within_level0(self):
        dyn = make([], base=4)
        ins, dels = dyn.update(insertions=[(0, 1), (1, 2)])
        assert ins == {(0, 1), (1, 2)} and not dels
        assert dyn.level_sizes() == {0: 2}

    def test_level0_overflow_cascades(self):
        dyn = make([], base=2)
        dyn.update(insertions=[(0, 1), (0, 2)])
        assert dyn.level_sizes() == {0: 2}
        dyn.update(insertions=[(0, 3)])
        # 3 edges exceed base; remainder merges E_0 into level 1
        sizes = dyn.level_sizes()
        assert sum(sizes.values()) == 3
        assert 0 not in sizes or sizes[0] < 2 or 1 in sizes
        dyn.check_invariants()

    def test_big_batch_chunks_by_bits(self):
        dyn = make([], base=2)
        edges = [(0, i) for i in range(1, 12)]  # 11 edges = 5*2 + 1
        dyn.update(insertions=edges)
        dyn.check_invariants()
        assert dyn.output_edges() == set(edges)
        assert dyn.m == 11

    def test_duplicate_insert_rejected(self):
        dyn = make([(0, 1)])
        with pytest.raises(ValueError):
            dyn.update(insertions=[(1, 0)])
        with pytest.raises(ValueError):
            dyn.update(insertions=[(2, 3), (3, 2)])

    def test_contains(self):
        dyn = make([(0, 1)])
        assert (1, 0) in dyn
        assert (0, 2) not in dyn


class TestDelete:
    def test_delete_from_level0(self):
        dyn = make([(0, 1), (1, 2)], base=4)
        ins, dels = dyn.update(deletions=[(0, 1)])
        assert dels == {(0, 1)} and not ins
        assert dyn.m == 1

    def test_delete_missing_raises(self):
        dyn = make([(0, 1)])
        with pytest.raises(KeyError):
            dyn.update(deletions=[(2, 3)])

    def test_delete_empties_partition(self):
        dyn = make([(0, i) for i in range(1, 9)], base=2)
        dyn.update(deletions=[(0, i) for i in range(1, 9)])
        assert dyn.level_sizes() == {}
        assert dyn.output_edges() == set()

    def test_delete_and_reinsert_same_edge_in_one_batch(self):
        dyn = make([(0, 1), (1, 2), (2, 3)], base=2)
        ins, dels = dyn.update(insertions=[(0, 1)], deletions=[(0, 1)])
        assert (0, 1) in dyn
        # net delta for the edge cancels out (it stays in the output)
        assert (0, 1) not in dels or (0, 1) in ins


class TestModelBased:
    @pytest.mark.parametrize("structure", [IdentityStructure, HalfStructure])
    @pytest.mark.parametrize("seed", range(5))
    def test_random_update_stream(self, structure, seed):
        rng = random.Random(seed)
        n = 12
        universe = [(u, v) for u in range(n) for v in range(u + 1, n)]
        dyn = BentleySaxeDynamizer([], structure, base_capacity=3)
        present: set = set()
        output = set()
        for _ in range(40):
            absent = [e for e in universe if e not in present]
            ins = rng.sample(absent, min(len(absent), rng.randrange(0, 5)))
            dels = rng.sample(
                sorted(present), min(len(present), rng.randrange(0, 5))
            )
            d_ins, d_dels = dyn.update(insertions=ins, deletions=dels)
            present |= set(ins)
            present -= set(dels)
            assert not (d_ins & d_dels)
            output = (output - d_dels) | d_ins
            assert output == dyn.output_edges()
            assert output <= present
            assert dyn.m == len(present)
            dyn.check_invariants()
        if structure is IdentityStructure:
            assert output == present  # identity keeps everything


class TestAmortization:
    def test_rebuild_work_is_near_linear(self):
        """Every edge participates in at most O(log m) rebuilds."""
        import math

        dyn = make([], base=2)
        total_inserted = 0
        for i in range(256):
            dyn.update(insertions=[(0, i + 1)])
            total_inserted += 1
        bound = total_inserted * (math.log2(total_inserted) + 2)
        assert dyn.rebuilt_edge_count <= bound


class TestRestart:
    def test_restart_preserves_output_semantics(self):
        import random

        rng = random.Random(0)
        n = 10
        universe = [(u, v) for u in range(n) for v in range(u + 1, n)]
        dyn = BentleySaxeDynamizer(
            [], IdentityStructure, base_capacity=2, restart_every=7
        )
        present: set = set()
        output: set = set()
        for _ in range(40):
            absent = [e for e in universe if e not in present]
            ins = rng.sample(absent, min(len(absent), rng.randrange(0, 4)))
            dels = rng.sample(
                sorted(present), min(len(present), rng.randrange(0, 4))
            )
            d_ins, d_dels = dyn.update(insertions=ins, deletions=dels)
            present = (present - set(dels)) | set(ins)
            output = (output - d_dels) | d_ins
            assert output == dyn.output_edges() == present
            dyn.check_invariants()
        assert dyn.restart_count >= 3

    def test_restart_consolidates_partitions(self):
        dyn = BentleySaxeDynamizer(
            [], IdentityStructure, base_capacity=2, restart_every=1000
        )
        for i in range(31):
            dyn.update(insertions=[(0, i + 1)])
        assert len(dyn.level_sizes()) > 1  # fragmented by drip inserts
        dyn._restart(lambda e, d: None)
        assert len(dyn.level_sizes()) == 1  # consolidated
        dyn.check_invariants()

    def test_invalid_restart_every(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            BentleySaxeDynamizer([], IdentityStructure, 2, restart_every=0)

    def test_fully_dynamic_spanner_with_restart(self):
        from repro.spanner import FullyDynamicSpanner
        from repro.verify import is_spanner
        from repro.graph import gnm_random_graph

        n = 15
        edges = gnm_random_graph(n, 40, seed=1)
        sp = FullyDynamicSpanner(n, edges, k=2, seed=1, base_capacity=4,
                                 restart_every=10)
        spanner = sp.spanner_edges()
        alive = list(edges)
        import random as _r

        rng = _r.Random(1)
        rng.shuffle(alive)
        while alive:
            batch, alive = alive[:6], alive[6:]
            ins, dels = sp.update(deletions=batch)
            spanner = (spanner - dels) | ins
            assert spanner == sp.spanner_edges()
            assert is_spanner(n, alive, spanner, 3)
            sp.check_invariants()

"""Tests for repro.resilience: WAL, checkpoints, supervision, degradation.

Covers the PR-4 fault-tolerance layer unit by unit — WAL encode/decode
round trips (including hypothesis property sweeps), the torn-tail and
corruption taxonomy, atomic checkpoints, the recovery manager's
truncation lifecycle, the shard supervisor's restart/quarantine logic,
graceful degradation (stale-tagged queries + degraded shedding), and the
shutdown-path satellites (idempotent close/stop, admission overload,
driver interrupt handling).
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience import (
    Checkpoint,
    CheckpointError,
    CheckpointStore,
    FaultInjector,
    RecoveryManager,
    ResilienceConfig,
    SupervisionConfig,
    WalCorruptionError,
    WalWriter,
    bootstrap_executor,
    corrupt_record,
    read_wal,
)
from repro.resilience.wal import (
    WAL_MAGIC,
    WalFollower,
    WalStreamDecoder,
    WalTruncatedError,
    decode_record,
    encode_record,
)
from repro.service import (
    AdmissionConfig,
    BatcherConfig,
    ServiceConfig,
    SpannerService,
    ShardedExecutor,
)
from repro.service.shard import edge_shard, split_by_shard
from repro.workloads import UpdateBatch
from repro.workloads.streams import request_stream


def _batch(ins=(), dels=()):
    return UpdateBatch(insertions=list(ins), deletions=list(dels))


edge_st = st.tuples(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
batch_st = st.builds(
    _batch,
    ins=st.lists(edge_st, max_size=12),
    dels=st.lists(edge_st, max_size=12),
)


class TestWalEncoding:
    @given(seq=st.integers(1, 2**63 - 1), batch=batch_st)
    @settings(max_examples=60)
    def test_record_round_trip(self, seq, batch):
        """encode → decode reproduces seq and both edge lists exactly."""
        rec = decode_record(encode_record(seq, batch)[8:])  # skip header
        assert rec.seq == seq
        assert rec.batch.insertions == batch.insertions
        assert rec.batch.deletions == batch.deletions

    @given(batches=st.lists(batch_st, min_size=1, max_size=8))
    @settings(max_examples=30)
    def test_wal_file_round_trip(self, tmp_path_factory, batches):
        """Arbitrary batch sequences survive a write → read cycle."""
        path = tmp_path_factory.mktemp("wal") / "wal.log"
        w = WalWriter(path)
        for i, b in enumerate(batches):
            w.append(i + 1, b)
        w.close()
        out = read_wal(path)
        assert out.dropped_tail_bytes == 0
        assert [r.seq for r in out.records] == list(
            range(1, len(batches) + 1))
        for rec, b in zip(out.records, batches):
            assert rec.batch.insertions == b.insertions
            assert rec.batch.deletions == b.deletions

    def test_truncated_tail_dropped(self, tmp_path):
        """Bytes past the last full record are ignored, prefix survives."""
        path = tmp_path / "wal.log"
        w = WalWriter(path)
        w.append(1, _batch(ins=[(1, 2)]))
        w.append(2, _batch(ins=[(3, 4)], dels=[(1, 2)]))
        w.close()
        size = path.stat().st_size
        with open(path, "r+b") as fh:
            fh.truncate(size - 5)  # tear the final record mid-payload
        out = read_wal(path)
        assert [r.seq for r in out.records] == [1]
        assert out.dropped_tail_bytes > 0

    def test_corrupt_final_record_is_torn_tail(self, tmp_path):
        """A damaged *final* record is dropped like a torn tail."""
        path = tmp_path / "wal.log"
        w = WalWriter(path)
        w.append(1, _batch(ins=[(1, 2)]))
        w.append(2, _batch(ins=[(3, 4)]))
        w.close()
        assert corrupt_record(path, 2)
        out = read_wal(path)
        assert [r.seq for r in out.records] == [1]
        assert out.dropped_tail_bytes > 0
        assert out.dropped_tail_seq == 2

    def test_corrupt_mid_record_raises_naming_seq(self, tmp_path):
        """Mid-log damage is unrecoverable and the error names the seq."""
        path = tmp_path / "wal.log"
        w = WalWriter(path)
        for seq in (1, 2, 3):
            w.append(seq, _batch(ins=[(seq, seq + 10)]))
        w.close()
        assert corrupt_record(path, 2)
        with pytest.raises(WalCorruptionError) as exc:
            read_wal(path)
        assert exc.value.seq == 2
        assert "seq=2" in str(exc.value)
        assert "cannot be repaired by truncation" in str(exc.value)

    def test_sequence_regression_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        w = WalWriter(path)
        w.append(5, _batch(ins=[(1, 2)]))
        w.append(3, _batch(ins=[(3, 4)]))  # writer does not police order
        w.close()
        with pytest.raises(WalCorruptionError):
            read_wal(path)

    def test_truncate_through_keeps_newer_records(self, tmp_path):
        path = tmp_path / "wal.log"
        w = WalWriter(path)
        for seq in (1, 2, 3, 4):
            w.append(seq, _batch(ins=[(seq, seq + 10)]))
        w.truncate_through(2)
        w.append(5, _batch(ins=[(5, 15)]))  # writer stays usable after
        w.close()
        assert [r.seq for r in read_wal(path).records] == [3, 4, 5]


class TestCheckpointStore:
    def test_round_trip_and_prune(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(3, [{(1, 2)}, set()])
        store.save(7, [{(1, 2), (3, 4)}, {(5, 6)}])
        ckpt = store.load()
        assert ckpt == Checkpoint(7, [{(1, 2), (3, 4)}, {(5, 6)}])
        assert ckpt.shards == 2
        # older checkpoint was pruned by the newer save
        assert len(list(tmp_path.glob("checkpoint-*.json"))) == 1

    def test_orphan_tmp_ignored(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(3, [{(1, 2)}])
        (tmp_path / "checkpoint-000000000009.json.tmp").write_text("junk")
        assert store.load().epoch == 3

    def test_damaged_checkpoint_raises_when_no_valid_one(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save(3, [{(1, 2)}])
        path.write_text(path.read_text().replace('"epoch": 3', '"epoch": 4'))
        with pytest.raises(CheckpointError):
            store.load()

    def test_empty_directory_loads_none(self, tmp_path):
        assert CheckpointStore(tmp_path).load() is None


class TestRecoveryManager:
    def test_fresh_directory(self, tmp_path):
        mgr = RecoveryManager(ResilienceConfig(directory=tmp_path))
        assert mgr.last_seq == 0
        assert mgr.checkpoint is None
        assert mgr.tail == []
        mgr.close()

    def test_log_checkpoint_truncate_cycle(self, tmp_path):
        mgr = RecoveryManager(ResilienceConfig(
            directory=tmp_path, checkpoint_interval=2))
        mgr.log_applied(1, _batch(ins=[(1, 2)]))
        assert not mgr.should_checkpoint()
        mgr.log_applied(2, _batch(ins=[(3, 4)]))
        assert mgr.should_checkpoint()
        mgr.write_checkpoint(2, [{(1, 2), (3, 4)}])
        mgr.log_applied(3, _batch(dels=[(1, 2)]))
        mgr.close()
        # a cold restart sees checkpoint epoch 2 + a one-record tail
        mgr2 = RecoveryManager(ResilienceConfig(directory=tmp_path))
        assert mgr2.last_seq == 3
        assert mgr2.checkpoint.epoch == 2
        assert [r.seq for r in mgr2.tail] == [3]
        mgr2.close()

    def test_non_monotonic_seq_rejected(self, tmp_path):
        mgr = RecoveryManager(ResilienceConfig(directory=tmp_path))
        mgr.log_applied(1, _batch(ins=[(1, 2)]))
        with pytest.raises(ValueError):
            mgr.log_applied(1, _batch(ins=[(3, 4)]))
        mgr.close()

    def test_torn_tail_repaired_before_appending(self, tmp_path):
        """New records after a torn tail must stay reachable."""
        mgr = RecoveryManager(ResilienceConfig(directory=tmp_path))
        mgr.log_applied(1, _batch(ins=[(1, 2)]))
        mgr.log_applied(2, _batch(ins=[(3, 4)]))
        mgr.close()
        path = tmp_path / "wal.log"
        with open(path, "r+b") as fh:
            fh.truncate(path.stat().st_size - 3)
        mgr2 = RecoveryManager(ResilienceConfig(directory=tmp_path))
        assert mgr2.last_seq == 1        # torn record 2 was dropped...
        mgr2.log_applied(2, _batch(ins=[(5, 6)]))  # ...and replaced cleanly
        mgr2.close()
        assert [r.seq for r in read_wal(path).records] == [1, 2]

    def test_shard_recovery_plan_routes_tail(self, tmp_path):
        initial = [(0, 1), (0, 2), (1, 2), (2, 3)]
        mgr = RecoveryManager(ResilienceConfig(directory=tmp_path))
        batch = _batch(ins=[(4, 5), (5, 6)], dels=[(0, 1)])
        mgr.log_applied(1, batch)
        for shard in range(2):
            base, replay = mgr.shard_recovery_plan(shard, 2, initial)
            assert base == set(split_by_shard(initial, 2)[shard])
            for sub in replay:
                for e in sub.insertions + sub.deletions:
                    assert e in batch.insertions + batch.deletions
        # skip_seqs drops a quarantined batch from the replay
        for shard in range(2):
            _, replay = mgr.shard_recovery_plan(
                shard, 2, initial, skip_seqs={1})
            assert replay == []
        mgr.close()


def _spec(n=32, m=96, seed=7):
    edges, _ = request_stream(n, m, 1, seed=seed)
    return {"kind": "spanner", "n": n, "edges": edges, "seed": seed,
            "k": 2, "base_capacity": 16}


_SUP = SupervisionConfig(recv_deadline=0.5, backoff_base=0.001,
                         backoff_cap=0.01)


def _edge_for_shard(shard, exclude=(), n=32, shards=2):
    """A fresh edge that the deterministic router sends to ``shard``."""
    taken = set(exclude)
    for u in range(n):
        for v in range(u + 1, n):
            if (u, v) not in taken and edge_shard((u, v), shards) == shard:
                return (u, v)
    raise AssertionError("no free edge for shard")


class TestShardSupervision:
    def test_dead_worker_restarted_and_batch_applied(self):
        ex = ShardedExecutor(_spec(), 2, supervision=_SUP)
        ex._shards[0].kill()
        before = ex.graph_union()
        res = ex.apply(_batch(ins=[(30, 31), (29, 31)]))
        assert res.recovered_shards  # at least the killed shard recovered
        assert res.restarts >= 1
        assert ex.graph_union() == before | {(30, 31), (29, 31)}
        ex.close()

    def test_unsupervised_dead_worker_raises(self):
        from repro.service import ShardDeadError

        ex = ShardedExecutor(_spec(), 2, supervision=None)
        ex._shards[0].kill()
        with pytest.raises(ShardDeadError):
            ex.apply(_batch(ins=[(30, 31), (29, 31)]))
        ex.close()

    def test_poison_batch_quarantined_after_crash_loops(self):
        class AlwaysDrop(FaultInjector):
            def on_recv(self, shard, seq):
                if shard == 0 and seq == 1:
                    return "drop"
                return None

        ex = ShardedExecutor(_spec(), 2, supervision=_SUP,
                             injector=AlwaysDrop())
        # both edges route somewhere; force ops onto shard 0 by brute
        # scan of candidate edges
        edge0 = next((u, v) for u in range(32) for v in range(u + 1, 32)
                     if split_by_shard([(u, v)], 2)[0]
                     and (u, v) not in set(_spec()["edges"]))
        res = ex.apply(_batch(ins=[edge0]), seq=1)
        assert res.quarantined_shards == (0,)
        assert ex.quarantined and ex.quarantined[0][0] == 1
        # the engine stays live: the next batch on shard 0 applies fine
        res2 = ex.apply(_batch(dels=[]), seq=2)
        assert res2.quarantined_shards == ()
        ex.close()

    def test_health_check_restarts_dead_shard(self):
        ex = ShardedExecutor(_spec(), 2, supervision=_SUP)
        ex._shards[1].kill()
        health = ex.health_check(restart=True)
        assert not health[1].alive and health[1].restarted
        assert all(h.alive for h in ex.health_check(restart=False))
        ex.close()

    def test_wal_recovery_restores_exact_state(self, tmp_path):
        spec = _spec()
        mgr = RecoveryManager(ResilienceConfig(directory=tmp_path))
        ex = ShardedExecutor(spec, 2, supervision=_SUP, recovery=mgr)
        initial = set(spec["edges"])
        e1 = _edge_for_shard(0, exclude=initial)
        e2 = _edge_for_shard(1, exclude=initial | {e1})
        e3 = _edge_for_shard(0, exclude=initial | {e1, e2})
        b1 = _batch(ins=[e1, e2])
        ex.apply(b1, seq=1)
        mgr.log_applied(1, b1)
        ex._shards[0].kill()
        b2 = _batch(ins=[e3])  # routed to the dead shard
        res = ex.apply(b2, seq=2)
        assert res.recovered
        assert ex.graph_union() == initial | {e1, e2, e3}
        ex.close()
        mgr.close()

    def test_executor_close_idempotent_with_dead_shard(self):
        ex = ShardedExecutor(_spec(), 2, supervision=_SUP)
        ex._shards[0].kill()
        ex.close()
        ex.close()  # second close is a no-op, not an error


class TestBootstrap:
    def test_cold_restart_equals_live_state(self, tmp_path):
        spec = _spec()
        mgr = RecoveryManager(ResilienceConfig(
            directory=tmp_path, checkpoint_interval=2))
        ex = ShardedExecutor(spec, 2, supervision=_SUP, recovery=mgr)
        batches = [
            _batch(ins=[(30, 31)]),
            _batch(ins=[(29, 31)], dels=[(30, 31)]),
            _batch(ins=[(28, 30)]),
        ]
        for seq, b in enumerate(batches, start=1):
            ex.apply(b, seq=seq)
            mgr.log_applied(seq, b)
            if mgr.should_checkpoint():
                mgr.write_checkpoint(seq, ex.shard_graphs())
        live = ex.graph_union()
        ex.close()
        mgr.close()
        mgr2 = RecoveryManager(ResilienceConfig(directory=tmp_path))
        assert mgr2.last_seq == 3
        ex2, last = bootstrap_executor(spec, 2, mgr2, supervision=_SUP)
        assert last == 3
        assert ex2.graph_union() == live
        ex2.close()
        mgr2.close()

    def test_resharding_checkpoint_rejected(self, tmp_path):
        spec = _spec()
        mgr = RecoveryManager(ResilienceConfig(directory=tmp_path))
        mgr.write_checkpoint(1, [{(0, 1)}, set()])
        with pytest.raises(ValueError):
            mgr.base_edges(0, 3, spec["edges"])
        mgr.close()


def _service(executor, recovery=None, max_pending=1024, max_batch=512,
             max_delay=1000.0):
    return SpannerService(
        executor,
        config=ServiceConfig(
            batcher=BatcherConfig(max_batch=max_batch, max_delay=max_delay),
            admission=AdmissionConfig(max_pending=max_pending),
        ),
        recovery=recovery,
    )


class TestGracefulDegradation:
    def test_stale_reads_and_degraded_shedding_during_recovery(self):
        """From inside the recovery window, queries answer stale from the
        snapshot and new updates shed with a degraded retry hint."""
        observed = {}

        class Probe(FaultInjector):
            def on_restart(self, shard, attempt):
                # runs while ShardedExecutor.degraded is set (mid-restart)
                observed["query"] = svc.query_info("size")
                observed["submit"] = svc.submit_update("insert", 29, 31)

        ex = ShardedExecutor(_spec(), 2, supervision=_SUP, injector=Probe())
        svc = _service(ex)
        ex._shards[0].kill()
        # an edge routed to the dead shard, so the flush must recover it
        u, v = _edge_for_shard(0, exclude=set(_spec()["edges"]))
        svc.submit_update("insert", u, v)
        svc.flush()
        q = observed["query"]
        assert q.stale and q.value >= 0
        s = observed["submit"]
        assert not s.accepted and s.outcome == "shed_degraded"
        assert s.retry_after and s.retry_after > 0
        m = svc.metrics.snapshot()
        assert m["stale_reads"] >= 1
        assert m["shed_degraded"] >= 1
        assert m["recoveries"] >= 1
        assert m["shard_restarts"] >= 1
        # after recovery the service is whole again: fresh reads succeed
        post = svc.query_info("size")
        assert not post.stale
        assert svc.self_check(deep=False).ok
        svc.close()

    def test_recovery_visible_in_metrics_histogram(self):
        ex = ShardedExecutor(_spec(), 2, supervision=_SUP)
        svc = _service(ex)
        ex._shards[0].kill()
        u, v = _edge_for_shard(0, exclude=set(_spec()["edges"]))
        svc.submit_update("insert", u, v)
        svc.flush()
        m = svc.metrics.snapshot()
        assert m["recovery_latency_s.count"] >= 1
        svc.close()


class TestAdmissionOverload:
    def test_sustained_overload_sheds_then_recovers(self):
        """Satellite: over-capacity submits shed with retry-after, and
        acceptance resumes once the queue drains."""
        ex = ShardedExecutor(_spec(), 2, supervision=_SUP)
        svc = _service(ex, max_pending=8, max_batch=10_000)
        edges = [(u, v) for u in range(32) for v in range(u + 1, 32)
                 if (u, v) not in set(_spec()["edges"])]
        shed = []
        for u, v in edges[:40]:
            resp = svc.submit_update("insert", u, v)
            if not resp.accepted:
                assert resp.outcome == "shed"
                assert resp.retry_after and resp.retry_after > 0
                shed.append((u, v))
        assert shed, "queue never overflowed"
        assert svc.metrics.snapshot()["shed"] == len(shed)
        # retry hints grow with overflow depth (sustained overload)
        svc.flush()
        resp = svc.submit_update("insert", *shed[0])
        assert resp.accepted, "acceptance did not resume after drain"
        svc.close()


class TestShutdownPaths:
    def test_service_close_idempotent(self):
        ex = ShardedExecutor(_spec(), 2, supervision=_SUP)
        svc = _service(ex)
        svc.submit_update("insert", 30, 31)
        svc.close()
        svc.close()

    def test_stop_after_executor_death_does_not_raise(self):
        ex = ShardedExecutor(_spec(), 2, supervision=None)
        svc = _service(ex)
        svc.submit_update("insert", 30, 31)
        ex._shards[0].kill()
        ex._shards[1].kill()
        svc.stop()  # final flush fails internally, recorded in metrics
        assert svc.metrics.snapshot().get("shutdown_flush_failures", 0) >= 1
        svc.close()

    def test_background_flusher_stop_joins_thread(self):
        ex = ShardedExecutor(_spec(), 2, supervision=_SUP)
        svc = _service(ex, max_delay=0.01)
        svc.start()
        assert svc._thread is not None
        svc.submit_update("insert", 30, 31)
        svc.stop()
        assert svc._thread is None
        assert threading.active_count() >= 1
        svc.close()

    def test_final_close_writes_checkpoint(self, tmp_path):
        mgr = RecoveryManager(ResilienceConfig(
            directory=tmp_path, checkpoint_interval=10**9))
        ex = ShardedExecutor(_spec(), 2, supervision=_SUP, recovery=mgr)
        svc = _service(ex, recovery=mgr)
        svc.submit_update("insert", 30, 31)
        svc.close()
        mgr2 = RecoveryManager(ResilienceConfig(directory=tmp_path))
        assert mgr2.checkpoint is not None
        assert mgr2.checkpoint.epoch == mgr2.last_seq
        assert mgr2.tail == []  # the WAL was truncated by the checkpoint
        mgr2.close()


class TestWalStreamDecoder:
    def test_single_byte_feed_reproduces_records(self):
        """Arbitrary chunking — even 1 byte at a time — loses nothing."""
        batches = [_batch(ins=[(i, i + 1)]) for i in range(5)]
        stream = WAL_MAGIC + b"".join(
            encode_record(i + 1, b) for i, b in enumerate(batches))
        dec = WalStreamDecoder()
        out = []
        for i in range(len(stream)):
            out.extend(dec.feed(stream[i:i + 1]))
        assert [r.seq for r in out] == [1, 2, 3, 4, 5]
        assert dec.offset == len(stream)
        assert dec.pending_bytes == 0

    def test_bad_magic_raises(self):
        with pytest.raises(WalCorruptionError, match="magic"):
            WalStreamDecoder().feed(b"XWAL9\x00\x00\x00" + b"x" * 16)

    def test_bad_crc_on_tail_held_then_raises_mid_stream(self):
        """A checksum-failing *tail* is held (may be mid-flight); bytes
        landing beyond it make it mid-stream damage, which raises."""
        rec = encode_record(1, _batch(ins=[(1, 2)]))
        damaged = rec[:-1] + bytes([rec[-1] ^ 0xFF])
        dec = WalStreamDecoder()
        assert dec.feed(WAL_MAGIC + damaged) == []  # held, not raised
        with pytest.raises(WalCorruptionError, match="checksum"):
            dec.feed(encode_record(2, _batch(ins=[(3, 4)])))

    def test_sequence_regression_raises(self):
        dec = WalStreamDecoder()
        dec.feed(WAL_MAGIC + encode_record(5, _batch(ins=[(1, 2)])))
        with pytest.raises(WalCorruptionError, match="regression"):
            dec.feed(encode_record(5, _batch(ins=[(3, 4)])))


class TestWalFollower:
    """Satellite: the incremental tail-read API used by log shipping."""

    def test_poll_returns_only_new_records(self, tmp_path):
        path = tmp_path / "wal.log"
        w = WalWriter(path)
        w.append(1, _batch(ins=[(1, 2)]))
        w.append(2, _batch(ins=[(3, 4)]))
        f = WalFollower(path)
        assert [r.seq for r in f.poll()] == [1, 2]
        assert f.poll() == []           # caught up: nothing new
        w.append(3, _batch(dels=[(1, 2)]))
        assert [r.seq for r in f.poll()] == [3]
        assert f.last_seq == 3
        w.close()

    def test_missing_file_polls_empty(self, tmp_path):
        f = WalFollower(tmp_path / "nope.log")
        assert f.poll() == []

    def test_torn_final_record_held_until_completed(self, tmp_path):
        """A torn tail yields nothing; completing it delivers the record
        exactly once — the same rule read_wal applies at end of file."""
        path = tmp_path / "wal.log"
        w = WalWriter(path)
        w.append(1, _batch(ins=[(1, 2)]))
        rec2 = encode_record(2, _batch(ins=[(3, 4)], dels=[(1, 2)]))
        f = WalFollower(path)
        assert [r.seq for r in f.poll()] == [1]
        for cut in (3, len(rec2) - 1):  # torn mid-header and mid-payload
            with open(path, "ab") as fh:
                fh.write(rec2[:cut])
            assert f.poll() == []       # incomplete: held, not delivered
            with open(path, "r+b") as fh:
                fh.truncate(path.stat().st_size - cut)
        with open(path, "ab") as fh:
            fh.write(rec2)
        polled = f.poll()
        assert [r.seq for r in polled] == [2]
        assert polled[0].batch.insertions == [(3, 4)]
        w.close()

    def test_primary_restart_with_torn_tail_resumes(self, tmp_path):
        """Satellite: the upstream writer crashes mid-append and restarts.

        Its crash recovery truncates the torn final record and re-appends
        it fresh.  A follower that was holding the torn prefix must
        discard the stale pending bytes and resume from its consumed
        offset — delivering every record exactly once across the restart,
        with no re-bootstrap."""
        path = tmp_path / "wal.log"
        w = WalWriter(path)
        w.append(1, _batch(ins=[(1, 2)]))
        w.append(2, _batch(ins=[(3, 4)]))
        f = WalFollower(path)
        assert [r.seq for r in f.poll()] == [1, 2]
        # crash mid-append: a torn seq-3 record lands on disk
        rec3 = encode_record(3, _batch(ins=[(5, 6)], dels=[(1, 2)]))
        for cut in (3, len(rec3) - 1):   # torn mid-header and mid-payload
            with open(path, "ab") as fh:
                fh.write(rec3[:cut])
            w.close()
            assert f.poll() == []        # torn tail held, not delivered
            # restart: crash recovery truncates the partial record...
            with open(path, "r+b") as fh:
                fh.truncate(path.stat().st_size - cut)
            # ...the follower notices the shrink into its held tail and
            # drops the stale prefix (old behaviour: WalTruncatedError)
            before = f.offset
            assert f.poll() == []
            assert f.offset == before    # consumed cursor intact
            w = WalWriter(path)
        # the restarted writer re-appends seq 3 — with *different*
        # content than the torn attempt (a retry may coalesce
        # differently) — plus new traffic
        w.append(3, _batch(ins=[(9, 10)]))
        w.append(4, _batch(ins=[(7, 8)]))
        polled = f.poll()
        assert [r.seq for r in polled] == [3, 4]
        assert polled[0].batch.insertions == [(9, 10)]
        assert f.last_seq == 4
        assert f.poll() == []            # exactly once: nothing doubled
        w.close()

    def test_decoder_discard_pending_drops_only_the_tail(self):
        d = WalStreamDecoder()
        rec = encode_record(1, _batch(ins=[(1, 2)]))
        assert [r.seq for r in d.feed(WAL_MAGIC + rec + rec[:5])] == [1]
        consumed = d.offset
        assert d.pending_bytes == 5
        assert d.discard_pending() == 5
        assert d.pending_bytes == 0
        assert d.offset == consumed      # consumed cursor untouched
        rec2 = encode_record(2, _batch(ins=[(3, 4)]))
        assert [r.seq for r in d.feed(rec2)] == [2]

    def test_truncation_below_cursor_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        w = WalWriter(path)
        for i in range(4):
            w.append(i + 1, _batch(ins=[(i, i + 10)]))
        f = WalFollower(path)
        assert len(f.poll()) == 4
        w.truncate_through(3)           # checkpoint shrank the log
        with pytest.raises(WalTruncatedError, match="re-bootstrap"):
            f.poll()
        w.close()

    def test_nonzero_resume_offset_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="offset 0"):
            WalFollower(tmp_path / "wal.log", offset=8)

    @given(
        batches=st.lists(batch_st, min_size=1, max_size=8),
        poll_after=st.sets(st.integers(0, 7)),
        tear_at=st.integers(1, 11),
    )
    @settings(max_examples=40)
    def test_interleaved_append_poll_round_trip(
            self, tmp_path_factory, batches, poll_after, tear_at):
        """Hypothesis satellite: appends interleaved with polls at
        arbitrary points — including a torn final record — deliver every
        record exactly once, in order."""
        path = tmp_path_factory.mktemp("follow") / "wal.log"
        w = WalWriter(path)
        f = WalFollower(path)
        seen: list[int] = []
        for i, b in enumerate(batches):
            w.append(i + 1, b)
            if i in poll_after:
                seen.extend(r.seq for r in f.poll())
        # torn final record: partial bytes visible at poll time
        last = encode_record(len(batches) + 1, _batch(ins=[(7, 8)]))
        cut = min(tear_at, len(last) - 1)
        with open(path, "ab") as fh:
            fh.write(last[:cut])
        mid = [r.seq for r in f.poll()]
        assert (len(batches) + 1) not in mid     # torn: not delivered
        seen.extend(mid)
        with open(path, "ab") as fh:
            fh.write(last[cut:])
        seen.extend(r.seq for r in f.poll())
        assert seen == list(range(1, len(batches) + 2))
        w.close()


class TestDriverResilience:
    def test_interrupt_drains_and_checkpoints(self, tmp_path, monkeypatch):
        """Satellite: KeyboardInterrupt mid-stream → queue drained, final
        checkpoint written, report.interrupted set, rerun resumes."""
        import repro.service.driver as driver_mod
        from repro.service import ServeConfig, run_serve

        real = driver_mod.request_stream
        cut_after = 400

        def interrupting(*args, **kwargs):
            initial, requests = real(*args, **kwargs)

            def gen():
                for i, req in enumerate(requests):
                    if i == cut_after:
                        raise KeyboardInterrupt
                    yield req
            return initial, gen()

        monkeypatch.setattr(driver_mod, "request_stream", interrupting)
        cfg = ServeConfig(n=48, m=160, requests=2000, shards=2,
                          processes=False, max_batch=32,
                          wal_dir=str(tmp_path), checkpoint_interval=8)
        report = run_serve(cfg, verify=True)
        assert report.interrupted
        assert report.served == cut_after
        assert report.verified
        assert report.final_seq > 0
        monkeypatch.setattr(driver_mod, "request_stream", real)
        # rerun with the same WAL dir: resumes from the shutdown state
        report2 = run_serve(cfg, verify=True)
        assert report2.resumed_from_seq == report.final_seq
        assert report2.verified

    def test_run_serve_without_wal_dir_still_verifies(self):
        from repro.service import ServeConfig, run_serve

        cfg = ServeConfig(n=48, m=160, requests=800, shards=2,
                          processes=False, max_batch=32)
        report = run_serve(cfg, verify=True)
        assert report.verified and not report.interrupted

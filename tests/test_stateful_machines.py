"""Hypothesis rule-based state machines driving the dynamic structures.

Each machine mixes arbitrary batch operations and checks the structure's
full invariant set plus its defining guarantee after every step — the
strongest form of randomized testing the Las Vegas design permits.
"""

import math

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.connectivity import DynamicSpanningForest
from repro.graph import norm_edge
from repro.spanner import FullyDynamicSpanner
from repro.spanner.dynamizer import BentleySaxeDynamizer
from repro.verify import is_spanner

N = 10
UNIVERSE = [(u, v) for u in range(N) for v in range(u + 1, N)]

edge_strategy = st.sampled_from(UNIVERSE)
batch_strategy = st.lists(edge_strategy, max_size=6, unique=True)


class SpannerMachine(RuleBasedStateMachine):
    """Fully-dynamic spanner vs a mirrored edge set."""

    @initialize(seed=st.integers(0, 2**20))
    def setup(self, seed):
        self.sp = FullyDynamicSpanner(N, k=2, seed=seed, base_capacity=3)
        self.present: set = set()
        self.spanner: set = set()

    @rule(batch=batch_strategy)
    def insert(self, batch):
        batch = [e for e in batch if e not in self.present]
        ins, dels = self.sp.update(insertions=batch)
        self.present |= set(batch)
        self.spanner = (self.spanner - dels) | ins

    @rule(batch=batch_strategy)
    def delete(self, batch):
        batch = [e for e in batch if e in self.present]
        ins, dels = self.sp.update(deletions=batch)
        self.present -= set(batch)
        self.spanner = (self.spanner - dels) | ins

    @rule(ins=batch_strategy, dels=batch_strategy)
    def mixed(self, ins, dels):
        dels = [e for e in dels if e in self.present]
        ins = [e for e in ins if e not in self.present and e not in dels]
        # same-batch delete+reinsert is allowed; avoid only pure dupes
        d_ins, d_dels = self.sp.update(insertions=ins, deletions=dels)
        self.present = (self.present - set(dels)) | set(ins)
        self.spanner = (self.spanner - d_dels) | d_ins

    @invariant()
    def spanner_is_valid(self):
        if not hasattr(self, "sp"):
            return
        assert self.spanner == self.sp.spanner_edges()
        assert self.sp.m == len(self.present)
        assert self.spanner <= self.present
        assert is_spanner(N, self.present, self.spanner, self.sp.stretch)
        self.sp.check_invariants()


class DynamizerMachine(RuleBasedStateMachine):
    """Bentley–Saxe partition bookkeeping under arbitrary batches."""

    class _Struct:
        def __init__(self, edges):
            self.edges = set(edges)

        def output_edges(self):
            return set(self.edges)

        def batch_delete(self, batch):
            dels = set()
            for e in batch:
                self.edges.remove(e)
                dels.add(e)
            return set(), dels

    @initialize()
    def setup(self):
        self.dyn = BentleySaxeDynamizer([], self._Struct, base_capacity=2)
        self.present: set = set()

    @rule(ins=batch_strategy, dels=batch_strategy)
    def update(self, ins, dels):
        dels = [e for e in dels if e in self.present]
        ins = [e for e in ins if e not in self.present and e not in dels]
        self.dyn.update(insertions=ins, deletions=dels)
        self.present = (self.present - set(dels)) | set(ins)

    @invariant()
    def partitions_consistent(self):
        if not hasattr(self, "dyn"):
            return
        self.dyn.check_invariants()
        assert self.dyn.output_edges() == self.present
        # Invariant B1 shape: at most O(log m) nonempty levels
        if self.present:
            assert len(self.dyn.level_sizes()) <= int(
                math.log2(len(self.present)) + 3
            )


class ForestMachine(RuleBasedStateMachine):
    """HDT spanning forest vs exhaustive connectivity recomputation."""

    @initialize(seed=st.integers(0, 2**20))
    def setup(self, seed):
        self.dsf = DynamicSpanningForest(N, seed=seed)
        self.present: set = set()
        self.forest: set = set()

    @rule(e=edge_strategy)
    def toggle(self, e):
        if e in self.present:
            removed, repl = self.dsf.delete(*e)
            self.present.remove(e)
            if removed is not None:
                self.forest.remove(removed)
            if repl is not None:
                self.forest.add(repl)
        else:
            joined = self.dsf.insert(*e)
            self.present.add(e)
            if joined is not None:
                self.forest.add(joined)

    @invariant()
    def forest_tracks_graph(self):
        if not hasattr(self, "dsf"):
            return
        assert self.forest == self.dsf.forest_edges()
        assert self.forest <= self.present
        # connectivity oracle agrees with union-find recomputation
        parent = list(range(N))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for u, v in self.present:
            parent[find(u)] = find(v)
        for u in range(N):
            for v in range(u + 1, N):
                assert self.dsf.connected(u, v) == (find(u) == find(v))


TestSpannerMachine = SpannerMachine.TestCase
TestSpannerMachine.settings = settings(
    max_examples=25, stateful_step_count=12, deadline=None
)
TestDynamizerMachine = DynamizerMachine.TestCase
TestDynamizerMachine.settings = settings(
    max_examples=40, stateful_step_count=20, deadline=None
)
TestForestMachine = ForestMachine.TestCase
TestForestMachine.settings = settings(
    max_examples=30, stateful_step_count=25, deadline=None
)

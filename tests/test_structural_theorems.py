"""Structural facts every maintained spanner must satisfy — theorem-level
properties that hold for *all* of the paper's constructions at once."""

import networkx as nx
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.contraction import SparseSpannerDynamic
from repro.graph import gnm_random_graph
from repro.spanner import FullyDynamicSpanner
from repro.ultrasparse import UltraSparseSpannerDynamic


def graphs(max_n=16, max_m=50):
    @st.composite
    def build(draw):
        n = draw(st.integers(3, max_n))
        cap = min(n * (n - 1) // 2, max_m)
        m = draw(st.integers(0, cap))
        seed = draw(st.integers(0, 10**6))
        return n, gnm_random_graph(n, m, seed=seed)

    return build()


def all_spanners(n, edges, seed):
    yield FullyDynamicSpanner(
        n, edges, k=2, seed=seed, base_capacity=4
    ).spanner_edges()
    yield SparseSpannerDynamic(
        n, edges, rates=[2.0], k_final=2, seed=seed, base_capacity=4
    ).spanner_edges()
    yield UltraSparseSpannerDynamic(
        n, edges, x=2.0, seed=seed, inner_rates=[2.0], k_final=2,
        base_capacity=4,
    ).spanner_edges()


class TestBridgesAlwaysKept:
    """A spanner of any finite stretch must contain every bridge — the
    cheapest universal sanity check for all three constructions."""

    @settings(max_examples=25, deadline=None)
    @given(graphs(), st.integers(0, 10**6))
    def test_bridges_in_every_spanner(self, g, seed):
        n, edges = g
        assume(edges)
        gg = nx.Graph(edges)
        bridges = {tuple(sorted(e)) for e in nx.bridges(gg)}
        assume(bridges)
        for h in all_spanners(n, edges, seed):
            assert bridges <= h


class TestConnectivityPreserved:
    @settings(max_examples=20, deadline=None)
    @given(graphs(), st.integers(0, 10**6))
    def test_components_identical(self, g, seed):
        n, edges = g
        gg = nx.Graph(edges)
        gg.add_nodes_from(range(n))
        want = {frozenset(c) for c in nx.connected_components(gg)}
        for h in all_spanners(n, edges, seed):
            hh = nx.Graph(h)
            hh.add_nodes_from(range(n))
            got = {frozenset(c) for c in nx.connected_components(hh)}
            assert got == want


class TestTreeInputsKeptVerbatim:
    """On a forest, every spanner must be the forest itself (nothing can
    be dropped without breaking connectivity)."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(3, 20), st.integers(0, 10**6))
    def test_forest_identity(self, n, seed):
        from repro.graph import random_tree

        edges = random_tree(n, seed=seed)
        for h in all_spanners(n, edges, seed):
            assert h == set(edges)


class TestDegenerateRates:
    def test_empty_rate_sequence_degenerates_to_thm11(self):
        n, m = 18, 70
        edges = gnm_random_graph(n, m, seed=3)
        sp = SparseSpannerDynamic(n, edges, rates=[], k_final=2, seed=3,
                                  base_capacity=4)
        assert sp.num_levels == 0
        from repro.verify import is_spanner

        assert is_spanner(n, edges, sp.spanner_edges(), sp.stretch_bound())
        sp.update(deletions=edges[:20])
        assert is_spanner(
            n, set(edges[20:]), sp.spanner_edges(), sp.stretch_bound()
        )

"""Non-toy-scale smoke tests: the structures must handle thousands of
vertices / tens of thousands of edges in reasonable time.

These runs only assert coarse guarantees (sizes, sampled stretch,
consistency) — the heavyweight oracles stay in the small-n tests.
"""

import random
import time

import pytest

from repro.contraction import SparseSpannerDynamic
from repro.graph import gnm_random_graph
from repro.spanner import FullyDynamicSpanner
from repro.bfs import BatchDynamicESTree
from repro.verify import pairwise_stretch


class TestScale:
    def test_spanner_n800_dense(self):
        # dense enough that m >> n^{1+1/k}: real compression is mandatory
        n, m, k = 800, 30000, 3
        edges = gnm_random_graph(n, m, seed=1)
        t0 = time.perf_counter()
        sp = FullyDynamicSpanner(n, edges, k=k, seed=1)
        build = time.perf_counter() - t0
        assert build < 60
        assert sp.spanner_size() < m / 2
        rng = random.Random(1)
        # a few mixed batches
        alive = list(edges)
        rng.shuffle(alive)
        t0 = time.perf_counter()
        for i in range(3):
            batch, alive = alive[:500], alive[500:]
            sp.update(deletions=batch)
        assert time.perf_counter() - t0 < 60
        current = set(alive)
        pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(15)]
        assert pairwise_stretch(
            n, current, sp.spanner_edges(), pairs
        ) <= 2 * k - 1

    def test_sparse_spanner_n1500(self):
        n, m = 1500, 12000
        edges = gnm_random_graph(n, m, seed=2)
        t0 = time.perf_counter()
        sp = SparseSpannerDynamic(n, edges, seed=2)
        assert time.perf_counter() - t0 < 90
        assert sp.spanner_size() <= 10 * n
        sp.update(deletions=edges[:400])
        assert sp.spanner_size() <= 10 * n

    def test_es_tree_n3000(self):
        rng = random.Random(3)
        n, m, limit = 3000, 15000, 6
        edges = set()
        while len(edges) < m:
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                edges.add((u, v))
        edges = sorted(edges)
        t0 = time.perf_counter()
        tree = BatchDynamicESTree(n, edges, source=0, limit=limit)
        for i in range(0, 4500, 1500):
            tree.batch_delete(edges[i : i + 1500])
        assert time.perf_counter() - t0 < 60
        # spot check a few distances against fresh BFS
        from repro.bfs import bounded_bfs_directed

        alive = edges[4500:]
        adj = [[] for _ in range(n)]
        for u, v in alive:
            adj[u].append(v)
        want = bounded_bfs_directed(n, adj, 0, limit)
        assert tree.distances() == want

"""repro.parallel: execution backends, charge identity, pool mechanics.

The load-bearing contract under test: routing a charged parallel region
through an execution backend changes *where* the branches run, never what
they answer or what they charge.  Sequential and process-pool backends
must produce identical values and identical recorded ``(work, depth)``
for every composition of ``pfor`` / ``parallel`` / ``charge_many``, and
the pool's merge must be deterministic under task reordering (it is a
commutative sum/max applied in canonical task order).
"""

from __future__ import annotations

import random
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import (
    PoolError,
    WorkerCrashed,
    ProcessPoolBackend,
    SequentialBackend,
    is_shippable,
    parallel_batch_components,
    parallel_multi_source_bfs,
    resolve_backend,
    wants_cost,
)
from repro.pram.cost import NULL_COST_MODEL, CostModel
from repro.queries.batch import batch_components, multi_source_bfs


# -- module-level functions (shippable to workers by construction) ----------

def charge_square(x, cost):
    cost.charge_many(x, 1)
    return x * x


def plain_double(x):
    return 2 * x


def nested_rounds(x, cost):
    """A branch that itself opens parallel regions (always inline in the
    executing process: workers' fresh models have no backend)."""
    with cost.parallel() as par:
        for i in range(x % 3 + 1):
            with par.task():
                cost.charge_many(i + 1, 1)
    cost.charge_many(x, 2)
    return x


def boom(x, cost):
    if x == 3:
        raise ValueError("boom at 3")
    cost.charge_many(1, 1)
    return x


def sum_kernel(args, shared, cost):
    base = shared.get("base", 0)
    total = sum(args["chunk"]) + base
    cost.charge_many(len(args["chunk"]), 1)
    return total


@pytest.fixture(scope="module")
def pool():
    backend = ProcessPoolBackend(2, min_items=1)
    yield backend
    backend.close()


def _run_program(backend, items, extra):
    """One charged program exercising pfor + charge_many + nesting.

    With a backend, the module-level charged functions are passed
    directly (the seam injects ``cost=``); the no-backend reference
    closes over the model instead — the historical calling convention.
    """
    cm = CostModel()
    if backend is not None:
        cm.set_backend(backend)
        sq, nested = charge_square, nested_rounds
    else:
        sq = lambda x: charge_square(x, cm)          # noqa: E731
        nested = lambda x: nested_rounds(x, cm)      # noqa: E731
    with cm.frame() as fr:
        a = cm.pfor(items, sq)
        cm.charge_many(extra, 1)
        b = cm.pfor(items, nested)
        with cm.parallel() as par:
            c = par.map(items, sq)
    return (a, b, c), (fr.work, fr.depth), (cm.work, cm.depth)


class TestShippability:
    def test_module_level_functions_ship(self):
        assert is_shippable(charge_square)
        assert is_shippable(plain_double)

    def test_closures_lambdas_methods_do_not(self):
        y = 1
        assert not is_shippable(lambda x: x)
        assert not is_shippable(lambda x: x + y)
        assert not is_shippable("".join)
        assert not is_shippable(TestShippability.test_module_level_functions_ship)

    def test_wants_cost(self):
        assert wants_cost(charge_square)
        assert not wants_cost(plain_double)


class TestResolveBackend:
    def test_sequential_specs(self):
        for spec in (0, 1, "seq", "sequential", ""):
            b = resolve_backend(spec)
            assert isinstance(b, SequentialBackend)
        assert resolve_backend(None) is None

    def test_passthrough(self):
        b = SequentialBackend()
        assert resolve_backend(b) is b

    def test_pool_specs(self):
        for spec in (2, "2", "pool:2"):
            b = resolve_backend(spec)
            try:
                assert isinstance(b, ProcessPoolBackend)
                assert b.workers == 2
            finally:
                b.close()

    def test_invalid(self):
        with pytest.raises(ValueError):
            resolve_backend("nope")


class TestChargeIdentity:
    """Inline (no backend), sequential backend, and pool must agree."""

    def test_simple_program(self, pool):
        items = list(range(10))
        ref = _run_program(None, items, 7)
        seq = _run_program(SequentialBackend(), items, 7)
        par = _run_program(pool, items, 7)
        assert seq == ref
        assert par == ref

    @settings(max_examples=15, deadline=None)
    @given(
        items=st.lists(st.integers(min_value=0, max_value=20), max_size=12),
        extra=st.integers(min_value=0, max_value=50),
    )
    def test_property_identity_sequential(self, items, extra):
        assert _run_program(SequentialBackend(), items, extra) \
            == _run_program(None, items, extra)

    def test_property_identity_pool(self, pool):
        rng = random.Random(7)
        for _ in range(8):
            items = [rng.randrange(20) for _ in range(rng.randrange(12))]
            extra = rng.randrange(50)
            assert _run_program(pool, items, extra) \
                == _run_program(None, items, extra)

    def test_disabled_model_charges_nothing(self, pool):
        for backend in (SequentialBackend(), pool):
            NULL_COST_MODEL.set_backend(backend)
            try:
                out = NULL_COST_MODEL.pfor(list(range(6)), charge_square)
            finally:
                NULL_COST_MODEL.set_backend(None)
            assert out == [x * x for x in range(6)]
            assert NULL_COST_MODEL.work == 0

    def test_closure_falls_back_inline(self, pool):
        cm = CostModel()
        cm.set_backend(pool)
        captured = []

        def fn(x):
            captured.append(x)
            cm.charge_many(1, 1)
            return -x

        before = pool.inline_fallbacks_total
        assert cm.pfor([1, 2, 3], fn) == [-1, -2, -3]
        assert captured == [1, 2, 3]           # ran in this process
        assert pool.inline_fallbacks_total == before + 3
        assert (cm.work, cm.depth) == (3, 1)


class TestMergeDeterminism:
    def test_map_chunks_order_invariant(self, pool):
        pool.put_shared("base", 5)
        chunks = [{"chunk": list(range(i, i + 4))} for i in range(0, 24, 4)]
        ref = pool.map_chunks(sum_kernel, chunks, shared_keys=("base",))
        perm = list(range(len(chunks)))[::-1]
        got = pool.map_chunks(
            sum_kernel, chunks, shared_keys=("base",), order=perm
        )
        assert [r.value for r in got] == [r.value for r in ref]
        assert [(r.work, r.depth) for r in got] \
            == [(r.work, r.depth) for r in ref]

    def test_map_chunks_matches_sequential(self, pool):
        seq = SequentialBackend()
        seq.put_shared("base", 5)
        pool.put_shared("base", 5)
        chunks = [{"chunk": [1, 2, 3]}, {"chunk": [4]}, {"chunk": []}]
        a = seq.map_chunks(sum_kernel, chunks, shared_keys=("base",))
        b = pool.map_chunks(sum_kernel, chunks, shared_keys=("base",))
        assert [(r.value, r.work, r.depth) for r in a] \
            == [(r.value, r.work, r.depth) for r in b]

    def test_bad_order_rejected(self, pool):
        with pytest.raises(ValueError):
            pool.map_chunks(
                sum_kernel, [{"chunk": [1]}, {"chunk": [2]}], order=[0, 0]
            )


class TestKernelIdentity:
    """The pool-backed BFS/components kernels answer and charge exactly
    like the sequential library functions."""

    @staticmethod
    def _graph(seed, n=80, m=160):
        rng = random.Random(seed)
        adj = {v: set() for v in range(n)}
        for _ in range(m):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                adj[u].add(v)
                adj[v].add(u)
        return {v: sorted(ws) for v, ws in adj.items()}, n

    @pytest.mark.parametrize("seed", [0, 1])
    def test_mbfs_answers_and_charges(self, pool, seed):
        adj, n = self._graph(seed)
        sources = [0, 3, 17, 41]
        ref_cm = CostModel()
        ref = multi_source_bfs(adj, sources, n=n, cost=ref_cm)
        got_cm = CostModel()
        got = parallel_multi_source_bfs(
            pool, adj, sources, n=n, cost=got_cm,
            adj_key=f"t:mbfs:{seed}", adj_version=seed,
        )
        assert got == ref
        assert (got_cm.work, got_cm.depth) == (ref_cm.work, ref_cm.depth)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_components_answers_and_charges(self, pool, seed):
        adj, n = self._graph(seed, m=90)  # sparse: several components
        vertices = list(range(0, n, 7))
        ref_cm = CostModel()
        ref = batch_components(adj, vertices, n=n, cost=ref_cm)
        got_cm = CostModel()
        got = parallel_batch_components(
            pool, adj, vertices, n=n, cost=got_cm,
            adj_key=f"t:comp:{seed}", adj_version=seed,
        )
        assert got == ref
        assert (got_cm.work, got_cm.depth) == (ref_cm.work, ref_cm.depth)

    def test_mbfs_targets_route(self, pool):
        """With targets the routed entry point only uses the pool when no
        charges are recorded; answers at the targets stay exact."""
        adj, n = self._graph(2)
        sources = [0, 5]
        targets = {0: [9, 20, 33], 5: [1, 64]}
        ref = multi_source_bfs(adj, sources, targets=targets, n=n)
        got = multi_source_bfs(
            adj, sources, targets=targets, n=n,
            backend=pool, adj_version="targets",
        )
        for s, wants in targets.items():
            for t in wants:
                assert got[s].get(t) == ref[s].get(t)

    def test_routed_entry_points_match(self, pool):
        adj, n = self._graph(3)
        cm_a, cm_b = CostModel(), CostModel()
        a = multi_source_bfs(adj, [0, 2], n=n, cost=cm_a)
        b = multi_source_bfs(
            adj, [0, 2], n=n, cost=cm_b, backend=pool, adj_version="r",
        )
        assert a == b
        assert (cm_a.work, cm_a.depth) == (cm_b.work, cm_b.depth)


class TestEmulation:
    def test_sequential_pays_serially_pool_overlaps(self):
        # 4 items x 200 work units x 250us = 200ms serial floor; two
        # workers sleep concurrently so the pool takes roughly half.
        tau = 250e-6
        items = [200] * 4
        seq = SequentialBackend(unit_cost_s=tau, min_items=1)
        t0 = time.perf_counter()
        NULL_COST_MODEL.set_backend(seq)
        try:
            NULL_COST_MODEL.pfor(items, charge_square)
        finally:
            NULL_COST_MODEL.set_backend(None)
        t_seq = time.perf_counter() - t0
        pool = ProcessPoolBackend(2, unit_cost_s=tau, min_items=1)
        try:
            cm = CostModel()
            cm.set_backend(pool)
            t0 = time.perf_counter()
            cm.pfor(items, charge_square)
            t_pool = time.perf_counter() - t0
        finally:
            pool.close()
        assert t_seq >= 0.8 * sum(items) * tau
        assert t_pool < t_seq

    def test_negative_unit_cost_rejected(self):
        with pytest.raises(ValueError):
            SequentialBackend(unit_cost_s=-1.0)


class TestPoolRobustness:
    def test_task_error_propagates_and_pool_survives(self, pool):
        cm = CostModel()
        cm.set_backend(pool)
        with pytest.raises(PoolError, match="boom at 3"):
            cm.pfor(list(range(6)), boom)
        # the pool is still usable afterwards
        cm2 = CostModel()
        cm2.set_backend(pool)
        assert cm2.pfor([2, 4], charge_square) == [4, 16]

    def test_closed_pool_raises(self):
        p = ProcessPoolBackend(2, min_items=1)
        p.close()
        p.close()  # idempotent
        with pytest.raises(PoolError):
            p.map_chunks(sum_kernel, [{"chunk": [1]}])

    def test_put_shared_version_cache(self, pool):
        pool.put_shared("v", {"a": 1}, version=1)
        pool.put_shared("v", {"a": 2}, version=1)  # same version: no-op
        assert pool.get_shared("v") == {"a": 1}
        pool.put_shared("v", {"a": 3}, version=2)
        assert pool.get_shared("v") == {"a": 3}

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(0)

    def test_pinned_needs_enough_workers(self, pool):
        with pytest.raises(ValueError):
            pool.map_chunks(
                sum_kernel,
                [{"chunk": [1]}, {"chunk": [2]}, {"chunk": [3]}],
                pinned=True,
            )


class TestMetrics:
    def test_bind_metrics_records_dispatches(self):
        from repro.service.metrics import MetricsRegistry

        reg = MetricsRegistry()
        pool = ProcessPoolBackend(2, min_items=1)
        try:
            pool.bind_metrics(reg)
            cm = CostModel()
            cm.set_backend(pool)
            cm.pfor(list(range(8)), charge_square)
            cm.pfor([1], lambda x: x)  # closure: inline fallback
            snap = reg.snapshot()
            assert snap["pool_workers"] == 2
            assert snap["pool_tasks_total"] >= 1
            assert snap["pool_dispatches_total"] >= 1
            assert snap["pool_inline_fallbacks_total"] >= 1
            assert 0.0 <= snap["pool_utilization"] <= 1.0
        finally:
            pool.close()


# -- worker supervision -------------------------------------------------------


def square_chunk_kernel(payload, shared, cost=None):
    time.sleep(payload.get("sleep_s", 0.0))
    return sorted(x * x for x in payload["items"])


def die_once_kernel(payload, shared, cost=None):
    """Dies (hard exit, as if SIGKILLed) the first time it sees its flag
    path missing; succeeds on the supervised retry."""
    import os
    flag = payload.get("flag")
    if flag and not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(9)
    return sorted(x * x for x in payload["items"])


def always_die_kernel(payload, shared, cost=None):
    import os
    if payload.get("die"):
        os._exit(9)
    return sum(payload["items"])


def shared_sum_kernel(payload, shared, cost=None):
    return sum(shared["base"]) + sum(payload["items"])


class TestWorkerSupervision:
    def _chunks(self, n=6, **extra):
        return [dict(items=list(range(4 * c, 4 * c + 4)), **extra)
                for c in range(n)]

    def test_dead_worker_requeued_and_results_exact(self, tmp_path):
        pool = ProcessPoolBackend(2, restart_backoff_s=0.01)
        try:
            chunks = self._chunks(6)
            chunks[3]["flag"] = str(tmp_path / "die3")
            expect = [sorted(x * x for x in ch["items"]) for ch in chunks]
            out = pool.map_chunks(die_once_kernel, chunks)
            assert [r.value for r in out] == expect
            assert pool.worker_restarts_total == 1
            # the healed pool keeps working
            out2 = pool.map_chunks(square_chunk_kernel, self._chunks(4))
            assert [r.value for r in out2] == [
                sorted(x * x for x in ch["items"])
                for ch in self._chunks(4)]
        finally:
            pool.close()

    def test_poison_task_raises_with_task_identity(self):
        """Satellite: the dead-worker error must say which task was in
        flight — a task that kills every worker it lands on is quarantined
        by identity, not guessed at."""
        pool = ProcessPoolBackend(2, restart_backoff_s=0.01,
                                  task_retry_limit=2)
        try:
            chunks = [{"items": [1, 2]}, {"items": [3], "die": True},
                      {"items": [4, 5]}]
            with pytest.raises(WorkerCrashed) as ei:
                pool.map_chunks(always_die_kernel, chunks)
            exc = ei.value
            assert exc.task_ids == [1]
            assert exc.fn_name == "always_die_kernel"
            assert exc.workers
            assert exc.restarts >= 1
            assert "task" in str(exc) and "always_die_kernel" in str(exc)
            # supervision healed the pool before raising
            assert [r.value for r in pool.map_chunks(
                always_die_kernel, [{"items": [2, 3]}])] == [5]
        finally:
            pool.close()

    def test_restart_budget_exhaustion_raises(self):
        pool = ProcessPoolBackend(2, restart_budget=0,
                                  restart_backoff_s=0.0)
        try:
            with pytest.raises(WorkerCrashed) as ei:
                pool.map_chunks(
                    always_die_kernel,
                    [{"items": [1]}, {"items": [2], "die": True}])
            assert ei.value.restarts == 0
            assert ei.value.task_ids == [1]
            # healed: replacement workers were still forked
            assert [r.value for r in pool.map_chunks(
                always_die_kernel, [{"items": [7]}])] == [7]
        finally:
            pool.close()

    def test_pinned_dispatch_crashes_fast_but_heals(self, tmp_path):
        """Pinned dispatches carry per-sweep mirror state a replacement
        worker never saw: supervision must fail the dispatch (typed, with
        task identity) yet hand back a healed pool with shared state
        re-broadcast."""
        pool = ProcessPoolBackend(2, restart_backoff_s=0.01)
        try:
            pool.put_shared("base", [10, 20], version=1)
            chunks = [{"items": [1]},
                      {"items": [2], "flag": str(tmp_path / "diep")}]
            with pytest.raises(WorkerCrashed) as ei:
                pool.map_chunks(die_once_kernel, chunks, pinned=True)
            assert ei.value.task_ids == [1]
            # pinned dispatches still work and replacement workers hold
            # the re-broadcast shared payload
            out = pool.map_chunks(
                shared_sum_kernel,
                [{"items": [1]}, {"items": [2]}],
                shared_keys=("base",), pinned=True)
            assert [r.value for r in out] == [31, 32]
        finally:
            pool.close()

    def test_idle_worker_killed_detected_at_send(self):
        import os
        import signal

        pool = ProcessPoolBackend(2, restart_backoff_s=0.01)
        try:
            assert [r.value for r in pool.map_chunks(
                square_chunk_kernel, self._chunks(2))] == [
                    sorted(x * x for x in ch["items"])
                    for ch in self._chunks(2)]
            os.kill(pool._procs[0].pid, signal.SIGKILL)
            pool._procs[0].join(timeout=2.0)
            out = pool.map_chunks(square_chunk_kernel, self._chunks(4))
            assert [r.value for r in out] == [
                sorted(x * x for x in ch["items"])
                for ch in self._chunks(4)]
            assert pool.worker_restarts_total >= 1
        finally:
            pool.close()

    def test_worker_restarts_metric(self, tmp_path):
        from repro.service.metrics import MetricsRegistry

        reg = MetricsRegistry()
        pool = ProcessPoolBackend(2, restart_backoff_s=0.01)
        try:
            pool.bind_metrics(reg)
            chunks = self._chunks(4)
            chunks[0]["flag"] = str(tmp_path / "die0")
            pool.map_chunks(die_once_kernel, chunks)
            assert reg.snapshot()["pool_worker_restarts"] == 1
        finally:
            pool.close()

    def test_supervision_is_uncharged(self, tmp_path):
        """Restarts are control plane: the dispatch's charged work/depth
        must be identical with and without a mid-dispatch worker death."""
        chunks = self._chunks(5, sleep_s=0.0)
        clean = ProcessPoolBackend(2, restart_backoff_s=0.01)
        try:
            base = clean.map_chunks(square_chunk_kernel, chunks)
        finally:
            clean.close()
        chunks2 = self._chunks(5, sleep_s=0.0)
        chunks2[2]["flag"] = str(tmp_path / "diec")
        faulty = ProcessPoolBackend(2, restart_backoff_s=0.01)
        try:
            hurt = faulty.map_chunks(die_once_kernel, chunks2)
        finally:
            faulty.close()
        assert [(r.work, r.depth) for r in base] == \
                [(r.work, r.depth) for r in hurt]
        assert [r.value for r in base] == [r.value for r in hurt]

"""Batch-split invariance: the Las Vegas state is canonical.

With fixed randomness, distances, parents, clusters, and heads are
functions of the *current graph only* — so applying the same deletions as
one batch, many small batches, or one-at-a-time must land in exactly the
same state.  (Representative choices — e.g. inter-cluster spanner edges —
are deliberately sticky and may differ; the canonical layers must not.)
"""

import random

import pytest

from repro.bfs import BatchDynamicESTree
from repro.spanner.shift_clustering import ShiftedClustering, sample_shifts
from repro.ultrasparse import UltraSparseSpannerDynamic
from repro.graph import gnm_random_graph


def _random_digraph(n, m, seed):
    rng = random.Random(seed)
    edges = set()
    while len(edges) < m:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.add((u, v))
    return sorted(edges)


def _splits(items, rng):
    yield [items]  # one batch
    yield [[e] for e in items]  # singletons
    mixed, i = [], 0
    while i < len(items):
        b = rng.choice([1, 2, 5])
        mixed.append(items[i : i + b])
        i += b
    yield mixed


class TestESTreeInvariance:
    @pytest.mark.parametrize("seed", range(4))
    def test_distances_and_parents_identical(self, seed):
        n, m, limit = 25, 120, 6
        edges = _random_digraph(n, m, seed)
        rng = random.Random(seed)
        to_delete = rng.sample(edges, 60)
        states = []
        for batching in _splits(to_delete, random.Random(seed + 1)):
            tree = BatchDynamicESTree(n, edges, source=0, limit=limit)
            for batch in batching:
                tree.batch_delete(batch)
            states.append((tree.distances(), list(tree.parent)))
        assert states[0] == states[1] == states[2]


class TestClusteringInvariance:
    @pytest.mark.parametrize("seed", range(4))
    def test_clusters_identical(self, seed):
        import math
        import numpy as np

        n, m, k = 20, 60, 3
        edges = gnm_random_graph(n, m, seed=seed)
        deltas = sample_shifts(
            n, beta=math.log(10 * n) / k, cap=float(k),
            rng=np.random.default_rng(seed),
        )
        rng = random.Random(seed)
        to_delete = rng.sample(edges, 30)
        states = []
        for batching in _splits(to_delete, random.Random(seed + 1)):
            sc = ShiftedClustering(n, edges, deltas)
            for batch in batching:
                sc.batch_delete(batch)
            states.append(
                (sc.clusters(), sorted(sc.tree_edges()))
            )
        assert states[0] == states[1] == states[2]


class TestUltraHeadInvariance:
    @pytest.mark.parametrize("seed", range(3))
    def test_heads_identical(self, seed):
        n, m = 16, 50
        edges = gnm_random_graph(n, m, seed=seed)
        rng = random.Random(seed)
        to_delete = rng.sample(edges, 25)
        states = []
        for batching in _splits(to_delete, random.Random(seed + 1)):
            sp = UltraSparseSpannerDynamic(
                n, edges, x=2.0, seed=seed, inner_rates=[2.0], k_final=2,
                base_capacity=4,
            )
            for batch in batching:
                sp.update(deletions=batch)
            states.append((list(sp.head), [i.par for i in sp.info]))
        assert states[0] == states[1] == states[2]

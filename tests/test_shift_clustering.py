"""Tests for the exponential start-time clustering (Section 3.3 engine).

The decisive oracle: with fixed shifts, the dynamically maintained clusters
must equal the static recomputation on the remaining graph after every batch.
"""

import math
import random

import numpy as np
import pytest

from repro.spanner.shift_clustering import (
    ShiftedClustering,
    sample_shifts,
    static_clusters,
)


def random_graph(rng, n, m):
    edges = set()
    while len(edges) < m:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return sorted(edges)


class TestSampleShifts:
    def test_respects_cap(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            d = sample_shifts(50, beta=math.log(500) / 4, cap=4.0, rng=rng)
            assert d.max() < 4.0
            assert len(d) == 50

    def test_zero_vertices(self):
        rng = np.random.default_rng(0)
        assert len(sample_shifts(0, 1.0, 1.0, rng)) == 0

    def test_impossible_cap_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(RuntimeError):
            sample_shifts(1000, beta=0.01, cap=0.0001, rng=rng,
                          max_retries=5)


class TestStaticClusters:
    def test_isolated_vertices_self_cluster(self):
        cluster, parent, dist = static_clusters(3, [], [0.5, 0.2, 0.9])
        assert cluster == [0, 1, 2]
        assert parent == [None, None, None]

    def test_single_edge_higher_shift_wins(self):
        # delta_0 = 1.6, delta_1 = 0.1: vertex 0 reaches 1 with shifted
        # distance 1 - 1.6 = -0.6 < 0 - 0.1, so both join cluster 0.
        cluster, parent, dist = static_clusters(2, [(0, 1)], [1.6, 0.1])
        assert cluster == [0, 0]
        assert parent == [None, 0]

    def test_tie_broken_by_fraction(self):
        # Equal integer parts; larger fractional part wins the tie at v=1?
        # delta_0 = 0.9, delta_1 = 0.8: shifted distances to vertex 1 are
        # 1 - 0.9 = 0.1 (via 0) vs 0 - 0.8 = -0.8 (self) -> self wins.
        cluster, _, _ = static_clusters(2, [(0, 1)], [0.9, 0.8])
        assert cluster == [1, 1] or cluster[1] == 1

    def test_path_graph_clusters_are_contiguous(self):
        rng = np.random.default_rng(42)
        n = 30
        edges = [(i, i + 1) for i in range(n - 1)]
        deltas = sample_shifts(n, beta=math.log(10 * n) / 3, cap=3.0, rng=rng)
        cluster, parent, dist = static_clusters(n, edges, deltas)
        # Exponential-shift clusters on a path are intervals.
        for v in range(n):
            c = cluster[v]
            lo, hi = min(v, c), max(v, c)
            for w in range(lo, hi + 1):
                assert cluster[w] == c

    def test_matches_bruteforce_argmin(self):
        rng = random.Random(3)
        nprng = np.random.default_rng(3)
        for trial in range(20):
            n = rng.randrange(2, 14)
            m = rng.randrange(0, n * (n - 1) // 2 + 1)
            edges = random_graph(rng, n, m)
            k = rng.choice([2, 3, 4])
            deltas = sample_shifts(
                n, beta=math.log(10 * n) / k, cap=float(k), rng=nprng
            )
            cluster, _, _ = static_clusters(n, edges, deltas)
            # brute force: all-pairs BFS
            import networkx as nx

            g = nx.Graph(edges)
            g.add_nodes_from(range(n))
            spl = dict(nx.all_pairs_shortest_path_length(g))
            for v in range(n):
                best = min(
                    (
                        (spl[u][v] - deltas[u], u)
                        for u in range(n)
                        if v in spl.get(u, {}) or u == v
                    ),
                )
                # among centers achieving floor-minimum, max fractional wins
                d_int = [int(math.floor(d)) for d in deltas]
                cands = [
                    u
                    for u in range(n)
                    if v in spl[u]
                    and spl[u][v] - d_int[u]
                    == min(
                        spl[w][v] - d_int[w]
                        for w in range(n)
                        if v in spl[w]
                    )
                ]
                frac = lambda u: deltas[u] - math.floor(deltas[u])
                want = max(cands, key=frac)
                assert cluster[v] == want, (trial, v, cands)


class TestDynamicMatchesStatic:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_deletion_schedule(self, seed):
        rng = random.Random(seed)
        nprng = np.random.default_rng(seed)
        n = rng.randrange(8, 28)
        m = rng.randrange(n, 3 * n)
        edges = random_graph(rng, n, m)
        k = rng.choice([2, 3, 5])
        deltas = sample_shifts(
            n, beta=math.log(10 * n) / k, cap=float(k), rng=nprng
        )
        sc = ShiftedClustering(n, edges, deltas)
        assert sc.clusters() == static_clusters(n, edges, deltas)[0]

        alive = list(edges)
        rng.shuffle(alive)
        while alive:
            b = min(len(alive), rng.choice([1, 2, 3, 7]))
            batch, alive = alive[:b], alive[b:]
            sc.batch_delete(batch)
            want_cluster, _, want_dist = static_clusters(n, alive, deltas)
            got_dist = [sc.es.dist_of(v) for v in range(n)]
            assert got_dist == want_dist, f"dist mismatch, alive={alive}"
            assert sc.clusters() == want_cluster, f"alive={alive}"

    def test_tree_change_events_track_forest(self):
        rng = random.Random(99)
        nprng = np.random.default_rng(99)
        n, m = 16, 40
        edges = random_graph(rng, n, m)
        deltas = sample_shifts(n, beta=math.log(10 * n) / 3, cap=3.0, rng=nprng)
        sc = ShiftedClustering(n, edges, deltas)
        forest = sc.tree_edges()
        alive = list(edges)
        rng.shuffle(alive)
        while alive:
            batch, alive = alive[:3], alive[3:]
            tree_changes, _ = sc.batch_delete(batch)
            for ch in tree_changes:
                if ch.old is not None:
                    assert ch.old in forest
                    forest.remove(ch.old)
                if ch.new is not None:
                    assert ch.new not in forest
                    forest.add(ch.new)
            assert forest == sc.tree_edges()

    def test_cluster_change_events_track_clusters(self):
        rng = random.Random(5)
        nprng = np.random.default_rng(5)
        n, m = 14, 30
        edges = random_graph(rng, n, m)
        deltas = sample_shifts(n, beta=math.log(10 * n) / 4, cap=4.0, rng=nprng)
        sc = ShiftedClustering(n, edges, deltas)
        clusters = sc.clusters()
        alive = list(edges)
        while alive:
            batch, alive = alive[:5], alive[5:]
            _, cluster_changes = sc.batch_delete(batch)
            for ch in cluster_changes:
                assert clusters[ch.vertex] == ch.old_cluster
                clusters[ch.vertex] = ch.new_cluster
            assert clusters == sc.clusters()

    def test_duplicate_edges_rejected(self):
        with pytest.raises(ValueError):
            ShiftedClustering(3, [(0, 1), (1, 0)], [0.1, 0.2, 0.3])

"""Tests for the incremental greedy spanner baseline."""

import pytest

from repro.graph import complete_graph, gnm_random_graph
from repro.spanner.incremental_greedy import IncrementalGreedySpanner
from repro.verify import is_spanner


class TestGreedy:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_stretch_guarantee(self, k):
        n, m = 30, 150
        edges = gnm_random_graph(n, m, seed=k)
        sp = IncrementalGreedySpanner(n, edges, k=k)
        assert is_spanner(n, edges, sp.spanner_edges(), 2 * k - 1)
        sp.check_invariants()

    def test_optimal_size_on_complete_graph(self):
        n, k = 40, 2
        sp = IncrementalGreedySpanner(n, complete_graph(n), k=k)
        # greedy meets the girth bound with NO log factor
        assert sp.spanner_size() <= 2 * n ** (1 + 1 / k)
        sp.check_invariants()

    def test_never_removes_edges(self):
        n = 20
        edges = gnm_random_graph(n, 80, seed=2)
        sp = IncrementalGreedySpanner(n, k=2)
        total_ins = 0
        for i in range(0, len(edges), 10):
            ins, dels = sp.update(insertions=edges[i : i + 10])
            assert not dels
            total_ins += len(ins)
        assert total_ins == sp.spanner_size()

    def test_deletions_unsupported(self):
        sp = IncrementalGreedySpanner(4, [(0, 1)], k=2)
        with pytest.raises(NotImplementedError):
            sp.update(deletions=[(0, 1)])

    def test_duplicate_rejected(self):
        sp = IncrementalGreedySpanner(4, [(0, 1)], k=2)
        with pytest.raises(ValueError):
            sp.update(insertions=[(1, 0)])

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            IncrementalGreedySpanner(4, k=0)

    def test_k1_keeps_all(self):
        edges = gnm_random_graph(10, 30, seed=3)
        sp = IncrementalGreedySpanner(10, edges, k=1)
        assert sp.spanner_edges() == set(edges)

    def test_triangle_drops_closing_edge(self):
        sp = IncrementalGreedySpanner(3, k=2)
        sp.update(insertions=[(0, 1), (1, 2)])
        ins, _ = sp.update(insertions=[(0, 2)])
        # 0-2 already connected in 2 <= 3 hops -> dropped
        assert ins == set()
        assert sp.spanner_size() == 2

"""Chaos-harness tests: seeded fault campaigns + a real ``kill -9``.

The campaign tests run the deterministic in-process harness (every plan
kind, equivalence asserted against the ``Workload.replay`` ground truth
inside :func:`repro.resilience.chaos.run_chaos_once` itself).  The
process test delivers an actual SIGKILL to a live shard worker mid-stream
and asserts the engine recovers instead of hanging — the PR's headline
acceptance criterion.
"""

import multiprocessing as mp
import os
import signal

import pytest

from repro.resilience import RecoveryManager, ResilienceConfig
from repro.resilience.chaos import (
    CHAOS_PLAN_KINDS,
    ChaosConfig,
    ChaosPlan,
    run_chaos_campaign,
    run_chaos_once,
)
from repro.resilience.manager import SupervisionConfig
from repro.service import ShardedExecutor
from repro.service.shard import edge_shard
from repro.workloads import UpdateBatch
from repro.workloads.streams import request_stream

_FORK = "fork" in mp.get_all_start_methods()


def _edge_for_shard(shard, taken, n=32, shards=2):
    """A fresh edge the deterministic router sends to ``shard``."""
    for a in range(n):
        for b in range(a + 1, n):
            if (a, b) not in taken and edge_shard((a, b), shards) == shard:
                return (a, b)
    raise AssertionError("no free edge routes to the target shard")


class TestChaosCampaign:
    def test_every_plan_kind_recovers_exactly(self, tmp_path):
        """One seed per plan over the full catalogue: zero divergences."""
        cfg = ChaosConfig(requests=900, seeds=1, workdir=str(tmp_path))
        report = run_chaos_campaign(cfg)
        problems = [d for r in report.runs for d in r.divergences]
        assert report.ok, problems
        assert len(report.runs) == len(CHAOS_PLAN_KINDS)
        # every run actually exercised its fault (or, for the tail plan,
        # the post-run corruption path)
        for r in report.runs:
            if r.plan.kind != "corrupt_wal_tail":
                assert r.fired >= 1, r.plan.kind

    def test_campaign_is_deterministic(self, tmp_path):
        """Same seed, same plan → byte-identical outcome counters."""
        cfg = ChaosConfig(requests=600, seeds=1,
                          plans=("kill_pre_apply", "checkpoint_crash"))
        a = run_chaos_campaign(ChaosConfig(
            **{**cfg.__dict__, "workdir": str(tmp_path / "a")}))
        b = run_chaos_campaign(ChaosConfig(
            **{**cfg.__dict__, "workdir": str(tmp_path / "b")}))
        for ra, rb in zip(a.runs, b.runs):
            assert (ra.plan, ra.commits, ra.fired, ra.recoveries,
                    ra.quarantined) == (
                   rb.plan, rb.commits, rb.fired, rb.recoveries,
                   rb.quarantined)

    def test_divergence_is_reported_not_swallowed(self, tmp_path):
        """A plan that never fires must be flagged as a divergence."""
        cfg = ChaosConfig(requests=300, seeds=1)
        # at_seq far beyond the number of commits the run produces
        plan = ChaosPlan(kind="kill_pre_apply", shard=0, at_seq=10**6)
        res = run_chaos_once(cfg, plan, seed=0, workdir=str(tmp_path))
        assert not res.ok
        assert any("never fired" in d for d in res.divergences)

    def test_report_rows_aggregate_by_plan(self, tmp_path):
        cfg = ChaosConfig(requests=600, seeds=2,
                          plans=("drop_reply",), workdir=str(tmp_path))
        report = run_chaos_campaign(cfg)
        assert report.ok
        (row,) = report.rows()
        assert row["plan"] == "drop_reply"
        assert row["runs"] == 2
        assert row["divergences"] == 0


@pytest.mark.skipif(not _FORK, reason="needs the fork start method")
class TestRealProcessKill:
    def test_sigkill_mid_stream_does_not_hang_engine(self, tmp_path):
        """kill -9 a live worker: the batch is retried after restart and
        the engine converges — previously this hung forever on recv."""
        initial, _ = request_stream(32, 96, 1, seed=3)
        spec = {"kind": "spanner", "n": 32, "edges": initial, "seed": 11,
                "k": 2, "base_capacity": 16}
        mgr = RecoveryManager(ResilienceConfig(directory=tmp_path))
        sup = SupervisionConfig(recv_deadline=2.0, backoff_base=0.01,
                                backoff_cap=0.05)
        ex = ShardedExecutor(spec, 2, processes=True, start_method="fork",
                             supervision=sup, recovery=mgr)
        try:
            taken = set(initial)
            live = set(initial)
            for seq in range(1, 7):
                # route every batch at shard 0 — the one we will murder —
                # so the kill is guaranteed to land in the apply path
                edge = _edge_for_shard(0, taken)
                taken.add(edge)
                if seq == 4:
                    victim = ex._shards[0]
                    os.kill(victim.proc.pid, signal.SIGKILL)
                    victim.proc.join(timeout=2.0)
                    assert not victim.alive()
                batch = UpdateBatch(insertions=[edge])
                res = ex.apply(batch, seq=seq)
                mgr.log_applied(seq, batch)
                live.add(edge)
                if seq == 4:
                    assert 0 in res.recovered_shards
                    assert res.restarts >= 1
                    assert res.recovery_seconds > 0
            # the engine survived and the state is exactly the replay
            assert ex.graph_union() == live
            health = ex.health_check(restart=False)
            assert all(h.alive for h in health)
            assert ex.restarts_total >= 1
        finally:
            ex.close()
            mgr.close()

    def test_chaos_campaign_with_real_processes(self, tmp_path):
        """A slim campaign over real worker processes also converges."""
        cfg = ChaosConfig(requests=500, seeds=1, processes=True,
                          recv_deadline=2.0,
                          plans=("kill_pre_apply", "kill_post_apply"),
                          workdir=str(tmp_path))
        report = run_chaos_campaign(cfg)
        problems = [d for r in report.runs for d in r.divergences]
        assert report.ok, problems


class TestReplicaChaosCampaign:
    def test_replica_plans_converge_exactly(self):
        from repro.resilience.chaos import (
            REPLICA_PLAN_KINDS,
            run_replica_chaos_campaign,
        )

        cfg = ChaosConfig(requests=300, seeds=2)
        report = run_replica_chaos_campaign(cfg)
        assert len(report.runs) == len(REPLICA_PLAN_KINDS) * 2
        assert report.ok, [r.divergences for r in report.runs
                           if not r.ok]
        assert report.divergence_count == 0
        kinds = {r.plan.kind for r in report.runs}
        assert kinds == set(REPLICA_PLAN_KINDS)
        # the crash plan restarts its replica from scratch at least once
        crash = [r for r in report.runs
                 if r.plan.kind == "replica_crash_catchup"]
        assert all(r.recoveries >= 1 for r in crash)

    def test_replica_campaign_is_deterministic(self):
        from repro.resilience.chaos import run_replica_chaos_campaign

        cfg = ChaosConfig(requests=200, seeds=1,
                          plans=("replica_lag",))
        a = run_replica_chaos_campaign(cfg)
        b = run_replica_chaos_campaign(cfg)
        assert [r.commits for r in a.runs] == [r.commits for r in b.runs]
        assert a.ok and b.ok


class TestNetChaosCampaign:
    """Wire faults through the in-process FaultProxy (``chaos --net``)."""

    def test_wire_plans_converge_exactly(self):
        from repro.resilience.chaos import run_net_chaos_campaign

        cfg = ChaosConfig(requests=250, seeds=1,
                          plans=("net_torn_frame", "net_partition",
                                 "net_reset"))
        report = run_net_chaos_campaign(cfg)
        assert len(report.runs) == 3
        assert report.ok, [r.divergences for r in report.runs
                           if not r.ok]
        rows = {row["plan"]: row for row in report.net_rows()}
        # every plan's targeted resilience path actually fired: a torn
        # ACK forces an idempotent replay, a partition forces retries,
        # a reset storm forces reconnects (handshake replay)
        assert rows["net_torn_frame"]["dedup_hits"] >= 1
        assert rows["net_partition"]["retries"] >= 1
        assert rows["net_reset"]["reconnects"] >= 1
        for row in rows.values():
            assert row["divergences"] == 0
            assert row["commits"] >= 1

    def test_hedged_reads_fire_under_latency(self):
        from repro.resilience.chaos import run_net_chaos_once

        cfg = ChaosConfig(requests=250, seeds=1)
        res = run_net_chaos_once(cfg, "net_latency", seed=0)
        assert res.ok, res.divergences
        assert res.hedged_reads >= 1

    @pytest.mark.skipif(not _FORK, reason="needs the fork start method")
    def test_worker_kill_is_supervised(self):
        from repro.resilience.chaos import run_net_chaos_once

        cfg = ChaosConfig(requests=150, seeds=1)
        res = run_net_chaos_once(cfg, "net_worker_kill", seed=0)
        assert res.ok, res.divergences
        # the SIGKILLed pool worker was replaced and its task requeued
        assert res.restarts >= 1

"""Mutation tests: the ``check_invariants`` methods must actually *detect*
corruption.  Each test breaks one internal invariant by hand and asserts
the checker trips — guarding the guards."""

import pytest

from repro.bundle import DecrementalTBundle, MonotoneDecrementalSpanner
from repro.connectivity import DynamicSpanningForest
from repro.contraction import ContractionLayer, SparseSpannerDynamic
from repro.graph import gnm_random_graph, norm_edge
from repro.spanner import DecrementalSpanner, FullyDynamicSpanner
from repro.ultrasparse import UltraSparseSpannerDynamic

EDGES = gnm_random_graph(14, 40, seed=3)


class TestCheckersDetectCorruption:
    def test_decremental_spanner_refcount_corruption(self):
        sp = DecrementalSpanner(14, EDGES, k=2, seed=3)
        e = next(iter(sp.spanner_edges()))
        sp._span[e] += 1
        with pytest.raises(AssertionError):
            sp.check_invariants()

    def test_decremental_spanner_bucket_corruption(self):
        sp = DecrementalSpanner(14, EDGES, k=2, seed=3)
        key = next(iter(sp._inter))
        sp._inter[key].add(999)
        with pytest.raises(AssertionError):
            sp.check_invariants()

    def test_dynamizer_index_corruption(self):
        sp = FullyDynamicSpanner(14, EDGES, k=2, seed=3, base_capacity=4)
        dyn = sp._dyn
        e = next(iter(dyn._index))
        dyn._index[e] += 17
        with pytest.raises((AssertionError, KeyError)):
            sp.check_invariants()

    def test_contraction_layer_head_corruption(self):
        layer = ContractionLayer(14, [v % 2 == 0 for v in range(14)], seed=3)
        layer.update(insertions=EDGES)
        # falsify a head of an unsampled vertex with neighbors
        v = next(
            v for v in range(14)
            if not layer.sampled[v] and len(layer.adj[v]) > 0
        )
        layer.head[v] = (layer.head[v] + 1) % 14
        with pytest.raises((AssertionError, KeyError)):
            layer.check_invariants()

    def test_sparse_spanner_pull_corruption(self):
        sp = SparseSpannerDynamic(14, EDGES, rates=[2.0], k_final=2,
                                  seed=3, base_capacity=4)
        if sp._pull[0]:
            key = next(iter(sp._pull[0]))
            del sp._pull[0][key]
            with pytest.raises((AssertionError, KeyError)):
                sp.check_invariants()

    def test_ultrasparse_head_corruption(self):
        sp = UltraSparseSpannerDynamic(
            14, EDGES, x=2.0, seed=3, inner_rates=[2.0], k_final=2,
            base_capacity=4,
        )
        v = next(v for v in range(14) if sp.adj[v])
        sp.head[v] = -1 if sp.head[v] != -1 else v
        with pytest.raises((AssertionError, KeyError)):
            sp.check_invariants()

    def test_monotone_spanner_forest_corruption(self):
        sp = MonotoneDecrementalSpanner(14, EDGES, seed=3, instances=3)
        e = next(iter(sp._span))
        del sp._span[e]
        with pytest.raises(AssertionError):
            sp.check_invariants()

    def test_tbundle_stash_corruption(self):
        bundle = DecrementalTBundle(14, EDGES, t=2, seed=3, instances=3)
        # claim a non-bundle edge is stashed in level 0
        rest = bundle.non_bundle_edges()
        if rest:
            bundle.levels[0].stash.add(next(iter(rest)))
            with pytest.raises(AssertionError):
                bundle.check_invariants()

    def test_dsf_tree_set_corruption(self):
        dsf = DynamicSpanningForest(14, EDGES, seed=3)
        e = next(iter(dsf.forest_edges()))
        dsf._tree.remove(e)
        with pytest.raises(AssertionError):
            dsf.check_invariants()

    def test_priority_array_mirror_corruption(self):
        from repro.structures import PriorityArray

        pa = PriorityArray(64, [(i, i) for i in range(10)])
        # desync the sorted mirror from the value map
        pa._sorted.append(pa._sorted[-1])
        # the corruption surfaces as a duplicated position scan
        priorities = [p for _, p, _ in pa.items_by_position()]
        assert len(priorities) != len(set(priorities)) or len(
            priorities
        ) != 10, "corruption went undetected"

"""Tests for the workload generators and the experiment harness."""

import pytest

from repro.harness import RunStats, format_table, run_workload
from repro.pram import CostModel
from repro.spanner import FullyDynamicSpanner
from repro.workloads import (
    UpdateBatch,
    Workload,
    churn_stream,
    deletion_stream,
    insertion_stream,
    mixed_stream,
    sliding_window_stream,
)


class TestStreams:
    def test_deletion_stream_deletes_everything(self):
        w = deletion_stream(20, 60, batch_size=7, seed=1)
        assert len(w.initial_edges) == 60
        assert w.total_updates == 60
        final = None
        for _, edges in w.replay():
            final = edges
        assert final == set()

    def test_deletion_stream_fraction(self):
        w = deletion_stream(20, 60, batch_size=10, seed=1, fraction=0.5)
        assert w.total_updates == 30

    def test_insertion_stream_builds_graph(self):
        w = insertion_stream(15, 40, batch_size=9, seed=2)
        assert w.initial_edges == []
        *_, (batch, final) = w.replay()
        assert len(final) == 40

    def test_mixed_stream_replayable(self):
        w = mixed_stream(12, 30, batch_size=6, num_batches=20, seed=3)
        sizes = [len(edges) for _, edges in w.replay()]
        assert len(sizes) == 20
        assert all(s >= 0 for s in sizes)

    def test_sliding_window_bounds_live_edges(self):
        w = sliding_window_stream(
            20, window=25, num_batches=15, batch_size=10, seed=4
        )
        for _, edges in w.replay():
            assert len(edges) <= 25

    def test_churn_keeps_size_stable(self):
        w = churn_stream(20, 50, churn_fraction=0.2, num_batches=10, seed=5)
        for _, edges in w.replay():
            assert 40 <= len(edges) <= 60

    def test_streams_drive_real_structure(self):
        w = mixed_stream(14, 25, batch_size=5, num_batches=10, seed=6)
        sp = FullyDynamicSpanner(14, w.initial_edges, k=2, seed=6)
        for batch, edges in w.replay():
            sp.update(insertions=batch.insertions, deletions=batch.deletions)
            assert sp.m == len(edges)


class TestReplayValidation:
    def test_duplicate_insertion_raises_value_error(self):
        w = Workload(4, [(0, 1)], [UpdateBatch(insertions=[(0, 1)])])
        with pytest.raises(ValueError, match="duplicate insertion"):
            list(w.replay())

    def test_absent_deletion_raises_value_error_with_edge(self):
        # regression: used to surface as a bare KeyError from set.remove
        w = Workload(4, [(0, 1)], [UpdateBatch(deletions=[(2, 3)])])
        with pytest.raises(ValueError, match=r"absent edge \(2, 3\)"):
            list(w.replay())

    def test_delete_then_reinsert_in_one_batch_is_legal(self):
        w = Workload(
            4, [(0, 1)],
            [UpdateBatch(insertions=[(0, 1)], deletions=[(0, 1)])],
        )
        (_, final), = list(w.replay())
        assert final == {(0, 1)}


class TestHarness:
    def test_run_workload_collects_stats(self):
        w = deletion_stream(20, 60, batch_size=10, seed=7)
        stats = run_workload(
            "spanner",
            w,
            lambda edges, cost: FullyDynamicSpanner(
                20, edges, k=2, seed=7, cost=cost
            ),
        )
        assert stats.total_updates == 60
        assert stats.update_cost.work > 0
        assert stats.max_batch_depth > 0
        assert stats.output_size_final == 0  # everything deleted
        assert stats.recourse_per_update >= 0
        assert stats.simulated_time(1) >= stats.simulated_time(100)
        row = stats.row()
        assert row["label"] == "spanner" and row["updates"] == 60

    def test_per_batch_hook(self):
        w = deletion_stream(10, 20, batch_size=10, seed=8)
        stats = run_workload(
            "spanner",
            w,
            lambda edges, cost: FullyDynamicSpanner(10, edges, k=2, seed=8),
            per_batch=lambda s, i: {"last_size": s.spanner_size()},
        )
        assert "last_size" in stats.extra

    def test_format_table(self):
        rows = [
            {"label": "a", "n": 10, "work/upd": 1.5},
            {"label": "bb", "n": 1000, "extra": "x"},
        ]
        out = format_table(rows, title="T")
        assert "T" in out and "label" in out and "bb" in out
        assert "extra" in out

    def test_format_empty(self):
        assert "(no rows)" in format_table([], "E")

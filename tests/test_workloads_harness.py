"""Tests for the workload generators and the experiment harness."""

import typing

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness import RunStats, format_table, run_workload
from repro.pram import CostModel
from repro.spanner import FullyDynamicSpanner
from repro.workloads import (
    UpdateBatch,
    Workload,
    churn_stream,
    deletion_stream,
    insertion_stream,
    mixed_stream,
    sliding_window_stream,
)
from repro.workloads.streams import OP_DELETE, OP_INSERT

import repro.workloads.streams as streams_mod


class TestStreams:
    def test_deletion_stream_deletes_everything(self):
        w = deletion_stream(20, 60, batch_size=7, seed=1)
        assert len(w.initial_edges) == 60
        assert w.total_updates == 60
        final = None
        for _, edges in w.replay():
            final = edges
        assert final == set()

    def test_deletion_stream_fraction(self):
        w = deletion_stream(20, 60, batch_size=10, seed=1, fraction=0.5)
        assert w.total_updates == 30

    def test_insertion_stream_builds_graph(self):
        w = insertion_stream(15, 40, batch_size=9, seed=2)
        assert w.initial_edges == []
        *_, (batch, final) = w.replay()
        assert len(final) == 40

    def test_mixed_stream_replayable(self):
        w = mixed_stream(12, 30, batch_size=6, num_batches=20, seed=3)
        sizes = [len(edges) for _, edges in w.replay()]
        assert len(sizes) == 20
        assert all(s >= 0 for s in sizes)

    def test_sliding_window_bounds_live_edges(self):
        w = sliding_window_stream(
            20, window=25, num_batches=15, batch_size=10, seed=4
        )
        for _, edges in w.replay():
            assert len(edges) <= 25

    def test_churn_keeps_size_stable(self):
        w = churn_stream(20, 50, churn_fraction=0.2, num_batches=10, seed=5)
        for _, edges in w.replay():
            assert 40 <= len(edges) <= 60

    def test_streams_drive_real_structure(self):
        w = mixed_stream(14, 25, batch_size=5, num_batches=10, seed=6)
        sp = FullyDynamicSpanner(14, w.initial_edges, k=2, seed=6)
        for batch, edges in w.replay():
            sp.update(insertions=batch.insertions, deletions=batch.deletions)
            assert sp.m == len(edges)


class TestReplayValidation:
    def test_duplicate_insertion_raises_value_error(self):
        w = Workload(4, [(0, 1)], [UpdateBatch(insertions=[(0, 1)])])
        with pytest.raises(ValueError, match="duplicate insertion"):
            list(w.replay())

    def test_absent_deletion_raises_value_error_with_edge(self):
        # regression: used to surface as a bare KeyError from set.remove
        w = Workload(4, [(0, 1)], [UpdateBatch(deletions=[(2, 3)])])
        with pytest.raises(ValueError, match=r"absent edge \(2, 3\)"):
            list(w.replay())

    def test_delete_then_reinsert_in_one_batch_is_legal(self):
        w = Workload(
            4, [(0, 1)],
            [UpdateBatch(insertions=[(0, 1)], deletions=[(0, 1)])],
        )
        (_, final), = list(w.replay())
        assert final == {(0, 1)}


class TestStreamRegressions:
    """Minimized reproducers for bugs the fuzzing oracle shook out."""

    def test_type_hints_resolve_for_public_dataclasses(self):
        # regression: `Iterable` was used in the UpdateBatch.coalesce
        # signature without being imported, so resolving the module's type
        # hints raised NameError (and ruff F821 flags it statically)
        for obj in (UpdateBatch, Workload, UpdateBatch.coalesce,
                    Workload.replay, deletion_stream, insertion_stream,
                    mixed_stream, churn_stream, sliding_window_stream):
            hints = typing.get_type_hints(
                obj, vars(streams_mod), vars(typing)
            )
            assert hints  # every annotation resolved

    def test_deletion_stream_small_fraction_not_truncated_to_zero(self):
        # regression: int(m * fraction) truncated 60 * 0.008 -> 0 batches
        w = deletion_stream(20, 60, batch_size=10, seed=1, fraction=0.008)
        assert w.batches, "positive fraction must yield at least one batch"
        assert w.total_updates == 1

    def test_deletion_stream_fraction_rounds_half_up(self):
        w = deletion_stream(20, 61, batch_size=100, seed=1, fraction=0.5)
        assert w.total_updates == 31  # 30.5 rounds up, not down

    def test_deletion_stream_zero_fraction_is_empty(self):
        w = deletion_stream(20, 60, batch_size=10, seed=1, fraction=0.0)
        assert w.batches == []

    def test_churn_stream_terminates_on_near_complete_graph(self):
        # regression: when every absent edge was deleted in the same batch
        # the insert rejection-sampling loop could never find a candidate
        # and spun forever (n=5 complete graph, heavy churn)
        n = 5
        m = n * (n - 1) // 2  # complete graph: zero absent edges
        w = churn_stream(n, m, churn_fraction=0.9, num_batches=8, seed=3)
        for _, edges in w.replay():  # also proves legality
            assert len(edges) <= m

    def test_sliding_window_batches_are_legal_when_window_overflows(self):
        # regression: a batch inserting more edges than the window holds
        # expired its own same-batch insertions, which is illegal under
        # deletions-first replay; coalescing now folds those pairs away
        w = sliding_window_stream(
            30, window=3, num_batches=6, batch_size=9, seed=0
        )
        final = None
        for _, final in w.replay():  # raises ValueError before the fix
            pass
        assert final is not None and len(final) <= 3


def _apply_sequentially(ops, present):
    """Ground truth: apply (op, edge) one at a time to a copied edge set."""
    current = set(present)
    for op, e in ops:
        if op == OP_INSERT:
            assert e not in current
            current.add(e)
        else:
            assert e in current
            current.remove(e)
    return current


@st.composite
def _legal_op_sequences(draw):
    """A sequentially legal (ops, initial_present) pair over ≤6 edges."""
    universe = [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (0, 4)]
    present = set(draw(st.sets(st.sampled_from(universe), max_size=6)))
    current = set(present)
    ops = []
    for _ in range(draw(st.integers(min_value=0, max_value=24))):
        choices = sorted(universe)
        e = draw(st.sampled_from(choices))
        if e in current:
            ops.append((OP_DELETE, e))
            current.remove(e)
        else:
            ops.append((OP_INSERT, e))
            current.add(e)
    return ops, present


class TestCoalesceProperty:
    @settings(max_examples=200, deadline=None)
    @given(_legal_op_sequences())
    def test_coalesce_equals_sequential_application(self, case):
        ops, present = case
        batch = UpdateBatch.coalesce(ops)
        expected = _apply_sequentially(ops, present)
        # the coalesced batch must be legal (deletions ⊆ present, fresh
        # insertions ∉ present) and reproduce the sequential result
        got = set(present)
        for e in batch.deletions:
            assert e in got
            got.remove(e)
        for e in batch.insertions:
            assert e not in got
            got.add(e)
        assert got == expected

    def test_delete_then_reinsert_lands_in_both_lists(self):
        # state == 2 path: delete + insert of a present edge must survive
        # coalescing as a delete AND a re-insert (net no-op on the graph,
        # but it forces the structure to reprocess the edge)
        batch = UpdateBatch.coalesce(
            [(OP_DELETE, (0, 1)), (OP_INSERT, (0, 1))]
        )
        assert batch.deletions == [(0, 1)]
        assert batch.insertions == [(0, 1)]

    def test_reinsert_then_delete_collapses_to_plain_delete(self):
        batch = UpdateBatch.coalesce(
            [(OP_DELETE, (0, 1)), (OP_INSERT, (0, 1)), (OP_DELETE, (0, 1))]
        )
        assert batch.deletions == [(0, 1)]
        assert batch.insertions == []

    def test_insert_then_delete_cancels(self):
        batch = UpdateBatch.coalesce(
            [(OP_INSERT, (0, 1)), (OP_DELETE, (0, 1))]
        )
        assert batch.size == 0

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown op"):
            UpdateBatch.coalesce([("upsert", (0, 1))])


class TestHarness:
    def test_run_workload_collects_stats(self):
        w = deletion_stream(20, 60, batch_size=10, seed=7)
        stats = run_workload(
            "spanner",
            w,
            lambda edges, cost: FullyDynamicSpanner(
                20, edges, k=2, seed=7, cost=cost
            ),
        )
        assert stats.total_updates == 60
        assert stats.update_cost.work > 0
        assert stats.max_batch_depth > 0
        assert stats.output_size_final == 0  # everything deleted
        assert stats.recourse_per_update >= 0
        assert stats.simulated_time(1) >= stats.simulated_time(100)
        row = stats.row()
        assert row["label"] == "spanner" and row["updates"] == 60

    def test_per_batch_hook(self):
        w = deletion_stream(10, 20, batch_size=10, seed=8)
        stats = run_workload(
            "spanner",
            w,
            lambda edges, cost: FullyDynamicSpanner(10, edges, k=2, seed=8),
            per_batch=lambda s, i: {"last_size": s.spanner_size()},
        )
        assert "last_size" in stats.extra

    def test_format_table(self):
        rows = [
            {"label": "a", "n": 10, "work/upd": 1.5},
            {"label": "bb", "n": 1000, "extra": "x"},
        ]
        out = format_table(rows, title="T")
        assert "T" in out and "label" in out and "bb" in out
        assert "extra" in out

    def test_format_empty(self):
        assert "(no rows)" in format_table([], "E")

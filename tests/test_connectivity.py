"""Tests for Euler-tour trees and the HDT dynamic spanning forest."""

import random

import networkx as nx
import pytest

from repro.connectivity import DynamicSpanningForest, EulerTourForest


class TestEulerTourForest:
    def test_initially_disconnected(self):
        f = EulerTourForest(4, seed=1)
        assert not f.connected(0, 1)
        assert f.component_size(0) == 1
        f.check_invariants()

    def test_link_connects(self):
        f = EulerTourForest(4, seed=1)
        f.link(0, 1)
        assert f.connected(0, 1)
        assert f.component_size(0) == 2
        assert not f.connected(0, 2)
        f.check_invariants()

    def test_link_chain_and_cut_middle(self):
        f = EulerTourForest(5, seed=2)
        for i in range(4):
            f.link(i, i + 1)
        assert f.component_size(0) == 5
        f.cut(2, 3)
        assert f.connected(0, 2)
        assert f.connected(3, 4)
        assert not f.connected(0, 3)
        assert f.component_size(0) == 3
        assert f.component_size(4) == 2
        f.check_invariants()

    def test_link_already_connected_raises(self):
        f = EulerTourForest(3, seed=3)
        f.link(0, 1)
        with pytest.raises(ValueError):
            f.link(1, 0)

    def test_cut_non_edge_raises(self):
        f = EulerTourForest(3, seed=3)
        with pytest.raises(KeyError):
            f.cut(0, 1)

    def test_component_vertices(self):
        f = EulerTourForest(6, seed=4)
        f.link(0, 3)
        f.link(3, 5)
        assert sorted(f.component_vertices(5)) == [0, 3, 5]
        assert sorted(f.component_vertices(1)) == [1]

    def test_flags_and_counts(self):
        f = EulerTourForest(5, seed=5)
        f.link(0, 1)
        f.link(1, 2)
        f.set_vertex_flag(2, True)
        f.set_edge_flag(0, 1, True)
        assert sorted(f.flagged_vertices(0)) == [2]
        assert list(f.flagged_edges(1)) == [(0, 1)]
        f.set_vertex_flag(2, False)
        assert list(f.flagged_vertices(0)) == []
        # flags survive restructuring
        f.set_vertex_flag(0, True)
        f.cut(1, 2)
        assert list(f.flagged_vertices(0)) == [0]
        assert list(f.flagged_vertices(2)) == []
        f.check_invariants()

    @pytest.mark.parametrize("seed", range(5))
    def test_random_link_cut_against_networkx(self, seed):
        rng = random.Random(seed)
        n = 20
        f = EulerTourForest(n, seed=seed)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        for _ in range(300):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            if g.has_edge(u, v):
                f.cut(u, v)
                g.remove_edge(u, v)
            elif not nx.has_path(g, u, v):
                f.link(u, v)
                g.add_edge(u, v)
            # spot-check connectivity
            a, b = rng.randrange(n), rng.randrange(n)
            assert f.connected(a, b) == nx.has_path(g, a, b)
            assert f.component_size(a) == len(
                nx.node_connected_component(g, a)
            )
        f.check_invariants()


class TestDynamicSpanningForest:
    def test_insert_builds_forest(self):
        d = DynamicSpanningForest(4)
        assert d.insert(0, 1) == (0, 1)
        assert d.insert(1, 2) == (1, 2)
        assert d.insert(0, 2) is None  # cycle edge
        assert d.forest_edges() == {(0, 1), (1, 2)}
        d.check_invariants()

    def test_delete_nontree_keeps_forest(self):
        d = DynamicSpanningForest(3, [(0, 1), (1, 2), (0, 2)])
        forest = d.forest_edges()
        nontree = ({(0, 1), (1, 2), (0, 2)} - forest).pop()
        removed, repl = d.delete(*nontree)
        assert removed is None and repl is None
        assert d.forest_edges() == forest

    def test_delete_tree_edge_finds_replacement(self):
        d = DynamicSpanningForest(3, [(0, 1), (1, 2), (0, 2)])
        forest = sorted(d.forest_edges())
        removed, repl = d.delete(*forest[0])
        assert removed == forest[0]
        assert repl is not None
        assert d.connected(0, 2) and d.connected(0, 1)
        d.check_invariants()

    def test_delete_bridge_splits(self):
        d = DynamicSpanningForest(4, [(0, 1), (2, 3)])
        removed, repl = d.delete(0, 1)
        assert removed == (0, 1) and repl is None
        assert not d.connected(0, 1)
        d.check_invariants()

    def test_duplicate_and_missing(self):
        d = DynamicSpanningForest(3, [(0, 1)])
        with pytest.raises(ValueError):
            d.insert(1, 0)
        with pytest.raises(KeyError):
            d.delete(1, 2)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_stream_against_networkx(self, seed):
        rng = random.Random(seed)
        n = 16
        d = DynamicSpanningForest(n, seed=seed)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        forest = set()
        for step in range(200):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            if g.has_edge(u, v):
                e, repl = d.delete(u, v)
                g.remove_edge(u, v)
                if e is not None:
                    forest.remove(e)
                if repl is not None:
                    forest.add(repl)
            else:
                e = d.insert(u, v)
                g.add_edge(u, v)
                if e is not None:
                    forest.add(e)
            assert forest == d.forest_edges()
            a, b = rng.randrange(n), rng.randrange(n)
            assert d.connected(a, b) == nx.has_path(g, a, b)
        d.check_invariants()

    def test_heavy_churn_invariants(self):
        rng = random.Random(123)
        n = 30
        d = DynamicSpanningForest(n, seed=7)
        present = set()
        for _ in range(500):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            e = (min(u, v), max(u, v))
            if e in present:
                d.delete(*e)
                present.remove(e)
            else:
                d.insert(*e)
                present.add(e)
        d.check_invariants()
        assert d.m == len(present)


class TestEulerTourForestBoundaries:
    """Explicit contract on never-linked vertices and vertex validation."""

    def test_self_connected_without_links(self):
        f = EulerTourForest(6, seed=7)
        for v in range(6):
            assert f.connected(v, v)
            assert f.component_size(v) == 1
            assert f.find_repr(v) == v

    def test_self_connected_after_links_elsewhere(self):
        f = EulerTourForest(6, seed=7)
        f.link(0, 1)
        assert f.connected(5, 5)
        assert f.component_size(5) == 1
        assert not f.connected(5, 0)

    def test_find_repr_partitions_by_component(self):
        f = EulerTourForest(10, seed=8)
        for u, v in [(0, 1), (1, 2), (4, 5), (7, 8)]:
            f.link(u, v)
        for u in range(10):
            for v in range(10):
                assert (f.find_repr(u) == f.find_repr(v)) == \
                    f.connected(u, v)

    @pytest.mark.parametrize("bad", [-1, -5, 10, 99])
    def test_out_of_range_vertices_rejected(self, bad):
        # Python's negative indexing would otherwise silently alias
        # connected(-1, u) to the last vertex — wrong answer, not error
        f = EulerTourForest(10, seed=9)
        with pytest.raises(ValueError):
            f.connected(bad, 0)
        with pytest.raises(ValueError):
            f.connected(0, bad)
        with pytest.raises(ValueError):
            f.component_size(bad)
        with pytest.raises(ValueError):
            f.find_repr(bad)
        with pytest.raises(ValueError):
            f.tree_ref(bad)

    def test_zero_vertex_forest(self):
        f = EulerTourForest(0, seed=1)
        with pytest.raises(ValueError):
            f.connected(0, 0)

"""API robustness: every public structure rejects bad input with a clear
error and leaves itself usable afterwards (failure injection)."""

import pytest

from repro.bfs import BatchDynamicESTree
from repro.bundle import DecrementalTBundle, MonotoneDecrementalSpanner
from repro.contraction import ContractionLayer, SparseSpannerDynamic
from repro.graph import gnm_random_graph
from repro.queries import DynamicDistanceOracle
from repro.sparsifier import (
    DecrementalSpectralSparsifier,
    FullyDynamicSpectralSparsifier,
    uniform_sample_sparsifier,
)
from repro.spanner import DecrementalSpanner, FullyDynamicSpanner
from repro.structures import OrderedMap, PriorityArray
from repro.ultrasparse import UltraSparseSpannerDynamic
from repro.verify import is_spanner


EDGES = gnm_random_graph(12, 30, seed=1)


class TestErrorsThenRecovery:
    """A failed call must not corrupt the structure."""

    def test_spanner_survives_failed_delete(self):
        sp = FullyDynamicSpanner(12, EDGES, k=2, seed=1, base_capacity=4)
        with pytest.raises(KeyError):
            sp.update(deletions=[(0, 11), (0, 1) if (0, 1) in sp else (1, 2)]
                      if (0, 11) not in sp else [(99, 100)])
        # structure still answers and can keep updating
        _ = sp.spanner_edges()

    def test_spanner_survives_failed_duplicate_insert(self):
        sp = FullyDynamicSpanner(12, EDGES, k=2, seed=1, base_capacity=4)
        existing = next(iter(EDGES))
        with pytest.raises(ValueError):
            sp.update(insertions=[existing])
        deletable = sorted(set(EDGES))[:3]
        ins, dels = sp.update(deletions=deletable)
        assert is_spanner(
            12, set(EDGES) - set(deletable), sp.spanner_edges(), 3
        )

    def test_decremental_spanner_rejects_unknown_edge(self):
        sp = DecrementalSpanner(12, EDGES, k=2, seed=1)
        missing = next(
            (u, v)
            for u in range(12)
            for v in range(u + 1, 12)
            if (u, v) not in set(EDGES)
        )
        with pytest.raises(KeyError):
            sp.batch_delete([missing])

    def test_es_tree_bad_source_and_limit(self):
        with pytest.raises(ValueError):
            BatchDynamicESTree(5, [(0, 1)], source=9, limit=3)
        with pytest.raises(ValueError):
            BatchDynamicESTree(5, [(0, 1)], source=0, limit=-1)

    def test_contraction_layer_flag_length_checked(self):
        with pytest.raises(ValueError):
            ContractionLayer(5, [True, False])

    def test_bundle_and_chain_param_validation(self):
        with pytest.raises(ValueError):
            DecrementalTBundle(5, [], t=0)
        with pytest.raises(ValueError):
            MonotoneDecrementalSpanner(5, [], beta=-1)

    def test_uniform_sampler_validation(self):
        with pytest.raises(ValueError):
            uniform_sample_sparsifier([(0, 1)], p=0.0)
        with pytest.raises(ValueError):
            uniform_sample_sparsifier([(0, 1)], p=1.5)

    def test_sparsifier_rejects_missing_deletion(self):
        sp = FullyDynamicSpectralSparsifier(12, EDGES, t=2, seed=1,
                                            instances=2, base_capacity=4)
        with pytest.raises(KeyError):
            sp.update(deletions=[(0, 11) if (0, 11) not in sp else (1, 11)])

    def test_ultrasparse_x_validation(self):
        with pytest.raises(ValueError):
            UltraSparseSpannerDynamic(5, x=1.0)

    def test_priority_array_full_validation_matrix(self):
        pa = PriorityArray(8, [("a", 3)])
        for bad in (-1, 8, 100):
            with pytest.raises(ValueError):
                pa.insert("x", bad)
        with pytest.raises(IndexError):
            pa.update_value(0, "y")
        with pytest.raises(IndexError):
            pa.update_priority(2, 5)
        with pytest.raises(IndexError):
            pa.next_with(0, lambda v: True)

    def test_ordered_map_duplicate_then_usable(self):
        om = OrderedMap([(1, "a")], seed=1)
        with pytest.raises(ValueError):
            om.insert(1, "b")
        om.insert(2, "c")
        assert om.min_item() == (1, "a")


class TestSelfLoopsAndBounds:
    def test_self_loops_rejected_everywhere(self):
        from repro.graph import norm_edge

        with pytest.raises(ValueError):
            norm_edge(3, 3)
        sp = FullyDynamicSpanner(5, k=2, seed=1)
        with pytest.raises(ValueError):
            sp.update(insertions=[(2, 2)])

    def test_vertex_out_of_range_in_oracle(self):
        sp = FullyDynamicSpanner(5, [(0, 1)], k=2, seed=1)
        oracle = DynamicDistanceOracle(5, sp, stretch=3)
        with pytest.raises(ValueError):
            oracle.batch_distances([(0, 7)])


class TestEmptyAndDegenerate:
    def test_zero_vertex_structures(self):
        assert FullyDynamicSpanner(0, k=2, seed=1).spanner_edges() == set()
        assert (
            SparseSpannerDynamic(0, rates=[2.0], seed=1).spanner_edges()
            == set()
        )

    def test_single_vertex(self):
        sp = UltraSparseSpannerDynamic(1, x=2.0, seed=1, inner_rates=[2.0],
                                       k_final=2)
        assert sp.spanner_edges() == set()

    def test_empty_batches_are_noops(self):
        sp = FullyDynamicSpanner(6, EDGES[:5], k=2, seed=1)
        before = sp.spanner_edges()
        ins, dels = sp.update()
        assert not ins and not dels
        assert sp.spanner_edges() == before

    def test_chain_on_empty_graph(self):
        sp = DecrementalSpectralSparsifier(5, [], t=2, seed=1, instances=2)
        assert sp.weighted_edges() == {}
        assert sp.output_edges() == set()

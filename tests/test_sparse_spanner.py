"""Tests for the nested-contraction sparse spanner (Theorem 1.3)."""

import math
import random

import pytest

from repro.contraction import (
    SparseSpannerDynamic,
    contraction_sequence,
    sequence_invariants_hold,
)
from repro.graph import DynamicGraph, gnm_random_graph
from repro.verify.stretch import is_spanner


class TestSequences:
    @pytest.mark.parametrize("n", [4, 100, 10**4, 10**6, 10**9, 10**18])
    def test_sequence_invariants(self, n):
        xs = contraction_sequence(n)
        assert sequence_invariants_hold(xs, n)
        prod = math.prod(xs)
        assert prod >= min(math.log2(n), 2.0) - 1e-9
        # Lemma 4.3: product is Theta(log n), not wildly larger
        assert prod <= 4 * max(math.log2(n), 2.0)

    def test_small_target(self):
        assert contraction_sequence(4) == [2.0]

    def test_huge_n_multiple_levels(self):
        xs = contraction_sequence(10**30)
        assert len(xs) >= 1
        assert all(x >= 2 for x in xs)


class TestInitialSpanner:
    def test_initial_valid_and_sparse(self):
        n, m = 80, 600
        edges = gnm_random_graph(n, m, seed=1)
        sp = SparseSpannerDynamic(n, edges, rates=[2.0], seed=1,
                                  base_capacity=16)
        h = sp.spanner_edges()
        assert h <= set(edges)
        assert is_spanner(n, edges, h, sp.stretch_bound())
        sp.check_invariants()

    def test_two_levels(self):
        n, m = 60, 400
        edges = gnm_random_graph(n, m, seed=2)
        sp = SparseSpannerDynamic(n, edges, rates=[2.0, 2.0], seed=2,
                                  base_capacity=16)
        assert sp.num_levels == 2
        assert is_spanner(n, edges, sp.spanner_edges(), sp.stretch_bound())
        sp.check_invariants()

    def test_stretch_bound_composition(self):
        sp = SparseSpannerDynamic(10, rates=[2.0], k_final=2, seed=0)
        # top stretch 3 -> one contraction gives 3*3+2 = 11
        assert sp.stretch_bound() == 11

    def test_empty_graph(self):
        sp = SparseSpannerDynamic(10, rates=[2.0], seed=3)
        assert sp.spanner_edges() == set()

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            SparseSpannerDynamic(5, rates=[0.5])


class TestDynamicStream:
    @pytest.mark.parametrize("seed", range(5))
    def test_mixed_stream_stays_valid(self, seed):
        rng = random.Random(seed)
        n = 16
        universe = [(u, v) for u in range(n) for v in range(u + 1, n)]
        g = DynamicGraph(n)
        sp = SparseSpannerDynamic(
            n, rates=[2.0], k_final=2, seed=seed, base_capacity=4
        )
        spanner: set = set()
        for step in range(25):
            absent = [e for e in universe if e not in g]
            ins = rng.sample(absent, min(len(absent), rng.randrange(0, 7)))
            present = sorted(g.edges())
            dels = rng.sample(present, min(len(present), rng.randrange(0, 5)))
            d_ins, d_dels = sp.update(insertions=ins, deletions=dels)
            g.insert_batch(ins)
            g.delete_batch(dels)
            assert not (d_ins & d_dels)
            spanner = (spanner - d_dels) | d_ins
            assert spanner == sp.spanner_edges(), f"step {step}"
            assert spanner <= g.edge_set()
            assert is_spanner(n, g.edge_set(), spanner, sp.stretch_bound()), (
                f"seed={seed} step={step}"
            )
            sp.check_invariants()

    def test_two_level_stream(self):
        rng = random.Random(42)
        n = 20
        universe = [(u, v) for u in range(n) for v in range(u + 1, n)]
        g = DynamicGraph(n)
        sp = SparseSpannerDynamic(
            n, rates=[2.0, 2.0], k_final=2, seed=11, base_capacity=4
        )
        for step in range(20):
            absent = [e for e in universe if e not in g]
            ins = rng.sample(absent, min(len(absent), rng.randrange(0, 9)))
            present = sorted(g.edges())
            dels = rng.sample(present, min(len(present), rng.randrange(0, 6)))
            sp.update(insertions=ins, deletions=dels)
            g.insert_batch(ins)
            g.delete_batch(dels)
            assert is_spanner(
                n, g.edge_set(), sp.spanner_edges(), sp.stretch_bound()
            )
            sp.check_invariants()

    def test_delete_everything(self):
        n, m = 30, 120
        edges = gnm_random_graph(n, m, seed=6)
        sp = SparseSpannerDynamic(n, edges, rates=[2.0], seed=6,
                                  base_capacity=8)
        sp.delete_batch(edges)
        assert sp.spanner_edges() == set()
        assert all(c == 0 for c in sp.level_edge_counts())
        sp.check_invariants()


class TestSizeClaim:
    def test_linear_size_on_dense_graph(self):
        """Theorem 1.3: O(n) edges.  On a dense graph the sparse spanner
        must be dramatically smaller than both the graph and a plain
        Theorem 1.1 spanner with small k."""
        n = 120
        m = n * (n - 1) // 3
        edges = gnm_random_graph(n, m, seed=9)
        sp = SparseSpannerDynamic(n, edges, seed=9)
        assert sp.spanner_size() <= 12 * n
        assert sp.spanner_size() < m / 5

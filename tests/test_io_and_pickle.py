"""Tests for edge-list I/O and structure checkpointing (pickle)."""

import pickle

import pytest

from repro.contraction import SparseSpannerDynamic
from repro.graph import gnm_random_graph
from repro.graph.io import read_edge_list, write_edge_list
from repro.sparsifier import FullyDynamicSpectralSparsifier
from repro.spanner import FullyDynamicSpanner
from repro.ultrasparse import UltraSparseSpannerDynamic
from repro.verify import is_spanner


class TestEdgeListIO:
    def test_round_trip_unweighted(self, tmp_path):
        edges = gnm_random_graph(20, 50, seed=1)
        p = tmp_path / "g.txt"
        write_edge_list(p, edges, header="test graph\nseed 1")
        n, got, weights = read_edge_list(p)
        assert n == 20 or n == max(max(e) for e in edges) + 1
        assert got == edges
        assert weights is None

    def test_round_trip_weighted(self, tmp_path):
        edges = [(0, 1), (1, 2)]
        w = {(0, 1): 2.5, (1, 2): 1.0}
        p = tmp_path / "g.txt"
        write_edge_list(p, edges, weights=w)
        n, got, weights = read_edge_list(p)
        assert weights == w

    def test_comments_and_blanks(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# header\n\n0 1\n1 2  # inline comment\n")
        n, edges, weights = read_edge_list(p)
        assert edges == [(0, 1), (1, 2)]
        assert n == 3

    @pytest.mark.parametrize(
        "content,msg",
        [
            ("0\n", "expected"),
            ("0 a\n", "bad vertex"),
            ("-1 2\n", "negative"),
            ("0 1\n1 0\n", "duplicate"),
            ("0 1 2.0\n1 2\n", "mixed"),
        ],
    )
    def test_malformed_rejected(self, tmp_path, content, msg):
        p = tmp_path / "bad.txt"
        p.write_text(content)
        with pytest.raises(ValueError, match=msg):
            read_edge_list(p)


class TestCheckpointing:
    """Structures must survive a pickle round trip mid-stream and keep
    producing identical results — the checkpoint/restore workflow."""

    def test_fully_dynamic_spanner(self):
        n = 16
        edges = gnm_random_graph(n, 50, seed=2)
        sp = FullyDynamicSpanner(n, edges, k=2, seed=2, base_capacity=4)
        sp.update(deletions=edges[:10])
        clone = pickle.loads(pickle.dumps(sp))
        assert clone.spanner_edges() == sp.spanner_edges()
        # both continue identically
        a = sp.update(deletions=edges[10:20])
        b = clone.update(deletions=edges[10:20])
        assert a == b
        assert clone.spanner_edges() == sp.spanner_edges()
        clone.check_invariants()

    def test_sparse_spanner(self):
        n = 14
        edges = gnm_random_graph(n, 40, seed=3)
        sp = SparseSpannerDynamic(n, edges, rates=[2.0], k_final=2, seed=3,
                                  base_capacity=4)
        clone = pickle.loads(pickle.dumps(sp))
        a = sp.update(deletions=edges[:8])
        b = clone.update(deletions=edges[:8])
        assert a == b
        clone.check_invariants()

    def test_ultrasparse(self):
        n = 14
        edges = gnm_random_graph(n, 40, seed=4)
        sp = UltraSparseSpannerDynamic(
            n, edges, x=2.0, seed=4, inner_rates=[2.0], k_final=2,
            base_capacity=4,
        )
        clone = pickle.loads(pickle.dumps(sp))
        a = sp.update(deletions=edges[:8])
        b = clone.update(deletions=edges[:8])
        assert a == b
        clone.check_invariants()

    def test_sparsifier(self):
        n = 14
        edges = gnm_random_graph(n, 40, seed=5)
        sp = FullyDynamicSpectralSparsifier(
            n, edges, t=2, seed=5, instances=3, base_capacity=4
        )
        clone = pickle.loads(pickle.dumps(sp))
        assert clone.weighted_edges() == sp.weighted_edges()
        a = sp.update(deletions=edges[:8])
        b = clone.update(deletions=edges[:8])
        assert a == b

    def test_restored_spanner_still_valid(self):
        n = 14
        edges = gnm_random_graph(n, 40, seed=6)
        sp = FullyDynamicSpanner(n, edges, k=2, seed=6, base_capacity=4)
        blob = pickle.dumps(sp)
        del sp
        restored = pickle.loads(blob)
        restored.update(deletions=edges[:15])
        assert is_spanner(
            n, set(edges[15:]), restored.spanner_edges(), 3
        )

"""Tests for Lemma 6.4 (monotone spanner) and Theorem 1.5 (t-bundles)."""

import math
import random

import pytest

from repro.bundle import DecrementalTBundle, MonotoneDecrementalSpanner
from repro.graph import gnm_random_graph
from repro.verify.stretch import is_spanner


class TestMonotoneSpanner:
    def test_initial_spanner_valid(self):
        n, m = 30, 120
        edges = gnm_random_graph(n, m, seed=1)
        sp = MonotoneDecrementalSpanner(n, edges, seed=1, instances=8)
        assert sp.output_edges() <= set(edges)
        assert is_spanner(n, edges, sp.output_edges(), sp.stretch_bound())
        sp.check_invariants()

    def test_forest_union_size(self):
        """Each instance contributes a forest, so the spanner has at most
        instances * (n - 1) edges."""
        n, m = 40, 300
        edges = gnm_random_graph(n, m, seed=2)
        sp = MonotoneDecrementalSpanner(n, edges, seed=2, instances=6)
        assert sp.spanner_size() <= 6 * (n - 1)

    @pytest.mark.parametrize("seed", range(4))
    def test_deletion_stream_stays_valid(self, seed):
        rng = random.Random(seed)
        n, m = 20, 70
        edges = gnm_random_graph(n, m, seed=seed + 10)
        sp = MonotoneDecrementalSpanner(n, edges, seed=seed, instances=8)
        spanner = sp.output_edges()
        alive = list(edges)
        rng.shuffle(alive)
        while alive:
            batch, alive = alive[:5], alive[5:]
            ins, dels = sp.batch_delete(batch)
            spanner = (spanner - dels) | ins
            assert spanner == sp.output_edges()
            assert spanner <= set(alive)
            assert is_spanner(n, alive, spanner, sp.stretch_bound())
            sp.check_invariants()

    def test_monotonicity_recourse_bound(self):
        """Lemma 6.4: total churn over a full deletion run is Õ(n),
        independent of m (much smaller than m for dense graphs)."""
        n = 30
        m = n * (n - 1) // 2  # complete graph
        edges = gnm_random_graph(n, m, seed=5)
        sp = MonotoneDecrementalSpanner(n, edges, seed=5, instances=4)
        rng = random.Random(5)
        alive = list(edges)
        rng.shuffle(alive)
        while alive:
            batch, alive = alive[:20], alive[20:]
            sp.batch_delete(batch)
        # 4 instances, each forest churns O(n log^2 n)
        bound = 4 * 6 * n * math.log2(n) ** 2
        assert sp.total_recourse <= bound
        assert sp.total_recourse < m  # strictly better than per-edge churn

    def test_delete_missing_raises(self):
        sp = MonotoneDecrementalSpanner(3, [(0, 1)], seed=1, instances=2)
        with pytest.raises(KeyError):
            sp.batch_delete([(1, 2)])

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            MonotoneDecrementalSpanner(3, [], beta=0.0)


class TestTBundle:
    def make(self, n=24, m=140, t=3, seed=3):
        edges = gnm_random_graph(n, m, seed=seed)
        bundle = DecrementalTBundle(
            n, edges, t=t, seed=seed, instances=4
        )
        return n, edges, bundle

    def test_initial_bundle_levels_are_chained_spanners(self):
        n, edges, bundle = self.make()
        bundle.check_invariants()
        # levels are disjoint and nested correctly
        all_levels = [bundle.level_edges(i) for i in range(bundle.t)]
        union = set().union(*all_levels)
        assert union == bundle.bundle_edges()
        assert bundle.non_bundle_edges() == set(edges) - union

    def test_invalid_t(self):
        with pytest.raises(ValueError):
            DecrementalTBundle(3, [], t=0)

    @pytest.mark.parametrize("seed", range(3))
    def test_deletion_stream(self, seed):
        rng = random.Random(seed)
        n, m, t = 18, 90, 2
        edges = gnm_random_graph(n, m, seed=seed + 20)
        bundle = DecrementalTBundle(n, edges, t=t, seed=seed, instances=5)
        tracked = bundle.bundle_edges()
        alive = list(edges)
        rng.shuffle(alive)
        while alive:
            b = min(len(alive), rng.choice([1, 3, 7]))
            batch, alive = alive[:b], alive[b:]
            ins, dels = bundle.batch_delete(batch)
            assert not (ins & dels)
            tracked = (tracked - dels) | ins
            assert tracked == bundle.bundle_edges()
            assert tracked <= set(alive)
            bundle.check_invariants()

    def test_amortized_recourse_o1(self):
        """Theorem 1.5: each edge enters/leaves the bundle O(1) times, so
        the total recourse over a full deletion run is O(m + bundle)."""
        n, m, t = 30, 300, 2
        edges = gnm_random_graph(n, m, seed=9)
        bundle = DecrementalTBundle(n, edges, t=t, seed=9, instances=4)
        total = 0
        rng = random.Random(9)
        alive = list(edges)
        rng.shuffle(alive)
        initial = bundle.bundle_size()
        while alive:
            batch, alive = alive[:15], alive[15:]
            ins, dels = bundle.batch_delete(batch)
            total += len(ins) + len(dels)
        # every edge can enter once and leave once, plus the initial bundle
        assert total <= 2 * (m + initial)
        assert bundle.bundle_edges() == set()

    def test_delete_missing_raises(self):
        _, _, bundle = self.make()
        with pytest.raises(KeyError):
            bundle.batch_delete([(0, 23)])

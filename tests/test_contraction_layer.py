"""Tests for one contraction layer (Lemma 4.1 / §4.3 cases D1-D4, I1-I5)."""

import random

import pytest

from repro.contraction import ContractionLayer, contract, pullback_spanner
from repro.graph import gnm_random_graph, norm_edge
from repro.verify.stretch import is_spanner, spanner_stretch


def fresh_layer(n, sampled, seed=0):
    return ContractionLayer(n, sampled, seed=seed)


class TestHeads:
    def test_sampled_vertex_is_its_own_head(self):
        layer = fresh_layer(3, [True, False, False])
        assert layer.head_of(0) == 0
        assert layer.head_of(1) == -1  # isolated unsampled

    def test_unsampled_with_sampled_neighbor(self):
        layer = fresh_layer(3, [True, False, False])
        layer.update(insertions=[(0, 1)])
        assert layer.head_of(1) == 0
        assert layer.head_of(0) == 0

    def test_unsampled_without_sampled_neighbor_is_bottom(self):
        layer = fresh_layer(3, [False, False, False])
        layer.update(insertions=[(0, 1), (1, 2)])
        assert all(layer.head_of(v) == -1 for v in range(3))
        # all edges kept in H
        assert layer.kept_edges() == {(0, 1), (1, 2)}
        assert layer.contracted_edges() == set()

    def test_head_follows_min_random_key_deterministically(self):
        layer = fresh_layer(4, [True, True, False, False], seed=5)
        layer.update(insertions=[(0, 2), (1, 2)])
        h = layer.head_of(2)
        assert h in (0, 1)
        # deleting the head edge forces the other sampled neighbor
        layer.update(deletions=[(h, 2)])
        assert layer.head_of(2) == 1 - h

    def test_head_loss_moves_edges_into_h(self):
        layer = fresh_layer(4, [True, False, False, False])
        layer.update(insertions=[(0, 1), (1, 2), (2, 3)])
        assert layer.head_of(1) == 0
        # (1,2): head(2) = -1 -> kept; (2,3) both bottom -> kept
        assert (1, 2) in layer.kept_edges()
        assert (2, 3) in layer.kept_edges()
        layer.update(deletions=[(0, 1)])
        assert layer.head_of(1) == -1
        assert layer.kept_edges() == {(1, 2), (2, 3)}


class TestContractedGraph:
    def test_basic_contraction(self):
        # 0,1 sampled; 2->0, 3->1; edge (2,3) becomes contracted (0,1)
        layer = fresh_layer(4, [True, True, False, False])
        d = layer.update(insertions=[(0, 2), (1, 3), (2, 3)])
        assert layer.contracted_edges() == {(0, 1)}
        assert d.next_ins == [(0, 1)]
        assert layer.rep_of((0, 1)) == (2, 3)
        # head edges are in H
        assert {(0, 2), (1, 3)} <= layer.kept_edges()

    def test_same_head_edge_not_contracted(self):
        layer = fresh_layer(3, [True, False, False])
        layer.update(insertions=[(0, 1), (0, 2), (1, 2)])
        # all three vertices have head 0 -> no contracted edges
        assert layer.contracted_edges() == set()

    def test_parallel_contracted_edges_bucket_together(self):
        layer = fresh_layer(6, [True, True, False, False, False, False])
        layer.update(
            insertions=[(0, 2), (0, 3), (1, 4), (1, 5), (2, 4), (3, 5)]
        )
        assert layer.contracted_edges() == {(0, 1)}
        rep = layer.rep_of((0, 1))
        assert rep in {(2, 4), (3, 5)}
        # delete the representative: bucket survives, rep swaps
        d = layer.update(deletions=[rep])
        assert layer.contracted_edges() == {(0, 1)}
        assert not d.next_del
        assert len(d.rep_changes) == 1
        key, old, new = d.rep_changes[0]
        assert key == (0, 1) and old == rep and new != rep

    def test_bucket_empties_deletes_contracted_edge(self):
        layer = fresh_layer(4, [True, True, False, False])
        layer.update(insertions=[(0, 2), (1, 3), (2, 3)])
        d = layer.update(deletions=[(2, 3)])
        assert d.next_del == [(0, 1)]
        assert layer.contracted_edges() == set()

    def test_direct_edge_between_sampled_vertices(self):
        layer = fresh_layer(2, [True, True])
        d = layer.update(insertions=[(0, 1)])
        assert layer.contracted_edges() == {(0, 1)}
        assert layer.rep_of((0, 1)) == (0, 1)
        assert d.next_ins == [(0, 1)]

    def test_duplicate_insert_rejected(self):
        layer = fresh_layer(2, [True, True])
        layer.update(insertions=[(0, 1)])
        with pytest.raises(ValueError):
            layer.update(insertions=[(1, 0)])

    def test_delete_missing_rejected(self):
        layer = fresh_layer(2, [True, True])
        with pytest.raises(KeyError):
            layer.update(deletions=[(0, 1)])


class TestModelBased:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_stream_invariants(self, seed):
        rng = random.Random(seed)
        n = 14
        sampled = [rng.random() < 0.4 for _ in range(n)]
        layer = ContractionLayer(n, sampled, seed=seed)
        universe = [(u, v) for u in range(n) for v in range(u + 1, n)]
        present: set = set()
        contracted = set()
        kept = set()
        for _ in range(30):
            absent = [e for e in universe if e not in present]
            ins = rng.sample(absent, min(len(absent), rng.randrange(0, 6)))
            dels = rng.sample(
                sorted(present), min(len(present), rng.randrange(0, 6))
            )
            d = layer.update(insertions=ins, deletions=dels)
            present |= set(ins)
            present -= set(dels)
            layer.check_invariants()
            # replay deltas
            for e in d.next_del:
                contracted.remove(e)
            for e in d.next_ins:
                assert e not in contracted
                contracted.add(e)
            for e in d.h_del:
                kept.remove(e)
            for e in d.h_ins:
                assert e not in kept
                kept.add(e)
            assert contracted == layer.contracted_edges()
            assert kept == layer.kept_edges()
            assert layer.edges() == present


class TestLemma41Properties:
    def test_expected_sizes(self):
        n, m, x = 400, 1200, 4.0
        edges = gnm_random_graph(n, m, seed=2)
        sizes_v, sizes_h = [], []
        for s in range(5):
            contracted, kept, head, _ = contract(n, edges, x, seed=s)
            nonbottom_heads = {h for h in head if h != -1}
            sizes_v.append(len(nonbottom_heads))
            sizes_h.append(len(kept))
        # E[|V'|] = n / x, E[|H|] = O(n x)
        assert sum(sizes_v) / 5 <= 2.5 * n / x
        assert sum(sizes_h) / 5 <= 6 * n * x

    def test_pullback_is_3Lplus2_spanner(self):
        from repro.spanner import baswana_sen_spanner

        n, m, x = 60, 240, 3.0
        edges = gnm_random_graph(n, m, seed=7)
        contracted, kept, head, layer = contract(n, edges, x, seed=7)
        k = 2
        h_prime = baswana_sen_spanner(n, sorted(contracted), k=k, seed=1)
        spanner = pullback_spanner(layer, h_prime)
        L = 2 * k - 1
        assert is_spanner(n, edges, spanner, 3 * L + 2)
        assert kept <= spanner

    def test_pullback_contains_h(self):
        n, m = 30, 90
        edges = gnm_random_graph(n, m, seed=3)
        _, kept, _, layer = contract(n, edges, 2.0, seed=3)
        assert kept <= pullback_spanner(layer, layer.contracted_edges())

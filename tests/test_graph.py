"""Tests for the dynamic graph store, generators, and traversals."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    DynamicGraph,
    adjacency_from_edges,
    barbell_graph,
    bfs_distances,
    bfs_distances_bounded,
    complete_graph,
    connected_components,
    gnm_random_graph,
    gnp_random_graph,
    grid_graph,
    norm_edge,
    power_law_graph,
    random_connected_graph,
    random_tree,
    ring_of_cliques,
)


class TestNormEdge:
    def test_orders_endpoints(self):
        assert norm_edge(5, 2) == (2, 5)
        assert norm_edge(2, 5) == (2, 5)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            norm_edge(3, 3)


class TestDynamicGraph:
    def test_insert_and_query(self):
        g = DynamicGraph(4, [(0, 1), (2, 1)])
        assert g.m == 2
        assert (1, 0) in g
        assert g.neighbors(1) == {0, 2}
        assert g.degree(1) == 2 and g.degree(3) == 0

    def test_duplicate_insert_rejected(self):
        g = DynamicGraph(3, [(0, 1)])
        with pytest.raises(ValueError):
            g.insert_batch([(1, 0)])

    def test_delete(self):
        g = DynamicGraph(3, [(0, 1), (1, 2)])
        g.delete_batch([(1, 0)])
        assert g.m == 1 and (0, 1) not in g
        with pytest.raises(KeyError):
            g.delete_batch([(0, 1)])

    def test_vertex_bounds_checked(self):
        g = DynamicGraph(3)
        with pytest.raises(ValueError):
            g.insert_batch([(0, 3)])

    def test_failed_insert_batch_leaves_graph_unchanged(self):
        g = DynamicGraph(4, [(0, 1)])
        with pytest.raises(ValueError):
            g.insert_batch([(1, 2), (0, 1), (2, 3)])  # (0, 1) is a dup
        assert g.m == 1
        assert (1, 2) not in g and (2, 3) not in g
        with pytest.raises(ValueError):
            g.insert_batch([(1, 2), (2, 1)])  # duplicate within the batch
        assert g.m == 1

    def test_failed_delete_batch_leaves_graph_unchanged(self):
        g = DynamicGraph(4, [(0, 1), (1, 2)])
        with pytest.raises(KeyError):
            g.delete_batch([(0, 1), (2, 3)])  # (2, 3) absent
        assert g.m == 2 and (0, 1) in g
        with pytest.raises(KeyError):
            g.delete_batch([(1, 2), (2, 1)])  # same edge twice
        assert g.m == 2 and (1, 2) in g

    def test_copy_is_independent(self):
        g = DynamicGraph(3, [(0, 1)])
        h = g.copy()
        h.delete_batch([(0, 1)])
        assert g.m == 1 and h.m == 0

    def test_to_networkx(self):
        g = DynamicGraph(4, [(0, 1), (2, 3)])
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 4
        assert nxg.number_of_edges() == 2


class TestGenerators:
    def test_gnm_has_exact_edge_count(self):
        for n, m in [(10, 0), (10, 20), (10, 45), (50, 200)]:
            edges = gnm_random_graph(n, m, seed=1)
            assert len(edges) == m
            assert len(set(edges)) == m
            assert all(0 <= u < v < n for u, v in edges)

    def test_gnm_too_many_edges(self):
        with pytest.raises(ValueError):
            gnm_random_graph(4, 7)

    def test_gnp_extremes(self):
        assert gnp_random_graph(10, 0.0, seed=1) == []
        assert sorted(gnp_random_graph(5, 1.0, seed=1)) == complete_graph(5)

    def test_gnp_density_reasonable(self):
        edges = gnp_random_graph(200, 0.1, seed=3)
        expect = 0.1 * 200 * 199 / 2
        assert 0.7 * expect < len(edges) < 1.3 * expect
        assert all(0 <= u < v < 200 for u, v in edges)

    def test_random_tree_is_tree(self):
        edges = random_tree(40, seed=5)
        g = nx.Graph(edges)
        g.add_nodes_from(range(40))
        assert nx.is_tree(g)

    def test_random_connected_graph(self):
        edges = random_connected_graph(30, 60, seed=2)
        assert len(edges) == 60
        g = nx.Graph(edges)
        g.add_nodes_from(range(30))
        assert nx.is_connected(g)

    def test_random_connected_too_few_edges(self):
        with pytest.raises(ValueError):
            random_connected_graph(10, 8)

    def test_grid(self):
        edges = grid_graph(3, 4)
        assert len(edges) == 3 * 3 + 2 * 4  # horizontal + vertical
        g = nx.Graph(edges)
        assert nx.is_connected(g)

    def test_ring_of_cliques(self):
        edges = ring_of_cliques(4, 5)
        g = nx.Graph(edges)
        assert g.number_of_nodes() == 20
        assert nx.is_connected(g)
        # each clique contributes C(5,2) edges; ring adds 4.
        assert len(edges) == 4 * 10 + 4

    def test_power_law_degree_skew(self):
        edges = power_law_graph(300, 600, seed=4)
        assert len(edges) <= 600
        g = nx.Graph(edges)
        degrees = sorted((d for _, d in g.degree()), reverse=True)
        assert degrees[0] > 3 * (2 * len(edges) / 300)  # hub exists

    def test_barbell(self):
        edges = barbell_graph(4, 3)
        g = nx.Graph(edges)
        assert nx.is_connected(g)
        bridges = list(nx.bridges(g))
        assert len(bridges) == 4  # path of 3 internal vertices -> 4 bridges


class TestTraversal:
    def test_bfs_matches_networkx(self):
        edges = gnm_random_graph(60, 150, seed=9)
        adj = adjacency_from_edges(60, edges)
        nxg = nx.Graph(edges)
        nxg.add_nodes_from(range(60))
        got = bfs_distances(adj, 0)
        want = nx.single_source_shortest_path_length(nxg, 0)
        assert got == dict(want)

    def test_bounded_bfs_truncates(self):
        edges = grid_graph(1, 10)  # path 0-1-...-9
        adj = adjacency_from_edges(10, edges)
        d = bfs_distances_bounded(adj, 0, limit=3)
        assert d == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_connected_components(self):
        comps = connected_components(6, [(0, 1), (1, 2), (4, 5)])
        assert comps == [[0, 1, 2], [3], [4, 5]]


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 40), st.data())
def test_bfs_oracle_property(n, data):
    max_m = n * (n - 1) // 2
    m = data.draw(st.integers(0, min(max_m, 80)))
    edges = gnm_random_graph(n, m, seed=data.draw(st.integers(0, 10**6)))
    adj = adjacency_from_edges(n, edges)
    src = data.draw(st.integers(0, n - 1))
    nxg = nx.Graph(edges)
    nxg.add_nodes_from(range(n))
    assert bfs_distances(adj, src) == dict(
        nx.single_source_shortest_path_length(nxg, src)
    )


class TestTraversalEdgeCases:
    """The pruned and unpruned BFS modes share one edge-case contract
    (both are on the serving engine's distance/connected path)."""

    @pytest.mark.parametrize("target", [None, 3])
    def test_source_equals_target(self, target):
        adj = adjacency_from_edges(5, [(0, 1), (1, 2)])
        dist = bfs_distances(adj, 3, target=3 if target else None)
        assert dist[3] == 0

    def test_self_target_skips_traversal(self):
        # u == v settles at 0 even when u has neighbors
        adj = adjacency_from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert bfs_distances(adj, 1, target=1) == {1: 0}

    @pytest.mark.parametrize("pruned", [False, True])
    def test_source_absent_from_dict_adjacency(self, pruned):
        # snapshot adjacencies only key vertices that currently have
        # edges; an isolated source must read as "no neighbors", not
        # KeyError in one mode and a sweep in the other
        adj = {0: {1}, 1: {0}}
        dist = bfs_distances(adj, 7, target=0 if pruned else None)
        assert dist == {7: 0}

    @pytest.mark.parametrize("pruned", [False, True])
    def test_disconnected_target_absent(self, pruned):
        adj = adjacency_from_edges(6, [(0, 1), (1, 2), (4, 5)])
        dist = bfs_distances(adj, 0, target=4 if pruned else None)
        assert 4 not in dist and 5 not in dist

    def test_pruned_agrees_with_unpruned_at_target(self):
        edges = gnm_random_graph(30, 50, seed=21)
        adj = adjacency_from_edges(30, edges)
        full = bfs_distances(adj, 0)
        for v in range(30):
            assert bfs_distances(adj, 0, target=v).get(v) == full.get(v)

    def test_bounded_absent_source(self):
        assert bfs_distances_bounded({0: {1}, 1: {0}}, 9, 3) == {9: 0}

    @pytest.mark.parametrize("limit", [0, -1, -10])
    def test_bounded_nonpositive_limit(self, limit):
        # a non-positive limit must never expand the frontier (it used
        # to fall through to a full unbounded sweep)
        adj = adjacency_from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert bfs_distances_bounded(adj, 0, limit) == {0: 0}

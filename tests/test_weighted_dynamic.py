"""Tests for the fully-dynamic weighted spanner (weight-class extension)."""

import random

import numpy as np
import pytest

from repro.graph import gnm_random_graph
from repro.spanner.weighted import weighted_spanner_stretch
from repro.spanner.weighted_dynamic import WeightedFullyDynamicSpanner


def random_weighted(n, m, seed, low=1.0, high=50.0):
    rng = np.random.default_rng(seed)
    edges = gnm_random_graph(n, m, seed=seed)
    return {e: float(w) for e, w in zip(edges, rng.uniform(low, high, m))}


class TestConstruction:
    def test_initial_stretch_guarantee(self):
        n, m, k = 25, 100, 2
        weights = random_weighted(n, m, seed=1)
        sp = WeightedFullyDynamicSpanner(n, weights, k=k, epsilon=0.5,
                                         seed=1, base_capacity=8)
        s = weighted_spanner_stretch(n, weights, sp.spanner_edges())
        assert s <= sp.stretch + 1e-9
        sp.check_invariants()

    def test_classes_are_geometric(self):
        sp = WeightedFullyDynamicSpanner(4, k=2, epsilon=1.0)
        assert sp._class_of(1.0) == 0
        assert sp._class_of(2.0) == 1
        assert sp._class_of(4.0) == 2
        assert sp._class_of(3.9) == 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            WeightedFullyDynamicSpanner(4, epsilon=0.0)
        with pytest.raises(ValueError):
            WeightedFullyDynamicSpanner(4, k=0)
        sp = WeightedFullyDynamicSpanner(4)
        with pytest.raises(ValueError):
            sp.update(insertions={(0, 1): -2.0})

    def test_uniform_weights_single_class(self):
        n, m = 15, 40
        weights = {e: 1.0 for e in gnm_random_graph(n, m, seed=2)}
        sp = WeightedFullyDynamicSpanner(n, weights, k=2, seed=2,
                                         base_capacity=8)
        assert len(sp.class_sizes()) == 1

    def test_wide_weight_range_many_classes(self):
        n, m = 20, 60
        weights = random_weighted(n, m, seed=3, low=1.0, high=10**4)
        sp = WeightedFullyDynamicSpanner(n, weights, k=2, epsilon=0.5,
                                         seed=3, base_capacity=8)
        assert len(sp.class_sizes()) > 3
        sp.check_invariants()


class TestUpdates:
    @pytest.mark.parametrize("seed", range(4))
    def test_mixed_stream_keeps_guarantee(self, seed):
        rng = random.Random(seed)
        nprng = np.random.default_rng(seed)
        n, k = 14, 2
        universe = [(u, v) for u in range(n) for v in range(u + 1, n)]
        sp = WeightedFullyDynamicSpanner(n, k=k, epsilon=0.5, seed=seed,
                                         base_capacity=4)
        weights: dict = {}
        for step in range(12):
            absent = [e for e in universe if e not in weights]
            ins = {
                e: float(nprng.uniform(1, 100))
                for e in rng.sample(absent, min(len(absent),
                                                rng.randrange(0, 6)))
            }
            dels = rng.sample(
                sorted(weights), min(len(weights), rng.randrange(0, 4))
            )
            d_ins, d_dels = sp.update(insertions=ins, deletions=dels)
            for e in dels:
                del weights[e]
            weights.update(ins)
            assert sp.m == len(weights)
            assert sp.spanner_edges() <= set(weights)
            if weights:
                s = weighted_spanner_stretch(n, weights, sp.spanner_edges())
                assert s <= sp.stretch + 1e-9, f"seed={seed} step={step}"
            sp.check_invariants()

    def test_delete_missing_raises(self):
        sp = WeightedFullyDynamicSpanner(4, {(0, 1): 2.0}, seed=1)
        with pytest.raises(KeyError):
            sp.update(deletions=[(1, 2)])

    def test_duplicate_insert_raises(self):
        sp = WeightedFullyDynamicSpanner(4, {(0, 1): 2.0}, seed=1)
        with pytest.raises(ValueError):
            sp.update(insertions={(1, 0): 3.0})

    def test_reinsert_with_new_weight_moves_class(self):
        sp = WeightedFullyDynamicSpanner(4, {(0, 1): 1.0}, k=2,
                                         epsilon=1.0, seed=1)
        assert sp._class_of(sp.weight_of((0, 1))) == 0
        sp.update(deletions=[(0, 1)])
        sp.update(insertions={(0, 1): 8.0})
        assert sp._class_of(sp.weight_of((0, 1))) == 3
        sp.check_invariants()

    def test_weighted_spanner_view(self):
        weights = {(0, 1): 2.0, (1, 2): 5.0}
        sp = WeightedFullyDynamicSpanner(3, weights, k=2, seed=1)
        view = sp.weighted_spanner()
        assert view == {e: weights[e] for e in sp.spanner_edges()}

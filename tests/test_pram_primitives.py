"""Tests for the PRAM batch primitives."""

import operator

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pram import (
    CostModel,
    pfilter,
    pmap,
    pmax_index,
    preduce,
    pscan,
    psemisort,
    psort,
)


class TestReduceScan:
    def test_reduce_sum(self):
        assert preduce([1, 2, 3, 4], operator.add, 0) == 10

    def test_reduce_empty_gives_identity(self):
        assert preduce([], operator.add, 42) == 42

    def test_scan_exclusive(self):
        prefixes, total = pscan([1, 2, 3], operator.add, 0)
        assert prefixes == [0, 1, 3]
        assert total == 6

    def test_scan_noncommutative(self):
        prefixes, total = pscan(["a", "b", "c"], operator.add, "")
        assert prefixes == ["", "a", "ab"]
        assert total == "abc"

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(-100, 100)))
    def test_scan_property(self, xs):
        prefixes, total = pscan(xs, operator.add, 0)
        assert total == sum(xs)
        for i, p in enumerate(prefixes):
            assert p == sum(xs[:i])


class TestFilterMap:
    def test_filter(self):
        assert pfilter(range(10), lambda x: x % 3 == 0) == [0, 3, 6, 9]

    def test_map(self):
        assert pmap([1, 2, 3], lambda x: x * x) == [1, 4, 9]

    def test_charges(self):
        cm = CostModel()
        pfilter(list(range(1000)), lambda x: True, cost=cm)
        assert cm.work >= 1000
        assert cm.depth <= 12  # log-depth


class TestSort:
    def test_sort_with_key(self):
        assert psort([3, 1, 2], key=lambda x: -x) == [3, 2, 1]

    def test_sort_charge_is_nlogn(self):
        cm = CostModel()
        psort(list(range(1024)), cost=cm)
        assert cm.work == 1024 * 10
        assert cm.depth == 10

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers()))
    def test_sort_property(self, xs):
        assert psort(xs) == sorted(xs)


class TestSemisortMax:
    def test_semisort_groups(self):
        groups = psemisort([1, 2, 3, 4, 5, 6], key=lambda x: x % 2)
        assert groups == {1: [1, 3, 5], 0: [2, 4, 6]}

    def test_semisort_depth_constant(self):
        cm = CostModel()
        psemisort(list(range(10000)), key=lambda x: x % 7, cost=cm)
        assert cm.depth == 1

    def test_max_index(self):
        assert pmax_index([3, 9, 1]) == 1
        assert pmax_index([3, 9, 1], key=lambda x: -x) == 2

    def test_max_index_empty_raises(self):
        with pytest.raises(ValueError):
            pmax_index([])

"""Tests for the distance and cut query oracles."""

import random

import numpy as np
import pytest

from repro.graph import DynamicGraph, adjacency_from_edges, bfs_distances, gnm_random_graph
from repro.pram import CostModel
from repro.queries import DynamicCutOracle, DynamicDistanceOracle
from repro.sparsifier import FullyDynamicSpectralSparsifier
from repro.spanner import FullyDynamicSpanner
from repro.verify import cut_weight, laplacian, quadratic_form


def make_distance_oracle(n, edges, k=2, seed=1, cost=None):
    sp = FullyDynamicSpanner(n, edges, k=k, seed=seed, base_capacity=8)
    return DynamicDistanceOracle(
        n, sp, stretch=sp.stretch, cost=cost or CostModel()
    )


class TestDistanceOracle:
    def test_answers_within_stretch(self):
        n, m, k = 40, 160, 2
        edges = gnm_random_graph(n, m, seed=3)
        oracle = make_distance_oracle(n, edges, k=k, seed=3)
        adj = adjacency_from_edges(n, edges)
        for u in range(0, n, 7):
            true = bfs_distances(adj, u)
            for v in range(0, n, 5):
                d = oracle.distance(u, v)
                if v in true:
                    assert true[v] <= d <= (2 * k - 1) * true[v] or (
                        true[v] == 0 and d == 0
                    )
                else:
                    assert d == float("inf")

    def test_batch_matches_single(self):
        n, m = 30, 90
        edges = gnm_random_graph(n, m, seed=4)
        oracle = make_distance_oracle(n, edges, seed=4)
        pairs = [(0, 5), (0, 9), (3, 7), (10, 10)]
        batch = oracle.batch_distances(pairs)
        assert batch == [oracle.distance(u, v) for u, v in pairs]

    def test_stays_in_sync_through_updates(self):
        rng = random.Random(5)
        n = 20
        universe = [(u, v) for u in range(n) for v in range(u + 1, n)]
        g = DynamicGraph(n)
        oracle = make_distance_oracle(n, [], seed=5)
        for _ in range(15):
            absent = [e for e in universe if e not in g]
            ins = rng.sample(absent, min(len(absent), rng.randrange(0, 6)))
            present = sorted(g.edges())
            dels = rng.sample(present, min(len(present), rng.randrange(0, 4)))
            oracle.update(insertions=ins, deletions=dels)
            g.insert_batch(ins)
            g.delete_batch(dels)
            # connectivity is preserved exactly by any spanner
            adj = adjacency_from_edges(n, g.edges())
            comp0 = set(bfs_distances(adj, 0))
            for v in range(n):
                assert oracle.connected(0, v) == (v in comp0)

    def test_within_ball(self):
        # path graph: within(0, 2) must include the true 2-ball
        n = 10
        edges = [(i, i + 1) for i in range(n - 1)]
        oracle = make_distance_oracle(n, edges, seed=6)
        ball = oracle.within(0, 2)
        assert {0, 1, 2} <= ball

    def test_vertex_validation(self):
        oracle = make_distance_oracle(4, [(0, 1)], seed=7)
        with pytest.raises(ValueError):
            oracle.distance(0, 4)
        with pytest.raises(ValueError):
            oracle.within(-1, 2)

    def test_cost_charged(self):
        cost = CostModel()
        oracle = make_distance_oracle(20, gnm_random_graph(20, 50, seed=8),
                                      seed=8, cost=cost)
        cost.reset()
        oracle.distance(0, 5)
        assert cost.work > 0


class TestCutOracle:
    def make(self, n, edges, t=100, seed=1):
        sp = FullyDynamicSpectralSparsifier(
            n, edges, t=t, seed=seed, instances=4, base_capacity=4
        )
        return DynamicCutOracle(n, sp)

    def test_exact_with_huge_t(self):
        """t >= m keeps every edge at weight 1 -> exact answers."""
        n, m = 14, 40
        edges = gnm_random_graph(n, m, seed=9)
        oracle = self.make(n, edges, t=m)
        g_w = {e: 1.0 for e in edges}
        rng = np.random.default_rng(9)
        for _ in range(10):
            side = set(np.flatnonzero(rng.random(n) < 0.5).tolist())
            assert oracle.cut_value(side) == pytest.approx(
                cut_weight(g_w, side)
            )

    def test_quadratic_form_matches_laplacian(self):
        n, m = 12, 30
        edges = gnm_random_graph(n, m, seed=10)
        oracle = self.make(n, edges, t=m)
        L = laplacian(n, {e: 1.0 for e in edges})
        rng = np.random.default_rng(10)
        for _ in range(5):
            x = rng.normal(size=n)
            assert oracle.quadratic_form(x) == pytest.approx(
                quadratic_form(L, x)
            )

    def test_update_invalidates_cache(self):
        n, m = 12, 30
        edges = gnm_random_graph(n, m, seed=11)
        oracle = self.make(n, edges, t=m)
        before = oracle.total_weight()
        oracle.update(deletions=edges[:10])
        after = oracle.total_weight()
        assert after < before

    def test_validation(self):
        oracle = self.make(4, [(0, 1)], t=5)
        with pytest.raises(ValueError):
            oracle.cut_value({9})
        with pytest.raises(ValueError):
            oracle.quadratic_form([1.0, 2.0])

    def test_approximate_mode_bounded_error(self):
        n, m = 30, 300
        edges = gnm_random_graph(n, m, seed=12)
        oracle = self.make(n, edges, t=4, seed=12)
        g_w = {e: 1.0 for e in edges}
        rng = np.random.default_rng(12)
        for _ in range(10):
            side = set(np.flatnonzero(rng.random(n) < 0.5).tolist())
            exact = cut_weight(g_w, side)
            if exact == 0:
                continue
            approx = oracle.cut_value(side)
            assert 0.3 * exact <= approx <= 3.0 * exact


# -- the batch query engine ---------------------------------------------------


from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.connectivity import EulerTourForest  # noqa: E402
from repro.graph.traversal import bfs_distances_bounded  # noqa: E402
from repro.oracle.queries import (  # noqa: E402
    check_query_batch,
    singleton_answers,
)
from repro.queries import (  # noqa: E402
    QueryBatch,
    answer_queries,
    batch_components,
    batch_connected,
    batch_connected_forest,
    batch_distances,
    batch_find_repr,
    batch_stretch_check,
    coalesce_queries,
    multi_source_bfs,
)


def _edge_set(n, m, seed):
    return {tuple(e) for e in gnm_random_graph(n, m, seed=seed)}


def _adj(edges):
    adj = {}
    for a, b in edges:
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set()).add(a)
    return adj


class TestMultiSourceBFS:
    def test_matches_per_source_bfs(self):
        edges = _edge_set(30, 45, seed=2)
        adj = _adj(edges)
        sources = [0, 3, 3, 7, 29, 11]
        dist = multi_source_bfs(adj, sources, n=30)
        for s in set(sources):
            assert dist[s] == bfs_distances(adj, s)

    def test_bound_caps_levels(self):
        adj = _adj({(i, i + 1) for i in range(9)})
        dist = multi_source_bfs(adj, [0], bound=3, n=10)
        assert dist[0] == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_isolated_source(self):
        adj = _adj({(0, 1)})
        dist = multi_source_bfs(adj, [5], n=6)
        assert dist[5] == {5: 0}

    def test_shared_frontier_cheaper_than_sequential(self):
        """k clustered sources must not cost k independent sweeps."""
        edges = _edge_set(60, 120, seed=4)
        adj = _adj(edges)
        shared = CostModel()
        multi_source_bfs(adj, list(range(12)), n=60, cost=shared)
        separate = CostModel()
        for s in range(12):
            multi_source_bfs(adj, [s], n=60, cost=separate)
        assert shared.work < separate.work
        assert shared.depth < separate.depth

    def test_target_pruning_settles_targets(self):
        edges = _edge_set(40, 70, seed=5)
        adj = _adj(edges)
        full = bfs_distances(adj, 0)
        dist = multi_source_bfs(adj, [0], targets={0: [7, 13]}, n=40)
        for t in (7, 13):
            assert dist[0].get(t) == full.get(t)


class TestBatchPrimitives:
    def test_batch_distances_matches_singleton(self):
        edges = _edge_set(35, 50, seed=6)
        adj = _adj(edges)
        rng = np.random.default_rng(6)
        pairs = [tuple(map(int, rng.integers(0, 35, 2))) for _ in range(40)]
        pairs += [(u, u) for u in range(0, 35, 9)]
        got = batch_distances(adj, pairs, n=35)
        for (u, v), d in zip(pairs, got):
            if u == v:
                assert d == 0.0
            else:
                ref = bfs_distances(adj, u, target=v).get(v) \
                    if u in adj else None
                assert d == (float("inf") if ref is None else float(ref))

    def test_batch_connected_matches_components(self):
        edges = _edge_set(35, 30, seed=7)  # sparse: multiple components
        adj = _adj(edges)
        rng = np.random.default_rng(7)
        pairs = [tuple(map(int, rng.integers(0, 35, 2))) for _ in range(50)]
        got = batch_connected(adj, pairs, n=35)
        for (u, v), c in zip(pairs, got):
            ref = u == v or (
                u in adj and v in bfs_distances(adj, u, target=v)
            )
            assert c == ref

    def test_batch_components_work_independent_of_query_count(self):
        """The batching dividend: 200 queries cost like 2, not 100x."""
        edges = _edge_set(80, 120, seed=8)
        adj = _adj(edges)
        few = CostModel()
        batch_components(adj, [0, 1], n=80, cost=few)
        many = CostModel()
        batch_components(adj, [i % 80 for i in range(200)], n=80,
                         cost=many)
        # labeling floods each touched component once; extra queries only
        # touch more components, never re-flood one
        assert many.work <= few.work + 80 * 6 + 200

    def test_batch_find_repr_matches_singleton(self):
        forest = EulerTourForest(20, seed=3)
        for u, v in [(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (2, 5)]:
            forest.link(u, v)
        verts = [0, 7, 7, 3, 19, 4, 1]
        assert batch_find_repr(forest, verts) == [
            forest.find_repr(v) for v in verts
        ]

    def test_batch_find_repr_memoizes_shared_paths(self):
        forest = EulerTourForest(64, seed=9)
        for v in range(1, 64):
            forest.link(v - 1, v)
        one = CostModel()
        batch_find_repr(forest, [0], cost=one)
        many = CostModel()
        batch_find_repr(forest, list(range(64)) * 2, cost=many)
        # every treap node's root path is walked once per batch, so 128
        # queries on one big tree pay O(arcs) total, not 128 x height
        assert many.work <= 8 * (3 * 64 + 128)

    def test_batch_connected_forest_matches_singleton(self):
        forest = EulerTourForest(12, seed=4)
        for u, v in [(0, 1), (2, 3), (3, 4)]:
            forest.link(u, v)
        pairs = [(0, 1), (1, 0), (0, 2), (2, 4), (7, 7), (11, 11), (7, 8)]
        assert batch_connected_forest(forest, pairs) == [
            forest.connected(u, v) for u, v in pairs
        ]

    def test_batch_find_repr_validates_vertices(self):
        forest = EulerTourForest(5, seed=1)
        with pytest.raises(ValueError):
            batch_find_repr(forest, [0, -1])
        with pytest.raises(ValueError):
            batch_find_repr(forest, [5])

    def test_batch_stretch_check_matches_per_edge(self):
        n = 30
        graph = _edge_set(n, 60, seed=10)
        spanner = set(sorted(graph)[: len(graph) // 2])
        sadj = _adj(spanner)
        stretch = 3.0
        got = set(batch_stretch_check(graph, sadj, stretch, n=n))
        expect = set()
        for u, v in graph:
            a, b = (u, v) if u <= v else (v, u)
            d = bfs_distances_bounded(sadj, a, int(stretch)).get(b) \
                if a in sadj else None
            if d is None:
                expect.add((a, b))
        assert got == expect

    def test_batch_stretch_check_clean_on_spanner(self):
        n, m, k = 40, 160, 2
        edges = gnm_random_graph(n, m, seed=3)
        sp = FullyDynamicSpanner(n, edges, k=k, seed=3, base_capacity=8)
        sadj = _adj(sp.spanner_edges())
        assert batch_stretch_check(edges, sadj, 2 * k - 1, n=n) == []


class TestCoalesceAndAnswer:
    def test_coalesce_normalizes_and_dedups(self):
        items = [
            ("distance", (3, 1)),
            ("distance", (1, 3)),
            ("connected", (1, 3)),
            ("size", None),
            ("size", None),
            ("distance", (3, 1)),
        ]
        keys, index = coalesce_queries(items)
        assert keys == [
            ("distance", (1, 3)), ("connected", (1, 3)), ("size", None)
        ]
        assert index == [0, 0, 1, 2, 2, 0]

    def test_coalesce_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            coalesce_queries([("frobnicate", (1, 2))])

    def test_answer_queries_matches_singleton(self):
        edges = _edge_set(40, 70, seed=11)
        adj = _adj(edges)
        rng = np.random.default_rng(11)
        items = []
        for _ in range(60):
            kind = ("distance", "connected", "contains", "size",
                    "edges")[int(rng.integers(0, 5))]
            payload = None if kind in ("size", "edges") else \
                tuple(map(int, rng.integers(0, 40, 2)))
            items.append((kind, payload))
        answers, stats = answer_queries(
            items, edge_set=edges, adjacency=adj, n=40)
        assert answers == singleton_answers(items, edges, adj)
        assert stats.queries == 60
        assert stats.unique <= 60

    def test_query_batch_dataclass(self):
        qb = QueryBatch([("size", None), ("size", None)])
        assert qb.size == 2
        keys, index = qb.coalesce()
        assert keys == [("size", None)] and index == [0, 0]

    def test_oracle_check_passes(self):
        rng = np.random.default_rng(13)
        edges = _edge_set(25, 40, seed=13)
        items = [("distance", (1, 2)), ("connected", (0, 24)),
                 ("contains", (2, 1)), ("size", None)]
        assert check_query_batch(25, edges, items, rng=rng) == []


class TestBatchInvariance:
    """Batch answers are a pure function of the (snapshot, query) set."""

    @staticmethod
    def _graph_and_items(n_seed, q_seed):
        rng = np.random.default_rng(n_seed)
        n = int(rng.integers(2, 24))
        m = min(int(rng.integers(0, 3 * n)), n * (n - 1) // 2)
        edges = _edge_set(n, m, seed=n_seed)
        qrng = np.random.default_rng(q_seed)
        items = []
        for _ in range(int(qrng.integers(1, 24))):
            kind = ("distance", "connected", "contains", "size",
                    "edges")[int(qrng.integers(0, 5))]
            payload = None if kind in ("size", "edges") else \
                (int(qrng.integers(0, n)), int(qrng.integers(0, n)))
            items.append((kind, payload))
        return n, edges, items

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10**6), st.integers(0, 10**6),
           st.randoms(use_true_random=False))
    def test_order_invariant(self, n_seed, q_seed, rnd):
        n, edges, items = self._graph_and_items(n_seed, q_seed)
        adj = _adj(edges)
        base, _ = answer_queries(items, edge_set=edges, adjacency=adj, n=n)
        perm = list(range(len(items)))
        rnd.shuffle(perm)
        shuffled, _ = answer_queries(
            [items[i] for i in perm], edge_set=edges, adjacency=adj, n=n)
        assert shuffled == [base[i] for i in perm]

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10**6), st.integers(0, 10**6),
           st.integers(1, 3))
    def test_duplication_invariant(self, n_seed, q_seed, copies):
        n, edges, items = self._graph_and_items(n_seed, q_seed)
        adj = _adj(edges)
        base, base_stats = answer_queries(
            items, edge_set=edges, adjacency=adj, n=n)
        rep, rep_stats = answer_queries(
            items * (copies + 1), edge_set=edges, adjacency=adj, n=n)
        assert rep == base * (copies + 1)
        # duplicates coalesce away: unique keys don't grow with copies
        assert rep_stats.unique == base_stats.unique

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10**6), st.integers(0, 10**6))
    def test_matches_singleton_path(self, n_seed, q_seed):
        n, edges, items = self._graph_and_items(n_seed, q_seed)
        answers, _ = answer_queries(
            items, edge_set=edges, adjacency=_adj(edges), n=n)
        assert answers == singleton_answers(items, edges)


class TestBenchQueries:
    def test_smoke_run_verified(self):
        from repro.queries.bench import (
            BenchQueriesConfig,
            run_bench_queries,
        )

        rep = run_bench_queries(BenchQueriesConfig(
            n=48, m=60, requests=300, window=100, seed=9, repeats=1))
        assert rep.verified, rep.violations
        assert rep.reads > 0 and rep.writes > 0
        assert rep.work > 0 and rep.depth > 0
        assert 0.0 < rep.dedup_ratio <= 1.0

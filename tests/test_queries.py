"""Tests for the distance and cut query oracles."""

import math
import random

import numpy as np
import pytest

from repro.graph import DynamicGraph, adjacency_from_edges, bfs_distances, gnm_random_graph
from repro.pram import CostModel
from repro.queries import DynamicCutOracle, DynamicDistanceOracle
from repro.sparsifier import FullyDynamicSpectralSparsifier
from repro.spanner import FullyDynamicSpanner
from repro.verify import cut_weight, laplacian, quadratic_form


def make_distance_oracle(n, edges, k=2, seed=1, cost=None):
    sp = FullyDynamicSpanner(n, edges, k=k, seed=seed, base_capacity=8)
    return DynamicDistanceOracle(
        n, sp, stretch=sp.stretch, cost=cost or CostModel()
    )


class TestDistanceOracle:
    def test_answers_within_stretch(self):
        n, m, k = 40, 160, 2
        edges = gnm_random_graph(n, m, seed=3)
        oracle = make_distance_oracle(n, edges, k=k, seed=3)
        adj = adjacency_from_edges(n, edges)
        for u in range(0, n, 7):
            true = bfs_distances(adj, u)
            for v in range(0, n, 5):
                d = oracle.distance(u, v)
                if v in true:
                    assert true[v] <= d <= (2 * k - 1) * true[v] or (
                        true[v] == 0 and d == 0
                    )
                else:
                    assert d == float("inf")

    def test_batch_matches_single(self):
        n, m = 30, 90
        edges = gnm_random_graph(n, m, seed=4)
        oracle = make_distance_oracle(n, edges, seed=4)
        pairs = [(0, 5), (0, 9), (3, 7), (10, 10)]
        batch = oracle.batch_distances(pairs)
        assert batch == [oracle.distance(u, v) for u, v in pairs]

    def test_stays_in_sync_through_updates(self):
        rng = random.Random(5)
        n = 20
        universe = [(u, v) for u in range(n) for v in range(u + 1, n)]
        g = DynamicGraph(n)
        oracle = make_distance_oracle(n, [], seed=5)
        for _ in range(15):
            absent = [e for e in universe if e not in g]
            ins = rng.sample(absent, min(len(absent), rng.randrange(0, 6)))
            present = sorted(g.edges())
            dels = rng.sample(present, min(len(present), rng.randrange(0, 4)))
            oracle.update(insertions=ins, deletions=dels)
            g.insert_batch(ins)
            g.delete_batch(dels)
            # connectivity is preserved exactly by any spanner
            adj = adjacency_from_edges(n, g.edges())
            comp0 = set(bfs_distances(adj, 0))
            for v in range(n):
                assert oracle.connected(0, v) == (v in comp0)

    def test_within_ball(self):
        # path graph: within(0, 2) must include the true 2-ball
        n = 10
        edges = [(i, i + 1) for i in range(n - 1)]
        oracle = make_distance_oracle(n, edges, seed=6)
        ball = oracle.within(0, 2)
        assert {0, 1, 2} <= ball

    def test_vertex_validation(self):
        oracle = make_distance_oracle(4, [(0, 1)], seed=7)
        with pytest.raises(ValueError):
            oracle.distance(0, 4)
        with pytest.raises(ValueError):
            oracle.within(-1, 2)

    def test_cost_charged(self):
        cost = CostModel()
        oracle = make_distance_oracle(20, gnm_random_graph(20, 50, seed=8),
                                      seed=8, cost=cost)
        cost.reset()
        oracle.distance(0, 5)
        assert cost.work > 0


class TestCutOracle:
    def make(self, n, edges, t=100, seed=1):
        sp = FullyDynamicSpectralSparsifier(
            n, edges, t=t, seed=seed, instances=4, base_capacity=4
        )
        return DynamicCutOracle(n, sp)

    def test_exact_with_huge_t(self):
        """t >= m keeps every edge at weight 1 -> exact answers."""
        n, m = 14, 40
        edges = gnm_random_graph(n, m, seed=9)
        oracle = self.make(n, edges, t=m)
        g_w = {e: 1.0 for e in edges}
        rng = np.random.default_rng(9)
        for _ in range(10):
            side = set(np.flatnonzero(rng.random(n) < 0.5).tolist())
            assert oracle.cut_value(side) == pytest.approx(
                cut_weight(g_w, side)
            )

    def test_quadratic_form_matches_laplacian(self):
        n, m = 12, 30
        edges = gnm_random_graph(n, m, seed=10)
        oracle = self.make(n, edges, t=m)
        L = laplacian(n, {e: 1.0 for e in edges})
        rng = np.random.default_rng(10)
        for _ in range(5):
            x = rng.normal(size=n)
            assert oracle.quadratic_form(x) == pytest.approx(
                quadratic_form(L, x)
            )

    def test_update_invalidates_cache(self):
        n, m = 12, 30
        edges = gnm_random_graph(n, m, seed=11)
        oracle = self.make(n, edges, t=m)
        before = oracle.total_weight()
        oracle.update(deletions=edges[:10])
        after = oracle.total_weight()
        assert after < before

    def test_validation(self):
        oracle = self.make(4, [(0, 1)], t=5)
        with pytest.raises(ValueError):
            oracle.cut_value({9})
        with pytest.raises(ValueError):
            oracle.quadratic_form([1.0, 2.0])

    def test_approximate_mode_bounded_error(self):
        n, m = 30, 300
        edges = gnm_random_graph(n, m, seed=12)
        oracle = self.make(n, edges, t=4, seed=12)
        g_w = {e: 1.0 for e in edges}
        rng = np.random.default_rng(12)
        for _ in range(10):
            side = set(np.flatnonzero(rng.random(n) < 0.5).tolist())
            exact = cut_weight(g_w, side)
            if exact == 0:
                continue
            approx = oracle.cut_value(side)
            assert 0.3 * exact <= approx <= 3.0 * exact

"""Tests for the networked serving layer (``repro.net``).

Covers the wire protocol (framing, split feeds, oversize rejection,
handshake), the in-memory replication log, the TCP server/client round
trip with error envelopes, degraded-mode stale/retry_after pass-through,
Prometheus text exposition, log-shipping replicas (bootstrap, catch-up,
lag gauge, read-only front end), per-tenant query quotas, and tenant
isolation under overload.
"""

import socket
import threading
import time

import pytest

from repro.net import (
    PROTOCOL_NAME,
    PROTOCOL_VERSION,
    FrameDecoder,
    NetClient,
    NetServerConfig,
    ProtocolError,
    ReplicationLog,
    ServerError,
    TenantConfig,
    TenantManager,
    ThreadedServer,
    encode_frame,
)
from repro.net.protocol import (
    decode_chunk,
    encode_chunk,
    error_envelope,
    hello_frame,
    ok_envelope,
    request_frame,
)
from repro.net.replica import LogShippingReplica, ReplicaConfig, run_replica
from repro.service.admission import AdmissionConfig
from repro.workloads import UpdateBatch


def _spec(n=24, edges=((0, 1), (1, 2), (2, 3)), seed=5):
    return {"kind": "spanner", "n": n, "k": 2,
            "edges": [list(e) for e in edges], "seed": seed}


def _manager(name="default", **kwargs) -> TenantManager:
    tm = TenantManager()
    tm.create(TenantConfig(name=name, spec=_spec(), **kwargs))
    return tm


# -- protocol -----------------------------------------------------------------


class TestProtocol:
    def test_frame_round_trip(self):
        msg = request_frame(7, "query", kind="size")
        out = FrameDecoder().feed(encode_frame(msg))
        assert out == [msg]

    def test_split_and_batched_feeds(self):
        """Arbitrary chunking: byte-at-a-time and two-frames-at-once."""
        frames = [encode_frame(ok_envelope(i, value=i)) for i in range(3)]
        dec = FrameDecoder()
        out = []
        blob = b"".join(frames)
        for i in range(0, len(blob), 3):
            out.extend(dec.feed(blob[i:i + 3]))
        assert [m["id"] for m in out] == [0, 1, 2]

    def test_oversize_declared_length_rejected_before_buffering(self):
        import struct

        dec = FrameDecoder(max_frame=64)
        with pytest.raises(ProtocolError, match="exceeds cap"):
            dec.feed(struct.pack("<I", 1 << 20))

    def test_oversize_encode_rejected(self):
        with pytest.raises(ProtocolError, match="cap"):
            encode_frame({"blob": "x" * 100}, max_frame=64)

    def test_non_object_payload_rejected(self):
        import struct

        payload = b"[1,2,3]"
        with pytest.raises(ProtocolError, match="object"):
            FrameDecoder().feed(struct.pack("<I", len(payload)) + payload)

    def test_undecodable_payload_rejected(self):
        import struct

        payload = b"\xff\xfe{"
        with pytest.raises(ProtocolError, match="undecodable"):
            FrameDecoder().feed(struct.pack("<I", len(payload)) + payload)

    def test_error_envelope_carries_hints(self):
        env = error_envelope(3, "shed", "busy", retry_after=0.25, stale=True)
        err = ServerError.from_envelope(env)
        assert err.code == "shed"
        assert err.retry_after == 0.25
        assert err.stale is True

    def test_chunk_armor_round_trip(self):
        data = bytes(range(256))
        assert decode_chunk(encode_chunk(data)) == data

    def test_hello_frame_names_protocol(self):
        h = hello_frame(tenant="t1")
        assert h["protocol"] == PROTOCOL_NAME
        assert h["version"] == PROTOCOL_VERSION
        assert h["tenant"] == "t1"


# -- replication log ----------------------------------------------------------


class TestReplicationLog:
    def test_append_read_framing(self):
        from repro.resilience.wal import WAL_MAGIC, WalStreamDecoder

        log = ReplicationLog()
        log.append(1, UpdateBatch(insertions=[(1, 2)]))
        log.append(2, UpdateBatch(deletions=[(1, 2)]))
        assert log.read(0, 8) == WAL_MAGIC
        dec = WalStreamDecoder()
        recs = dec.feed(log.read(0, log.size))
        assert [r.seq for r in recs] == [1, 2]
        assert dec.offset == log.size

    def test_seq_regression_rejected(self):
        log = ReplicationLog()
        log.append(1, UpdateBatch(insertions=[(1, 2)]))
        with pytest.raises(ValueError, match="regression"):
            log.append(1, UpdateBatch(insertions=[(3, 4)]))

    def test_chunked_reads_tear_records(self):
        """A torn fetch boundary is reassembled by the stream decoder."""
        from repro.resilience.wal import WalStreamDecoder

        log = ReplicationLog()
        for i in range(4):
            log.append(i + 1, UpdateBatch(insertions=[(i, i + 10)]))
        dec = WalStreamDecoder()
        recs, offset = [], 0
        while offset + dec.pending_bytes < log.size:
            chunk = log.read(offset + dec.pending_bytes, 7)
            recs.extend(dec.feed(chunk))
            offset = dec.offset
        assert [r.seq for r in recs] == [1, 2, 3, 4]


# -- server/client round trip -------------------------------------------------


class TestServerRoundTrip:
    def test_submit_query_metrics_admin(self):
        with _manager() as tm, ThreadedServer(tm) as srv:
            with NetClient(srv.host, srv.port) as c:
                assert c.hello["tenant"] == "default"
                assert c.submit("insert", 5, 6) == "accepted"
                seq = c.flush()
                assert seq == 1
                info = c.query_info("contains", (5, 6))
                assert info["value"] is True
                assert info["stale"] is False
                assert info["as_of_seq"] == 1
                assert c.query("size") == len(c.edges())
                stats = c.admin("stats")
                assert stats["committed_seq"] == 1
                assert stats["replication_last_seq"] == 1
                text = c.metrics()
                assert "# TYPE repro_flushes counter" in text
                assert 'tenant="default"' in text

    def test_distance_infinity_survives_json(self):
        with _manager() as tm, ThreadedServer(tm) as srv:
            with NetClient(srv.host, srv.port) as c:
                # vertices 10 and 20 are isolated: unreachable
                assert c.query("distance", (10, 20)) == "inf"
                assert c.query("connected", (10, 20)) is False

    def test_unknown_tenant_and_version_mismatch(self):
        with _manager() as tm, ThreadedServer(tm) as srv:
            with pytest.raises(ServerError, match="unknown_tenant"):
                NetClient(srv.host, srv.port, tenant="nope")
            import socket

            from repro.net.protocol import FrameDecoder as FD
            with socket.create_connection((srv.host, srv.port)) as s:
                bad = dict(hello_frame(1), version=999)
                s.sendall(encode_frame(bad))
                reply = FD().feed(s.recv(65536))[0]
            assert reply["ok"] is False
            assert reply["error"]["code"] == "version_mismatch"

    def test_first_frame_must_be_hello(self):
        import socket

        from repro.net.protocol import FrameDecoder as FD
        with _manager() as tm, ThreadedServer(tm) as srv:
            with socket.create_connection((srv.host, srv.port)) as s:
                s.sendall(encode_frame(request_frame(1, "query",
                                                     kind="size")))
                reply = FD().feed(s.recv(65536))[0]
            assert reply["error"]["code"] == "handshake_required"

    def test_unknown_verb_and_bad_request_envelopes(self):
        with _manager() as tm, ThreadedServer(tm) as srv:
            with NetClient(srv.host, srv.port) as c:
                with pytest.raises(ServerError, match="unknown_verb"):
                    c.call("frobnicate")
                with pytest.raises(ServerError, match="bad_request"):
                    c.call("query", kind="no_such_kind")
                # the connection survives error envelopes
                assert c.query("size") == 3

    def test_shed_surfaces_retry_after_through_the_wire(self):
        """Satellite: backpressure hints survive the wire unchanged."""
        with TenantManager() as tm:
            tm.create(TenantConfig(
                name="default", spec=_spec(),
                admission=AdmissionConfig(max_pending=0,
                                          min_retry_after=0.125),
                autostart=False,
            ))
            with ThreadedServer(tm) as srv, \
                    NetClient(srv.host, srv.port) as c:
                with pytest.raises(ServerError) as exc:
                    c.submit("insert", 8, 9)
                assert exc.value.code == "shed"
                assert exc.value.retry_after is not None
                assert exc.value.retry_after >= 0.125

    def test_degraded_stale_and_retry_after_pass_through(self):
        """Satellite: degraded-mode staleness markers and retry hints
        surface identically on the wire and on the engine directly."""
        with _manager(autostart=False) as tm:
            svc = tm.get("default").service
            svc.submit_update("insert", 7, 8)
            svc.flush()
            svc.set_degraded(True)
            direct = svc.query_info("size")
            assert direct.stale is True
            with ThreadedServer(tm) as srv, \
                    NetClient(srv.host, srv.port) as c:
                wire = c.query_info("size")
                assert wire["stale"] is True
                assert wire["value"] == direct.value
                assert wire["as_of_seq"] == direct.as_of_seq
                with pytest.raises(ServerError) as exc:
                    c.submit("insert", 9, 10)
                assert exc.value.code == "shed_degraded"
                engine_resp = svc.submit_update("insert", 9, 10)
                assert exc.value.retry_after == engine_resp.retry_after
            svc.set_degraded(False)
            assert svc.query_info("size").stale is False


# -- query quotas and tenant isolation ----------------------------------------


class TestQuotasAndTenancy:
    def test_query_quota_sheds_with_retry_after(self):
        with TenantManager() as tm:
            tm.create(TenantConfig(
                name="default", spec=_spec(),
                admission=AdmissionConfig(max_inflight_queries=0),
                autostart=False,
            ))
            with ThreadedServer(tm) as srv, \
                    NetClient(srv.host, srv.port) as c:
                with pytest.raises(ServerError) as exc:
                    c.query("size")
                assert exc.value.code == "shed_query"
                assert exc.value.retry_after > 0
            ctrl = tm.get("default").service.admission
            assert ctrl.query_shed_count >= 1

    def test_tenants_are_isolated_namespaces(self):
        with TenantManager() as tm:
            tm.create(TenantConfig(name="a", spec=_spec(), autostart=False))
            tm.create(TenantConfig(name="b", spec=_spec(), autostart=False))
            with ThreadedServer(tm) as srv:
                with NetClient(srv.host, srv.port, tenant="a") as ca:
                    ca.submit("insert", 9, 10)
                    ca.flush()
                with NetClient(srv.host, srv.port, tenant="a") as ca, \
                        NetClient(srv.host, srv.port, tenant="b") as cb:
                    assert (9, 10) in ca.edges()
                    assert (9, 10) not in cb.edges()
                    assert cb.admin("stats")["committed_seq"] == 0

    def test_overloaded_tenant_sheds_while_other_serves(self):
        """Acceptance: tenant A at zero write quota sheds with
        retry_after; tenant B's reads stay served and fast."""
        with TenantManager() as tm:
            tm.create(TenantConfig(
                name="a", spec=_spec(),
                admission=AdmissionConfig(max_pending=0), autostart=False))
            tm.create(TenantConfig(name="b", spec=_spec(), autostart=False))
            with ThreadedServer(tm) as srv:
                with NetClient(srv.host, srv.port, tenant="b") as cb:
                    base = _timed_reads(cb, 20)
                with NetClient(srv.host, srv.port, tenant="a") as ca, \
                        NetClient(srv.host, srv.port, tenant="b") as cb:
                    sheds = 0
                    for i in range(40):
                        try:
                            ca.submit("insert", 2 * i, 2 * i + 1)
                        except ServerError as exc:
                            assert exc.retry_after is not None
                            sheds += 1
                    assert sheds == 40   # A is fully shed
                    loaded = _timed_reads(cb, 20)
            # B's p99 stays within 2x its unloaded baseline (with a floor
            # to keep the bound meaningful on a noisy 1-core box)
            assert loaded <= max(2 * base, 0.05)

    def test_duplicate_tenant_rejected(self):
        with _manager() as tm:
            with pytest.raises(ValueError, match="duplicate"):
                tm.create(TenantConfig(name="default", spec=_spec()))


def _timed_reads(client: NetClient, count: int) -> float:
    lat = []
    for _ in range(count):
        t0 = time.perf_counter()
        client.query("size")
        lat.append(time.perf_counter() - t0)
    lat.sort()
    return lat[min(len(lat) - 1, int(len(lat) * 0.99))]


# -- prometheus exposition ----------------------------------------------------


class TestPrometheus:
    def test_render_types_and_histogram_summary(self):
        from repro.service.metrics import MetricsRegistry

        m = MetricsRegistry()
        m.counter("requests_update").inc(3)
        m.gauge("queue_depth").set(7)
        h = m.histogram("flush_latency_s")
        for v in (0.5, 1.0, 1.5):
            h.observe(v)
        text = m.render_prometheus(labels={"tenant": "t0"})
        assert "# TYPE repro_requests_update counter" in text
        assert 'repro_requests_update{tenant="t0"} 3' in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "# TYPE repro_flush_latency_s summary" in text
        assert 'repro_flush_latency_s_count{tenant="t0"} 3' in text
        assert 'repro_flush_latency_s_sum{tenant="t0"} 3' in text
        assert 'quantile="0.5"' in text
        assert text.endswith("\n")

    def test_render_is_deterministic_and_sorted(self):
        from repro.service.metrics import MetricsRegistry

        m = MetricsRegistry()
        m.counter("b").inc()
        m.counter("a").inc()
        text = m.render_prometheus()
        assert text == m.render_prometheus()
        assert text.index("repro_a") < text.index("repro_b")

    def test_manager_renders_all_tenants_with_labels(self):
        with TenantManager() as tm:
            tm.create(TenantConfig(name="a", spec=_spec(), autostart=False))
            tm.create(TenantConfig(name="b", spec=_spec(), autostart=False))
            text = tm.render_prometheus()
            assert 'tenant="a"' in text
            assert 'tenant="b"' in text


# -- replicas -----------------------------------------------------------------


class TestReplica:
    def test_end_to_end_catch_up_and_equivalence(self):
        from repro.oracle import verify_replica

        with _manager(autostart=False) as tm, ThreadedServer(tm) as srv:
            svc = tm.get("default").service
            for i in range(30):
                svc.submit_update("insert", 4 + i, 5 + i)
            svc.flush()
            replica, rsrv = run_replica(srv.host, srv.port,
                                        listen=("127.0.0.1", 0))
            try:
                replica.catch_up()
                assert replica.lag == 0
                result = verify_replica(svc, replica.service)
                assert result.ok, str(result)
                with NetClient(rsrv.host, rsrv.port) as rc:
                    assert rc.hello["read_only"] is True
                    assert rc.edges() == svc.snapshot_edges()
                    with pytest.raises(ServerError, match="read_only"):
                        rc.submit("insert", 1, 3)
            finally:
                rsrv.stop()
                replica.close()

    def test_lag_gauge_and_stale_tag_until_caught_up(self):
        with _manager(autostart=False) as tm, ThreadedServer(tm) as srv:
            svc = tm.get("default").service
            svc.submit_update("insert", 7, 9)
            svc.flush()
            replica, _ = run_replica(srv.host, srv.port)
            try:
                replica.catch_up()
                svc.submit_update("insert", 8, 10)
                svc.flush()
                replica.note_primary_seq(svc.committed_seq)
                assert replica.lag == 1
                gauge = replica.service.metrics.gauge("replica_lag_commits")
                assert gauge.value == 1
                assert replica.service.query_info("size").stale is True
                replica.catch_up()
                assert replica.lag == 0
                assert gauge.value == 0
                assert replica.service.query_info("size").stale is False
            finally:
                replica.close()

    def test_tiny_chunks_tear_and_reassemble(self):
        with _manager(autostart=False) as tm, ThreadedServer(tm) as srv:
            svc = tm.get("default").service
            for i in range(10):
                svc.submit_update("insert", 30 + i, 31 + i)
                svc.flush()
            replica, _ = run_replica(
                srv.host, srv.port,
                config=ReplicaConfig(chunk_bytes=9))
            try:
                replica.catch_up()
                assert replica.service.committed_seq == svc.committed_seq
                assert (replica.service.snapshot_edges()
                        == svc.snapshot_edges())
            finally:
                replica.close()

    def test_capped_catch_up_loses_nothing(self):
        """A record decoded but not applied under max_records must be
        applied by the next call, never dropped (no seq gap)."""
        with _manager(autostart=False) as tm, ThreadedServer(tm) as srv:
            svc = tm.get("default").service
            for i in range(6):
                svc.submit_update("insert", 50 + i, 51 + i)
                svc.flush()
            client = NetClient(srv.host, srv.port)
            replica = LogShippingReplica(client)
            try:
                assert replica.catch_up(max_records=2) == 2
                assert replica.service.committed_seq == 2
                assert replica.lag > 0
                assert replica.catch_up() == 4
                assert replica.service.committed_seq == svc.committed_seq
            finally:
                replica.close()

    def test_replica_of_recovered_primary(self, tmp_path):
        """A primary resumed from checkpoint+WAL ships a log whose base
        is the checkpoint; a replica bootstrapping from sync_info must
        still converge to the exact live state."""
        from repro.oracle import verify_replica

        wal_dir = str(tmp_path / "t")
        with TenantManager() as tm:
            tm.create(TenantConfig(
                name="default", spec=_spec(), wal_dir=wal_dir,
                checkpoint_interval=2, autostart=False))
            svc = tm.get("default").service
            for i in range(8):
                svc.submit_update("insert", 60 + i, 61 + i)
                svc.flush()
        # cold restart: recovery leaves a checkpoint base + WAL tail
        with TenantManager() as tm:
            tenant = tm.create(TenantConfig(
                name="default", spec=_spec(), wal_dir=wal_dir,
                checkpoint_interval=10**9, autostart=False))
            svc = tenant.service
            assert tenant.replication.base_seq > 0
            svc.submit_update("insert", 90, 91)
            svc.flush()
            with ThreadedServer(tm) as srv:
                replica, _ = run_replica(srv.host, srv.port)
                try:
                    replica.catch_up()
                    result = verify_replica(svc, replica.service)
                    assert result.ok, str(result)
                finally:
                    replica.close()


# -- graceful drain -----------------------------------------------------------


class TestDrain:
    def test_drain_flushes_pending_commits(self):
        with _manager(autostart=False) as tm:
            srv = ThreadedServer(
                tm, NetServerConfig(drain_timeout=2.0)).start()
            with NetClient(srv.host, srv.port) as c:
                c.submit("insert", 11, 12)
            svc = tm.get("default").service
            assert svc.queue.depth == 1   # pending, not yet flushed
            srv.stop()                    # drain flushes every tenant
            assert svc.queue.depth == 0
            assert (11, 12) in svc.snapshot_edges()

    def test_concurrent_clients_from_threads(self):
        with _manager(autostart=False) as tm, ThreadedServer(tm) as srv:
            errors: list[Exception] = []

            def worker(base: int) -> None:
                try:
                    with NetClient(srv.host, srv.port) as c:
                        for i in range(10):
                            c.submit("insert", base + i, base + i + 1)
                            c.query("size")
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(100 * k,))
                       for k in range(1, 5)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            with NetClient(srv.host, srv.port) as c:
                c.flush()
                assert c.query("size") > 3


# -- batched reads over the wire ----------------------------------------------


class TestQueryBatchVerb:
    def test_values_match_singleton_queries(self):
        with _manager() as tm, ThreadedServer(tm) as srv:
            with NetClient(srv.host, srv.port) as c:
                c.submit("insert", 5, 6)
                c.flush()
                items = [("size", None), ("contains", (5, 6)),
                         ("distance", (0, 2)), ("distance", (10, 20)),
                         ("connected", (0, 3)), ("distance", (0, 2))]
                out = c.query_batch(items)
                assert out["values"] == [
                    c.query(kind, payload) for kind, payload in items]
                assert out["stale"] is False
                assert out["as_of_seq"] == 1
                # (0, 2) asked twice, (2, 0) would fold in too
                assert out["unique"] == 5
                assert out["deduped"] == 1

    def test_empty_batch(self):
        with _manager() as tm, ThreadedServer(tm) as srv:
            with NetClient(srv.host, srv.port) as c:
                out = c.query_batch([])
                assert out["values"] == []
                assert out["deduped"] == 0

    def test_unknown_kind_is_bad_request(self):
        with _manager() as tm, ThreadedServer(tm) as srv:
            with NetClient(srv.host, srv.port) as c:
                with pytest.raises(ServerError, match="bad_request"):
                    c.query_batch([("frobnicate", (0, 1))])

    def test_served_by_read_only_replica(self):
        with _manager(autostart=False) as tm, ThreadedServer(tm) as srv:
            svc = tm.get("default").service
            for i in range(10):
                svc.submit_update("insert", 4 + i, 5 + i)
            svc.flush()
            replica, rsrv = run_replica(srv.host, srv.port,
                                        listen=("127.0.0.1", 0))
            try:
                replica.catch_up()
                with NetClient(rsrv.host, rsrv.port) as rc:
                    assert rc.hello["read_only"] is True
                    out = rc.query_batch(
                        [("size", None), ("connected", (4, 6))])
                    assert out["values"] == [rc.query("size"),
                                             rc.query("connected", (4, 6))]
                    assert out["stale"] is False
            finally:
                rsrv.stop()
                replica.close()

    def test_shed_batch_carries_retry_after(self):
        # a whole batch is one admission charge: at zero inflight quota
        # it sheds exactly like a singleton query, with a retry hint
        with _manager(admission=AdmissionConfig(
                max_inflight_queries=0), autostart=False) as tm, \
                ThreadedServer(tm) as srv:
            with NetClient(srv.host, srv.port) as c:
                with pytest.raises(ServerError) as ei:
                    c.query_batch([("size", None), ("edges", None)])
                assert ei.value.code == "shed_query"
                assert ei.value.retry_after > 0
            ctrl = tm.get("default").service.admission
            assert ctrl.query_shed_count >= 1


# -- failure-domain hardening: idempotent writes + read deadlines -------------


class TestIdempotentSubmit:
    def test_duplicate_key_returns_recorded_outcome(self):
        with _manager() as tm, ThreadedServer(tm) as srv:
            with NetClient(srv.host, srv.port) as c:
                first = c.submit_info("insert", 4, 9, idem="k1")
                assert first["status"] == "accepted"
                assert "deduped" not in first
                # a retry after a lost ACK replays the same key; with no
                # dedup it would see rejected_duplicate post-flush
                c.flush()
                again = c.submit_info("insert", 4, 9, idem="k1")
                assert again["status"] == "accepted"
                assert again["deduped"] is True
                assert c.query("size") >= 1
            tenant = tm.get("default")
            assert tenant.idempotency.dedup_hits == 1
            assert tenant.service.metrics.counter(
                "idempotent_dedup_hits").value == 1

    def test_shed_aborts_the_key_for_reuse(self):
        """A shed submit never entered the queue, so its key must not be
        burned: the client may retry it and have it actually apply."""
        with _manager(autostart=False, admission=AdmissionConfig(
                max_pending=1, min_retry_after=0.005)) as tm, \
                ThreadedServer(tm) as srv:
            with NetClient(srv.host, srv.port) as c:
                assert c.submit("insert", 1, 5, idem="a") == "accepted"
                with pytest.raises(ServerError) as ei:
                    c.submit("insert", 2, 6, idem="b")
                assert ei.value.code in ("shed", "shed_degraded")
                assert ei.value.retry_after > 0
                c.flush()
                info = c.submit_info("insert", 2, 6, idem="b")
                assert info["status"] == "accepted"
                assert "deduped" not in info     # aborted, not recorded
                c.flush()
                assert (2, 6) in c.edges()

    def test_keys_are_per_tenant(self):
        with _manager() as tm, ThreadedServer(tm) as srv:
            tm.create(TenantConfig(name="other", spec=_spec()))
            with NetClient(srv.host, srv.port) as c1, \
                    NetClient(srv.host, srv.port, tenant="other") as c2:
                assert "deduped" not in c1.submit_info(
                    "insert", 3, 8, idem="same")
                assert "deduped" not in c2.submit_info(
                    "insert", 3, 8, idem="same")


class TestReadDeadlines:
    def test_mid_frame_stall_is_evicted(self):
        """Satellite: a client that goes silent halfway through a frame
        holds per-connection state hostage — the read deadline evicts it
        and the server keeps serving everyone else."""
        with _manager() as tm:
            srv = ThreadedServer(
                tm, NetServerConfig(read_deadline=0.15)).start()
            try:
                sock = socket.create_connection((srv.host, srv.port))
                sock.sendall(b"\x40\x00\x00\x00{\"v")   # torn frame
                # the server must hang up on us, not wait forever
                sock.settimeout(2.0)
                assert sock.recv(1024) == b""
                sock.close()
                assert srv.server.evictions["mid_frame"] == 1
                # unaffected clients still get service
                with NetClient(srv.host, srv.port) as c:
                    assert c.query("size") >= 0
                with NetClient(srv.host, srv.port) as c:
                    text = c.metrics(all_tenants=True)
                assert 'repro_net_evictions{reason="mid_frame"} 1' in text
            finally:
                srv.stop()

    def test_mid_frame_disconnect_drains_cleanly(self):
        """Satellite: a client that dies mid-frame (no stall — straight
        disconnect) is drained without an eviction and without damaging
        any applied state."""
        with _manager() as tm:
            srv = ThreadedServer(
                tm, NetServerConfig(read_deadline=5.0)).start()
            try:
                with NetClient(srv.host, srv.port) as c:
                    c.submit("insert", 9, 14)
                    c.flush()
                sock = socket.create_connection((srv.host, srv.port))
                sock.sendall(b"\x40\x00\x00\x00{\"to")  # torn frame...
                sock.close()                            # ...then vanish
                time.sleep(0.1)
                assert srv.server.evictions["mid_frame"] == 0
                with NetClient(srv.host, srv.port) as c:
                    assert (9, 14) in c.edges()         # state intact
            finally:
                srv.stop()

    def test_idle_connection_not_evicted_by_read_deadline(self):
        """The read deadline only applies *mid-frame*; an idle keepalive
        connection (no pending bytes) stays up."""
        with _manager() as tm:
            srv = ThreadedServer(
                tm, NetServerConfig(read_deadline=0.1)).start()
            try:
                with NetClient(srv.host, srv.port) as c:
                    c.query("size")
                    time.sleep(0.3)          # idle > read_deadline
                    assert c.query("size") >= 0   # still served
                assert srv.server.evictions["mid_frame"] == 0
            finally:
                srv.stop()

    def test_idle_timeout_evicts_when_configured(self):
        with _manager() as tm:
            srv = ThreadedServer(
                tm, NetServerConfig(idle_timeout=0.1)).start()
            try:
                sock = socket.create_connection((srv.host, srv.port))
                sock.settimeout(2.0)
                assert sock.recv(1024) == b""
                sock.close()
                assert srv.server.evictions["idle"] == 1
            finally:
                srv.stop()

"""Command-line driver: run any of the paper's structures over a synthetic
workload and print the measured table.

Examples
--------
::

    python -m repro.cli spanner   --n 500 --m 3000 --k 3 --workload churn
    python -m repro.cli sparse    --n 400 --m 2400 --workload sliding
    python -m repro.cli ultra     --n 300 --m 3000 --x 3
    python -m repro.cli bundle    --n 200 --m 1500 --t 3
    python -m repro.cli sparsifier --n 80 --m 1200 --t 4
    python -m repro.cli estree    --n 300 --m 2000 --limit 6
    python -m repro.cli serve     --requests 10000 --shards 2
    python -m repro.cli serve     --listen 127.0.0.1:7421
    python -m repro.cli replica   --primary 127.0.0.1:7421 --listen :7422
    python -m repro.cli bench-net --replicas 3 --smoke
    python -m repro.cli bench-parallel --procs 1,2,4 --smoke
    python -m repro.cli chaos     --smoke

Each structure command builds the structure, drives the requested update
stream through it, and prints size/recourse/work/depth statistics plus
Brent simulated runtimes for a few processor counts.  ``serve`` instead
runs the asynchronous serving engine (``repro.service``): a stream of
single-edge client requests is coalesced into batches, sharded over
worker processes, answered with snapshot-consistent queries, and finally
verified against a synchronous replay of the same batches.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import format_table, run_workload
from repro.workloads import (
    Workload,
    churn_stream,
    deletion_stream,
    insertion_stream,
    mixed_stream,
    sliding_window_stream,
)

__all__ = ["main", "build_parser"]


def _package_version() -> str:
    """Installed distribution version, falling back to the source tree's."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        import repro

        return repro.__version__


def _parse_hostport(text: str, default_host: str = "127.0.0.1",
                    ) -> tuple[str, int]:
    """``HOST:PORT`` (``:PORT`` and bare ``PORT`` use the default host)."""
    host, sep, port = text.rpartition(":")
    if not sep:
        host, port = default_host, text
    return (host or default_host), int(port)


def _make_workload(args: argparse.Namespace) -> Workload:
    n, m, b = args.n, args.m, args.batch_size
    kind = args.workload
    if getattr(args, "input", None):
        # real graph from an edge-list file: stream deletions over it
        from repro.graph.io import read_edge_list
        from repro.workloads import UpdateBatch

        n, edges, _weights = read_edge_list(args.input)
        args.n = n
        if kind != "delete":
            print("--input supports the delete workload; forcing it",
                  file=sys.stderr)
        batches = [
            UpdateBatch(deletions=edges[i : i + b])
            for i in range(0, len(edges), b)
        ]
        return Workload(n, edges, batches)
    if kind == "delete":
        return deletion_stream(n, m, batch_size=b, seed=args.seed)
    if kind == "insert":
        return insertion_stream(n, m, batch_size=b, seed=args.seed)
    if kind == "mixed":
        return mixed_stream(
            n, m, batch_size=b, num_batches=args.batches, seed=args.seed
        )
    if kind == "churn":
        return churn_stream(
            n, m, churn_fraction=args.churn, num_batches=args.batches,
            seed=args.seed,
        )
    if kind == "sliding":
        return sliding_window_stream(
            n, window=m, num_batches=args.batches, batch_size=b,
            seed=args.seed,
        )
    raise ValueError(f"unknown workload {kind!r}")


def _finish(label: str, workload: Workload, build,
            profile: bool = False) -> int:
    if profile:
        from repro.harness import profile_workload
        from repro.pram import NULL_COST_MODEL

        report = profile_workload(
            workload, lambda edges: build(edges, NULL_COST_MODEL)
        )
        print(report)
    stats = run_workload(label, workload, build)
    print(format_table([stats.row()], title=f"repro run: {label}"))
    rows = [
        {"p": p, "simulated_time(W/p+D)": round(stats.simulated_time(p), 1)}
        for p in (1, 8, 64, 512)
    ]
    print()
    print(
        format_table(
            rows,
            f"Brent runtimes (update work={stats.update_cost.work}, "
            f"depth={stats.update_cost.depth})",
        )
    )
    return 0


def _cmd_spanner(args: argparse.Namespace) -> int:
    from repro.spanner import FullyDynamicSpanner

    wl = _make_workload(args)

    def build(edges, cost):
        return FullyDynamicSpanner(
            args.n, edges, k=args.k, seed=args.seed, cost=cost,
            base_capacity=args.base_capacity,
        )

    return _finish(f"spanner k={args.k}", wl, build, profile=args.profile)


def _cmd_sparse(args: argparse.Namespace) -> int:
    from repro.contraction import SparseSpannerDynamic

    wl = _make_workload(args)

    def build(edges, cost):
        return SparseSpannerDynamic(
            args.n, edges, seed=args.seed, cost=cost,
            base_capacity=args.base_capacity,
        )

    return _finish("sparse spanner", wl, build, profile=args.profile)


def _cmd_ultra(args: argparse.Namespace) -> int:
    from repro.ultrasparse import UltraSparseSpannerDynamic

    wl = _make_workload(args)

    def build(edges, cost):
        return UltraSparseSpannerDynamic(
            args.n, edges, x=args.x, seed=args.seed, cost=cost,
        )

    return _finish(f"ultra-sparse x={args.x}", wl, build, profile=args.profile)


def _cmd_bundle(args: argparse.Namespace) -> int:
    from repro.bundle import DecrementalTBundle

    if args.workload != "delete":
        print("bundle is decremental; forcing --workload delete",
              file=sys.stderr)
        args.workload = "delete"
    wl = _make_workload(args)

    class _Adapter:
        def __init__(self, edges, cost):
            self.inner = DecrementalTBundle(
                args.n, edges, t=args.t, seed=args.seed,
                instances=args.instances, cost=cost,
            )

        def update(self, insertions=(), deletions=()):
            assert not list(insertions)
            return self.inner.batch_delete(deletions)

        def output_edges(self):
            return self.inner.bundle_edges()

    return _finish(
        f"t-bundle t={args.t}", wl, lambda e, c: _Adapter(e, c),
        profile=args.profile,
    )


def _cmd_sparsifier(args: argparse.Namespace) -> int:
    from repro.sparsifier import FullyDynamicSpectralSparsifier

    wl = _make_workload(args)

    def build(edges, cost):
        return FullyDynamicSpectralSparsifier(
            args.n, edges, t=args.t, seed=args.seed,
            instances=args.instances, cost=cost,
        )

    return _finish(f"sparsifier t={args.t}", wl, build, profile=args.profile)


def _cmd_estree(args: argparse.Namespace) -> int:
    from repro.bfs import BatchDynamicESTree

    if args.workload != "delete":
        print("estree is decremental; forcing --workload delete",
              file=sys.stderr)
        args.workload = "delete"
    wl = _make_workload(args)

    class _Adapter:
        def __init__(self, edges, cost):
            directed = [(u, v) for u, v in edges] + [
                (v, u) for u, v in edges
            ]
            self.tree = BatchDynamicESTree(
                args.n, directed, source=0, limit=args.limit, cost=cost
            )

        def update(self, insertions=(), deletions=()):
            batch = []
            for u, v in deletions:
                batch.append((u, v))
                batch.append((v, u))
            changes = self.tree.batch_delete(batch)
            return {(c.vertex, c.vertex) for c in changes}, set()

        def output_edges(self):
            return set(self.tree.tree_edges())

    return _finish(f"ES tree L={args.limit}", wl,
                   lambda e, c: _Adapter(e, c), profile=args.profile)


def _cmd_serve_net(args: argparse.Namespace) -> int:
    """``serve --listen``: the networked multi-tenant front end."""
    import asyncio
    import json

    from repro.graph.generators import gnm_random_graph
    from repro.net import NetServerConfig, TenantConfig, TenantManager, serve
    from repro.service.admission import AdmissionConfig

    host, port = _parse_hostport(args.listen)
    edges = gnm_random_graph(args.n, args.m, seed=args.seed)
    spec = {"kind": args.backend, "n": args.n, "k": args.k,
            "edges": edges, "seed": args.seed}
    tenants = TenantManager()
    for name in (args.tenants or "default").split(","):
        tenants.create(TenantConfig(
            name=name.strip(),
            spec=dict(spec),
            shards=args.shards,
            admission=AdmissionConfig(
                max_pending=args.queue_capacity,
                max_inflight_queries=args.max_inflight_queries,
            ),
            wal_dir=(f"{args.wal_dir}/{name.strip()}"
                     if args.wal_dir else None),
            checkpoint_interval=args.checkpoint_interval,
        ))
    cfg = NetServerConfig(
        host=host, port=port,
        query_slots=args.query_slots,
        service_time=args.service_time_us / 1e6,
    )

    def announce(host: str, port: int) -> None:
        # scripted callers pass port 0 and parse this line
        print(f"NET-LISTEN {host} {port}", flush=True)

    try:
        server = asyncio.run(serve(tenants, cfg, announce=announce))
    finally:
        tenants.close()
    summary = {
        "host": server.host,
        "port": server.port,
        "tenants": (args.tenants or "default").split(","),
        "connections_served": server.connections_served,
        "requests_served": server.requests_served,
    }
    if args.json:
        print(json.dumps(summary, sort_keys=True))
    else:
        print(f"drained: {summary['requests_served']} request(s) over "
              f"{summary['connections_served']} connection(s)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.service import ServeConfig, run_serve

    if args.listen is not None:
        return _cmd_serve_net(args)

    cfg = ServeConfig(
        n=args.n,
        m=args.m,
        requests=args.requests,
        seed=args.seed,
        query_prob=args.query_prob,
        backend=args.backend,
        k=args.k,
        shards=args.shards,
        processes=args.processes,
        max_batch=args.max_batch,
        max_delay=args.deadline_ms / 1000.0,
        target_batch_work=args.target_batch_work,
        queue_capacity=args.queue_capacity,
        wal_dir=args.wal_dir,
        checkpoint_interval=args.checkpoint_interval,
        parallel=args.parallel,
        substrate=args.substrate,
    )

    # SIGTERM behaves like Ctrl-C: the driver drains admitted updates,
    # flushes a final checkpoint, and run_serve returns normally with
    # report.interrupted set — a supervisor's `kill` is a clean shutdown
    def _sigterm(signum, frame):
        raise KeyboardInterrupt

    previous = None
    try:
        previous = signal.signal(signal.SIGTERM, _sigterm)
    except ValueError:  # pragma: no cover - non-main thread (tests)
        pass
    try:
        report = run_serve(cfg, verify=not args.no_verify)
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
    rows = [{
        "backend": cfg.backend,
        "shards": cfg.shards,
        "procs": cfg.processes,
        "served": report.served,
        "applied": report.applied_ops,
        "coalesced": report.coalesced,
        "shed": report.shed,
        "rejected": report.rejected,
        "queries": report.queries,
        "flushes": report.flushes,
        "wall_s": round(report.wall_seconds, 3),
        "req/s": round(report.throughput_rps),
    }]
    if args.json:
        import json

        payload = dict(rows[0])
        payload.update(
            interrupted=report.interrupted,
            resumed_from_seq=report.resumed_from_seq,
            verified=None if args.no_verify else report.verified,
        )
        print(json.dumps(payload, sort_keys=True))
        return 0 if (args.no_verify or report.verified) else 1
    print(format_table(rows, "repro serve: batch-dynamic serving engine"))
    print(f"\nper-shard output sizes: {report.shard_sizes}")
    print()
    print(report.metrics_text)
    if report.interrupted and not report.served \
            and report.verification is None:
        # the signal landed during workload generation / bootstrap: there
        # is nothing to drain or verify, but it is still a clean exit
        print("\nshutdown: interrupted during startup — nothing was served")
        return 0
    if report.interrupted:
        print(
            f"\nshutdown: interrupted after {report.served} request(s) — "
            f"queue drained, final checkpoint flushed at "
            f"seq={report.final_seq}"
            + (f", wal_dir={cfg.wal_dir}" if cfg.wal_dir else "")
        )
    if report.resumed_from_seq:
        print(f"resumed from WAL/checkpoint at seq={report.resumed_from_seq}")
    if args.no_verify:
        print("\nverification: skipped (--no-verify)")
        return 0
    if report.verified:
        print(
            "\nverification: OK — the differential oracle replayed every "
            "applied coalesced batch and reproduced the served state exactly"
        )
        return 0
    print(f"\n{report.verification}")
    return 1


def _cmd_replica(args: argparse.Namespace) -> int:
    """Run a log-shipping read replica against a net primary."""
    import json
    import signal
    import threading

    from repro.net import ReplicaConfig, run_replica

    phost, pport = _parse_hostport(args.primary)
    listen = _parse_hostport(args.listen) if args.listen else None
    cfg = ReplicaConfig(
        tenant=args.tenant,
        poll_interval=args.poll_ms / 1000.0,
    )
    replica, server = run_replica(
        phost, pport, listen=listen, config=cfg,
        query_slots=args.query_slots,
        service_time=args.service_time_us / 1e6,
    )
    if server is not None:
        print(f"NET-LISTEN {server.host} {server.port}", flush=True)
    stop = threading.Event()
    try:
        previous = signal.signal(signal.SIGTERM,
                                 lambda *_: stop.set())
    except ValueError:  # pragma: no cover - non-main thread (tests)
        previous = None
    try:
        if args.once:
            replica.catch_up()
        else:
            try:
                replica.run(stop=stop, max_seconds=args.max_seconds)
            except KeyboardInterrupt:
                pass
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
        if server is not None:
            server.stop()
        stats = replica.stats
        replica.close()
    summary = {
        "tenant": cfg.tenant,
        "records_applied": stats.records_applied,
        "last_applied_seq": stats.last_applied_seq,
        "lag_commits": stats.lag_commits,
        "fetches": stats.fetches,
        "bytes_fetched": stats.bytes_fetched,
        "bootstrap_seconds": round(stats.bootstrap_seconds, 4),
    }
    if args.json:
        print(json.dumps(summary, sort_keys=True))
    else:
        print(f"replica drained: applied {summary['records_applied']} "
              f"record(s), at seq {summary['last_applied_seq']}, "
              f"lag {summary['lag_commits']}")
    return 0


def _cmd_bench_net(args: argparse.Namespace) -> int:
    """SRV2 replica-scaling benchmark (see docs/replication.md)."""
    import json

    from repro.net.bench import BenchNetConfig, run_bench_net

    requests = args.requests
    service_time_us = args.service_time_us
    if args.smoke:
        # CI-friendly: small request count, 1ms pinned query cost — the
        # whole run (incl. convergence + oracle check) stays under ~30s
        requests = min(requests, 400)
        service_time_us = min(service_time_us, 1000)
    cfg = BenchNetConfig(
        replicas=args.replicas,
        requests=requests,
        read_fraction=args.read_fraction,
        seed=args.seed,
        service_time=service_time_us / 1e6,
        mode=args.mode,
        kill_replica=args.kill_replica,
    )
    report = run_bench_net(cfg)
    payload = report.to_dict()
    if args.json:
        print(json.dumps(payload, sort_keys=True))
    else:
        print(format_table(
            [{k: v for k, v in payload.items() if k != "violations"}],
            title="repro bench-net: replica scaling (SRV2)"))
        for v in report.violations:
            print(f"VIOLATION {v}")
        if report.verified:
            print("replica equivalence: OK — every replica converged to "
                  "the primary's exact state (oracle-verified)")
    return 0 if report.verified else 1


def _cmd_bench_queries(args: argparse.Namespace) -> int:
    """SRV3 batched-read throughput benchmark (see docs/queries.md)."""
    import json

    from repro.queries.bench import BenchQueriesConfig, run_bench_queries

    requests = args.requests
    if args.smoke:
        # CI-friendly: small stream, single repeat; equivalence is still
        # asserted on every window, only the wall-clock bar is waived
        requests = min(requests, 800)
    cfg = BenchQueriesConfig(
        n=args.n,
        m=args.m,
        requests=requests,
        read_fraction=args.read_fraction,
        window=args.window,
        seed=args.seed,
        repeats=1 if args.smoke else args.repeats,
        parallel=args.parallel,
        substrate=args.substrate,
    )
    report = run_bench_queries(cfg)
    payload = report.to_dict()
    if args.json:
        print(json.dumps(payload, sort_keys=True))
    else:
        print(format_table(
            report.rows(),
            title="repro bench-queries: batched vs singleton reads (SRV3)"))
        print(f"\nwork={report.work} depth={report.depth} "
              f"wall={report.wall_seconds:.2f}s")
        for v in report.violations:
            print(f"VIOLATION {v}")
        if report.verified:
            print("batch equivalence: OK — every batched answer equals "
                  "the query-at-a-time answer on the same snapshot")
    if not report.verified:
        return 1
    if not args.smoke and report.speedup_x < args.min_speedup:
        print(f"SPEEDUP BAR MISSED: {report.speedup_x:.2f}x < "
              f"{args.min_speedup:.1f}x")
        return 1
    return 0


def _cmd_bench_parallel(args: argparse.Namespace) -> int:
    """PAR1 processor sweep: measured speedup vs Brent (see
    docs/parallel.md)."""
    import json

    from repro.parallel.bench import (
        BenchParallelConfig,
        render_report,
        run_bench_parallel,
    )

    try:
        procs = tuple(
            sorted({int(p) for p in args.procs.split(",") if p.strip()})
        )
    except ValueError:
        print(f"--procs must be a comma-separated list of ints, "
              f"got {args.procs!r}", file=sys.stderr)
        return 2
    if not procs or min(procs) < 1:
        print("--procs needs at least one processor count >= 1",
              file=sys.stderr)
        return 2
    cfg = BenchParallelConfig(
        n=args.n,
        m=args.m,
        sources=args.sources,
        queried=args.queried,
        procs=procs,
        unit_cost_us=args.unit_cost_us,
        repeats=args.repeats,
        min_items=args.min_items,
        seed=args.seed,
        pure=args.pure,
        min_speedup=args.min_speedup,
        smoke=args.smoke,
    )
    report = run_bench_parallel(cfg)
    if args.json:
        print(json.dumps(report, sort_keys=True))
    else:
        print(render_report(report))
    return 0 if report["pass"] else 1


def _print_chaos_json(report, rows=None) -> int:
    """Emit a chaos campaign report as one JSON object; exit status."""
    import json

    payload = {
        "ok": report.ok,
        "divergences": report.divergence_count,
        "wall_s": round(report.wall_seconds, 3),
        "rows": rows if rows is not None else report.rows(),
    }
    print(json.dumps(payload, sort_keys=True))
    return 0 if report.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.resilience.chaos import (
        CHAOS_PLAN_KINDS,
        NET_PLAN_KINDS,
        REPLICA_PLAN_KINDS,
        ChaosConfig,
        recovery_latency_sweep,
        run_chaos_campaign,
        run_net_chaos_campaign,
        run_replica_chaos_campaign,
    )

    if args.net:
        known = NET_PLAN_KINDS
    elif args.replica:
        known = REPLICA_PLAN_KINDS
    else:
        known = CHAOS_PLAN_KINDS
    plans = known
    if args.plans:
        plans = tuple(args.plans.split(","))
        unknown = [p for p in plans if p not in known]
        if unknown:
            print(f"unknown plans {unknown}; "
                  f"choose from {list(known)}", file=sys.stderr)
            return 2
    seeds = args.seeds
    requests = args.requests
    shards = args.shards
    if args.smoke:
        # CI-friendly: 2 shards, one seed per plan, deterministic
        # in-process workers; the whole campaign stays well under 60s
        seeds = min(seeds, 1)
        requests = min(requests, 1200)
        shards = min(shards, 2)
        if args.net and not args.plans:
            # one partition + one torn-frame run through the proxy,
            # oracle-verified, well under a minute
            plans = ("net_partition", "net_torn_frame")
            requests = min(requests, 400)
    cfg = ChaosConfig(
        requests=requests,
        shards=shards,
        seeds=seeds,
        seed0=args.seed,
        plans=plans,
        processes=args.processes,
        checkpoint_interval=args.checkpoint_interval,
    )
    if args.rsl1:
        rows = recovery_latency_sweep(cfg)
        ok = all(r["divergences"] == 0 for r in rows)
        if args.json:
            import json

            print(json.dumps({"ok": ok, "rows": rows}, sort_keys=True))
            return 0 if ok else 1
        print(format_table(
            rows, "RSL1: recovery latency vs checkpoint interval"))
        return 0 if ok else 1
    if args.net:
        report = run_net_chaos_campaign(
            cfg, log=(None if args.json
                      else lambda msg: print(f"[chaos] {msg}")))
        if args.json:
            return _print_chaos_json(report, rows=report.net_rows())
        print(format_table(
            report.net_rows(),
            title=f"repro chaos --net: {len(plans)} wire-fault plan(s) x "
                  f"{seeds} seed(s)",
        ))
        print(f"\nwall time: {report.wall_seconds:.1f}s")
        if report.ok:
            print("no divergences — every acked write applied exactly once "
                  "and primary, replica, and log replay agree "
                  "(oracle-verified)")
            return 0
        for run in report.runs:
            for d in run.divergences:
                print(f"\nDIVERGENCE {d}")
        return 1
    if args.replica:
        report = run_replica_chaos_campaign(
            cfg, log=(None if args.json
                      else lambda msg: print(f"[chaos] {msg}")))
        if args.json:
            return _print_chaos_json(report)
        print(format_table(
            report.rows(),
            title=f"repro chaos --replica: {len(plans)} fault plan(s) x "
                  f"{seeds} seed(s)",
        ))
        print(f"\nwall time: {report.wall_seconds:.1f}s")
        if report.ok:
            print("no divergences — every replica fault converged back to "
                  "the primary's exact state (oracle-verified)")
            return 0
        for run in report.runs:
            for d in run.divergences:
                print(f"\nDIVERGENCE {d}")
        return 1
    report = run_chaos_campaign(
        cfg, log=(None if args.json
                  else lambda msg: print(f"[chaos] {msg}")))
    if args.json:
        return _print_chaos_json(report)
    print(format_table(
        report.rows(),
        title=f"repro chaos: {len(plans)} fault plan(s) x {seeds} seed(s)",
    ))
    print(f"\nwall time: {report.wall_seconds:.1f}s")
    if report.ok:
        print("no divergences — every fault was recovered to the exact "
              "Workload.replay ground truth (oracle-verified)")
        return 0
    for run in report.runs:
        for d in run.divergences:
            print(f"\nDIVERGENCE {d}")
    return 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.oracle import STRUCTURES, emit_pytest_case, write_pytest_case
    from repro.oracle.fuzz import FuzzConfig, run_fuzz

    if args.queries:
        return _cmd_fuzz_queries(args)
    structures = tuple(sorted(STRUCTURES))
    if args.structures:
        structures = tuple(args.structures.split(","))
        unknown = [s for s in structures if s not in STRUCTURES]
        if unknown:
            print(f"unknown structures {unknown}; "
                  f"choose from {sorted(STRUCTURES)}", file=sys.stderr)
            return 2
    seeds = args.seeds
    time_budget = args.time_budget
    if args.smoke:
        # CI-friendly: small deterministic sweep, hard-capped at a minute
        seeds = min(seeds, 10)
        time_budget = 60.0 if time_budget is None else min(time_budget, 60.0)
    cfg = FuzzConfig(
        seeds=seeds,
        structures=structures,
        time_budget=time_budget,
        max_n=args.max_n,
        shrink=not args.no_shrink,
    )
    report = run_fuzz(cfg, log=lambda msg: print(f"[fuzz] {msg}"))
    print(format_table(
        report.rows(),
        title=f"repro fuzz: differential oracle, {seeds} seed(s)/structure",
    ))
    print(f"\nwall time: {report.wall_seconds:.1f}s")
    if report.ok:
        print("no divergences — every structure matches the replay oracle, "
              "the static baselines, and the paper envelopes")
        return 0
    for div in report.divergences:
        print(f"\nDIVERGENCE {div}")
        if args.emit_dir:
            path = write_pytest_case(div, args.emit_dir)
            print(f"reproducer written to {path}")
        else:
            print("--- minimized pytest reproducer ---")
            print(emit_pytest_case(div))
    return 1


def _cmd_fuzz_queries(args: argparse.Namespace) -> int:
    """``repro fuzz --queries``: the batch-query differential campaign."""
    from repro.oracle.queries import QueryFuzzConfig, run_query_fuzz

    workloads = args.seeds if args.seeds != 20 else 500
    time_budget = args.time_budget
    if args.smoke:
        workloads = min(workloads, 60)
        time_budget = 60.0 if time_budget is None else min(time_budget, 60.0)
    cfg = QueryFuzzConfig(
        workloads=workloads,
        max_n=args.max_n,
        time_budget=time_budget,
    )
    report = run_query_fuzz(cfg, log=lambda msg: print(f"[fuzz] {msg}"))
    print(format_table(
        report.rows(),
        title=f"repro fuzz --queries: batch vs singleton, "
              f"{report.workloads} workload(s)",
    ))
    print(f"\nwall time: {report.wall_seconds:.1f}s")
    if report.ok:
        print("no violations — every batch answer equals the "
              "query-at-a-time path, answers are order- and "
              "duplication-invariant, and work/depth stayed inside the "
              "shared-traversal envelopes")
        return 0
    for i, v in report.violations:
        print(f"\nVIOLATION (workload {i}) {v}")
    return 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run the paper's batch-dynamic structures on synthetic "
                    "workloads.",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {_package_version()}")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--n", type=int, default=200, help="vertex count")
        p.add_argument("--m", type=int, default=1000,
                       help="initial edges (or window size for sliding)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--batch-size", type=int, default=50)
        p.add_argument("--batches", type=int, default=10)
        p.add_argument("--churn", type=float, default=0.1,
                       help="fraction replaced per batch (churn workload)")
        p.add_argument(
            "--workload",
            choices=["delete", "insert", "mixed", "churn", "sliding"],
            default="mixed",
        )
        p.add_argument("--profile", action="store_true",
                       help="cProfile the run and print the hot functions")
        p.add_argument("--input", type=str, default=None,
                       help="edge-list file to use instead of a synthetic "
                            "graph (implies the delete workload)")

    p = sub.add_parser("spanner", help="Theorem 1.1 (2k-1)-spanner")
    common(p)
    p.add_argument("--k", type=int, default=2)
    p.add_argument("--base-capacity", type=int, default=None)
    p.set_defaults(func=_cmd_spanner)

    p = sub.add_parser("sparse", help="Theorem 1.3 O(n)-edge spanner")
    common(p)
    p.add_argument("--base-capacity", type=int, default=None)
    p.set_defaults(func=_cmd_sparse)

    p = sub.add_parser("ultra", help="Theorem 1.4 ultra-sparse spanner")
    common(p)
    p.add_argument("--x", type=float, default=2.0)
    p.set_defaults(func=_cmd_ultra)

    p = sub.add_parser("bundle", help="Theorem 1.5 t-bundle (decremental)")
    common(p)
    p.add_argument("--t", type=int, default=2)
    p.add_argument("--instances", type=int, default=4)
    p.set_defaults(func=_cmd_bundle)

    p = sub.add_parser("sparsifier", help="Theorem 1.6 spectral sparsifier")
    common(p)
    p.add_argument("--t", type=int, default=2)
    p.add_argument("--instances", type=int, default=4)
    p.set_defaults(func=_cmd_sparsifier)

    p = sub.add_parser("estree", help="Theorem 1.2 decremental BFS")
    common(p)
    p.add_argument("--limit", type=int, default=5)
    p.set_defaults(func=_cmd_estree)

    p = sub.add_parser(
        "serve",
        help="asynchronous serving engine: coalescing batcher + shards",
    )
    p.add_argument("--n", type=int, default=256, help="vertex count")
    p.add_argument("--m", type=int, default=1024, help="initial edges")
    p.add_argument("--requests", type=int, default=10_000,
                   help="client requests to serve (updates + queries)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--backend", choices=["spanner", "sparse", "sparsifier"],
                   default="spanner")
    p.add_argument("--k", type=int, default=2,
                   help="spanner stretch parameter (2k-1)")
    p.add_argument("--shards", type=int, default=2)
    p.add_argument("--no-processes", dest="processes", action="store_false",
                   help="run shards in-process instead of worker processes")
    p.add_argument("--max-batch", type=int, default=256,
                   help="flush when this many ops are pending")
    p.add_argument("--deadline-ms", type=float, default=2.0,
                   help="max (simulated) ms the oldest op may wait")
    p.add_argument("--target-batch-work", type=int, default=None,
                   help="adapt max-batch toward this cost-model work/batch")
    p.add_argument("--queue-capacity", type=int, default=192,
                   help="queue depth beyond which updates are shed")
    p.add_argument("--query-prob", type=float, default=0.1)
    p.add_argument("--no-verify", action="store_true",
                   help="skip the synchronous replay verification")
    p.add_argument("--wal-dir", type=str, default=None,
                   help="directory for the write-ahead log + checkpoints; "
                        "rerunning with the same directory resumes")
    p.add_argument("--checkpoint-interval", type=int, default=64,
                   help="commits between checkpoints (with --wal-dir)")
    p.add_argument("--parallel", type=int, default=0, metavar="N",
                   help="answer batched reads over an N-worker process "
                        "pool (N >= 2; answers and charges are identical "
                        "to the default inline path)")
    p.add_argument("--substrate", choices=["array", "dict"],
                   default="array",
                   help="snapshot adjacency substrate for the read path "
                        "(answers and charges are identical on both)")
    p.add_argument("--listen", type=str, default=None, metavar="HOST:PORT",
                   help="serve over TCP instead of the synthetic driver "
                        "(port 0 = ephemeral, announced as NET-LISTEN)")
    p.add_argument("--tenants", type=str, default=None,
                   help="comma-separated tenant names (net mode; "
                        "default: one tenant named 'default')")
    p.add_argument("--query-slots", type=int, default=8,
                   help="concurrent query capacity of the net front end")
    p.add_argument("--service-time-us", type=float, default=0.0,
                   help="simulated per-query engine microseconds (net "
                        "mode; 0 = real engine time)")
    p.add_argument("--max-inflight-queries", type=int, default=None,
                   help="per-tenant reads in flight beyond which queries "
                        "shed with retry_after (net mode)")
    p.add_argument("--json", action="store_true",
                   help="print a JSON summary instead of tables")
    p.set_defaults(func=_cmd_serve, processes=True)

    p = sub.add_parser(
        "replica",
        help="log-shipping read replica of a --listen primary",
    )
    p.add_argument("--primary", type=str, required=True, metavar="HOST:PORT")
    p.add_argument("--listen", type=str, default=None, metavar="HOST:PORT",
                   help="also serve (read-only) queries on this address")
    p.add_argument("--tenant", type=str, default="default")
    p.add_argument("--poll-ms", type=float, default=20.0,
                   help="delay between wal_fetch polls when caught up")
    p.add_argument("--query-slots", type=int, default=8)
    p.add_argument("--service-time-us", type=float, default=0.0)
    p.add_argument("--once", action="store_true",
                   help="catch up once and exit instead of polling")
    p.add_argument("--max-seconds", type=float, default=None,
                   help="exit after this many seconds (default: SIGTERM)")
    p.add_argument("--json", action="store_true",
                   help="print a JSON summary instead of prose")
    p.set_defaults(func=_cmd_replica)

    p = sub.add_parser(
        "bench-net",
        help="SRV2: read throughput vs replica count at a pinned "
             "per-query cost, with oracle-verified equivalence",
    )
    p.add_argument("--replicas", type=int, default=1)
    p.add_argument("--requests", type=int, default=2000)
    p.add_argument("--read-fraction", type=float, default=0.95)
    p.add_argument("--seed", type=int, default=1234)
    p.add_argument("--service-time-us", type=float, default=2000,
                   help="pinned simulated per-query engine microseconds")
    p.add_argument("--mode", choices=["inproc", "subprocess"],
                   default="inproc")
    p.add_argument("--kill-replica", action="store_true",
                   help="SIGKILL one replica mid-run; a fresh replacement "
                        "must still converge to exact equivalence")
    p.add_argument("--smoke", action="store_true",
                   help="CI mode: <=400 requests, 1ms pinned query cost")
    p.add_argument("--json", action="store_true",
                   help="print the report as JSON")
    p.set_defaults(func=_cmd_bench_net)

    p = sub.add_parser(
        "bench-queries",
        help="SRV3: batched vs query-at-a-time read throughput on a "
             "95/5 read-write mix, with exact-equivalence verification",
    )
    p.add_argument("--n", type=int, default=512, help="vertex count")
    p.add_argument("--m", type=int, default=640, help="initial edges")
    p.add_argument("--requests", type=int, default=4000)
    p.add_argument("--read-fraction", type=float, default=0.95)
    p.add_argument("--window", type=int, default=500,
                   help="requests per write-then-read window")
    p.add_argument("--seed", type=int, default=4242)
    p.add_argument("--repeats", type=int, default=3,
                   help="timing repeats (best-of)")
    p.add_argument("--min-speedup", type=float, default=3.0,
                   help="acceptance bar on batched/singleton throughput")
    p.add_argument("--parallel", type=int, default=0, metavar="N",
                   help="also time a third pass through an N-worker "
                        "process pool (N >= 2; informational, no bar)")
    p.add_argument("--substrate", choices=["array", "dict"],
                   default="array",
                   help="snapshot adjacency substrate for the read path "
                        "(answers and charges are identical on both)")
    p.add_argument("--smoke", action="store_true",
                   help="CI mode: <=800 requests, no speedup bar")
    p.add_argument("--json", action="store_true",
                   help="print the report as JSON")
    p.set_defaults(func=_cmd_bench_queries)

    p = sub.add_parser(
        "bench-parallel",
        help="PAR1: processor sweep over the pool-backed kernels — "
             "measured wall-clock speedup vs the Brent bound W/p + D, "
             "with charge-pin verification",
    )
    p.add_argument("--n", type=int, default=4000, help="vertex count")
    p.add_argument("--m", type=int, default=16000, help="edge count")
    p.add_argument("--sources", type=int, default=24,
                   help="multi-source BFS wave count")
    p.add_argument("--queried", type=int, default=48,
                   help="component-labeling query vertices")
    p.add_argument("--procs", type=str, default="1,2,4,8",
                   help="comma-separated processor counts to sweep")
    p.add_argument("--unit-cost-us", type=float, default=15.0,
                   help="pinned microseconds per charged work unit "
                        "(the SRV2 convention; 0 = raw CPU only)")
    p.add_argument("--repeats", type=int, default=2,
                   help="timing repeats (best-of)")
    p.add_argument("--min-items", type=int, default=32,
                   help="rounds smaller than this expand inline")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--min-speedup", type=float, default=2.0,
                   help="acceptance bar at p=4 on at least one kernel")
    p.add_argument("--pure", action="store_true",
                   help="also sweep with unit cost 0 (raw CPU time)")
    p.add_argument("--smoke", action="store_true",
                   help="CI mode: small graph, p<=2, no speedup bar")
    p.add_argument("--json", action="store_true",
                   help="print the report as JSON")
    p.set_defaults(func=_cmd_bench_parallel)

    p = sub.add_parser(
        "chaos",
        help="deterministic fault-injection campaign over the serving "
             "engine: kill/hang/corrupt, then verify exact recovery",
    )
    p.add_argument("--seeds", type=int, default=3,
                   help="seeded runs per fault plan")
    p.add_argument("--seed", type=int, default=0, help="first seed")
    p.add_argument("--requests", type=int, default=2500,
                   help="client requests per run")
    p.add_argument("--shards", type=int, default=2)
    p.add_argument("--plans", type=str, default=None,
                   help="comma-separated subset of fault plans")
    p.add_argument("--checkpoint-interval", type=int, default=8)
    p.add_argument("--processes", action="store_true",
                   help="use real worker processes (default: deterministic "
                        "in-process shards)")
    p.add_argument("--smoke", action="store_true",
                   help="CI mode: 1 seed/plan, 2 shards, <=1200 requests")
    p.add_argument("--rsl1", action="store_true",
                   help="run the RSL1 recovery-latency-vs-checkpoint-"
                        "interval sweep instead of the full campaign")
    p.add_argument("--replica", action="store_true",
                   help="run the log-shipping replica fault plans "
                        "(crash-mid-catchup, lag window) instead")
    p.add_argument("--net", action="store_true",
                   help="run the wire-fault plans through the in-process "
                        "fault proxy (partition/latency/torn-frame/reset/"
                        "worker-kill) with a resilient client")
    p.add_argument("--json", action="store_true",
                   help="emit the campaign report as one JSON object")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing oracle: cross-check every dynamic "
             "structure against replay + static baselines + envelopes",
    )
    p.add_argument("--seeds", type=int, default=20,
                   help="random workloads per structure (with --queries: "
                        "total workloads, default 500)")
    p.add_argument("--queries", action="store_true",
                   help="fuzz the batched query engine instead: cross-"
                        "check every batch answer against the query-at-a-"
                        "time path, order/duplication invariance, and the "
                        "work/depth envelopes")
    p.add_argument("--structures", type=str, default=None,
                   help="comma-separated subset (default: all registered)")
    p.add_argument("--max-n", type=int, default=40,
                   help="largest vertex count to fuzz")
    p.add_argument("--time-budget", type=float, default=None,
                   help="soft wall-clock cap in seconds")
    p.add_argument("--smoke", action="store_true",
                   help="CI mode: at most 10 seeds and a 60s budget")
    p.add_argument("--no-shrink", action="store_true",
                   help="report divergences without minimizing them")
    p.add_argument("--emit-dir", type=str, default=None,
                   help="write minimized reproducers as pytest files here")
    p.set_defaults(func=_cmd_fuzz)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

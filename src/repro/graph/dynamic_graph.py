"""Dynamic undirected-graph store with batch updates.

Vertices are integers ``0..n-1`` (the vertex set is fixed, as in the paper —
updates are edge insertions/deletions only).  Edges are stored normalized as
``(min(u, v), max(u, v))`` tuples.  Duplicate edges are rejected, matching
the paper's standing assumption that the graph stays simple (enforced there
with hash tables).
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["Edge", "norm_edge", "DynamicGraph"]

Edge = tuple[int, int]


def norm_edge(u: int, v: int) -> Edge:
    """Normalize an undirected edge to ``(min, max)`` form."""
    if u == v:
        raise ValueError(f"self-loop ({u}, {v})")
    return (u, v) if u < v else (v, u)


class DynamicGraph:
    """Simple undirected graph under batch edge updates.

    This is the *reference* store: algorithms keep their own internal
    structures, while tests and oracles consult a ``DynamicGraph`` mirror of
    the current edge set.
    """

    def __init__(self, n: int, edges: Iterable[Edge] = ()) -> None:
        if n < 0:
            raise ValueError("n must be >= 0")
        self.n = n
        self._edges: set[Edge] = set()
        self._adj: list[set[int]] = [set() for _ in range(n)]
        self.insert_batch(edges)

    # -- queries -------------------------------------------------------------

    @property
    def m(self) -> int:
        return len(self._edges)

    def __contains__(self, edge: Edge) -> bool:
        u, v = edge
        return norm_edge(u, v) in self._edges

    def edges(self) -> Iterator[Edge]:
        """Iterate the current (normalized) edges."""
        return iter(self._edges)

    def edge_set(self) -> set[Edge]:
        """Copy of the current edge set."""
        return set(self._edges)

    def neighbors(self, v: int) -> set[int]:
        """The (live) neighbor set of ``v``."""
        return self._adj[v]

    def degree(self, v: int) -> int:
        """Current degree of ``v``."""
        return len(self._adj[v])

    # -- batch updates ---------------------------------------------------------

    def insert_batch(self, edges: Iterable[Edge]) -> list[Edge]:
        """Insert a batch; returns the normalized edges actually added.

        Raises on duplicates *within* the batch or against current edges —
        update streams produced by :mod:`repro.workloads` are duplicate-free,
        and surfacing violations early catches harness bugs.
        """
        added: list[Edge] = []
        batch: set[Edge] = set()
        n = self.n
        cur = self._edges
        for u, v in edges:
            e = norm_edge(u, v)
            if not (0 <= e[0] and e[1] < n):
                self._check_vertex(e[0])
                self._check_vertex(e[1])
            if e in cur or e in batch:
                raise ValueError(f"duplicate edge {e}")
            batch.add(e)
            added.append(e)
        # validated up front, so membership applies as one set union and
        # the batch is all-or-nothing
        cur |= batch
        adj = self._adj
        for a, b in added:
            adj[a].add(b)
            adj[b].add(a)
        return added

    def delete_batch(self, edges: Iterable[Edge]) -> list[Edge]:
        """Delete a batch; returns the normalized edges removed."""
        removed: list[Edge] = []
        batch: set[Edge] = set()
        cur = self._edges
        for u, v in edges:
            e = norm_edge(u, v)
            if e not in cur or e in batch:
                raise KeyError(f"edge {e} not present")
            batch.add(e)
            removed.append(e)
        cur -= batch
        adj = self._adj
        for a, b in removed:
            adj[a].discard(b)
            adj[b].discard(a)
        return removed

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.n:
            raise ValueError(f"vertex {v} outside [0, {self.n})")

    # -- conversions -----------------------------------------------------------

    def copy(self) -> "DynamicGraph":
        """Independent copy of the graph."""
        return DynamicGraph(self.n, self._edges)

    def to_networkx(self):
        """Export to :mod:`networkx` for oracle cross-checks."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(self._edges)
        return g

"""Array-native graph substrate: a CSR/numpy-backed ``DynamicGraph``.

:class:`ArrayDynamicGraph` is a drop-in replacement for
:class:`~repro.graph.dynamic_graph.DynamicGraph` — same constructor shape,
same ``insert_batch`` / ``delete_batch`` / ``neighbors`` / ``degree`` /
``edges`` / ``copy`` API, same :func:`~repro.graph.dynamic_graph.norm_edge`
normalization and error contracts — backed by flat ``numpy`` arrays instead
of a dict-of-sets:

* ``_nbr`` — one shared ``int32`` arena holding every vertex's neighbor
  slots contiguously,
* ``_start`` / ``_deg`` / ``_cap`` — per-vertex segment offset, live degree
  and capacity (the gap ``cap - deg`` is the vertex's *slack*, refilled in
  place by churn so single-edge updates never move memory),
* a vertex whose segment overflows relocates to the arena tail with doubled
  capacity; the abandoned segment is counted as *dead* space and an
  amortized whole-arena compaction runs once dead space exceeds the live
  size (classic CSR-with-holes, the GBBS flat-adjacency shape).

Memory: two ``int32`` slots per undirected edge plus O(n) bookkeeping —
roughly 8 bytes per edge plus slack, versus several hundred bytes per edge
for ``set``-of-``tuple`` adjacency.  That is what makes the 10^6-vertex
runs in EXPERIMENTS.md (E3) fit.

The substrate also carries an **epoch counter** (:attr:`version`): every
successful mutation batch increments it, so traversal kernels (and the
parallel backend's version-keyed adjacency broadcast — see
``repro.parallel``) can cache per-snapshot derived state keyed by
``(id(graph), graph.version)``.  :meth:`csr` returns the compacted
``(indptr, indices)`` view, cached per epoch, that the vectorized frontier
kernels in :mod:`repro.queries.batch` and :mod:`repro.graph.traversal`
consume.

Charge preservation: this class performs no cost-model charging of its own
(neither does ``DynamicGraph``); the traversal kernels that consume it
charge the *same* closed-form work/depth totals as the dict-substrate
loops, which ``tools/bench_gate.py`` pins exactly.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.graph.dynamic_graph import DynamicGraph, Edge, norm_edge

__all__ = ["ArrayDynamicGraph", "SUBSTRATES", "make_graph"]

#: substrate names accepted by :func:`make_graph` and the serving config
SUBSTRATES = ("array", "dict")

_I32 = np.int32
_I64 = np.int64


class ArrayDynamicGraph:
    """Simple undirected graph under batch edge updates, on flat arrays.

    Behaviourally identical to :class:`DynamicGraph` (the Hypothesis
    equivalence suite in ``tests/test_array_graph.py`` asserts it on
    random interleaved update sequences); additionally exposes the
    array-native accessors :meth:`neighbors_array` and :meth:`csr` plus
    the :attr:`version` epoch counter.
    """

    #: minimum slack granted to a relocated vertex segment
    _MIN_GROW = 4
    #: batches at or below this size take the scalar apply path
    _SMALL_BATCH = 32

    def __init__(self, n: int, edges: Iterable[Edge] = (),
                 slack: int = 2) -> None:
        if n < 0:
            raise ValueError("n must be >= 0")
        if slack < 0:
            raise ValueError("slack must be >= 0")
        self.n = n
        self._slack = slack
        self._m = 0
        #: epoch counter — incremented after every successful mutation batch
        self.version = 0
        self._start = np.zeros(n, dtype=_I64)
        self._deg = np.zeros(n, dtype=_I32)
        self._cap = np.zeros(n, dtype=_I32)
        self._nbr = np.empty(0, dtype=_I32)
        self._used = 0      # arena high-water mark
        self._dead = 0      # slots abandoned by relocation
        self._csr_cache: tuple[int, np.ndarray, np.ndarray] | None = None
        self._sorted_cache: tuple[int, list[int], list[int]] | None = None
        edges = list(edges)
        if edges:
            self._bulk_build(edges)

    # -- construction --------------------------------------------------------

    def _bulk_build(self, edges: list[Edge]) -> None:
        """Vectorized initial build (CSR layout with per-vertex slack)."""
        arr = np.asarray(edges, dtype=_I64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("edges must be (u, v) pairs")
        a = np.minimum(arr[:, 0], arr[:, 1])
        b = np.maximum(arr[:, 0], arr[:, 1])
        n = self.n
        bad = (a == b) | (a < 0) | (b >= n)
        if bad.any():
            # re-run the scalar validation to raise the exact per-edge
            # error DynamicGraph would (first offender in input order)
            for u, v in edges:
                e = norm_edge(u, v)
                self._check_vertex(e[0])
                self._check_vertex(e[1])
            raise AssertionError("unreachable")  # pragma: no cover
        enc = a * n + b
        uniq = np.unique(enc)
        if len(uniq) != len(enc):
            seen: set[int] = set()
            for code in enc.tolist():
                if code in seen:
                    u, v = divmod(code, n)
                    raise ValueError(f"duplicate edge {(u, v)}")
                seen.add(code)
            raise AssertionError("unreachable")  # pragma: no cover
        ends = np.concatenate([a, b]).astype(_I32)
        other = np.concatenate([b, a]).astype(_I32)
        deg = np.bincount(ends, minlength=n).astype(_I32)
        cap = deg + np.minimum(deg, self._slack).astype(_I32)
        start = np.zeros(n, dtype=_I64)
        if n > 1:
            np.cumsum(cap[:-1], out=start[1:])
        order = np.argsort(ends, kind="stable")
        indptr = np.zeros(n + 1, dtype=_I64)
        np.cumsum(deg, out=indptr[1:])
        total = int(cap.sum())
        nbr = np.empty(max(total, 1), dtype=_I32)
        # scatter each directed endpoint into its vertex segment
        pos = start[ends[order]] + (np.arange(len(order)) - indptr[ends[order]])
        nbr[pos] = other[order]
        self._nbr = nbr
        self._start = start
        self._deg = deg
        self._cap = cap
        self._used = total
        self._dead = 0
        self._m = len(enc)
        self.version += 1
        self._csr_cache = None
        self._sorted_cache = None

    # -- queries -------------------------------------------------------------

    @property
    def m(self) -> int:
        return self._m

    def __contains__(self, edge: Edge) -> bool:
        u, v = edge
        a, b = norm_edge(u, v)
        if not (0 <= a and b < self.n):
            return False
        return self._has(a, b)

    def _has(self, a: int, b: int) -> bool:
        """Membership via the smaller endpoint's segment scan."""
        if self._deg[a] > self._deg[b]:
            a, b = b, a
        s = self._start[a]
        d = self._deg[a]
        if d == 0:
            return False
        return bool((self._nbr[s:s + d] == b).any())

    def edges(self) -> Iterator[Edge]:
        """Iterate the current (normalized) edges."""
        u_arr, v_arr = self._edge_arrays()
        return iter(list(zip(u_arr.tolist(), v_arr.tolist())))

    def _edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Normalized edge list as two aligned arrays (u < v)."""
        indptr, indices = self.csr()
        src = np.repeat(np.arange(self.n, dtype=_I32),
                        np.diff(indptr).astype(_I64))
        keep = src < indices
        return src[keep], indices[keep]

    def edge_set(self) -> set[Edge]:
        """Copy of the current edge set."""
        u_arr, v_arr = self._edge_arrays()
        return set(zip(u_arr.tolist(), v_arr.tolist()))

    def neighbors(self, v: int) -> set[int]:
        """The neighbor set of ``v`` (materialized copy)."""
        s = self._start[v]
        return set(self._nbr[s:s + self._deg[v]].tolist())

    def neighbors_array(self, v: int) -> np.ndarray:
        """Read-only ``int32`` view of ``v``'s live neighbor slots."""
        s = self._start[v]
        return self._nbr[s:s + self._deg[v]]

    def degree(self, v: int) -> int:
        """Current degree of ``v``."""
        return int(self._deg[v])

    # adjacency protocol for the traversal kernels: len() is the vertex
    # count and adj[u] the neighbor sequence, like a list-of-lists
    def __len__(self) -> int:
        return self.n

    def __getitem__(self, v: int) -> np.ndarray:
        return self.neighbors_array(v)

    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Compacted ``(indptr, indices)`` snapshot, cached per epoch."""
        cache = self._csr_cache
        if cache is not None and cache[0] == self.version:
            return cache[1], cache[2]
        indptr = np.zeros(self.n + 1, dtype=_I64)
        np.cumsum(self._deg, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=_I32)
        # one gather: positions of all live slots in arena order
        if self.n:
            live = _segment_positions(self._start, self._deg)
            indices[:] = self._nbr[live]
        self._csr_cache = (self.version, indptr, indices)
        return indptr, indices

    def sorted_flat(self) -> tuple[list[int], list[int]]:
        """Canonical flat adjacency ``(bounds, flat)``, cached per epoch.

        ``flat[bounds[v]:bounds[v + 1]]`` lists ``v``'s neighbors in
        ascending order as plain ints — the canonical scan order for
        order-dependent charge schedules (targets-mode
        :func:`repro.queries.batch.multi_source_bfs`).  One global key
        sort per epoch replaces one ``np.sort`` + ``tolist`` per scanned
        vertex, which dominates small-graph batch reads.
        """
        cache = self._sorted_cache
        if cache is not None and cache[0] == self.version:
            return cache[1], cache[2]
        indptr, indices = self.csr()
        if len(indices):
            # key = u * n + w sorts by segment (CSR order is already
            # ascending-u contiguous) then neighbor within each segment
            src = np.repeat(
                np.arange(self.n, dtype=_I64), np.diff(indptr)
            )
            key = src * self.n + indices
            key.sort()
            flat = (key % self.n).tolist()
        else:
            flat = []
        bounds = indptr.tolist()
        self._sorted_cache = (self.version, bounds, flat)
        return bounds, flat

    # -- batch updates -------------------------------------------------------

    def insert_batch(self, edges: Iterable[Edge]) -> list[Edge]:
        """Insert a batch; returns the normalized edges actually added.

        Raises on self-loops, out-of-range vertices, and duplicates within
        the batch or against current edges — the exact
        :class:`DynamicGraph` contract.  Validation completes before any
        mutation, so the batch is all-or-nothing.
        """
        added: list[Edge] = []
        batch: set[Edge] = set()
        n = self.n
        for u, v in edges:
            e = norm_edge(u, v)
            if not (0 <= e[0] and e[1] < n):
                self._check_vertex(e[0])
                self._check_vertex(e[1])
            if e in batch or self._has(*e):
                raise ValueError(f"duplicate edge {e}")
            batch.add(e)
            added.append(e)
        if not added:
            return added
        self._apply_insert(added)
        return added

    def _apply_insert(self, added: list[Edge]) -> None:
        if len(added) <= self._SMALL_BATCH:
            # scalar path: per-flush serving deltas are a handful of
            # edges, where whole-array bincount/argsort overhead dwarfs
            # the work (the vectorized path costs O(n) per call)
            for a, b in added:
                for v, w in ((a, b), (b, a)):
                    d = int(self._deg[v])
                    if d >= int(self._cap[v]):
                        self._grow(v, d + 1)
                    self._nbr[int(self._start[v]) + d] = w
                    self._deg[v] = d + 1
            self._m += len(added)
            self.version += 1
            self._csr_cache = None
            self._sorted_cache = None
            return
        arr = np.asarray(added, dtype=_I32)
        ends = np.concatenate([arr[:, 0], arr[:, 1]])
        other = np.concatenate([arr[:, 1], arr[:, 0]])
        inc = np.bincount(ends, minlength=self.n).astype(_I32)
        # grow every vertex whose slack cannot absorb its new neighbors
        tight = np.nonzero(inc > (self._cap - self._deg))[0]
        for v in tight.tolist():
            self._grow(v, int(self._deg[v] + inc[v]))
        # scatter: per-endpoint offset within its vertex's new block
        order = np.argsort(ends, kind="stable")
        se = ends[order]
        offs = _within_group_offsets(se)
        pos = self._start[se] + self._deg[se] + offs
        self._nbr[pos] = other[order]
        self._deg += inc
        self._m += len(added)
        self.version += 1
        self._csr_cache = None
        self._sorted_cache = None

    def delete_batch(self, edges: Iterable[Edge]) -> list[Edge]:
        """Delete a batch; returns the normalized edges removed."""
        removed: list[Edge] = []
        batch: set[Edge] = set()
        for u, v in edges:
            e = norm_edge(u, v)
            if e in batch or not (
                0 <= e[0] and e[1] < self.n and self._has(*e)
            ):
                raise KeyError(f"edge {e} not present")
            batch.add(e)
            removed.append(e)
        if not removed:
            return removed
        if len(removed) <= self._SMALL_BATCH:
            # scalar swap-remove per endpoint (in-segment neighbor order
            # is not part of the contract; every consumer treats the
            # segment as a set or re-sorts via sorted_flat)
            for a, b in removed:
                for v, w in ((a, b), (b, a)):
                    s = int(self._start[v])
                    d = int(self._deg[v])
                    seg = self._nbr[s:s + d]
                    i = seg.tolist().index(w)
                    seg[i] = seg[d - 1]
                    self._deg[v] = d - 1
            self._m -= len(removed)
            self.version += 1
            self._csr_cache = None
            self._sorted_cache = None
            return removed
        arr = np.asarray(removed, dtype=_I32)
        ends = np.concatenate([arr[:, 0], arr[:, 1]])
        other = np.concatenate([arr[:, 1], arr[:, 0]])
        order = np.argsort(ends, kind="stable")
        se, so = ends[order], other[order]
        bounds = np.nonzero(np.diff(se))[0] + 1
        groups = np.split(np.arange(len(se)), bounds)
        for g in groups:
            if len(g) == 0:
                continue
            v = int(se[g[0]])
            gone = set(so[g].tolist())
            s = int(self._start[v])
            d = int(self._deg[v])
            # set-based rewrite: segments are degree-sized, where a
            # python set probe beats an np.isin call per touched vertex
            kept = [w for w in self._nbr[s:s + d].tolist()
                    if w not in gone]
            self._nbr[s:s + len(kept)] = kept
            self._deg[v] = len(kept)
        self._m -= len(removed)
        self.version += 1
        self._csr_cache = None
        self._sorted_cache = None
        return removed

    # -- growth / compaction -------------------------------------------------

    def _grow(self, v: int, need: int) -> None:
        """Relocate ``v``'s segment to the arena tail with room for
        ``need`` live neighbors plus doubled slack."""
        new_cap = max(2 * need, 2 * int(self._cap[v]), self._MIN_GROW)
        d = int(self._deg[v])
        if self._used + new_cap > len(self._nbr):
            grow_to = max(self._used + new_cap,
                          int(1.5 * len(self._nbr)) + 16)
            arena = np.empty(grow_to, dtype=_I32)
            arena[:self._used] = self._nbr[:self._used]
            self._nbr = arena
        s = int(self._start[v])
        self._nbr[self._used:self._used + d] = self._nbr[s:s + d]
        self._start[v] = self._used
        self._dead += int(self._cap[v])
        self._cap[v] = new_cap
        self._used += new_cap
        if self._dead > max(64, self._used - self._dead):
            self.compact()

    def compact(self) -> None:
        """Rebuild the arena contiguously, restoring per-vertex slack.

        Runs automatically once relocation garbage exceeds the live size;
        callable explicitly after heavy churn.  O(n + m) vectorized.
        """
        deg = self._deg
        cap = deg + np.minimum(np.maximum(deg, 1), self._slack).astype(_I32)
        start = np.zeros(self.n, dtype=_I64)
        if self.n > 1:
            np.cumsum(cap[:-1], out=start[1:])
        total = int(cap.sum())
        nbr = np.empty(max(total, 1), dtype=_I32)
        if self.n:
            live = _segment_positions(self._start, deg)
            dst = _segment_positions(start, deg)
            nbr[dst] = self._nbr[live]
        self._nbr = nbr
        self._start = start
        self._cap = cap
        self._used = total
        self._dead = 0
        # layout changed but the edge set did not: the epoch stays, and the
        # cached CSR (if any) remains valid because it is layout-independent

    # -- misc ----------------------------------------------------------------

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.n:
            raise ValueError(f"vertex {v} outside [0, {self.n})")

    def copy(self) -> "ArrayDynamicGraph":
        """Independent copy of the graph."""
        g = ArrayDynamicGraph(self.n, slack=self._slack)
        g._start = self._start.copy()
        g._deg = self._deg.copy()
        g._cap = self._cap.copy()
        g._nbr = self._nbr.copy()
        g._used = self._used
        g._dead = self._dead
        g._m = self._m
        g.version = self.version
        return g

    def to_networkx(self):
        """Export to :mod:`networkx` for oracle cross-checks."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(zip(*(a.tolist() for a in self._edge_arrays())))
        return g

    @property
    def arena_slots(self) -> int:
        """Total allocated neighbor slots (live + slack + dead) —
        memory-accounting hook for the benchmarks."""
        return len(self._nbr)


def _segment_positions(start: np.ndarray, deg: np.ndarray) -> np.ndarray:
    """Arena positions of every live slot, vertex-major (vectorized)."""
    total = int(deg.sum())
    if total == 0:
        return np.empty(0, dtype=_I64)
    reps = deg.astype(_I64)
    base = np.repeat(start, reps)
    indptr = np.zeros(len(deg) + 1, dtype=_I64)
    np.cumsum(reps, out=indptr[1:])
    within = np.arange(total, dtype=_I64) - np.repeat(indptr[:-1], reps)
    return base + within


def _within_group_offsets(sorted_keys: np.ndarray) -> np.ndarray:
    """For a sorted key array, the 0-based offset of each element within
    its run of equal keys (vectorized)."""
    k = len(sorted_keys)
    if k == 0:
        return np.empty(0, dtype=_I64)
    idx = np.arange(k, dtype=_I64)
    new_run = np.empty(k, dtype=bool)
    new_run[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=new_run[1:])
    run_starts = idx[new_run]
    return idx - np.repeat(run_starts, np.diff(np.append(run_starts, k)))


def make_graph(n: int, edges: Iterable[Edge] = (), substrate: str = "array"):
    """Build a graph on the chosen substrate.

    ``substrate="array"`` (the default) returns an
    :class:`ArrayDynamicGraph`; ``"dict"`` the reference
    :class:`DynamicGraph`.  Both expose the identical mutation/query API.
    """
    if substrate == "array":
        return ArrayDynamicGraph(n, edges)
    if substrate == "dict":
        return DynamicGraph(n, edges)
    raise ValueError(
        f"unknown substrate {substrate!r}; expected one of {SUBSTRATES}"
    )

"""Edge-list file I/O.

Plain-text edge lists (one ``u v [weight]`` per line, ``#`` comments) so
real graphs can be fed to the CLI and examples without conversion
utilities.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping

from repro.graph.dynamic_graph import Edge, norm_edge

__all__ = ["read_edge_list", "write_edge_list"]


def read_edge_list(
    path: str | Path,
) -> tuple[int, list[Edge], dict[Edge, float] | None]:
    """Parse an edge-list file.

    Returns ``(n, edges, weights)`` where ``n`` is one more than the
    largest vertex id and ``weights`` is None when no line carries a third
    column.  Duplicate edges are rejected; self-loops are rejected.
    """
    edges: list[Edge] = []
    weights: dict[Edge, float] = {}
    any_weight = False
    seen: set[Edge] = set()
    max_v = -1
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) not in (2, 3):
            raise ValueError(f"{path}:{lineno}: expected 'u v [w]'")
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: bad vertex ids") from exc
        if u < 0 or v < 0:
            raise ValueError(f"{path}:{lineno}: negative vertex id")
        e = norm_edge(u, v)
        if e in seen:
            raise ValueError(f"{path}:{lineno}: duplicate edge {e}")
        seen.add(e)
        edges.append(e)
        max_v = max(max_v, u, v)
        if len(parts) == 3:
            any_weight = True
            weights[e] = float(parts[2])
    if any_weight and len(weights) != len(edges):
        raise ValueError(f"{path}: mixed weighted/unweighted lines")
    return max_v + 1, edges, weights if any_weight else None


def write_edge_list(
    path: str | Path,
    edges: Iterable[Edge],
    weights: Mapping[Edge, float] | None = None,
    header: str | None = None,
) -> None:
    """Write an edge list (optionally weighted) in the format
    :func:`read_edge_list` parses."""
    lines: list[str] = []
    if header:
        lines.extend(f"# {h}" for h in header.splitlines())
    for u, v in edges:
        e = norm_edge(u, v)
        if weights is not None:
            lines.append(f"{e[0]} {e[1]} {weights[e]}")
        else:
            lines.append(f"{e[0]} {e[1]}")
    Path(path).write_text("\n".join(lines) + "\n")

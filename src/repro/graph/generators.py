"""Graph generators for tests, examples, and the benchmark workloads.

All generators take an explicit ``seed`` and return edge lists in normalized
``(u, v)`` form with ``u < v``; vertex ids are ``0..n-1``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.dynamic_graph import Edge, norm_edge

__all__ = [
    "gnm_random_graph",
    "gnp_random_graph",
    "random_connected_graph",
    "grid_graph",
    "ring_of_cliques",
    "power_law_graph",
    "complete_graph",
    "barbell_graph",
    "random_tree",
]


def _rng(seed: int | None) -> np.random.Generator:
    return np.random.default_rng(seed)


def complete_graph(n: int) -> list[Edge]:
    """All ``C(n, 2)`` edges of the complete graph ``K_n``."""
    return [(u, v) for u in range(n) for v in range(u + 1, n)]


#: rejection-sampling rounds before a generator falls back to
#: rejection-free completion from the complement.  Each round oversamples
#: 2x the deficit, so the probability of needing even a handful of rounds
#: is vanishing — the cap exists so adversarial densities terminate by
#: construction rather than in expectation.
_MAX_REJECTION_ROUNDS = 32


def _complete_from_complement(
    edges: set[Edge], n: int, m: int, rng: np.random.Generator
) -> None:
    """Top ``edges`` up to ``m`` by sampling uniformly (without
    replacement) from the pairs not yet chosen."""
    remaining = [e for e in complete_graph(n) if e not in edges]
    idx = rng.permutation(len(remaining))[: m - len(edges)]
    edges.update(remaining[i] for i in idx)


def gnm_random_graph(n: int, m: int, seed: int | None = None) -> list[Edge]:
    """Uniform simple graph with exactly ``m`` edges (Erdős–Rényi G(n, m)).

    Requests with ``m`` above ``n * (n - 1) / 2`` raise ``ValueError``;
    everything below is guaranteed to terminate — the sparse path's
    rejection sampling is round-bounded with a rejection-free completion
    fallback, so no density can make it spin.
    """
    max_m = n * (n - 1) // 2
    if m > max_m:
        raise ValueError(f"m={m} exceeds max {max_m} for n={n}")
    rng = _rng(seed)
    if m > max_m // 2:
        # Dense: sample by shuffling all pairs.
        all_edges = complete_graph(n)
        idx = rng.permutation(len(all_edges))[:m]
        return [all_edges[i] for i in idx]
    edges: set[Edge] = set()
    rounds = 0
    while len(edges) < m:
        if rounds >= _MAX_REJECTION_ROUNDS:
            _complete_from_complement(edges, n, m, rng)
            break
        # Vectorized rejection sampling.
        need = m - len(edges)
        us = rng.integers(0, n, size=2 * need + 8)
        vs = rng.integers(0, n, size=2 * need + 8)
        rounds += 1
        for u, v in zip(us.tolist(), vs.tolist()):
            if u != v:
                edges.add(norm_edge(u, v))
                if len(edges) == m:
                    break
    return sorted(edges)


def gnp_random_graph(n: int, p: float, seed: int | None = None) -> list[Edge]:
    """G(n, p) via geometric skipping (O(n + m) expected)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    if p == 0.0 or n < 2:
        return []
    if p == 1.0:
        return complete_graph(n)
    rng = _rng(seed)
    edges: list[Edge] = []
    lp = math.log1p(-p)
    # Iterate over the strictly-upper-triangular pair index.
    v, w = 1, -1
    while v < n:
        lr = math.log1p(-rng.random())
        w = w + 1 + int(lr / lp)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            edges.append((w, v))
    return edges


def random_tree(n: int, seed: int | None = None) -> list[Edge]:
    """Uniform random labeled tree (random attachment to earlier vertex)."""
    rng = _rng(seed)
    if n <= 1:
        return []
    parents = [int(rng.integers(0, i)) for i in range(1, n)]
    return [norm_edge(i + 1, p) for i, p in enumerate(parents)]


def random_connected_graph(
    n: int, m: int, seed: int | None = None
) -> list[Edge]:
    """Connected simple graph with exactly ``m >= n-1`` edges: a random tree
    plus uniformly-sampled extra edges."""
    if m < n - 1:
        raise ValueError(f"m={m} too small for connectivity on n={n}")
    rng = _rng(seed)
    edges = set(random_tree(n, seed=int(rng.integers(0, 2**31))))
    max_m = n * (n - 1) // 2
    if m > max_m:
        raise ValueError(f"m={m} exceeds max {max_m}")
    # scalar rejection sampling, attempt-bounded: dense requests (this
    # generator has no dense path) complete rejection-free instead of
    # spinning on collisions near the C(n, 2) ceiling
    attempts = 0
    max_attempts = 20 * max(m, 1) + 1000
    while len(edges) < m:
        if attempts >= max_attempts:
            _complete_from_complement(edges, n, m, rng)
            break
        attempts += 1
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u != v:
            edges.add(norm_edge(u, v))
    return sorted(edges)


def grid_graph(rows: int, cols: int) -> list[Edge]:
    """rows x cols grid; vertex ``(r, c)`` has id ``r * cols + c``."""
    edges: list[Edge] = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return edges


def ring_of_cliques(num_cliques: int, clique_size: int) -> list[Edge]:
    """``num_cliques`` cliques of size ``clique_size`` joined in a ring —
    a classic hard case for stretch (long inter-cluster cycles)."""
    edges: list[Edge] = []
    k = clique_size
    for c in range(num_cliques):
        base = c * k
        edges.extend(
            (base + i, base + j) for i in range(k) for j in range(i + 1, k)
        )
    for c in range(num_cliques):
        a = c * k
        b = ((c + 1) % num_cliques) * k
        edges.append(norm_edge(a, b))
    return sorted(set(edges))


def power_law_graph(
    n: int, m: int, exponent: float = 2.5, seed: int | None = None
) -> list[Edge]:
    """Simple graph with ~``m`` edges and power-law degree skew (Chung–Lu
    style sampling, deduplicated)."""
    rng = _rng(seed)
    weights = (np.arange(1, n + 1, dtype=float)) ** (-1.0 / (exponent - 1.0))
    probs = weights / weights.sum()
    edges: set[Edge] = set()
    attempts = 0
    max_attempts = 50 * m + 1000
    while len(edges) < m and attempts < max_attempts:
        need = m - len(edges)
        us = rng.choice(n, size=2 * need + 8, p=probs)
        vs = rng.choice(n, size=2 * need + 8, p=probs)
        attempts += 2 * need + 8
        for u, v in zip(us.tolist(), vs.tolist()):
            if u != v:
                edges.add(norm_edge(int(u), int(v)))
                if len(edges) == m:
                    break
    return sorted(edges)


def barbell_graph(clique_size: int, path_len: int) -> list[Edge]:
    """Two cliques joined by a path — stresses cut sparsifiers (the path
    edges are all bridges)."""
    k = clique_size
    edges: list[Edge] = []
    for base in (0, k + path_len):
        edges.extend(
            (base + i, base + j) for i in range(k) for j in range(i + 1, k)
        )
    chain = [k - 1] + [k + i for i in range(path_len)] + [k + path_len]
    edges.extend(norm_edge(a, b) for a, b in zip(chain, chain[1:]))
    return sorted(set(edges))

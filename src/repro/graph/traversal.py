"""Plain sequential graph traversals used by oracles and static baselines."""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping, Sequence

from repro.graph.dynamic_graph import Edge

__all__ = [
    "adjacency_from_edges",
    "bfs_distances",
    "bfs_distances_bounded",
    "connected_components",
]


def adjacency_from_edges(
    n: int, edges: Iterable[Edge]
) -> list[list[int]]:
    """Adjacency lists (both directions) from an undirected edge list."""
    adj: list[list[int]] = [[] for _ in range(n)]
    for u, v in edges:
        adj[u].append(v)
        adj[v].append(u)
    return adj


def bfs_distances(
    adj: Sequence[Sequence[int]] | Mapping[int, Sequence[int]],
    source: int,
    n: int | None = None,
    target: int | None = None,
) -> dict[int, int]:
    """Unweighted single-source distances; unreachable vertices absent.

    With ``target`` set the search stops as soon as the target settles
    (its distance is final when first discovered), so point-to-point
    queries on large snapshots do not pay for a full sweep; the returned
    dict is then only guaranteed correct at ``target``.
    """
    dist = {source: 0}
    if target == source:
        return dist
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for w in adj[u]:
            if w not in dist:
                dist[w] = du + 1
                if w == target:
                    return dist
                queue.append(w)
    return dist


def bfs_distances_bounded(
    adj: Sequence[Sequence[int]] | Mapping[int, Sequence[int]],
    source: int,
    limit: int,
) -> dict[int, int]:
    """Distances up to ``limit``; vertices farther than ``limit`` absent."""
    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        if du == limit:
            continue
        for w in adj[u]:
            if w not in dist:
                dist[w] = du + 1
                queue.append(w)
    return dist


def connected_components(n: int, edges: Iterable[Edge]) -> list[list[int]]:
    """Connected components as sorted vertex lists."""
    adj = adjacency_from_edges(n, edges)
    seen = [False] * n
    comps: list[list[int]] = []
    for s in range(n):
        if seen[s]:
            continue
        comp = [s]
        seen[s] = True
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for w in adj[u]:
                if not seen[w]:
                    seen[w] = True
                    comp.append(w)
                    queue.append(w)
        comps.append(sorted(comp))
    return comps

"""Plain sequential graph traversals used by oracles and static baselines."""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping, Sequence

from repro.graph.dynamic_graph import Edge

__all__ = [
    "adjacency_from_edges",
    "bfs_distances",
    "bfs_distances_bounded",
    "connected_components",
]


def adjacency_from_edges(
    n: int, edges: Iterable[Edge]
) -> list[list[int]]:
    """Adjacency lists (both directions) from an undirected edge list."""
    adj: list[list[int]] = [[] for _ in range(n)]
    for u, v in edges:
        adj[u].append(v)
        adj[v].append(u)
    return adj


def _neighbor_lookup(adj):
    """Neighbor accessor tolerant of vertices absent from a dict adjacency.

    Snapshot adjacencies (``repro.service.engine``, ``repro.queries``) are
    dicts keyed only by vertices that currently have edges, so a query
    touching an isolated vertex must read as "no neighbors" — not
    ``KeyError`` in one traversal mode and a full sweep in the other.
    """
    if isinstance(adj, Mapping):
        return lambda u: adj.get(u, ())
    return lambda u: adj[u]


def bfs_distances(
    adj: Sequence[Sequence[int]] | Mapping[int, Sequence[int]],
    source: int,
    n: int | None = None,
    target: int | None = None,
) -> dict[int, int]:
    """Unweighted single-source distances; unreachable vertices absent.

    With ``target`` set the search stops as soon as the target settles
    (its distance is final when first discovered), so point-to-point
    queries on large snapshots do not pay for a full sweep; the returned
    dict is then only guaranteed correct at ``target``.

    Edge cases hold identically in pruned and unpruned mode (both are on
    the serving engine's ``distance``/``connected`` path): ``source ==
    target`` settles at 0 without touching the graph, a ``source`` absent
    from a dict adjacency has no neighbors (``{source: 0}``), and a
    disconnected ``target`` is simply absent from the result.
    """
    neighbors = _neighbor_lookup(adj)
    dist = {source: 0}
    if target == source:
        return dist
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for w in neighbors(u):
            if w not in dist:
                dist[w] = du + 1
                if w == target:
                    return dist
                queue.append(w)
    return dist


def bfs_distances_bounded(
    adj: Sequence[Sequence[int]] | Mapping[int, Sequence[int]],
    source: int,
    limit: int,
) -> dict[int, int]:
    """Distances up to ``limit``; vertices farther than ``limit`` absent.

    Shares :func:`bfs_distances`'s edge-case contract: a source absent
    from a dict adjacency yields ``{source: 0}`` and a non-positive
    ``limit`` never expands the frontier.
    """
    neighbors = _neighbor_lookup(adj)
    dist = {source: 0}
    if limit <= 0:
        return dist
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        if du == limit:
            continue
        for w in neighbors(u):
            if w not in dist:
                dist[w] = du + 1
                queue.append(w)
    return dist


def connected_components(n: int, edges: Iterable[Edge]) -> list[list[int]]:
    """Connected components as sorted vertex lists."""
    adj = adjacency_from_edges(n, edges)
    seen = [False] * n
    comps: list[list[int]] = []
    for s in range(n):
        if seen[s]:
            continue
        comp = [s]
        seen[s] = True
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for w in adj[u]:
                if not seen[w]:
                    seen[w] = True
                    comp.append(w)
                    queue.append(w)
        comps.append(sorted(comp))
    return comps

"""Plain sequential graph traversals used by oracles and static baselines.

When the adjacency is an array substrate (anything exposing a ``csr()``
compacted view — see :class:`repro.graph.array_graph.ArrayDynamicGraph`),
the full-sweep traversals switch to vectorized whole-frontier expansion
over the CSR arrays: one numpy gather per level instead of per-edge Python
iteration.  Results are identical; target-pruned sweeps stay scalar
because their early exit is mid-scan by contract.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping, Sequence

from repro.graph.dynamic_graph import Edge

__all__ = [
    "adjacency_from_edges",
    "bfs_distances",
    "bfs_distances_bounded",
    "connected_components",
]


def _csr_view(adj):
    """``(indptr, indices)`` when ``adj`` is an array substrate, else None."""
    csr = getattr(adj, "csr", None)
    return csr() if callable(csr) else None


def adjacency_from_edges(
    n: int, edges: Iterable[Edge]
) -> list[list[int]]:
    """Adjacency lists (both directions) from an undirected edge list."""
    adj: list[list[int]] = [[] for _ in range(n)]
    for u, v in edges:
        adj[u].append(v)
        adj[v].append(u)
    return adj


def _neighbor_lookup(adj):
    """Neighbor accessor tolerant of vertices absent from a dict adjacency.

    Snapshot adjacencies (``repro.service.engine``, ``repro.queries``) are
    dicts keyed only by vertices that currently have edges, so a query
    touching an isolated vertex must read as "no neighbors" — not
    ``KeyError`` in one traversal mode and a full sweep in the other.
    """
    if isinstance(adj, Mapping):
        return lambda u: adj.get(u, ())
    if hasattr(adj, "neighbors_array"):
        # array substrate: same isolated-vertex tolerance as the dict
        # snapshot (out-of-range reads as "no neighbors", not IndexError).
        # tolist() yields plain ints — iterating the numpy slice itself
        # would create an np.int32 per step, whose dict hashing dominates
        # scalar BFS wall time
        arr, nn = adj.neighbors_array, len(adj)
        return lambda u: arr(u).tolist() if 0 <= u < nn else ()
    return lambda u: adj[u]


def bfs_distances(
    adj: Sequence[Sequence[int]] | Mapping[int, Sequence[int]],
    source: int,
    n: int | None = None,
    target: int | None = None,
) -> dict[int, int]:
    """Unweighted single-source distances; unreachable vertices absent.

    With ``target`` set the search stops as soon as the target settles
    (its distance is final when first discovered), so point-to-point
    queries on large snapshots do not pay for a full sweep; the returned
    dict is then only guaranteed correct at ``target``.

    Edge cases hold identically in pruned and unpruned mode (both are on
    the serving engine's ``distance``/``connected`` path): ``source ==
    target`` settles at 0 without touching the graph, a ``source`` absent
    from a dict adjacency has no neighbors (``{source: 0}``), and a
    disconnected ``target`` is simply absent from the result.
    """
    if target is None:
        csr = _csr_view(adj)
        if csr is not None:
            return _bfs_csr(csr, source, None)
    neighbors = _neighbor_lookup(adj)
    dist = {source: 0}
    if target == source:
        return dist
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for w in neighbors(u):
            if w not in dist:
                dist[w] = du + 1
                if w == target:
                    return dist
                queue.append(w)
    return dist


def bfs_distances_bounded(
    adj: Sequence[Sequence[int]] | Mapping[int, Sequence[int]],
    source: int,
    limit: int,
) -> dict[int, int]:
    """Distances up to ``limit``; vertices farther than ``limit`` absent.

    Shares :func:`bfs_distances`'s edge-case contract: a source absent
    from a dict adjacency yields ``{source: 0}`` and a non-positive
    ``limit`` never expands the frontier.
    """
    if limit > 0:
        csr = _csr_view(adj)
        if csr is not None:
            return _bfs_csr(csr, source, limit)
    neighbors = _neighbor_lookup(adj)
    dist = {source: 0}
    if limit <= 0:
        return dist
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        if du == limit:
            continue
        for w in neighbors(u):
            if w not in dist:
                dist[w] = du + 1
                queue.append(w)
    return dist


def _bfs_csr(
    csr, source: int, limit: int | None
) -> dict[int, int]:
    """Vectorized level-synchronous BFS over a ``(indptr, indices)`` view.

    Whole-frontier expansion: each level is one gather of every frontier
    vertex's neighbor slice plus one dedup, no per-edge Python.  Returns
    the same ``{vertex: distance}`` dict as the scalar sweep.
    """
    import numpy as np

    indptr, indices = csr
    n = len(indptr) - 1
    if not 0 <= source < n:
        return {source: 0}
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while len(frontier) and (limit is None or level < limit):
        level += 1
        nbrs = _gather_neighbors(indptr, indices, frontier)
        new = nbrs[dist[nbrs] < 0]
        if len(new) == 0:
            break
        new = np.unique(new).astype(np.int64)
        dist[new] = level
        frontier = new
    reached = np.nonzero(dist >= 0)[0]
    return dict(zip(reached.tolist(), dist[reached].tolist()))


def _gather_neighbors(indptr, indices, frontier):
    """Concatenated neighbor slices of ``frontier`` (one vectorized gather)."""
    import numpy as np

    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype)
    firsts = np.cumsum(counts) - counts
    offs = np.arange(total, dtype=np.int64) - np.repeat(firsts, counts)
    return indices[np.repeat(starts, counts) + offs]


def connected_components(n: int, edges: Iterable[Edge]) -> list[list[int]]:
    """Connected components as sorted vertex lists."""
    adj = adjacency_from_edges(n, edges)
    seen = [False] * n
    comps: list[list[int]] = []
    for s in range(n):
        if seen[s]:
            continue
        comp = [s]
        seen[s] = True
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for w in adj[u]:
                if not seen[w]:
                    seen[w] = True
                    comp.append(w)
                    queue.append(w)
        comps.append(sorted(comp))
    return comps

"""Dynamic graph store, generators, and sequential traversals."""

from repro.graph.array_graph import SUBSTRATES, ArrayDynamicGraph, make_graph
from repro.graph.dynamic_graph import DynamicGraph, Edge, norm_edge
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.generators import (
    barbell_graph,
    complete_graph,
    gnm_random_graph,
    gnp_random_graph,
    grid_graph,
    power_law_graph,
    random_connected_graph,
    random_tree,
    ring_of_cliques,
)
from repro.graph.traversal import (
    adjacency_from_edges,
    bfs_distances,
    bfs_distances_bounded,
    connected_components,
)

__all__ = [
    "ArrayDynamicGraph",
    "DynamicGraph",
    "SUBSTRATES",
    "make_graph",
    "Edge",
    "norm_edge",
    "adjacency_from_edges",
    "barbell_graph",
    "bfs_distances",
    "bfs_distances_bounded",
    "complete_graph",
    "connected_components",
    "gnm_random_graph",
    "gnp_random_graph",
    "grid_graph",
    "power_law_graph",
    "random_connected_graph",
    "random_tree",
    "read_edge_list",
    "ring_of_cliques",
    "write_edge_list",
]

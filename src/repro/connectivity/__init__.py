"""Dynamic connectivity: Euler-tour trees and the HDT spanning forest
(the [AABD19] stand-in used by Theorem 1.4)."""

from repro.connectivity.euler_tour import EulerTourForest
from repro.connectivity.hdt import DynamicSpanningForest

__all__ = ["DynamicSpanningForest", "EulerTourForest"]

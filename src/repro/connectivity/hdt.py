"""Holm–de Lichtenberg–Thorup fully-dynamic connectivity / spanning forest.

Stands in for the parallel batch-dynamic spanning forest of [AABD19] used by
the ultra-sparse spanner (Theorem 1.4, structure ``H_2``): maintains a
spanning forest of an arbitrary graph under edge insertions and deletions in
O(log² n) amortized per update.

Levels ``0..log n``; every edge carries a level (0 at insertion, only ever
promoted).  ``forests[i]`` is an Euler-tour forest of the tree edges with
level >= i.  Deleting a tree edge searches for a replacement from its level
downward: the smaller side's same-level tree edges are promoted, its
same-level non-tree edges are scanned — each either reconnects (replacement
found) or is promoted, paying for itself.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.connectivity.euler_tour import EulerTourForest
from repro.graph.dynamic_graph import Edge, norm_edge
from repro.pram.cost import NULL_COST_MODEL, CostModel, log2ceil

__all__ = ["DynamicSpanningForest"]


class DynamicSpanningForest:
    """Fully-dynamic spanning forest (HDT).

    The reported forest delta of each update lets callers (Theorem 1.4's
    ``H_2``) mirror the forest edge set incrementally.
    """

    def __init__(
        self, n: int, edges: Iterable[Edge] = (),
        seed: int | None = None, cost: CostModel = NULL_COST_MODEL,
    ) -> None:
        self.n = n
        self._cost = cost
        self._max_level = log2ceil(max(n, 2))
        self._forests = [
            EulerTourForest(n, seed=None if seed is None else seed + i)
            for i in range(self._max_level + 1)
        ]
        self._level: dict[Edge, int] = {}
        self._tree: set[Edge] = set()
        # non-tree edges: per (level, vertex) adjacency sets
        self._nontree: list[list[set[int]]] = [
            [set() for _ in range(n)] for _ in range(self._max_level + 1)
        ]
        for e in edges:
            self.insert(*e)

    # -- queries ------------------------------------------------------------

    def connected(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` are connected in the current graph."""
        return self._forests[0].connected(u, v)

    def component_size(self, v: int) -> int:
        """Number of vertices in ``v``'s component."""
        return self._forests[0].component_size(v)

    def component_vertices(self, v: int) -> Iterator[int]:
        """Iterate the vertices of ``v``'s component."""
        return self._forests[0].component_vertices(v)

    def forest_edges(self) -> set[Edge]:
        """The current spanning forest's edge set."""
        return set(self._tree)

    def __contains__(self, edge: Edge) -> bool:
        return norm_edge(*edge) in self._level

    @property
    def m(self) -> int:
        return len(self._level)

    # -- updates ----------------------------------------------------------------

    def insert(self, u: int, v: int) -> Edge | None:
        """Insert edge; returns the edge if it joined the forest."""
        e = norm_edge(u, v)
        if e in self._level:
            raise ValueError(f"duplicate edge {e}")
        self._level[e] = 0
        self._cost.charge_tree_op(self.n)
        if not self._forests[0].connected(u, v):
            self._forests[0].link(u, v)
            self._forests[0].set_edge_flag(u, v, True)
            self._tree.add(e)
            return e
        self._add_nontree(e, 0)
        return None

    def delete(self, u: int, v: int) -> tuple[Edge | None, Edge | None]:
        """Delete edge; returns ``(removed_forest_edge, replacement_edge)``
        (both None for a non-tree deletion)."""
        e = norm_edge(u, v)
        if e not in self._level:
            raise KeyError(f"edge {e} not present")
        lvl = self._level.pop(e)
        self._cost.charge_tree_op(self.n)
        if e not in self._tree:
            self._remove_nontree(e, lvl)
            return None, None
        # tree edge: cut at all levels it participates in, then search
        self._tree.remove(e)
        self._forests[lvl].set_edge_flag(*e, False)
        for i in range(lvl + 1):
            self._forests[i].cut(*e)
        replacement = self._replace(e, lvl)
        return e, replacement

    def _replace(self, e: Edge, lvl: int) -> Edge | None:
        u, v = e
        for i in range(lvl, -1, -1):
            f = self._forests[i]
            # work on the smaller side
            side = u if f.component_size(u) <= f.component_size(v) else v
            # 1. promote level-i tree edges of the small side to i + 1
            for te in list(f.flagged_edges(side)):
                a, b = te
                te_n = norm_edge(a, b)
                assert self._level[te_n] == i
                self._level[te_n] = i + 1
                f.set_edge_flag(a, b, False)
                self._forests[i + 1].link(a, b)
                self._forests[i + 1].set_edge_flag(a, b, True)
                self._cost.charge_tree_op(self.n)
            # 2. scan level-i non-tree edges incident to the small side
            for x in list(f.flagged_vertices(side)):
                for y in list(self._nontree[i][x]):
                    ne = norm_edge(x, y)
                    self._cost.charge_tree_op(self.n)
                    if f.connected(y, side):
                        # both endpoints inside: promote to level i + 1
                        self._remove_nontree(ne, i)
                        self._level[ne] = i + 1
                        self._add_nontree(ne, i + 1)
                    else:
                        # replacement found: becomes a tree edge at level i
                        self._remove_nontree(ne, i)
                        self._level[ne] = i
                        self._tree.add(ne)
                        for j in range(i + 1):
                            self._forests[j].link(x, y)
                        self._forests[i].set_edge_flag(x, y, True)
                        return ne
        return None

    # -- non-tree bookkeeping ------------------------------------------------------

    def _add_nontree(self, e: Edge, lvl: int) -> None:
        u, v = e
        nt = self._nontree[lvl]
        nt[u].add(v)
        nt[v].add(u)
        f = self._forests[lvl]
        f.set_vertex_flag(u, True)
        f.set_vertex_flag(v, True)

    def _remove_nontree(self, e: Edge, lvl: int) -> None:
        u, v = e
        nt = self._nontree[lvl]
        nt[u].remove(v)
        nt[v].remove(u)
        f = self._forests[lvl]
        if not nt[u]:
            f.set_vertex_flag(u, False)
        if not nt[v]:
            f.set_vertex_flag(v, False)

    # -- invariants (tests) -----------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify levels, forests, and connectivity against networkx (tests)."""
        import networkx as nx

        for f in self._forests:
            f.check_invariants()
        # forest connectivity equals graph connectivity
        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(self._level)
        fgraph = nx.Graph()
        fgraph.add_nodes_from(range(self.n))
        fgraph.add_edges_from(self._tree)
        want = {frozenset(c) for c in nx.connected_components(g)}
        got = {frozenset(c) for c in nx.connected_components(fgraph)}
        assert want == got, "forest components diverge from graph"
        assert nx.is_forest(fgraph)
        # levels: tree edge at level l present in forests 0..l
        for e, lvl in self._level.items():
            if e in self._tree:
                for i in range(lvl + 1):
                    assert self._forests[i].has_edge(*e) or self._forests[
                        i
                    ].has_edge(e[1], e[0])
            else:
                u, v = e
                assert v in self._nontree[lvl][u]
                assert self._forests[lvl].connected(u, v)

"""Euler-tour trees over randomized treaps.

The substrate for the HDT dynamic-connectivity structure
(:mod:`repro.connectivity.hdt`), which in turn stands in for the parallel
batch-dynamic spanning forest of [AABD19] used by Theorem 1.4's ``H_2``.

Each forest tree is stored as the cyclic Euler tour of its arcs, linearized
into a treap ordered by implicit position; every vertex contributes a loop
arc ``(v, v)`` and every forest edge two arcs ``(u, v)``/``(v, u)``.
``link`` and ``cut`` are O(log n) expected via split/merge; ``connected``
compares treap roots.

For HDT the nodes carry two augmented flags with subtree counters:

* ``vertex_flag`` on loop arcs — "this vertex has non-tree edges at this
  level",
* ``edge_flag`` on (one arc of) tree edges — "this tree edge lives at
  exactly this level",

so the replacement search can enumerate flagged vertices/edges of a
component in O(log n) per find.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional

__all__ = ["EulerTourForest"]


class _Node:
    __slots__ = (
        "arc",
        "prio",
        "left",
        "right",
        "parent",
        "size",
        "is_loop",
        "vertex_flag",
        "edge_flag",
        "cnt_loop",
        "cnt_vertex_flag",
        "cnt_edge_flag",
    )

    def __init__(self, arc: tuple[int, int], prio: float) -> None:
        self.arc = arc
        self.prio = prio
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.parent: Optional[_Node] = None
        self.size = 1
        self.is_loop = arc[0] == arc[1]
        self.vertex_flag = False
        self.edge_flag = False
        self.cnt_loop = 1 if self.is_loop else 0
        self.cnt_vertex_flag = 0
        self.cnt_edge_flag = 0


def _pull(n: _Node) -> None:
    n.size = 1
    n.cnt_loop = 1 if n.is_loop else 0
    n.cnt_vertex_flag = 1 if n.vertex_flag else 0
    n.cnt_edge_flag = 1 if n.edge_flag else 0
    for c in (n.left, n.right):
        if c is not None:
            n.size += c.size
            n.cnt_loop += c.cnt_loop
            n.cnt_vertex_flag += c.cnt_vertex_flag
            n.cnt_edge_flag += c.cnt_edge_flag


def _root(n: _Node) -> _Node:
    while n.parent is not None:
        n = n.parent
    return n


def _merge(a: Optional[_Node], b: Optional[_Node]) -> Optional[_Node]:
    if a is None:
        return b
    if b is None:
        return a
    if a.prio < b.prio:
        r = _merge(a.right, b)
        a.right = r
        if r is not None:
            r.parent = a
        _pull(a)
        return a
    left = _merge(a, b.left)
    b.left = left
    if left is not None:
        left.parent = b
    _pull(b)
    return b


def _split_by_size(
    n: Optional[_Node], k: int
) -> tuple[Optional[_Node], Optional[_Node]]:
    """Split into (first k nodes, rest)."""
    if n is None:
        return None, None
    n.parent = None
    ls = n.left.size if n.left else 0
    if k <= ls:
        a, b = _split_by_size(n.left, k)
        n.left = b
        if b is not None:
            b.parent = n
        _pull(n)
        return a, n
    a, b = _split_by_size(n.right, k - ls - 1)
    n.right = a
    if a is not None:
        a.parent = n
    _pull(n)
    return n, b


def _position(n: _Node) -> int:
    """0-based position of ``n`` within its treap."""
    pos = n.left.size if n.left else 0
    cur = n
    while cur.parent is not None:
        p = cur.parent
        if p.right is cur:
            pos += (p.left.size if p.left else 0) + 1
        cur = p
    return pos


def _update_to_root(n: _Node) -> None:
    while n is not None:
        _pull(n)
        n = n.parent


class EulerTourForest:
    """A forest over vertices ``0..n-1`` under link/cut/connected."""

    def __init__(self, n: int, seed: int | None = None) -> None:
        self.n = n
        self._rng = random.Random(seed)
        self._loop: list[_Node] = [
            _Node((v, v), self._rng.random()) for v in range(n)
        ]
        self._arc: dict[tuple[int, int], _Node] = {}

    # -- core queries ------------------------------------------------------

    def _check_vertex(self, v: int) -> None:
        """Reject out-of-range vertices.

        Python's negative indexing would otherwise silently alias
        ``connected(-1, u)`` to the *last* vertex — a wrong answer, not an
        error — so every ``_loop`` access goes through this guard.
        """
        if not 0 <= v < self.n:
            raise ValueError(f"vertex {v} outside [0, {self.n})")

    def connected(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` are in the same tree.

        Well-defined for vertices never touched by a :meth:`link`: every
        vertex starts as its own singleton tour (the loop arc created in
        ``__init__``), so ``connected(v, v)`` is ``True`` for *all* ``v``
        — including isolated ones — and ``connected(u, v)`` is ``False``
        for distinct vertices with no linked path.  Comparing treap roots
        is sound because a singleton's loop node is its own root.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        return _root(self._loop[u]) is _root(self._loop[v])

    def component_size(self, v: int) -> int:
        """Number of vertices in v's tree (1 for never-linked singletons)."""
        self._check_vertex(v)
        return _root(self._loop[v]).cnt_loop

    def tree_ref(self, v: int) -> object:
        """Opaque identity of v's current tree (valid until next update)."""
        self._check_vertex(v)
        return _root(self._loop[v])

    def find_repr(self, v: int) -> int:
        """A representative vertex of v's tree.

        Two vertices map to the same representative iff they are
        connected; a never-linked singleton represents itself.  The
        choice is arbitrary (the vertex carried by the treap root's arc)
        and stable only until the next :meth:`link`/:meth:`cut` — compare
        representatives, never persist them.
        """
        self._check_vertex(v)
        return _root(self._loop[v]).arc[0]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``(u, v)`` is a forest edge (directed arc check)."""
        return (u, v) in self._arc

    def component_vertices(self, v: int) -> Iterator[int]:
        """Iterate the vertices of v's tree (O(size))."""
        stack = [_root(self._loop[v])]
        while stack:
            node = stack.pop()
            if node.is_loop:
                yield node.arc[0]
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)

    # -- restructure -----------------------------------------------------------

    def _reroot(self, v: int) -> _Node:
        """Rotate v's tour so that it begins with the loop arc of ``v``;
        returns the treap root."""
        node = self._loop[v]
        k = _position(node)
        tree = _root(node)
        a, b = _split_by_size(tree, k)
        out = _merge(b, a)
        out.parent = None
        return out

    def link(self, u: int, v: int) -> None:
        """Join the trees of ``u`` and ``v`` with forest edge (u, v)."""
        if self.connected(u, v):
            raise ValueError(f"link({u},{v}): already connected")
        tu = self._reroot(u)
        tv = self._reroot(v)
        auv = _Node((u, v), self._rng.random())
        avu = _Node((v, u), self._rng.random())
        self._arc[(u, v)] = auv
        self._arc[(v, u)] = avu
        _merge(_merge(_merge(tu, auv), tv), avu)

    def cut(self, u: int, v: int) -> None:
        """Remove forest edge (u, v), splitting its tree in two."""
        a = self._arc.pop((u, v), None)
        b = self._arc.pop((v, u), None)
        if a is None or b is None:
            raise KeyError(f"cut({u},{v}): not a forest edge")
        pa, pb = _position(a), _position(b)
        if pa > pb:
            a, b = b, a
            pa, pb = pb, pa
        tree = _root(a)
        left, rest = _split_by_size(tree, pa)
        mid_a, rest = _split_by_size(rest, 1)  # the (u,v) arc
        mid, rest2 = _split_by_size(rest, pb - pa - 1)
        mid_b, right = _split_by_size(rest2, 1)  # the (v,u) arc
        assert mid_a is a and mid_b is b
        _merge(left, right)
        if mid is not None:
            mid.parent = None

    # -- HDT augmentation hooks ----------------------------------------------------

    def set_vertex_flag(self, v: int, value: bool) -> None:
        """Set/clear the HDT vertex flag ('has non-tree edges at this level')."""
        node = self._loop[v]
        if node.vertex_flag != value:
            node.vertex_flag = value
            _update_to_root(node)

    def vertex_flag(self, v: int) -> bool:
        """Read the HDT vertex flag of ``v``."""
        return self._loop[v].vertex_flag

    def set_edge_flag(self, u: int, v: int, value: bool) -> None:
        """Flag is carried by the (u, v) arc with u < v."""
        arc = (u, v) if u < v else (v, u)
        node = self._arc[arc]
        if node.edge_flag != value:
            node.edge_flag = value
            _update_to_root(node)

    def flagged_vertices(self, v: int) -> Iterator[int]:
        """Iterate vertices with vertex_flag in v's tree (O(log n) each)."""
        root = _root(self._loop[v])
        yield from self._iter_flagged(root, "cnt_vertex_flag", "vertex_flag")

    def flagged_edges(self, v: int) -> Iterator[tuple[int, int]]:
        """Iterate flagged tree edges in v's tree."""
        root = _root(self._loop[v])
        yield from self._iter_flagged(root, "cnt_edge_flag", "edge_flag")

    def _iter_flagged(self, root: _Node, cnt: str, flag: str):
        stack = [root]
        while stack:
            node = stack.pop()
            if getattr(node, cnt) == 0:
                continue
            if getattr(node, flag):
                yield node.arc if not node.is_loop else node.arc[0]
            for c in (node.left, node.right):
                if c is not None and getattr(c, cnt) > 0:
                    stack.append(c)

    # -- invariants (tests) ------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify treap structure, sizes, and flag counters (tests)."""
        seen_roots = {}
        for v in range(self.n):
            root = _root(self._loop[v])
            seen_roots.setdefault(id(root), root)
        for root in seen_roots.values():
            self._check_node(root, None)
            # a tour over k vertices has k loop arcs and 2(k-1) edge arcs
            k = root.cnt_loop
            assert root.size == 3 * k - 2 or (k == 1 and root.size == 1)

    def _check_node(self, n: _Node, parent: Optional[_Node]) -> None:
        assert n.parent is parent
        size, loops, vf, ef = 1, int(n.is_loop), int(n.vertex_flag), int(
            n.edge_flag
        )
        for c in (n.left, n.right):
            if c is not None:
                assert c.prio >= n.prio
                self._check_node(c, n)
                size += c.size
                loops += c.cnt_loop
                vf += c.cnt_vertex_flag
                ef += c.cnt_edge_flag
        assert n.size == size
        assert n.cnt_loop == loops
        assert n.cnt_vertex_flag == vf
        assert n.cnt_edge_flag == ef

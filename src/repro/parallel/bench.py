"""PAR1 — measured wall-clock speedup vs. the Brent prediction ``W/p + D``.

The cost model charges every batch kernel a ``(work, depth)`` pair, and
Brent's bound predicts a ``p``-processor schedule needs at most
``W/p + D`` time.  This bench closes the loop the paper itself can't
show: it runs the two chunk-parallel batch kernels (multi-source BFS and
component flooding, :mod:`repro.parallel.kernels`) under a real
:class:`~repro.parallel.pool.ProcessPoolBackend` p-sweep and compares the
*measured* speedup curve against the *predicted* one,
``speedup_pred(p) = brent_time(c, 1) / brent_time(c, p)``.

Execution-cost convention
-------------------------
By default each charged work unit carries a pinned execution cost of
``unit_cost_us`` microseconds (workers sleep ``scans x unit_cost``after
expanding a chunk; the ``p = 1`` baseline runs the *same* chunked driver
on a :class:`~repro.parallel.backend.SequentialBackend` and pays the
identical total serially).  This is the SRV2 convention — a pinned
per-unit service time makes the schedule-level speedup measurable and
honest on any machine, including a 1-core CI box where pure-CPU speedup
is physically impossible; sleeps overlap across worker processes exactly
as compute would across cores.  ``--pure`` adds a ``unit_cost = 0`` sweep
that measures raw CPU instead (only meaningful on real multicore
hardware).

Charge-pin verification
-----------------------
Before timing anything the bench records the kernels' charged totals
sequentially, then re-records them under a 2-worker pool and requires
*exact* ``(work, depth)`` equality plus identical answers — the same
invariant the ``tools/bench_gate.py`` pins enforce for the serving-path
scenarios.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any

from ..harness.figures import ascii_plot
from ..pram.cost import NULL_COST_MODEL, Cost, CostModel, brent_time
from ..queries.batch import batch_components, multi_source_bfs
from .backend import SequentialBackend
from .pool import ProcessPoolBackend

__all__ = ["BenchParallelConfig", "run_bench_parallel", "render_report"]


@dataclass
class BenchParallelConfig:
    """Knobs for the PAR1 p-sweep."""

    n: int = 4000
    m: int = 16000
    sources: int = 24          # BFS wave count (k)
    queried: int = 48          # component-labeling query vertices
    procs: tuple[int, ...] = (1, 2, 4, 8)
    unit_cost_us: float = 15.0
    repeats: int = 2
    kernels: tuple[str, ...] = ("mbfs", "components")
    min_items: int = 32        # rounds smaller than this expand inline
    seed: int = 0
    verify_charges: bool = True
    pure: bool = False         # add a unit_cost=0 (raw CPU) sweep
    min_speedup: float | None = 2.0  # bar at p=4 (full runs)
    smoke: bool = False

    def __post_init__(self) -> None:
        if self.smoke:
            self.n = min(self.n, 600)
            self.m = min(self.m, 1800)
            self.sources = min(self.sources, 8)
            self.queried = min(self.queried, 16)
            self.procs = tuple(p for p in self.procs if p <= 2) or (1, 2)
            self.repeats = 1
            self.unit_cost_us = min(self.unit_cost_us, 20.0)
            self.min_speedup = None


def _random_adjacency(cfg: BenchParallelConfig) -> dict[int, list[int]]:
    rng = random.Random(cfg.seed)
    adj: dict[int, set[int]] = {v: set() for v in range(cfg.n)}
    edges = 0
    while edges < cfg.m:
        u = rng.randrange(cfg.n)
        v = rng.randrange(cfg.n)
        if u != v and v not in adj[u]:
            adj[u].add(v)
            adj[v].add(u)
            edges += 1
    return {v: sorted(ws) for v, ws in adj.items()}


def _make_backend(cfg: BenchParallelConfig, p: int, unit_cost_s: float):
    if p <= 1:
        return SequentialBackend(unit_cost_s=unit_cost_s, min_items=cfg.min_items)
    return ProcessPoolBackend(
        p, unit_cost_s=unit_cost_s, min_items=cfg.min_items
    )


def _kernel_runner(cfg: BenchParallelConfig, kernel: str, adj):
    rng = random.Random(cfg.seed + 1)
    if kernel == "mbfs":
        srcs = rng.sample(range(cfg.n), min(cfg.sources, cfg.n))

        def run(backend=None, cost=None):
            return multi_source_bfs(
                adj, srcs, cost=cost if cost is not None else NULL_COST_MODEL,
                backend=backend, adj_version=("par1", cfg.seed),
            )

    elif kernel == "components":
        verts = rng.sample(range(cfg.n), min(cfg.queried, cfg.n))

        def run(backend=None, cost=None):
            return batch_components(
                adj, verts, cost=cost if cost is not None else NULL_COST_MODEL,
                backend=backend, adj_version=("par1", cfg.seed),
            )

    else:
        raise ValueError(f"unknown kernel {kernel!r}")
    return run


def _sweep(cfg: BenchParallelConfig, run, charged: Cost, unit_cost_s: float,
           ref: Any):
    rows: list[dict[str, Any]] = []
    t_base: float | None = None
    for p in cfg.procs:
        backend = _make_backend(cfg, p, unit_cost_s)
        try:
            best = float("inf")
            for _ in range(cfg.repeats):
                t0 = time.perf_counter()
                got = run(backend=backend)
                best = min(best, time.perf_counter() - t0)
            if got != ref:
                raise AssertionError(
                    f"p={p} answers diverged from the sequential reference"
                )
        finally:
            util = backend.utilization
            fallbacks = backend.inline_fallbacks_total
            backend.close()
        if t_base is None:
            t_base = best
        predicted = brent_time(charged, 1) / brent_time(charged, p)
        rows.append(
            {
                "p": p,
                "wall_s": round(best, 4),
                "measured_x": round(t_base / best, 3),
                "predicted_x": round(predicted, 3),
                "utilization": round(util, 3),
                "inline_fallbacks": fallbacks,
            }
        )
    return rows


def run_bench_parallel(cfg: BenchParallelConfig) -> dict[str, Any]:
    """Run the PAR1 sweep; returns a JSON-ready report."""
    adj = _random_adjacency(cfg)
    unit_cost_s = cfg.unit_cost_us * 1e-6
    report: dict[str, Any] = {
        "bench": "PAR1",
        "config": {
            "n": cfg.n,
            "m": cfg.m,
            "sources": cfg.sources,
            "queried": cfg.queried,
            "procs": list(cfg.procs),
            "unit_cost_us": cfg.unit_cost_us,
            "repeats": cfg.repeats,
            "min_items": cfg.min_items,
            "seed": cfg.seed,
            "smoke": cfg.smoke,
        },
        "kernels": {},
        "pass": True,
    }
    for kernel in cfg.kernels:
        run = _kernel_runner(cfg, kernel, adj)
        # Canonical charges: the plain sequential traversal, no backend.
        cm_seq = CostModel()
        ref_answer = run(cost=cm_seq)
        charged = cm_seq.snapshot()
        entry: dict[str, Any] = {
            "work": charged.work,
            "depth": charged.depth,
            "brent_time_units": {
                str(p): round(brent_time(charged, p), 1) for p in cfg.procs
            },
        }
        if cfg.verify_charges:
            # Exact (work, depth) + answer equality under a live 2-worker
            # pool while charges are being recorded.
            pool = ProcessPoolBackend(2, min_items=cfg.min_items)
            try:
                cm_pool = CostModel()
                pool_answer = run(backend=pool, cost=cm_pool)
            finally:
                pool.close()
            charges_ok = (cm_pool.work, cm_pool.depth) == (
                charged.work,
                charged.depth,
            )
            answers_ok = pool_answer == ref_answer
            entry["verify"] = {
                "charges_equal": charges_ok,
                "answers_equal": answers_ok,
                "sequential": [charged.work, charged.depth],
                "pool": [cm_pool.work, cm_pool.depth],
            }
            if not (charges_ok and answers_ok):
                report["pass"] = False
        entry["rows"] = _sweep(cfg, run, charged, unit_cost_s, ref_answer)
        if cfg.pure:
            entry["pure_rows"] = _sweep(cfg, run, charged, 0.0, ref_answer)
        report["kernels"][kernel] = entry
        if cfg.min_speedup is not None:
            row4 = next(
                (r for r in entry["rows"] if r["p"] == 4), None
            )
            entry["meets_bar"] = (
                row4 is not None and row4["measured_x"] >= cfg.min_speedup
            )
    if cfg.min_speedup is not None:
        # The acceptance bar: >= min_speedup at p=4 on at least one kernel.
        if not any(
            e.get("meets_bar") for e in report["kernels"].values()
        ):
            report["pass"] = False
    return report


def render_report(report: dict[str, Any]) -> str:
    """Human-readable tables + ASCII speedup plot."""
    lines: list[str] = []
    cfg = report["config"]
    lines.append(
        f"PAR1 p-sweep: n={cfg['n']} m={cfg['m']} k={cfg['sources']} "
        f"unit_cost={cfg['unit_cost_us']}us/work "
        f"procs={cfg['procs']}"
    )
    for kernel, entry in report["kernels"].items():
        lines.append("")
        lines.append(
            f"[{kernel}] charged work={entry['work']} depth={entry['depth']}"
        )
        if "verify" in entry:
            v = entry["verify"]
            lines.append(
                "  charge pin (2-worker pool vs sequential): "
                f"charges_equal={v['charges_equal']} "
                f"answers_equal={v['answers_equal']}"
            )
        lines.append(
            "  p    wall_s   measured_x  predicted_x  utilization"
        )
        for r in entry["rows"]:
            lines.append(
                f"  {r['p']:<4} {r['wall_s']:<8} {r['measured_x']:<11} "
                f"{r['predicted_x']:<12} {r['utilization']:<.3f}"
            )
        for r in entry.get("pure_rows", []):
            lines.append(
                f"  {r['p']:<4} {r['wall_s']:<8} {r['measured_x']:<11} "
                f"{r['predicted_x']:<12} (pure CPU, unit_cost=0)"
            )
        xs = [r["p"] for r in entry["rows"]]
        if len(xs) > 1:
            lines.append(
                ascii_plot(
                    xs,
                    {
                        "measured": [r["measured_x"] for r in entry["rows"]],
                        "predicted (W/p+D)": [
                            r["predicted_x"] for r in entry["rows"]
                        ],
                    },
                    width=48,
                    height=10,
                    title=f"{kernel}: speedup vs p",
                )
            )
    lines.append("")
    lines.append(f"PASS={report['pass']}")
    return "\n".join(lines)

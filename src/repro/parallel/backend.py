"""Execution backends: where charged parallel regions actually run.

The cost model in :mod:`repro.pram.cost` *accounts* for parallelism — a
``parallel()`` region sums branch work and maxes branch depth — but has
always *executed* branches inline.  This module separates the two concerns
behind one small contract, :class:`ExecutionBackend`:

* :class:`SequentialBackend` reproduces the historical inline loop
  byte-for-byte (same frames, same charge order, same totals).  It is the
  implicit default everywhere; the charge pins in ``BENCH_hotpath.json``
  are recorded under it.
* :class:`~repro.parallel.pool.ProcessPoolBackend` ships chunks of tasks
  to persistent worker processes, runs each task under a fresh per-worker
  :class:`~repro.pram.cost.CostModel`, and merges the per-task
  ``(work, depth)`` pairs back into the parent region **in canonical task
  order** with the same commutative sum/max rule — so the merged totals
  are deterministic and identical to sequential execution no matter how
  the OS schedules the workers.

Two task shapes are supported:

``map_scope(model, scope, items, fn)``
    The generic :meth:`CostModel.pfor` / :meth:`ParallelScope.map` seam.
    ``fn`` is shippable to workers only when it is an importable
    module-level callable; closures and bound methods (the shared-mutation
    kernels in ``es_tree`` / ``shift_clustering``) fall back to inline
    execution, preserving today's semantics exactly.  A shippable ``fn``
    that declares a ``cost`` keyword parameter receives the executing
    cost model (the worker's own, or the parent's inline) and must charge
    through it rather than a closed-over model.

``map_chunks(fn, chunk_args, ...)``
    The data-parallel kernel seam used by :mod:`repro.parallel.kernels`
    (frontier expansion for multi-source BFS / components).  One task per
    chunk argument; results return in chunk order together with per-chunk
    ``(work, depth)`` charges and busy-time accounting.

Backends also support a *pinned per-work-unit execution cost*
(``unit_cost_s``): when set, executing a task additionally sleeps
``charged_work * unit_cost_s`` seconds.  This is the same convention the
SRV2 replica bench uses for its pinned per-query service time — it makes
schedule-level speedup measurable and honest on any machine (sleeps overlap
across processes; the sequential baseline pays the identical total
serially), including the 1-core CI box where pure-CPU speedup is
physically impossible.  ``unit_cost_s=0`` (the default) measures raw CPU.
"""

from __future__ import annotations

import inspect
import itertools
import sys
import time
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..pram.cost import CostModel, ParallelScope, _Frame

__all__ = [
    "ExecutionBackend",
    "SequentialBackend",
    "is_shippable",
    "wants_cost",
    "resolve_backend",
]


def is_shippable(fn: Callable[..., Any]) -> bool:
    """True when ``fn`` pickles by reference: a module-level callable whose
    qualified name resolves back to the same object.  Closures, lambdas,
    bound methods and locals all fail this test and execute inline."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", "")
    if not module or "." in qualname or "<" in qualname:
        return False
    mod = sys.modules.get(module)
    return mod is not None and getattr(mod, qualname, None) is fn


_WANTS_COST_CACHE: dict[Any, bool] = {}

#: process-global sweep-token source; see :meth:`ExecutionBackend.new_token`
_TOKEN_COUNTER = itertools.count(1)


def wants_cost(fn: Callable[..., Any]) -> bool:
    """True when ``fn`` declares a ``cost`` keyword parameter (charged
    kernels); checked once per function and cached."""
    try:
        return _WANTS_COST_CACHE[fn]
    except TypeError:
        pass  # unhashable callable: inspect every time
    except KeyError:
        pass
    try:
        params = inspect.signature(fn).parameters
        res = "cost" in params
    except (TypeError, ValueError):
        res = False
    try:
        _WANTS_COST_CACHE[fn] = res
    except TypeError:
        pass
    return res


class ChunkResult:
    """Result of one :meth:`ExecutionBackend.map_chunks` task."""

    __slots__ = ("value", "work", "depth", "busy_s")

    def __init__(self, value: Any, work: int, depth: int, busy_s: float) -> None:
        self.value = value
        self.work = work
        self.depth = depth
        self.busy_s = busy_s


class ExecutionBackend:
    """Contract all execution backends implement.

    ``workers``
        Degree of real parallelism (1 for :class:`SequentialBackend`).
    ``unit_cost_s``
        Pinned seconds of execution time per charged work unit (see module
        docstring); 0 disables emulation.
    ``min_items``
        Below this many items/frontier entries, drivers are encouraged to
        process a round inline — dispatch overhead dominates tiny rounds.
    """

    name = "abstract"

    def __init__(self, *, unit_cost_s: float = 0.0, min_items: int = 1) -> None:
        if unit_cost_s < 0:
            raise ValueError("unit_cost_s must be >= 0")
        self.unit_cost_s = float(unit_cost_s)
        self.min_items = max(1, int(min_items))
        self._shared_versions: dict[str, Any] = {}
        self._metrics = None
        self._metric_handles = None
        # Always-on aggregate accounting (cheap; benches read these even
        # without a metrics registry bound).
        self.tasks_total = 0
        self.dispatches_total = 0
        self.inline_fallbacks_total = 0
        self.busy_s_total = 0.0
        self.dispatch_wall_s_total = 0.0
        self.worker_restarts_total = 0

    @property
    def utilization(self) -> float:
        """Aggregate busy-time share of the dispatch walls: 1.0 means every
        worker was busy for every dispatched second."""
        denom = self.dispatch_wall_s_total * max(1, self.workers)
        return min(1.0, self.busy_s_total / denom) if denom > 0 else 0.0

    # -- lifecycle --------------------------------------------------------

    @property
    def workers(self) -> int:
        return 1

    def close(self) -> None:  # pragma: no cover - trivial
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- shared payloads --------------------------------------------------

    def new_token(self) -> int:
        """A process-unique token for per-sweep worker scratch state.

        Tokens must be unique across *all* backends in this process, not
        just per backend: forked pool workers inherit the parent's kernel
        scratch (a prior :class:`SequentialBackend` sweep may have left
        mirror state behind), and a colliding token would make a fresh
        sweep mistake that stale mirror for its own.
        """
        return next(_TOKEN_COUNTER)

    def put_shared(self, key: str, value: Any, version: Any = None) -> None:
        """Publish ``value`` under ``key`` to every worker.

        ``version`` short-circuits re-broadcast: a repeated call with the
        same ``(key, version)`` is a no-op.  ``None`` always re-sends.
        Sequential backends just keep a local reference.
        """
        if version is not None and self._shared_versions.get(key) == version:
            return
        self._publish_shared(key, value)
        self._shared_versions[key] = version

    def _publish_shared(self, key: str, value: Any) -> None:
        raise NotImplementedError

    def get_shared(self, key: str) -> Any:
        """Return the payload previously published under ``key``."""
        raise NotImplementedError

    # -- metrics ----------------------------------------------------------

    def bind_metrics(self, registry, prefix: str = "pool") -> None:
        """Record pool-utilization and task-granularity metrics into a
        :class:`repro.service.metrics.MetricsRegistry` on every dispatch:

        * ``<prefix>_tasks_total`` / ``<prefix>_dispatches_total`` counters,
        * ``<prefix>_inline_fallbacks_total`` counter (unshippable fns),
        * ``<prefix>_chunk_items`` histogram (task granularity),
        * ``<prefix>_dispatch_ms`` histogram (wall per dispatch round),
        * ``<prefix>_utilization`` gauge (busy-time / wall x workers),
        * ``<prefix>_workers`` gauge,
        * ``<prefix>_worker_restarts`` counter (supervised replacements
          of dead workers; always 0 for in-process backends).
        """
        self._metrics = registry
        self._metric_handles = {
            "tasks": registry.counter(f"{prefix}_tasks_total"),
            "dispatches": registry.counter(f"{prefix}_dispatches_total"),
            "fallbacks": registry.counter(f"{prefix}_inline_fallbacks_total"),
            "chunk_items": registry.histogram(f"{prefix}_chunk_items"),
            "dispatch_ms": registry.histogram(f"{prefix}_dispatch_ms"),
            "utilization": registry.gauge(f"{prefix}_utilization"),
            "workers": registry.gauge(f"{prefix}_workers"),
            "worker_restarts": registry.counter(f"{prefix}_worker_restarts"),
        }
        self._metric_handles["workers"].set(self.workers)

    def _record_dispatch(
        self, n_tasks: int, items_per_task: Sequence[int], wall_s: float, busy_s: float
    ) -> None:
        self.tasks_total += n_tasks
        self.dispatches_total += 1
        self.busy_s_total += busy_s
        self.dispatch_wall_s_total += wall_s
        h = self._metric_handles
        if h is None:
            return
        h["tasks"].inc(n_tasks)
        h["dispatches"].inc()
        for c in items_per_task:
            h["chunk_items"].observe(c)
        h["dispatch_ms"].observe(wall_s * 1000.0)
        if wall_s > 0 and self.workers > 0:
            h["utilization"].set(min(1.0, busy_s / (wall_s * self.workers)))

    def _record_fallback(self, n_tasks: int) -> None:
        self.inline_fallbacks_total += n_tasks
        h = self._metric_handles
        if h is not None:
            h["fallbacks"].inc(n_tasks)

    def _record_worker_restart(self, n: int = 1) -> None:
        self.worker_restarts_total += n
        h = self._metric_handles
        if h is not None:
            h["worker_restarts"].inc(n)

    # -- execution --------------------------------------------------------

    def map_scope(
        self,
        model: CostModel,
        scope: ParallelScope,
        items: Iterable[Any],
        fn: Callable[..., Any],
    ) -> list[Any]:
        """Execute ``fn`` over ``items`` as branches of the open ``scope``.

        Must be charge-identical to the inline loop: each branch's
        ``(work, depth)`` merges into ``scope`` via sum/max.
        """
        raise NotImplementedError

    def map_chunks(
        self,
        fn: Callable[..., Any],
        chunk_args: Sequence[Any],
        *,
        shared_keys: Sequence[str] = (),
        cost_enabled: bool = True,
        order: Sequence[int] | None = None,
        pinned: bool = False,
    ) -> list[ChunkResult]:
        """Execute kernel ``fn(args, shared, cost)`` once per chunk arg.

        Results come back in chunk order regardless of completion order.
        ``shared_keys`` name payloads previously published with
        :meth:`put_shared`; the backend passes them to ``fn`` as the
        ``shared`` mapping.  ``pinned`` routes chunk ``i`` to worker ``i``
        (for kernels with per-worker mirror state); ``order`` permutes the
        dispatch order only (a determinism test hook).  Each task always
        runs under a fresh recording cost model so emulation and charge
        reports see the kernel's counts; callers decide whether to merge.
        """
        raise NotImplementedError

    # -- shared helpers ---------------------------------------------------

    def _emulate(self, work: int) -> None:
        if self.unit_cost_s > 0.0 and work > 0:
            time.sleep(work * self.unit_cost_s)

    def _run_scope_inline(
        self,
        model: CostModel,
        scope: ParallelScope,
        items: Iterable[Any],
        fn: Callable[..., Any],
    ) -> list[Any]:
        """The historical inline loop, with per-branch frame visibility so
        emulation and charge-merge use the exact same path as workers."""
        emulating = self.unit_cost_s > 0.0
        pass_cost = wants_cost(fn)
        out: list[Any] = []
        if not (emulating or model.enabled):
            # Nothing to account: plain calls, no frames.
            for item in items:
                out.append(fn(item, cost=model) if pass_cost else fn(item))
            return out
        stack = model._stack
        for item in items:
            frame = _Frame()
            if model.enabled:
                stack.append(frame)
                try:
                    out.append(fn(item, cost=model) if pass_cost else fn(item))
                finally:
                    stack.pop()
                scope.absorb(frame.work, frame.depth)
                self._emulate(frame.work)
            else:
                # Emulation with a disabled parent model: run under a
                # scratch recording model purely to learn the work count.
                scratch = CostModel()
                out.append(fn(item, cost=scratch) if pass_cost else fn(item))
                self._emulate(scratch.work)
        return out


class SequentialBackend(ExecutionBackend):
    """Inline execution — today's behavior, byte-for-byte charge-identical.

    Exists so that drivers written against the backend contract (the PAR1
    bench, the parallel BFS kernels) have an honest ``p = 1`` baseline
    running the *same* chunked code path as the pool, and so that the
    pinned unit-cost emulation has a serial reference implementation.
    """

    name = "sequential"

    def __init__(self, *, unit_cost_s: float = 0.0, min_items: int = 1) -> None:
        super().__init__(unit_cost_s=unit_cost_s, min_items=min_items)
        self._shared: dict[str, Any] = {}

    def _publish_shared(self, key: str, value: Any) -> None:
        self._shared[key] = value

    def get_shared(self, key: str) -> Any:
        """Return the locally retained payload for ``key``."""
        return self._shared[key]

    def map_scope(
        self,
        model: CostModel,
        scope: ParallelScope,
        items: Iterable[Any],
        fn: Callable[..., Any],
    ) -> list[Any]:
        """Run every branch inline — byte-identical to the no-backend loop."""
        return self._run_scope_inline(model, scope, items, fn)

    def map_chunks(
        self,
        fn: Callable[..., Any],
        chunk_args: Sequence[Any],
        *,
        shared_keys: Sequence[str] = (),
        cost_enabled: bool = True,
        order: Sequence[int] | None = None,
        pinned: bool = False,
    ) -> list[ChunkResult]:
        """Run each chunk kernel serially under a fresh recording model."""
        shared: Mapping[str, Any] = {k: self._shared[k] for k in shared_keys}
        t0 = time.perf_counter()
        out: list[ChunkResult] = []
        sizes: list[int] = []
        for args in chunk_args:
            cm = CostModel()
            b0 = time.perf_counter()
            with cm.frame() as fr:
                value = fn(args, shared, cost=cm)
            self._emulate(fr.work)
            busy = time.perf_counter() - b0
            out.append(ChunkResult(value, fr.work, fr.depth, busy))
            sizes.append(_arg_size(args))
        wall = time.perf_counter() - t0
        self._record_dispatch(len(chunk_args), sizes, wall, sum(r.busy_s for r in out))
        return out


def _arg_size(args: Any) -> int:
    """Best-effort item count of a chunk argument, for granularity metrics."""
    if isinstance(args, Mapping):
        for key in ("chunk", "items", "frontier"):
            v = args.get(key)
            if isinstance(v, (list, tuple)):
                return len(v)
        return 1
    if isinstance(args, (list, tuple)):
        return len(args)
    return 1


def resolve_backend(
    spec: "int | str | ExecutionBackend | None",
    *,
    unit_cost_s: float = 0.0,
    min_items: int = 1,
) -> ExecutionBackend | None:
    """Build a backend from a CLI-ish spec.

    ``None``/``0``/``1``/``"seq"`` → :class:`SequentialBackend`;
    an int ``p >= 2`` or ``"pool:p"`` → a
    :class:`~repro.parallel.pool.ProcessPoolBackend` with ``p`` workers.
    An :class:`ExecutionBackend` instance passes through unchanged.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None:
        return None
    if isinstance(spec, str):
        s = spec.strip().lower()
        if s in ("", "seq", "sequential", "none"):
            return SequentialBackend(unit_cost_s=unit_cost_s, min_items=min_items)
        if s.startswith("pool:"):
            s = s.split(":", 1)[1]
        spec = int(s)
    p = int(spec)
    if p <= 1:
        return SequentialBackend(unit_cost_s=unit_cost_s, min_items=min_items)
    from .pool import ProcessPoolBackend

    return ProcessPoolBackend(p, unit_cost_s=unit_cost_s, min_items=min_items)

"""Chunked data-parallel kernels for the batch query traversals.

These are the shippable counterparts of the level-synchronous loops in
:mod:`repro.queries.batch`: each BFS/flood round splits its frontier into
one contiguous chunk per worker and expands the chunks concurrently via
:meth:`ExecutionBackend.map_chunks`.

Correctness model
-----------------
* **Answers are exact.**  Workers hold a *mirror* of the reached/visited
  state, kept in sync by per-round deltas (the merged discoveries of the
  previous round).  A vertex discovered by two chunks in the same round is
  deduplicated by the parent during the merge, which also assigns
  distances/labels — first chunk in canonical order wins, exactly like the
  first discoverer in the sequential scan order (chunks are contiguous
  slices of the same frontier order).
* **Charges are identical** to the sequential loops whenever they are
  recorded.  The sequential loop charges ``pfor_cost(scans, 1, depth=logn)``
  per round where ``scans`` counts every live frontier vertex plus every
  scanned neighbor *unconditionally* — a quantity invariant under frontier
  partitioning — and the parallel driver opens a ``parallel()`` region and
  absorbs each chunk's ``(scans, logn)``, which merges to the same
  ``(sum, max)`` pair.  For multi-source BFS **with target pruning** the
  sequential charge depends on mid-round pruning order, so
  :func:`repro.queries.batch.multi_source_bfs` only routes here when no
  targets are given or the cost model is not recording; components floods
  are partition-invariant unconditionally.
* Mirror state lives in worker-process module globals keyed by a
  backend-unique sweep token; rounds must be dispatched **pinned**
  (chunk *i* → worker *i*) so every worker sees every delta exactly once.
  One sweep per backend may be in flight at a time.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from ..graph.traversal import _neighbor_lookup
from ..pram.cost import NULL_COST_MODEL, CostModel, log2ceil
from .backend import ExecutionBackend

__all__ = [
    "mbfs_round_kernel",
    "components_round_kernel",
    "parallel_multi_source_bfs",
    "parallel_batch_components",
]

#: worker-local sweep scratch: {kind: {"token": int, "level": int, state...}}
_SCRATCH: dict[str, dict[str, Any]] = {}


def _sweep_state(kind: str, token: int, fresh: dict[str, Any]) -> dict[str, Any]:
    st = _SCRATCH.get(kind)
    if st is None or st["token"] != token:
        st = {"token": token, "level": -1}
        st.update(fresh)
        _SCRATCH[kind] = st
    return st


def mbfs_round_kernel(
    args: Mapping[str, Any], shared: Mapping[str, Any], cost: CostModel
) -> list[tuple[int, int]]:
    """Expand one chunk of a multi-source-BFS frontier round.

    ``args``: ``token`` (sweep id), ``level`` (round number), ``delta``
    (merged ``(vertex, added-bits)`` discoveries of the previous round),
    ``chunk`` (this worker's slice of the frontier, as ``(vertex, mask)``
    pairs), ``active`` (bitmask of still-active sources).  ``shared`` must
    carry the adjacency under ``args["adj_key"]``.

    Returns the locally-new ``(vertex, bits)`` pairs; charges
    ``(scans, logn)`` where ``scans`` counts live frontier vertices plus
    every neighbor scan, exactly as the sequential round does.
    """
    st = _sweep_state("mbfs", args["token"], {"reached": {}})
    reached: dict[int, int] = st["reached"]
    level = args["level"]
    if st["level"] < level:
        for v, bits in args["delta"]:
            reached[v] = reached.get(v, 0) | bits
        st["level"] = level
    neighbors = _neighbor_lookup(shared[args["adj_key"]])
    active = args["active"]
    scans = 0
    nxt: dict[int, int] = {}
    for u, mask in args["chunk"]:
        mask &= active
        if not mask:
            continue
        scans += 1
        for w in neighbors(u):
            scans += 1
            add = mask & ~reached.get(w, 0)
            if not add:
                continue
            reached[w] = reached.get(w, 0) | add
            nxt[w] = nxt.get(w, 0) | add
    cost.charge_many(scans, args["logn"])
    return list(nxt.items())


def components_round_kernel(
    args: Mapping[str, Any], shared: Mapping[str, Any], cost: CostModel
) -> list[int]:
    """Expand one chunk of a component-flood frontier round.

    Same protocol as :func:`mbfs_round_kernel` with a visited *set* mirror;
    returns locally-new vertices in scan order.
    """
    st = _sweep_state("components", args["token"], {"visited": set()})
    visited: set[int] = st["visited"]
    level = args["level"]
    if st["level"] < level:
        visited.update(args["delta"])
        st["level"] = level
    neighbors = _neighbor_lookup(shared[args["adj_key"]])
    scans = 0
    nxt: list[int] = []
    for u in args["chunk"]:
        scans += 1
        for w in neighbors(u):
            scans += 1
            if w not in visited:
                visited.add(w)
                nxt.append(w)
    cost.charge_many(scans, args["logn"])
    return nxt


def _chunks(seq: Sequence[Any], parts: int) -> list[Sequence[Any]]:
    """Split into exactly ``parts`` contiguous chunks (some possibly empty
    — every pinned worker must receive its round's delta regardless)."""
    n = len(seq)
    base, extra = divmod(n, parts)
    out = []
    idx = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        out.append(seq[idx : idx + size])
        idx += size
    return out


def parallel_multi_source_bfs(
    backend: ExecutionBackend,
    adj,
    sources: Sequence[int],
    *,
    targets: Mapping[int, Iterable[int]] | None = None,
    bound: int | None = None,
    n: int | None = None,
    cost: CostModel = NULL_COST_MODEL,
    adj_key: str = "mbfs:adj",
    adj_version: Any = None,
) -> dict[int, dict[int, int]]:
    """Backend-executed :func:`repro.queries.batch.multi_source_bfs`.

    Answers are exactly the sequential function's.  Charges are identical
    when ``targets is None``; with targets, source pruning happens at round
    granularity (instead of mid-round), which changes only the *charges* —
    callers therefore route here with targets only when ``cost`` is not
    recording (:func:`~repro.queries.batch.multi_source_bfs` enforces
    this).
    """
    if n is None:
        n = len(adj)
    logn = log2ceil(max(n, 2))
    backend.put_shared(adj_key, adj, version=adj_version)
    neighbors = _neighbor_lookup(adj)

    srcs = list(dict.fromkeys(sources))
    k = len(srcs)
    dist: dict[int, dict[int, int]] = {s: {s: 0} for s in srcs}
    if k == 0:
        return dist
    bit = {s: 1 << i for i, s in enumerate(srcs)}
    active = (1 << k) - 1
    want: dict[int, set[int]] | None = None
    if targets is not None:
        want = {}
        for s in srcs:
            ts = set(targets.get(s, ())) - {s}
            if ts:
                want[s] = ts
            else:
                active &= ~bit[s]
    reached: dict[int, int] = {}
    frontier: dict[int, int] = {}
    for s in srcs:
        reached[s] = reached.get(s, 0) | bit[s]
        frontier[s] = frontier.get(s, 0) | bit[s]
    cost.pfor_cost(k, 1, depth=logn)

    token = backend.new_token()
    # Discoveries not yet applied to worker mirrors (seed + inline rounds).
    pending_delta: list[tuple[int, int]] = list(frontier.items())
    level = 0
    while frontier and active:
        level += 1
        if bound is not None and level > bound:
            break
        items = list(frontier.items())
        nxt: dict[int, int] = {}
        new_bits: list[tuple[int, int, int]] = []  # (w, add, ...) for pruning

        def _merge(pairs: Iterable[tuple[int, int]]) -> None:
            for w, m in pairs:
                add = m & ~reached.get(w, 0)
                if not add:
                    continue
                reached[w] = reached.get(w, 0) | add
                nxt[w] = nxt.get(w, 0) | add
                mm = add
                while mm:
                    b = mm & -mm
                    mm ^= b
                    s = srcs[b.bit_length() - 1]
                    dist[s][w] = level
                    if want is not None:
                        new_bits.append((s, w, b))

        if len(items) < backend.min_items:
            # Tiny round: expand inline with the identical charge shape;
            # discoveries join pending_delta for the next dispatched round.
            scans = 0
            for u, mask in items:
                mask &= active
                if not mask:
                    continue
                scans += 1
                for w in neighbors(u):
                    scans += 1
                    m = mask & ~reached.get(w, 0)
                    if m:
                        _merge(((w, m),))
            cost.pfor_cost(scans, 1, depth=logn)
            backend._emulate(scans)
        else:
            parts = _chunks(items, backend.workers)
            payloads = [
                {
                    "token": token,
                    "level": level,
                    "delta": pending_delta,
                    "chunk": chunk,
                    "active": active,
                    "adj_key": adj_key,
                    "logn": logn,
                }
                for chunk in parts
            ]
            results = backend.map_chunks(
                mbfs_round_kernel,
                payloads,
                shared_keys=(adj_key,),
                pinned=True,
            )
            pending_delta = []
            if cost.enabled:
                with cost.parallel() as par:
                    for r in results:
                        if r.work:
                            par.absorb(r.work, r.depth)
            for r in results:
                _merge(r.value)
        if want is not None:
            # Round-granular pruning (see docstring).
            for s, w, _b in new_bits:
                ws = want.get(s)
                if ws is not None:
                    ws.discard(w)
                    if not ws:
                        active &= ~bit[s]
                        del want[s]
        pending_delta.extend(nxt.items())
        frontier = nxt
    return dist


def parallel_batch_components(
    backend: ExecutionBackend,
    adj,
    vertices: Iterable[int],
    *,
    n: int | None = None,
    cost: CostModel = NULL_COST_MODEL,
    adj_key: str = "mbfs:adj",
    adj_version: Any = None,
) -> dict[int, int]:
    """Backend-executed :func:`repro.queries.batch.batch_components`.

    Answers and charges are identical to the sequential function in every
    mode: the per-round ``scans`` count is invariant under frontier
    partitioning, so this path is safe even while charges are recorded.
    """
    if n is None:
        n = len(adj)
    logn = log2ceil(max(n, 2))
    backend.put_shared(adj_key, adj, version=adj_version)
    neighbors = _neighbor_lookup(adj)
    comp: dict[int, int] = {}
    for v0 in vertices:
        if v0 in comp:
            continue
        comp[v0] = v0
        token = backend.new_token()
        pending_delta: list[int] = [v0]
        frontier: list[int] = [v0]
        level = 0
        while frontier:
            level += 1
            nxt: list[int] = []
            if len(frontier) < backend.min_items:
                scans = 0
                for u in frontier:
                    scans += 1
                    for w in neighbors(u):
                        scans += 1
                        if w not in comp:
                            comp[w] = v0
                            nxt.append(w)
                cost.pfor_cost(scans, 1, depth=logn)
                backend._emulate(scans)
                pending_delta.extend(nxt)
            else:
                parts = _chunks(frontier, backend.workers)
                payloads = [
                    {
                        "token": token,
                        "level": level,
                        "delta": pending_delta,
                        "chunk": chunk,
                        "adj_key": adj_key,
                        "logn": logn,
                    }
                    for chunk in parts
                ]
                results = backend.map_chunks(
                    components_round_kernel,
                    payloads,
                    shared_keys=(adj_key,),
                    pinned=True,
                )
                pending_delta = []
                if cost.enabled:
                    with cost.parallel() as par:
                        for r in results:
                            if r.work:
                                par.absorb(r.work, r.depth)
                for r in results:
                    for w in r.value:
                        if w not in comp:
                            comp[w] = v0
                            nxt.append(w)
                pending_delta.extend(nxt)
            frontier = nxt
    return comp

"""Persistent process-pool execution backend.

Design notes
------------
* **Persistent workers.**  ``workers`` processes are forked (or spawned,
  where fork is unavailable) once at construction and reused for every
  dispatch; per-dispatch cost is one pickle round-trip per task, not a
  process start.
* **Per-worker pipes for tasks, one shared queue for results.**  Tasks are
  only ever sent to an *idle* worker (at most one in flight per worker),
  so a task send can never deadlock against a worker blocked on a result
  write: the target worker is always draining its pipe.  Results carry the
  task id, so completion order is irrelevant.
* **Deterministic charge merge.**  Each task executes under a fresh
  per-worker :class:`~repro.pram.cost.CostModel`; the worker reports the
  branch's ``(work, depth)`` alongside its value.  The parent merges the
  reports **in canonical task order** via
  :meth:`~repro.pram.cost.ParallelScope.absorb` — and since the merge rule
  is a commutative sum/max, the totals equal the sequential backend's no
  matter how the OS interleaves workers.
* **Broadcast cache.**  :meth:`put_shared` publishes large read-only
  payloads (e.g. an adjacency structure) to every worker once per version;
  kernels receive them by key instead of re-pickling per task.
* **Inline fallback.**  Closures / bound methods cannot ship to another
  process; ``map_scope`` detects this (:func:`~repro.parallel.backend.
  is_shippable`) and runs them inline, charge-identically — this is the
  documented boundary for the shared-mutation kernels in ``es_tree`` and
  ``shift_clustering``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from typing import Any, Callable, Iterable, Sequence

from ..pram.cost import CostModel, ParallelScope
from .backend import (
    ChunkResult,
    ExecutionBackend,
    _arg_size,
    is_shippable,
    wants_cost,
)

__all__ = ["ProcessPoolBackend", "PoolError"]

_QUEUE_POLL_S = 1.0
_JOIN_TIMEOUT_S = 5.0


class PoolError(RuntimeError):
    """A worker failed: task raised, or the process died."""


def _worker_main(worker_id: int, conn, results) -> None:
    """Worker loop: receive messages on ``conn``, put results on the shared
    ``results`` queue.  Runs until a ``stop`` message or EOF."""
    shared: dict[str, Any] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        tag = msg[0]
        if tag == "stop":
            return
        if tag == "put":
            _, key, value = msg
            shared[key] = value
            continue
        # ("task", task_id, mode, fn, payload, shared_keys, pass_cost, unit_cost)
        _, task_id, mode, fn, payload, shared_keys, pass_cost, unit_cost = msg
        t0 = time.perf_counter()
        try:
            shared_view = {k: shared[k] for k in shared_keys}
            if mode == "chunk":
                cm = CostModel()
                with cm.frame() as fr:
                    value = fn(payload, shared_view, cost=cm)
                if unit_cost > 0.0 and fr.work > 0:
                    time.sleep(fr.work * unit_cost)
                out: Any = (value, fr.work, fr.depth)
            else:  # mode == "scope": payload is a list of items
                triples = []
                for item in payload:
                    cm = CostModel()
                    with cm.frame() as fr:
                        value = fn(item, cost=cm) if pass_cost else fn(item)
                    if unit_cost > 0.0 and fr.work > 0:
                        time.sleep(fr.work * unit_cost)
                    triples.append((value, fr.work, fr.depth))
                out = triples
            busy = time.perf_counter() - t0
            results.put(("ok", worker_id, task_id, out, busy))
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            results.put(
                ("err", worker_id, task_id, repr(exc), traceback.format_exc())
            )


def _pick_context() -> mp.context.BaseContext:
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return mp.get_context("spawn")


class ProcessPoolBackend(ExecutionBackend):
    """Execute charged parallel regions across persistent worker processes.

    Parameters
    ----------
    workers:
        Number of worker processes (>= 1).  Note real CPU speedup also
        requires that many cores; the pinned ``unit_cost_s`` emulation
        measures schedule-level speedup regardless (see
        :mod:`repro.parallel.backend`).
    unit_cost_s / min_items:
        See :class:`~repro.parallel.backend.ExecutionBackend`.
    chunks_per_worker:
        Target number of chunks per worker for ``map_scope`` (over-split a
        little so stragglers rebalance); task granularity is observable via
        the bound metrics.
    """

    name = "process-pool"

    def __init__(
        self,
        workers: int,
        *,
        unit_cost_s: float = 0.0,
        min_items: int = 1,
        chunks_per_worker: int = 4,
    ) -> None:
        super().__init__(unit_cost_s=unit_cost_s, min_items=min_items)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.chunks_per_worker = max(1, int(chunks_per_worker))
        self._closed = False
        self._inflight = 0
        self._shared: dict[str, Any] = {}
        ctx = _pick_context()
        self._results = ctx.Queue()
        self._procs = []
        self._conns = []
        for wid in range(workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(wid, child_conn, self._results),
                daemon=True,
                name=f"repro-pool-{wid}",
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    # -- lifecycle --------------------------------------------------------

    @property
    def workers(self) -> int:
        return len(self._procs)

    def close(self) -> None:
        """Stop every worker, join the processes, release pipes (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + _JOIN_TIMEOUT_S
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self._results.close()

    def _check_open(self) -> None:
        if self._closed:
            raise PoolError("ProcessPoolBackend is closed")

    # -- shared payloads --------------------------------------------------

    def _publish_shared(self, key: str, value: Any) -> None:
        self._check_open()
        if self._inflight:
            raise PoolError("put_shared while tasks are in flight")
        self._shared[key] = value
        for conn in self._conns:
            conn.send(("put", key, value))

    def get_shared(self, key: str) -> Any:
        """Return the parent-side copy of a broadcast payload."""
        return self._shared[key]

    # -- dispatch core ----------------------------------------------------

    def _dispatch(
        self,
        mode: str,
        fn: Callable[..., Any],
        payloads: Sequence[Any],
        shared_keys: Sequence[str],
        pass_cost: bool,
        order: Sequence[int] | None = None,
        pinned: bool = False,
    ) -> tuple[list[Any], list[float], float]:
        """Run one task per payload; return (results in payload order,
        per-task busy seconds, wall seconds).

        ``order`` optionally permutes *dispatch* order (a test hook proving
        merge determinism); results always come back in payload order.
        ``pinned`` routes task ``i`` to worker ``i`` (required by kernels
        whose workers hold per-sweep mirror state); it needs
        ``len(payloads) <= workers`` and quiescent workers, both of which
        hold between frontier rounds.
        """
        self._check_open()
        n = len(payloads)
        results: list[Any] = [None] * n
        busy: list[float] = [0.0] * n
        if n == 0:
            return results, busy, 0.0
        if pinned and n > len(self._procs):
            raise ValueError("pinned dispatch needs len(payloads) <= workers")
        t0 = time.perf_counter()
        queue_order = list(order) if order is not None else list(range(n))
        if sorted(queue_order) != list(range(n)):
            raise ValueError("order must be a permutation of the task ids")
        pending = iter(queue_order)
        idle = list(range(len(self._procs)))
        outstanding = 0
        error: tuple[str, str] | None = None
        self._inflight = n

        def send_next() -> bool:
            nonlocal outstanding
            if error is not None or not idle:
                return False
            try:
                task_id = next(pending)
            except StopIteration:
                return False
            if pinned:
                wid = task_id
                idle.remove(wid)
            else:
                wid = idle.pop()
            self._conns[wid].send(
                (
                    "task",
                    task_id,
                    mode,
                    fn,
                    payloads[task_id],
                    tuple(shared_keys),
                    pass_cost,
                    self.unit_cost_s,
                )
            )
            outstanding += 1
            return True

        try:
            while send_next():
                pass
            done = 0
            while done < n:
                if outstanding == 0:
                    break  # error path: nothing left in flight
                try:
                    msg = self._results.get(timeout=_QUEUE_POLL_S)
                except Exception:
                    dead = [p.name for p in self._procs if not p.is_alive()]
                    if dead:
                        raise PoolError(
                            f"worker process(es) died: {', '.join(dead)}"
                        ) from None
                    continue
                outstanding -= 1
                if msg[0] == "ok":
                    _, wid, task_id, out, busy_s = msg
                    results[task_id] = out
                    busy[task_id] = busy_s
                    idle.append(wid)
                    done += 1
                    send_next()
                else:
                    _, wid, task_id, exc_repr, tb = msg
                    idle.append(wid)
                    done += 1
                    if error is None:
                        error = (exc_repr, tb)
        finally:
            self._inflight = 0
        wall = time.perf_counter() - t0
        if error is not None:
            exc_repr, tb = error
            raise PoolError(
                f"task raised {exc_repr} in worker\n--- worker traceback ---\n{tb}"
            )
        return results, busy, wall

    # -- execution API ----------------------------------------------------

    def map_scope(
        self,
        model: CostModel,
        scope: ParallelScope,
        items: Iterable[Any],
        fn: Callable[..., Any],
    ) -> list[Any]:
        """Fan branches across workers; absorb each (work, depth) into scope.

        Unshippable functions and undersized batches run inline (still
        charge-identical); shippable batches are split into contiguous
        chunks and merged back in canonical item order.
        """
        seq = list(items)
        if not seq:
            return []
        if not is_shippable(fn) or len(seq) < self.min_items:
            out = self._run_scope_inline(model, scope, seq, fn)
            self._record_fallback(len(seq))
            return out
        pass_cost = wants_cost(fn)
        chunk = max(
            1,
            self.min_items,
            -(-len(seq) // (self.workers * self.chunks_per_worker)),
        )
        payloads = [seq[i : i + chunk] for i in range(0, len(seq), chunk)]
        raw, busy, wall = self._dispatch("scope", fn, payloads, (), pass_cost)
        out: list[Any] = []
        merge = model.enabled
        for triples in raw:
            for value, work, depth in triples:
                out.append(value)
                if merge:
                    scope.absorb(work, depth)
        self._record_dispatch(
            len(payloads), [len(p) for p in payloads], wall, sum(busy)
        )
        return out

    def map_chunks(
        self,
        fn: Callable[..., Any],
        chunk_args: Sequence[Any],
        *,
        shared_keys: Sequence[str] = (),
        cost_enabled: bool = True,
        order: Sequence[int] | None = None,
        pinned: bool = False,
    ) -> list[ChunkResult]:
        """Run each kernel chunk on a worker against broadcast shared state."""
        raw, busy, wall = self._dispatch(
            "chunk", fn, list(chunk_args), shared_keys, True, order, pinned
        )
        out = [
            ChunkResult(value, work, depth, b)
            for (value, work, depth), b in zip(raw, busy)
        ]
        self._record_dispatch(
            len(out), [_arg_size(a) for a in chunk_args], wall, sum(busy)
        )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        state = "closed" if self._closed else "open"
        return (
            f"ProcessPoolBackend(workers={self.workers}, "
            f"unit_cost_s={self.unit_cost_s}, {state}, pid={os.getpid()})"
        )

"""Persistent process-pool execution backend.

Design notes
------------
* **Persistent workers.**  ``workers`` processes are forked (or spawned,
  where fork is unavailable) once at construction and reused for every
  dispatch; per-dispatch cost is one pickle round-trip per task, not a
  process start.
* **One duplex pipe per worker — tasks down, results back up.**  Tasks are
  only ever sent to an *idle* worker (at most one in flight per worker),
  so a task send can never deadlock against a worker blocked on a result
  write: the target worker is always draining its pipe.  Results carry the
  task id, so completion order is irrelevant.  There is deliberately *no*
  shared result queue: a shared ``mp.Queue`` serialises writers through a
  cross-process lock, and a worker SIGKILLed while its feeder thread
  holds that lock would wedge every surviving worker's results forever.
  With per-worker pipes a kill can only tear that worker's own channel,
  which the parent observes as EOF — i.e. an unambiguous death signal.
* **Deterministic charge merge.**  Each task executes under a fresh
  per-worker :class:`~repro.pram.cost.CostModel`; the worker reports the
  branch's ``(work, depth)`` alongside its value.  The parent merges the
  reports **in canonical task order** via
  :meth:`~repro.pram.cost.ParallelScope.absorb` — and since the merge rule
  is a commutative sum/max, the totals equal the sequential backend's no
  matter how the OS interleaves workers.
* **Broadcast cache.**  :meth:`put_shared` publishes large read-only
  payloads (e.g. an adjacency structure) to every worker once per version;
  kernels receive them by key instead of re-pickling per task.
* **Inline fallback.**  Closures / bound methods cannot ship to another
  process; ``map_scope`` detects this (:func:`~repro.parallel.backend.
  is_shippable`) and runs them inline, charge-identically — this is the
  documented boundary for the shared-mutation kernels in ``es_tree`` and
  ``shift_clustering``.
* **Worker supervision.**  A worker that *dies* (OOM-kill, segfault,
  ``kill -9``) is detected, its in-flight task identified and requeued,
  and a replacement forked with backoff — mirroring the shard supervision
  in :mod:`repro.resilience.manager`.  A typed :class:`WorkerCrashed`
  (carrying the task index and function label) surfaces only once the
  per-dispatch restart budget is exhausted, the same task has killed
  multiple workers (a poison task), or the dispatch is *pinned*: pinned
  rounds carry per-sweep mirror deltas a mid-sweep replacement never saw,
  so the sweep must fail fast — the pool itself still recovers (the
  replacement is forked and re-seeded with the broadcast payloads before
  the error is raised) and the *next* sweep runs clean.  Supervision is
  uncharged control plane: restarts never touch the cost model.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from collections import deque
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Iterable, Sequence

from ..pram.cost import CostModel, ParallelScope
from .backend import (
    ChunkResult,
    ExecutionBackend,
    _arg_size,
    is_shippable,
    wants_cost,
)

__all__ = ["ProcessPoolBackend", "PoolError", "WorkerCrashed"]

_QUEUE_POLL_S = 1.0
_JOIN_TIMEOUT_S = 5.0


class PoolError(RuntimeError):
    """A worker failed: task raised, or the process died."""


class WorkerCrashed(PoolError):
    """Worker process(es) died and supervision could not absorb it.

    Carries exactly *which* work was lost so callers (and tests) can
    requeue or quarantine precisely instead of guessing:

    Attributes
    ----------
    workers:    process names of the dead workers
    task_ids:   payload indices that were in flight on them (may be empty
                if a worker died idle and the restart budget was already
                spent)
    fn_name:    the dispatched function's name
    restarts:   how many supervised restarts this dispatch performed
                before giving up
    """

    def __init__(self, message: str, *, workers: list[str],
                 task_ids: list[int], fn_name: str,
                 restarts: int) -> None:
        super().__init__(message)
        self.workers = list(workers)
        self.task_ids = list(task_ids)
        self.fn_name = fn_name
        self.restarts = restarts


def _worker_main(worker_id: int, conn) -> None:
    """Worker loop: receive messages on ``conn``, send results back on the
    same duplex pipe.  Runs until a ``stop`` message or EOF."""
    shared: dict[str, Any] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        tag = msg[0]
        if tag == "stop":
            return
        if tag == "put":
            _, key, value = msg
            shared[key] = value
            continue
        # ("task", gen, task_id, mode, fn, payload, shared_keys,
        #  pass_cost, unit_cost) — ``gen`` is the dispatch generation,
        # echoed back so the parent can drop replies that belong to an
        # earlier, aborted dispatch
        _, gen, task_id, mode, fn, payload, shared_keys, pass_cost, unit_cost = msg
        t0 = time.perf_counter()
        try:
            shared_view = {k: shared[k] for k in shared_keys}
            if mode == "chunk":
                cm = CostModel()
                with cm.frame() as fr:
                    value = fn(payload, shared_view, cost=cm)
                if unit_cost > 0.0 and fr.work > 0:
                    time.sleep(fr.work * unit_cost)
                out: Any = (value, fr.work, fr.depth)
            else:  # mode == "scope": payload is a list of items
                triples = []
                for item in payload:
                    cm = CostModel()
                    with cm.frame() as fr:
                        value = fn(item, cost=cm) if pass_cost else fn(item)
                    if unit_cost > 0.0 and fr.work > 0:
                        time.sleep(fr.work * unit_cost)
                    triples.append((value, fr.work, fr.depth))
                out = triples
            busy = time.perf_counter() - t0
            reply = ("ok", worker_id, gen, task_id, out, busy)
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            reply = ("err", worker_id, gen, task_id, repr(exc),
                     traceback.format_exc())
        try:
            conn.send(reply)
        except OSError:  # parent is gone; nothing left to report to
            return


def _pick_context() -> mp.context.BaseContext:
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return mp.get_context("spawn")


class ProcessPoolBackend(ExecutionBackend):
    """Execute charged parallel regions across persistent worker processes.

    Parameters
    ----------
    workers:
        Number of worker processes (>= 1).  Note real CPU speedup also
        requires that many cores; the pinned ``unit_cost_s`` emulation
        measures schedule-level speedup regardless (see
        :mod:`repro.parallel.backend`).
    unit_cost_s / min_items:
        See :class:`~repro.parallel.backend.ExecutionBackend`.
    chunks_per_worker:
        Target number of chunks per worker for ``map_scope`` (over-split a
        little so stragglers rebalance); task granularity is observable via
        the bound metrics.
    restart_budget:
        Supervised worker replacements allowed *per dispatch* before a
        dead worker surfaces as :class:`WorkerCrashed`.
    restart_backoff_s:
        Base sleep before forking a replacement (doubles per restart
        within one dispatch, like the shard supervisor's backoff).
    task_retry_limit:
        How many workers one task may kill before it is treated as a
        poison task and surfaced instead of requeued again.
    """

    name = "process-pool"

    def __init__(
        self,
        workers: int,
        *,
        unit_cost_s: float = 0.0,
        min_items: int = 1,
        chunks_per_worker: int = 4,
        restart_budget: int = 3,
        restart_backoff_s: float = 0.05,
        task_retry_limit: int = 2,
    ) -> None:
        super().__init__(unit_cost_s=unit_cost_s, min_items=min_items)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.chunks_per_worker = max(1, int(chunks_per_worker))
        self.restart_budget = max(0, int(restart_budget))
        self.restart_backoff_s = max(0.0, float(restart_backoff_s))
        self.task_retry_limit = max(1, int(task_retry_limit))
        self._closed = False
        self._inflight = 0
        self._gen = 0           # dispatch generation (stale-reply filter)
        self._shared: dict[str, Any] = {}
        self._ctx = _pick_context()
        self._procs = []
        self._conns = []
        for wid in range(workers):
            proc, conn = self._spawn(wid)
            self._procs.append(proc)
            self._conns.append(conn)

    def _spawn(self, wid: int):
        """Fork one worker process; returns ``(process, parent_conn)``."""
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(wid, child_conn),
            daemon=True,
            name=f"repro-pool-{wid}",
        )
        proc.start()
        child_conn.close()
        return proc, parent_conn

    def _respawn(self, wid: int) -> None:
        """Replace a dead worker in-place and re-seed its broadcast cache.

        Uncharged control plane: touches no cost model state.
        """
        old_proc, old_conn = self._procs[wid], self._conns[wid]
        old_proc.join(timeout=1.0)
        if old_proc.is_alive():  # pragma: no cover - refuses to die
            old_proc.terminate()
            old_proc.join(timeout=1.0)
        try:
            old_conn.close()
        except OSError:  # pragma: no cover
            pass
        proc, conn = self._spawn(wid)
        self._procs[wid] = proc
        self._conns[wid] = conn
        # replacement must see the same broadcast payloads its siblings
        # hold (the parent-side version cache is unchanged, so put_shared
        # callers will rightly skip re-publishing)
        for key, value in self._shared.items():
            conn.send(("put", key, value))
        self._record_worker_restart()

    # -- lifecycle --------------------------------------------------------

    @property
    def workers(self) -> int:
        return len(self._procs)

    def close(self) -> None:
        """Stop every worker, join the processes, release pipes (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + _JOIN_TIMEOUT_S
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _check_open(self) -> None:
        if self._closed:
            raise PoolError("ProcessPoolBackend is closed")

    # -- shared payloads --------------------------------------------------

    def _publish_shared(self, key: str, value: Any) -> None:
        self._check_open()
        if self._inflight:
            raise PoolError("put_shared while tasks are in flight")
        self._shared[key] = value
        for conn in self._conns:
            conn.send(("put", key, value))

    def get_shared(self, key: str) -> Any:
        """Return the parent-side copy of a broadcast payload."""
        return self._shared[key]

    # -- dispatch core ----------------------------------------------------

    def _dispatch(
        self,
        mode: str,
        fn: Callable[..., Any],
        payloads: Sequence[Any],
        shared_keys: Sequence[str],
        pass_cost: bool,
        order: Sequence[int] | None = None,
        pinned: bool = False,
    ) -> tuple[list[Any], list[float], float]:
        """Run one task per payload; return (results in payload order,
        per-task busy seconds, wall seconds).

        ``order`` optionally permutes *dispatch* order (a test hook proving
        merge determinism); results always come back in payload order.
        ``pinned`` routes task ``i`` to worker ``i`` (required by kernels
        whose workers hold per-sweep mirror state); it needs
        ``len(payloads) <= workers`` and quiescent workers, both of which
        hold between frontier rounds.

        **Supervision.**  A worker that dies mid-dispatch has its in-flight
        task requeued and is replaced (with backoff) up to
        ``restart_budget`` times per dispatch; past the budget — or when
        the same task keeps killing workers, or the dispatch is pinned
        (mirror state is unrecoverable mid-sweep) — a :class:`WorkerCrashed`
        naming the lost task indices is raised.  The pool itself is always
        healed before the error surfaces, so later dispatches still work.
        """
        self._check_open()
        n = len(payloads)
        results: list[Any] = [None] * n
        busy: list[float] = [0.0] * n
        if n == 0:
            return results, busy, 0.0
        if pinned and n > len(self._procs):
            raise ValueError("pinned dispatch needs len(payloads) <= workers")
        t0 = time.perf_counter()
        queue_order = list(order) if order is not None else list(range(n))
        if sorted(queue_order) != list(range(n)):
            raise ValueError("order must be a permutation of the task ids")
        pending = deque(queue_order)
        idle = list(range(len(self._procs)))
        inflight: dict[int, int] = {}       # wid -> task_id
        task_kills: dict[int, int] = {}     # task_id -> workers it killed
        outstanding = 0
        restarts = 0
        backoff = self.restart_backoff_s
        error: tuple[str, str] | None = None
        fn_name = getattr(fn, "__name__", repr(fn))
        self._inflight = n
        # a dispatch aborted by WorkerCrashed can leave completed replies
        # buffered in surviving workers' pipes (or tasks still running);
        # the generation tag lets this dispatch drop those on sight
        self._gen += 1
        gen = self._gen

        def crash(workers: list[str], task_ids: list[int]) -> None:
            raise WorkerCrashed(
                f"worker process(es) died: {', '.join(workers)} "
                f"(in-flight {fn_name} task(s) {task_ids or 'none'}, "
                f"{restarts} supervised restart(s) used"
                f"{', pinned dispatch' if pinned else ''})",
                workers=workers, task_ids=task_ids, fn_name=fn_name,
                restarts=restarts,
            )

        def replace(wid: int, *, budgeted: bool) -> None:
            """Respawn ``wid``; ``budgeted`` restarts sleep and count."""
            nonlocal restarts, backoff
            if budgeted:
                if backoff > 0.0:
                    time.sleep(backoff)
                backoff = (backoff * 2.0) or self.restart_backoff_s
                restarts += 1
            self._respawn(wid)

        def supervise(dead_wids: list[int]) -> None:
            """Requeue the dead workers' tasks and fork replacements, or
            surface :class:`WorkerCrashed` when recovery is off the table."""
            nonlocal outstanding
            names = [self._procs[w].name for w in dead_wids]
            lost: list[int] = []
            for wid in dead_wids:
                task = inflight.pop(wid, None)
                if task is not None:
                    lost.append(task)
                    outstanding -= 1
                    task_kills[task] = task_kills.get(task, 0) + 1
            poison = [t for t in lost
                      if task_kills[t] >= self.task_retry_limit]
            recoverable = (not pinned and not poison
                           and restarts + len(dead_wids)
                           <= self.restart_budget)
            for wid in dead_wids:
                replace(wid, budgeted=recoverable)
                if wid not in idle and wid not in inflight:
                    idle.append(wid)
            if not recoverable:
                crash(names, poison or lost)
            pending.extendleft(reversed(lost))

        def send_next() -> bool:
            nonlocal outstanding
            if error is not None or not idle or not pending:
                return False
            task_id = pending[0]
            wid = task_id if pinned else idle[-1]
            if pinned and wid not in idle:
                return False
            if not self._procs[wid].is_alive():
                # died while idle: replace before assigning work; pinned
                # dispatches tolerate this too — the replacement joins
                # before any of this dispatch's deltas were sent to it
                if restarts >= self.restart_budget:
                    name = self._procs[wid].name
                    replace(wid, budgeted=False)
                    crash([name], [])
                replace(wid, budgeted=True)
            pending.popleft()
            idle.remove(wid)
            try:
                self._conns[wid].send(
                    (
                        "task",
                        gen,
                        task_id,
                        mode,
                        fn,
                        payloads[task_id],
                        tuple(shared_keys),
                        pass_cost,
                        self.unit_cost_s,
                    )
                )
            except OSError:
                # died between the liveness check and the send
                pending.appendleft(task_id)
                idle.append(wid)
                if restarts >= self.restart_budget:
                    name = self._procs[wid].name
                    replace(wid, budgeted=False)
                    crash([name], [task_id])
                replace(wid, budgeted=True)
                return True  # retry on the replacement next iteration
            inflight[wid] = task_id
            outstanding += 1
            return True

        try:
            while send_next():
                pass
            done = 0
            while done < n:
                if outstanding == 0:
                    if error is None and pending:
                        while send_next():
                            pass
                        if outstanding > 0:
                            continue
                    break  # error path: nothing left in flight
                ready = mp_connection.wait(
                    [self._conns[w] for w in inflight],
                    timeout=_QUEUE_POLL_S,
                )
                if not ready:
                    # belt-and-braces: a death normally surfaces as EOF on
                    # the worker's pipe, but sweep liveness anyway
                    dead = [wid for wid in list(inflight)
                            if not self._procs[wid].is_alive()]
                    if dead:
                        supervise(dead)
                        while send_next():
                            pass
                    continue
                for conn in ready:
                    wid = next((w for w in list(inflight)
                                if self._conns[w] is conn), None)
                    if wid is None:
                        # conn was replaced by supervision this round
                        continue
                    try:
                        msg = conn.recv()
                    except (EOFError, OSError):
                        # worker died: its duplex pipe tore — requeue
                        supervise([wid])
                        while send_next():
                            pass
                        continue
                    task_id = msg[3]
                    if msg[2] != gen or inflight.get(wid) != task_id:
                        # stale: a reply from an earlier aborted dispatch,
                        # or for a task supervision already requeued
                        continue
                    del inflight[wid]
                    outstanding -= 1
                    if msg[0] == "ok":
                        _, _, _, _, out, busy_s = msg
                        results[task_id] = out
                        busy[task_id] = busy_s
                        idle.append(wid)
                        done += 1
                        send_next()
                    else:
                        _, _, _, _, exc_repr, tb = msg
                        idle.append(wid)
                        done += 1
                        if error is None:
                            error = (exc_repr, tb)
        finally:
            self._inflight = 0
        wall = time.perf_counter() - t0
        if error is not None:
            exc_repr, tb = error
            raise PoolError(
                f"task raised {exc_repr} in worker\n--- worker traceback ---\n{tb}"
            )
        return results, busy, wall

    # -- execution API ----------------------------------------------------

    def map_scope(
        self,
        model: CostModel,
        scope: ParallelScope,
        items: Iterable[Any],
        fn: Callable[..., Any],
    ) -> list[Any]:
        """Fan branches across workers; absorb each (work, depth) into scope.

        Unshippable functions and undersized batches run inline (still
        charge-identical); shippable batches are split into contiguous
        chunks and merged back in canonical item order.
        """
        seq = list(items)
        if not seq:
            return []
        if not is_shippable(fn) or len(seq) < self.min_items:
            out = self._run_scope_inline(model, scope, seq, fn)
            self._record_fallback(len(seq))
            return out
        pass_cost = wants_cost(fn)
        chunk = max(
            1,
            self.min_items,
            -(-len(seq) // (self.workers * self.chunks_per_worker)),
        )
        payloads = [seq[i : i + chunk] for i in range(0, len(seq), chunk)]
        raw, busy, wall = self._dispatch("scope", fn, payloads, (), pass_cost)
        out: list[Any] = []
        merge = model.enabled
        for triples in raw:
            for value, work, depth in triples:
                out.append(value)
                if merge:
                    scope.absorb(work, depth)
        self._record_dispatch(
            len(payloads), [len(p) for p in payloads], wall, sum(busy)
        )
        return out

    def map_chunks(
        self,
        fn: Callable[..., Any],
        chunk_args: Sequence[Any],
        *,
        shared_keys: Sequence[str] = (),
        cost_enabled: bool = True,
        order: Sequence[int] | None = None,
        pinned: bool = False,
    ) -> list[ChunkResult]:
        """Run each kernel chunk on a worker against broadcast shared state."""
        raw, busy, wall = self._dispatch(
            "chunk", fn, list(chunk_args), shared_keys, True, order, pinned
        )
        out = [
            ChunkResult(value, work, depth, b)
            for (value, work, depth), b in zip(raw, busy)
        ]
        self._record_dispatch(
            len(out), [_arg_size(a) for a in chunk_args], wall, sum(busy)
        )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        state = "closed" if self._closed else "open"
        return (
            f"ProcessPoolBackend(workers={self.workers}, "
            f"unit_cost_s={self.unit_cost_s}, {state}, pid={os.getpid()})"
        )

"""Real parallel execution for the charged work/depth model.

``repro.pram`` charges parallelism; this package executes it.  See
:mod:`repro.parallel.backend` for the contract and ``docs/parallel.md``
for the design discussion.
"""

from .backend import (
    ChunkResult,
    ExecutionBackend,
    SequentialBackend,
    is_shippable,
    resolve_backend,
    wants_cost,
)
from .kernels import (
    parallel_batch_components,
    parallel_multi_source_bfs,
)
from .pool import PoolError, ProcessPoolBackend, WorkerCrashed

__all__ = [
    "ChunkResult",
    "ExecutionBackend",
    "SequentialBackend",
    "ProcessPoolBackend",
    "PoolError",
    "WorkerCrashed",
    "is_shippable",
    "wants_cost",
    "resolve_backend",
    "parallel_batch_components",
    "parallel_multi_source_bfs",
]

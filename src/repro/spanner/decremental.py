"""Decremental (2k−1)-spanner (Lemma 3.3).

The spanner has two parts:

* **intra-cluster edges** — the original-graph edges of the shortest-path
  forest maintained by :class:`~repro.spanner.shift_clustering.ShiftedClustering`,
* **inter-cluster edges** — one representative edge per nonempty
  ``INTERCLUSTER[(v, c)]`` bucket with ``c != CLUSTER(v)`` (the paper's hash
  table of hash tables).

Each deletion batch updates the clustering, moves bucket memberships for
every endpoint whose cluster changed, refreshes representatives of touched
buckets, and reports the net spanner delta ``(δH_ins, δH_del)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.dynamic_graph import Edge, norm_edge
from repro.pram.cost import NULL_COST_MODEL, CostModel
from repro.spanner.shift_clustering import (
    ShiftedClustering,
    _edge_array,
    sample_shifts,
)

__all__ = ["DecrementalSpanner"]


class DecrementalSpanner:
    """Lemma 3.3 data structure.

    Parameters
    ----------
    n, edges:
        The initial unweighted simple graph.
    k:
        Stretch parameter; the spanner has stretch ``2k - 1`` w.h.p. and
        O(n^{1+1/k}) expected edges.
    seed:
        Randomness for the exponential shifts.
    """

    def __init__(
        self,
        n: int,
        edges,
        k: int,
        seed: int | None = None,
        cost: CostModel = NULL_COST_MODEL,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.n = n
        self.k = k
        self._cost = cost
        earr = _edge_array(edges)
        rng = np.random.default_rng(seed)
        beta = math.log(10 * max(n, 2)) / k
        deltas = sample_shifts(n, beta=beta, cap=float(k), rng=rng)
        self.deltas = deltas
        self.sc = ShiftedClustering(n, earr, deltas, cost=cost)

        # Array-native initialization.  The per-edge bucket fills and the
        # initial representative sweep are grouped array reductions; the
        # dict-of-sets mutation state (``_adj``/``_inter``) materializes
        # lazily on the first deletion batch (or invariant check), so
        # instances that are merged away untouched never build it.
        eu, ev = earr[:, 0], earr[:, 1]
        cl = np.asarray(self.sc.cluster, dtype=np.int64) if n else (
            np.zeros(0, dtype=np.int64)
        )
        # bucket memberships: (owner v, cluster c of member, member u)
        bv = np.concatenate([eu, ev])
        bc = cl[np.concatenate([ev, eu])] if n else bv
        bm = np.concatenate([ev, eu])
        self._tables = None  # lazy (_adj, _inter); see _materialize_tables
        self._members = (bv, bc, bm)

        # chosen representative neighbor per eligible bucket: the minimum
        # member of every (v, c) group with c != CLUSTER(v)
        elig = bc != cl[bv] if len(bv) else bv.astype(bool)
        v_e, c_e, m_e = bv[elig], bc[elig], bm[elig]
        order = np.lexsort((m_e, c_e, v_e))
        v_s, c_s, m_s = v_e[order], c_e[order], m_e[order]
        if len(v_s):
            head = np.ones(len(v_s), dtype=bool)
            head[1:] = (v_s[1:] != v_s[:-1]) | (c_s[1:] != c_s[:-1])
            idx = np.nonzero(head)[0]
            rv, rc, rm = v_s[idx], c_s[idx], m_s[idx]
        else:
            rv = rc = rm = v_s
        self._rep: dict[tuple[int, int], int] = dict(
            zip(zip(rv.tolist(), rc.tolist()), rm.tolist())
        )
        # spanner edge refcounts: forest edges (one each) plus the
        # representative edges (normalized; a rep edge may be chosen from
        # both sides, hence the multiset count)
        from collections import Counter

        counts = Counter(self.sc.tree_edges())
        counts.update(
            zip(
                np.minimum(rv, rm).tolist(),
                np.maximum(rv, rm).tolist(),
            )
        )
        self._span: dict[Edge, int] = dict(counts)
        # sequential composition of the per-rep hash charges: one per
        # bucket that assigned a representative (= every eligible bucket)
        charged = len(rv)
        cost.charge_many(work=charged, depth=charged)

    # -- lazy mutation tables ----------------------------------------------

    def _materialize_tables(self) -> None:
        """Build ``_adj`` (adjacency sets) and ``_inter`` (bucket sets)
        from the initial edge arrays.  Clusters cannot have changed before
        the first mutation reaches these tables — every cluster change
        flows through :meth:`batch_delete`, which touches them first."""
        bv, bc, bm = self._members
        order = np.lexsort((bm, bc, bv))
        v_s, c_s, m_s = bv[order], bc[order], bm[order]
        members = m_s.tolist()
        adj: list[set[int]] = [set() for _ in range(self.n)]
        inter: dict[tuple[int, int], set[int]] = {}
        if len(v_s):
            head = np.ones(len(v_s), dtype=bool)
            head[1:] = (v_s[1:] != v_s[:-1]) | (c_s[1:] != c_s[:-1])
            starts = np.nonzero(head)[0].tolist()
            bounds = starts + [len(members)]
            keys = list(zip(v_s[head].tolist(), c_s[head].tolist()))
            for i, key in enumerate(keys):
                inter[key] = set(members[bounds[i]:bounds[i + 1]])
            # per-owner adjacency: each neighbor appears in exactly one of
            # v's buckets, so v's whole slice is already duplicate-free
            vhead = np.ones(len(v_s), dtype=bool)
            vhead[1:] = v_s[1:] != v_s[:-1]
            vstarts = np.nonzero(vhead)[0].tolist()
            vbounds = vstarts + [len(members)]
            for j, v in enumerate(v_s[vhead].tolist()):
                adj[v] = set(members[vbounds[j]:vbounds[j + 1]])
        self._tables = (adj, inter)

    @property
    def _adj(self) -> list[set[int]]:
        if self._tables is None:
            self._materialize_tables()
        return self._tables[0]

    @property
    def _inter(self) -> dict[tuple[int, int], set[int]]:
        if self._tables is None:
            self._materialize_tables()
        return self._tables[1]

    # -- bucket / refcount plumbing ----------------------------------------

    def _bucket(self, v: int, c: int) -> set[int]:
        return self._inter.setdefault((v, c), set())

    def _inc(self, e: Edge, delta: tuple[set, set] | None) -> None:
        cnt = self._span.get(e, 0)
        self._span[e] = cnt + 1
        if cnt == 0 and delta is not None:
            ins, dels = delta
            if e in dels:
                dels.remove(e)
            else:
                ins.add(e)

    def _dec(self, e: Edge, delta: tuple[set, set] | None) -> None:
        cnt = self._span[e]
        if cnt == 1:
            del self._span[e]
            if delta is not None:
                ins, dels = delta
                if e in ins:
                    ins.remove(e)
                else:
                    dels.add(e)
        else:
            self._span[e] = cnt - 1

    def _refresh(self, key: tuple[int, int], delta) -> int:
        """Reconcile one bucket's representative with its contents and
        eligibility (c != CLUSTER(v)).

        Returns the number of hash-op charges incurred (1 when a new
        representative was assigned, else 0) so call sites can charge a
        whole refresh round in one aggregate call.
        """
        v, c = key
        bucket = self._inter.get(key)
        eligible = bool(bucket) and c != self.sc.cluster_of(v)
        cur = self._rep.get(key)
        if not eligible:
            if cur is not None:
                del self._rep[key]
                self._dec(norm_edge(v, cur), delta)
            if not bucket and key in self._inter:
                del self._inter[key]
            return 0
        if cur is not None and cur in bucket:
            return 0
        new = min(bucket)
        self._rep[key] = new
        if cur is not None:
            self._dec(norm_edge(v, cur), delta)
        self._inc(norm_edge(v, new), delta)
        return 1

    # -- queries ---------------------------------------------------------------

    def spanner_edges(self) -> set[Edge]:
        """The maintained (2k−1)-spanner."""
        return set(self._span)

    def spanner_size(self) -> int:
        """Number of edges in the maintained spanner."""
        return len(self._span)

    def cluster_of(self, v: int) -> int:
        """Current cluster (center vertex) of ``v``."""
        return self.sc.cluster_of(v)

    # -- updates ---------------------------------------------------------------

    def batch_delete(self, edges) -> tuple[set[Edge], set[Edge]]:
        """Delete a batch of edges; returns the net ``(δH_ins, δH_del)``."""
        edges = [norm_edge(u, v) for u, v in edges]
        ins: set[Edge] = set()
        dels: set[Edge] = set()
        delta = (ins, dels)
        touched: set[tuple[int, int]] = set()

        # 1. remove edges from adjacency and buckets (pre-cascade clusters).
        # One parallel round: every branch does the same 2 hash ops, so the
        # region's (sum-work, max-depth) total is charged in one call.
        adj = self._adj
        inter = self._inter
        cluster = self.sc.cluster
        for u, v in edges:
            if v not in adj[u]:
                raise KeyError(f"edge {(u, v)} not present")
            adj[u].remove(v)
            adj[v].remove(u)
            cu, cv = cluster[u], cluster[v]
            inter.setdefault((u, cv), set()).discard(v)
            inter.setdefault((v, cu), set()).discard(u)
            touched.add((u, cv))
            touched.add((v, cu))
        self._cost.pfor_cost(len(edges), 2, depth=1)

        # 2. clustering/ES update
        tree_changes, cluster_changes = self.sc.batch_delete(edges)

        # 3. intra-cluster forest delta
        for ch in tree_changes:
            if ch.old is not None:
                self._dec(ch.old, delta)
            if ch.new is not None:
                self._inc(ch.new, delta)

        # 4. bucket moves for every cluster change.  Events are applied in
        # order (a vertex may change cluster more than once per batch) but
        # charged as one parallel round per change over its neighborhood,
        # with the changes themselves also grouped in parallel — matching
        # the paper's per-cascade-wave accounting.  All branches charge the
        # same 2 hash ops, so the nested regions' total (work = 2 * sum of
        # neighborhood sizes, depth = max over branches = 1) collapses to a
        # single aggregate charge.
        moved = 0
        for ch in cluster_changes:
            v, oldc, newc = ch.vertex, ch.old_cluster, ch.new_cluster
            for u in sorted(adj[v]):
                inter.setdefault((u, oldc), set()).discard(v)
                inter.setdefault((u, newc), set()).add(v)
                touched.add((u, oldc))
                touched.add((u, newc))
                moved += 1
            # v's own buckets flip eligibility
            touched.add((v, oldc))
            touched.add((v, newc))
        self._cost.pfor_cost(moved, 2, depth=1)

        # 5. refresh every touched bucket — one parallel round; only the
        # refreshes that assigned a new representative charge a hash op.
        refreshed = 0
        for key in sorted(touched):
            refreshed += self._refresh(key, delta)
        self._cost.pfor_cost(refreshed, 1, depth=1)

        return ins, dels

    # -- invariant check (used by tests) ----------------------------------------

    def check_invariants(self) -> None:
        """Verify bucket/representative/refcount consistency (O(n + m))."""
        # buckets partition the adjacency by neighbor cluster
        want: dict[tuple[int, int], set[int]] = {}
        for v in range(self.n):
            for u in self._adj[v]:
                want.setdefault((v, self.sc.cluster_of(u)), set()).add(u)
        got = {k: s for k, s in self._inter.items() if s}
        assert got == want, "bucket contents diverged"
        # representatives: exactly the eligible buckets, member of bucket
        for key, s in want.items():
            v, c = key
            if c != self.sc.cluster_of(v):
                assert key in self._rep, f"missing rep for {key}"
                assert self._rep[key] in s
            else:
                assert key not in self._rep
        assert set(self._rep) <= set(want)
        # refcounts = forest + representative multiset
        want_counts: dict[Edge, int] = {}
        for e in self.sc.tree_edges():
            want_counts[e] = want_counts.get(e, 0) + 1
        for (v, _c), u in self._rep.items():
            e = norm_edge(v, u)
            want_counts[e] = want_counts.get(e, 0) + 1
        assert want_counts == self._span, "refcounts diverged"

"""Decremental (2k−1)-spanner (Lemma 3.3).

The spanner has two parts:

* **intra-cluster edges** — the original-graph edges of the shortest-path
  forest maintained by :class:`~repro.spanner.shift_clustering.ShiftedClustering`,
* **inter-cluster edges** — one representative edge per nonempty
  ``INTERCLUSTER[(v, c)]`` bucket with ``c != CLUSTER(v)`` (the paper's hash
  table of hash tables).

Each deletion batch updates the clustering, moves bucket memberships for
every endpoint whose cluster changed, refreshes representatives of touched
buckets, and reports the net spanner delta ``(δH_ins, δH_del)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.dynamic_graph import Edge, norm_edge
from repro.pram.cost import NULL_COST_MODEL, CostModel
from repro.spanner.shift_clustering import ShiftedClustering, sample_shifts

__all__ = ["DecrementalSpanner"]


class DecrementalSpanner:
    """Lemma 3.3 data structure.

    Parameters
    ----------
    n, edges:
        The initial unweighted simple graph.
    k:
        Stretch parameter; the spanner has stretch ``2k - 1`` w.h.p. and
        O(n^{1+1/k}) expected edges.
    seed:
        Randomness for the exponential shifts.
    """

    def __init__(
        self,
        n: int,
        edges,
        k: int,
        seed: int | None = None,
        cost: CostModel = NULL_COST_MODEL,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.n = n
        self.k = k
        self._cost = cost
        edges = [norm_edge(u, v) for u, v in edges]
        rng = np.random.default_rng(seed)
        beta = math.log(10 * max(n, 2)) / k
        deltas = sample_shifts(n, beta=beta, cap=float(k), rng=rng)
        self.deltas = deltas
        self.sc = ShiftedClustering(n, edges, deltas, cost=cost)

        self._adj: list[set[int]] = [set() for _ in range(n)]
        # bucket (v, c) -> set of neighbors u of v with CLUSTER(u) == c
        self._inter: dict[tuple[int, int], set[int]] = {}
        # chosen representative neighbor per eligible bucket
        self._rep: dict[tuple[int, int], int] = {}
        # spanner edge refcounts (forest edge and/or representative(s))
        self._span: dict[Edge, int] = {}

        for u, v in edges:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._bucket(u, self.sc.cluster_of(v)).add(v)
            self._bucket(v, self.sc.cluster_of(u)).add(u)
        for e in self.sc.tree_edges():
            self._inc(e, None)
        charged = 0
        for key in list(self._inter):
            charged += self._refresh(key, None)
        # sequential composition of the per-rep hash charges
        cost.charge_many(work=charged, depth=charged)

    # -- bucket / refcount plumbing ----------------------------------------

    def _bucket(self, v: int, c: int) -> set[int]:
        return self._inter.setdefault((v, c), set())

    def _inc(self, e: Edge, delta: tuple[set, set] | None) -> None:
        cnt = self._span.get(e, 0)
        self._span[e] = cnt + 1
        if cnt == 0 and delta is not None:
            ins, dels = delta
            if e in dels:
                dels.remove(e)
            else:
                ins.add(e)

    def _dec(self, e: Edge, delta: tuple[set, set] | None) -> None:
        cnt = self._span[e]
        if cnt == 1:
            del self._span[e]
            if delta is not None:
                ins, dels = delta
                if e in ins:
                    ins.remove(e)
                else:
                    dels.add(e)
        else:
            self._span[e] = cnt - 1

    def _refresh(self, key: tuple[int, int], delta) -> int:
        """Reconcile one bucket's representative with its contents and
        eligibility (c != CLUSTER(v)).

        Returns the number of hash-op charges incurred (1 when a new
        representative was assigned, else 0) so call sites can charge a
        whole refresh round in one aggregate call.
        """
        v, c = key
        bucket = self._inter.get(key)
        eligible = bool(bucket) and c != self.sc.cluster_of(v)
        cur = self._rep.get(key)
        if not eligible:
            if cur is not None:
                del self._rep[key]
                self._dec(norm_edge(v, cur), delta)
            if not bucket and key in self._inter:
                del self._inter[key]
            return 0
        if cur is not None and cur in bucket:
            return 0
        new = min(bucket)
        self._rep[key] = new
        if cur is not None:
            self._dec(norm_edge(v, cur), delta)
        self._inc(norm_edge(v, new), delta)
        return 1

    # -- queries ---------------------------------------------------------------

    def spanner_edges(self) -> set[Edge]:
        """The maintained (2k−1)-spanner."""
        return set(self._span)

    def spanner_size(self) -> int:
        """Number of edges in the maintained spanner."""
        return len(self._span)

    def cluster_of(self, v: int) -> int:
        """Current cluster (center vertex) of ``v``."""
        return self.sc.cluster_of(v)

    # -- updates ---------------------------------------------------------------

    def batch_delete(self, edges) -> tuple[set[Edge], set[Edge]]:
        """Delete a batch of edges; returns the net ``(δH_ins, δH_del)``."""
        edges = [norm_edge(u, v) for u, v in edges]
        ins: set[Edge] = set()
        dels: set[Edge] = set()
        delta = (ins, dels)
        touched: set[tuple[int, int]] = set()

        # 1. remove edges from adjacency and buckets (pre-cascade clusters).
        # One parallel round: every branch does the same 2 hash ops, so the
        # region's (sum-work, max-depth) total is charged in one call.
        for u, v in edges:
            if v not in self._adj[u]:
                raise KeyError(f"edge {(u, v)} not present")
            self._adj[u].remove(v)
            self._adj[v].remove(u)
            cu, cv = self.sc.cluster_of(u), self.sc.cluster_of(v)
            self._bucket(u, cv).discard(v)
            self._bucket(v, cu).discard(u)
            touched.add((u, cv))
            touched.add((v, cu))
        self._cost.pfor_cost(len(edges), 2, depth=1)

        # 2. clustering/ES update
        tree_changes, cluster_changes = self.sc.batch_delete(edges)

        # 3. intra-cluster forest delta
        for ch in tree_changes:
            if ch.old is not None:
                self._dec(ch.old, delta)
            if ch.new is not None:
                self._inc(ch.new, delta)

        # 4. bucket moves for every cluster change.  Events are applied in
        # order (a vertex may change cluster more than once per batch) but
        # charged as one parallel round per change over its neighborhood,
        # with the changes themselves also grouped in parallel — matching
        # the paper's per-cascade-wave accounting.  All branches charge the
        # same 2 hash ops, so the nested regions' total (work = 2 * sum of
        # neighborhood sizes, depth = max over branches = 1) collapses to a
        # single aggregate charge.
        moved = 0
        for ch in cluster_changes:
            v, oldc, newc = ch.vertex, ch.old_cluster, ch.new_cluster
            for u in sorted(self._adj[v]):
                self._bucket(u, oldc).discard(v)
                self._bucket(u, newc).add(v)
                touched.add((u, oldc))
                touched.add((u, newc))
                moved += 1
            # v's own buckets flip eligibility
            touched.add((v, oldc))
            touched.add((v, newc))
        self._cost.pfor_cost(moved, 2, depth=1)

        # 5. refresh every touched bucket — one parallel round; only the
        # refreshes that assigned a new representative charge a hash op.
        refreshed = 0
        for key in sorted(touched):
            refreshed += self._refresh(key, delta)
        self._cost.pfor_cost(refreshed, 1, depth=1)

        return ins, dels

    # -- invariant check (used by tests) ----------------------------------------

    def check_invariants(self) -> None:
        """Verify bucket/representative/refcount consistency (O(n + m))."""
        # buckets partition the adjacency by neighbor cluster
        want: dict[tuple[int, int], set[int]] = {}
        for v in range(self.n):
            for u in self._adj[v]:
                want.setdefault((v, self.sc.cluster_of(u)), set()).add(u)
        got = {k: s for k, s in self._inter.items() if s}
        assert got == want, "bucket contents diverged"
        # representatives: exactly the eligible buckets, member of bucket
        for key, s in want.items():
            v, c = key
            if c != self.sc.cluster_of(v):
                assert key in self._rep, f"missing rep for {key}"
                assert self._rep[key] in s
            else:
                assert key not in self._rep
        assert set(self._rep) <= set(want)
        # refcounts = forest + representative multiset
        want_counts: dict[Edge, int] = {}
        for e in self.sc.tree_edges():
            want_counts[e] = want_counts.get(e, 0) + 1
        for (v, _c), u in self._rep.items():
            e = norm_edge(v, u)
            want_counts[e] = want_counts.get(e, 0) + 1
        assert want_counts == self._span, "refcounts diverged"

"""Fully-dynamic *weighted* (2k−1)(1+ε)-spanner — extension via weight
classes.

The paper's batch-dynamic results are stated for unweighted graphs; the
standard reduction extends them to weights in ``[1, W]``: bucket edges into
geometric weight classes ``[(1+ε)^i, (1+ε)^{i+1})`` and maintain one
unweighted Theorem 1.1 spanner per nonempty class.  For any edge ``(u, v)``
of weight ``w``, its class spanner provides a ≤(2k−1)-hop detour whose
edges each weigh at most ``(1+ε) w``, so the weighted stretch is at most
``(2k−1)(1+ε)``.  Size: O(n^{1+1/k} log n) per class, O(log_{1+ε} W)
classes.

Each update batch is split by class and forwarded in parallel — the
batch-dynamic depth bounds carry over unchanged, which is exactly why this
reduction composes so cleanly with the paper's machinery.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

import numpy as np

from repro.graph.dynamic_graph import Edge, norm_edge
from repro.pram.cost import NULL_COST_MODEL, CostModel
from repro.spanner.fully_dynamic import FullyDynamicSpanner

__all__ = ["WeightedFullyDynamicSpanner"]


class WeightedFullyDynamicSpanner:
    """Batch-dynamic spanner for positively-weighted graphs.

    Parameters
    ----------
    n, k:
        As in :class:`~repro.spanner.FullyDynamicSpanner`.
    epsilon:
        Weight-class granularity; stretch guarantee ``(2k−1)(1+ε)``.
    weights:
        Initial ``edge -> weight`` mapping (weights must be positive).
    """

    def __init__(
        self,
        n: int,
        weights: Mapping[Edge, float] | None = None,
        k: int = 2,
        epsilon: float = 0.5,
        seed: int | None = None,
        base_capacity: int | None = None,
        cost: CostModel = NULL_COST_MODEL,
    ) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if k < 1:
            raise ValueError("k must be >= 1")
        self.n = n
        self.k = k
        self.epsilon = epsilon
        self._cost = cost
        self._rng = np.random.default_rng(seed)
        self._base_capacity = base_capacity
        self._classes: dict[int, FullyDynamicSpanner] = {}
        self._weight: dict[Edge, float] = {}
        if weights:
            self.update(insertions=weights)

    # -- helpers ---------------------------------------------------------

    def _class_of(self, weight: float) -> int:
        if weight <= 0:
            raise ValueError(f"non-positive weight {weight}")
        return int(math.floor(math.log(weight) / math.log1p(self.epsilon)))

    def _get_class(self, cls: int) -> FullyDynamicSpanner:
        if cls not in self._classes:
            self._classes[cls] = FullyDynamicSpanner(
                self.n,
                k=self.k,
                seed=int(self._rng.integers(0, 2**63 - 1)),
                base_capacity=self._base_capacity,
                cost=self._cost,
            )
        return self._classes[cls]

    # -- queries -----------------------------------------------------------

    @property
    def stretch(self) -> float:
        """The weighted stretch guarantee ``(2k−1)(1+ε)``."""
        return (2 * self.k - 1) * (1 + self.epsilon)

    @property
    def m(self) -> int:
        """Number of weighted edges currently in the graph."""
        return len(self._weight)

    def weight_of(self, edge: Edge) -> float:
        """Weight of a current edge."""
        return self._weight[norm_edge(*edge)]

    def spanner_edges(self) -> set[Edge]:
        """The maintained weighted spanner's edge set."""
        out: set[Edge] = set()
        for sp in self._classes.values():
            out |= sp.spanner_edges()
        return out

    def weighted_spanner(self) -> dict[Edge, float]:
        """The spanner with its weights."""
        return {e: self._weight[e] for e in self.spanner_edges()}

    def spanner_size(self) -> int:
        """Number of edges in the maintained spanner."""
        return sum(sp.spanner_size() for sp in self._classes.values())

    def class_sizes(self) -> dict[int, int]:
        """Weight class -> number of graph edges in it (diagnostics)."""
        return {
            cls: sp.m for cls, sp in self._classes.items() if sp.m
        }

    # -- updates -----------------------------------------------------------------

    def update(
        self,
        insertions: Mapping[Edge, float] | Iterable[tuple[Edge, float]] = (),
        deletions: Iterable[Edge] = (),
    ) -> tuple[set[Edge], set[Edge]]:
        """Apply one batch (weighted insertions, plain deletions); returns
        the net spanner delta."""
        if isinstance(insertions, Mapping):
            ins_items = [(norm_edge(*e), float(w))
                         for e, w in insertions.items()]
        else:
            ins_items = [(norm_edge(*e), float(w)) for e, w in insertions]
        deletions = [norm_edge(*e) for e in deletions]

        by_class_del: dict[int, list[Edge]] = {}
        for e in deletions:
            if e not in self._weight:
                raise KeyError(f"edge {e} not present")
            cls = self._class_of(self._weight[e])
            by_class_del.setdefault(cls, []).append(e)
        by_class_ins: dict[int, list[Edge]] = {}
        for e, w in ins_items:
            cls = self._class_of(w)
            by_class_ins.setdefault(cls, []).append(e)

        net: dict[Edge, int] = {}

        def bump(e: Edge, d: int) -> None:
            c = net.get(e, 0) + d
            if c == 0:
                net.pop(e, None)
            else:
                net[e] = c

        # forward per class, logically in parallel
        classes = sorted(set(by_class_del) | set(by_class_ins))
        with self._cost.parallel() as par:
            for cls in classes:
                with par.task():
                    sp = self._get_class(cls)
                    ins, dels = sp.update(
                        insertions=by_class_ins.get(cls, ()),
                        deletions=by_class_del.get(cls, ()),
                    )
                    for e in dels:
                        bump(e, -1)
                    for e in ins:
                        bump(e, +1)
        for e in deletions:
            del self._weight[e]
        for e, w in ins_items:
            if e in self._weight:
                raise ValueError(f"duplicate edge {e}")
            self._weight[e] = w
        ins_set = {e for e, c in net.items() if c > 0}
        dels_set = {e for e, c in net.items() if c < 0}
        return ins_set, dels_set

    def check_invariants(self) -> None:
        """Verify class routing and per-class structures (tests)."""
        seen: set[Edge] = set()
        for cls, sp in self._classes.items():
            sp.check_invariants()
            for e in sp.edges():
                assert e not in seen
                seen.add(e)
                assert self._class_of(self._weight[e]) == cls
        assert seen == set(self._weight)

"""Weighted (2k−1)-spanners — the [BS07] algorithm in its full generality.

The paper's batch-dynamic results are for unweighted graphs (§1.1); the
static Baswana–Sen algorithm it cites handles arbitrary positive weights,
so we provide it as the natural extension point (and as the baseline a
future weighted batch-dynamic variant would be measured against).

Algorithm (phase ``i`` of ``k-1``): clusters sampled with probability
``n^{-1/k}``; each vertex of an unsampled cluster joins its *lightest*
sampled neighbor-cluster edge, keeps one lightest edge into every cluster
with an edge lighter than the joining edge, and discards the rest; the
final phase keeps one lightest edge per adjacent cluster.  Stretch 2k−1
w.r.t. weighted distances; expected size O(k n^{1+1/k}).
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, Mapping

import numpy as np

from repro.graph.dynamic_graph import Edge, norm_edge

__all__ = ["baswana_sen_weighted_spanner", "weighted_spanner_stretch"]


def baswana_sen_weighted_spanner(
    n: int,
    weights: Mapping[Edge, float],
    k: int,
    seed: int | None = None,
) -> set[Edge]:
    """Compute a weighted (2k−1)-spanner; returns the kept edge set.

    ``weights`` maps normalized edges to positive weights.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    for e, w in weights.items():
        if w <= 0:
            raise ValueError(f"non-positive weight on {e}")
    weights = {norm_edge(*e): float(w) for e, w in weights.items()}
    if k == 1:
        return set(weights)
    rng = np.random.default_rng(seed)

    adj: list[dict[int, float]] = [dict() for _ in range(n)]
    for (u, v), w in weights.items():
        adj[u][v] = w
        adj[v][u] = w

    spanner: set[Edge] = set()
    cluster: list[int | None] = list(range(n))
    p = float(n) ** (-1.0 / k) if n > 1 else 0.5

    def lightest_per_cluster(
        v: int, restrict: set[int] | None
    ) -> dict[int, tuple[float, int]]:
        """cluster -> (weight, neighbor) of the lightest edge from v;
        restricted to ``restrict`` clusters if given."""
        best: dict[int, tuple[float, int]] = {}
        for w, wt in adj[v].items():
            cw = cluster[w]
            if cw is None:
                continue
            if restrict is not None and cw not in restrict:
                continue
            cand = (wt, w)
            if cw not in best or cand < best[cw]:
                best[cw] = cand
        return best

    for _phase in range(k - 1):
        ids = {c for c in cluster if c is not None}
        sampled = {c for c in ids if rng.random() < p}
        new_cluster: list[int | None] = list(cluster)
        for v in range(n):
            cv = cluster[v]
            if cv is None or cv in sampled:
                continue
            best_sampled = lightest_per_cluster(v, sampled)
            if not best_sampled:
                # no sampled neighbor: keep one lightest edge per adjacent
                # cluster and retire v
                for wt, w in lightest_per_cluster(v, None).values():
                    spanner.add(norm_edge(v, w))
                for w in list(adj[v]):
                    if cluster[w] is not None:
                        del adj[v][w]
                        del adj[w][v]
                new_cluster[v] = None
                continue
            # join the overall lightest sampled edge
            join_cid, (join_wt, join_w) = min(
                best_sampled.items(), key=lambda kv: kv[1]
            )
            spanner.add(norm_edge(v, join_w))
            new_cluster[v] = join_cid
            # keep one lightest edge into every cluster strictly lighter
            # than the joining edge, then discard those neighborhoods and
            # the joined cluster's edges
            for cid, (wt, w) in lightest_per_cluster(v, None).items():
                if cid == join_cid:
                    continue
                if (wt, w) < (join_wt, join_w):
                    spanner.add(norm_edge(v, w))
                    gone = [
                        x for x in adj[v] if cluster[x] == cid
                    ]
                    for x in gone:
                        del adj[v][x]
                        del adj[x][v]
            gone = [x for x in adj[v] if cluster[x] == join_cid]
            for x in gone:
                del adj[v][x]
                del adj[x][v]
        cluster = new_cluster

    for v in range(n):
        for wt, w in lightest_per_cluster(v, None).values():
            spanner.add(norm_edge(v, w))
        for x in list(adj[v]):
            del adj[v][x]
            del adj[x][v]
    return spanner


def weighted_spanner_stretch(
    n: int,
    weights: Mapping[Edge, float],
    spanner: Iterable[Edge],
    cap_pairs: int | None = None,
) -> float:
    """Exact weighted stretch: max over graph edges (u, v) of
    ``dist_H(u, v) / w(u, v)`` (Dijkstra in the spanner)."""
    weights = {norm_edge(*e): float(w) for e, w in weights.items()}
    h_adj: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    for e in spanner:
        e = norm_edge(*e)
        w = weights[e]
        h_adj[e[0]].append((e[1], w))
        h_adj[e[1]].append((e[0], w))

    def dijkstra(src: int) -> list[float]:
        dist = [math.inf] * n
        dist[src] = 0.0
        pq = [(0.0, src)]
        while pq:
            d, u = heapq.heappop(pq)
            if d > dist[u]:
                continue
            for v, w in h_adj[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(pq, (nd, v))
        return dist

    by_source: dict[int, list[tuple[int, float]]] = {}
    for (u, v), w in weights.items():
        by_source.setdefault(u, []).append((v, w))
    worst = 0.0
    for u, targets in by_source.items():
        dist = dijkstra(u)
        for v, w in targets:
            if math.isinf(dist[v]):
                return math.inf
            worst = max(worst, dist[v] / w)
    return worst

"""Fully-dynamic (2k−1)-spanner under batch updates (Theorem 1.1).

Composition of the decremental spanner of Lemma 3.3 with the Bentley–Saxe
dynamization of §3.4: edges are partitioned into levels ``E_0..E_b`` with
``|E_i| <= 2^{i+l_0}`` where ``2^{l_0} >= n^{1+1/k}`` (Invariant B1).  Level
0 goes to the spanner verbatim (its size is within the size budget anyway);
every other level runs a decremental instance.  By Observation 3.7 the union
of the per-level spanners is a (2k−1)-spanner of the whole graph.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.graph.dynamic_graph import Edge
from repro.pram.cost import NULL_COST_MODEL, CostModel
from repro.spanner.decremental import DecrementalSpanner
from repro.spanner.dynamizer import BentleySaxeDynamizer

__all__ = ["FullyDynamicSpanner"]


class _DecrementalAdapter:
    """Adapts :class:`DecrementalSpanner` to the dynamizer protocol."""

    def __init__(self, spanner: DecrementalSpanner):
        self._spanner = spanner

    def output_edges(self) -> set[Edge]:
        return self._spanner.spanner_edges()

    def batch_delete(self, edges):
        return self._spanner.batch_delete(edges)


class FullyDynamicSpanner:
    """Theorem 1.1: fully-dynamic (2k−1)-spanner.

    Guarantees (w.h.p. against an oblivious adversary):

    * after every batch the maintained edge set is a (2k−1)-spanner of the
      current graph with ``O(n^{1+1/k} log n)`` expected edges,
    * amortized recourse ``O(k log^2 n)`` and work ``O(k log^2 n)`` per
      updated edge, depth ``O(k log^2 n)`` per batch.

    Example
    -------
    >>> from repro.graph import gnm_random_graph
    >>> edges = gnm_random_graph(100, 400, seed=1)
    >>> sp = FullyDynamicSpanner(100, edges, k=3, seed=7)
    >>> ins, dels = sp.update(deletions=edges[:50])
    >>> h = sp.spanner_edges()
    """

    def __init__(
        self,
        n: int,
        edges: Iterable[Edge] = (),
        k: int = 2,
        seed: int | None = None,
        base_capacity: int | None = None,
        restart_every: int | None = None,
        cost: CostModel = NULL_COST_MODEL,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.n = n
        self.k = k
        self._cost = cost
        self._rng = np.random.default_rng(seed)
        if base_capacity is None:
            # smallest power of two >= n^{1 + 1/k}
            target = max(n, 2) ** (1.0 + 1.0 / k)
            base_capacity = 1 << max(0, math.ceil(math.log2(target)))
        self._dyn = BentleySaxeDynamizer(
            edges, self._make_instance, base_capacity, cost=cost,
            restart_every=restart_every,
        )

    def _make_instance(self, edges: list[Edge]) -> _DecrementalAdapter:
        seed = int(self._rng.integers(0, 2**63 - 1))
        return _DecrementalAdapter(
            DecrementalSpanner(self.n, edges, self.k, seed=seed,
                               cost=self._cost)
        )

    # -- queries -------------------------------------------------------------

    def spanner_edges(self) -> set[Edge]:
        """The current (2k−1)-spanner."""
        return self._dyn.output_edges()

    def spanner_size(self) -> int:
        """Number of edges in the maintained spanner."""
        return self._dyn.output_size()

    @property
    def m(self) -> int:
        """Number of edges currently in the graph."""
        return self._dyn.m

    def edges(self) -> set[Edge]:
        """The current graph's edge set."""
        return self._dyn.edges()

    def __contains__(self, edge: Edge) -> bool:
        return edge in self._dyn

    @property
    def stretch(self) -> int:
        return 2 * self.k - 1

    def level_sizes(self) -> dict[int, int]:
        """Partition occupancy (diagnostics / ablation benches)."""
        return self._dyn.level_sizes()

    @property
    def rebuild_count(self) -> int:
        return self._dyn.rebuild_count

    @property
    def rebuilt_edge_count(self) -> int:
        return self._dyn.rebuilt_edge_count

    # -- updates ----------------------------------------------------------------

    def update(
        self,
        insertions: Iterable[Edge] = (),
        deletions: Iterable[Edge] = (),
    ) -> tuple[set[Edge], set[Edge]]:
        """Apply one update batch; returns the net ``(δH_ins, δH_del)``."""
        return self._dyn.update(insertions, deletions)

    def insert_batch(self, edges: Iterable[Edge]) -> tuple[set[Edge], set[Edge]]:
        """Insert-only convenience wrapper around :meth:`update`."""
        return self.update(insertions=edges)

    def delete_batch(self, edges: Iterable[Edge]) -> tuple[set[Edge], set[Edge]]:
        """Delete-only convenience wrapper around :meth:`update`."""
        return self.update(deletions=edges)

    def check_invariants(self) -> None:
        """Verify the underlying partition structure (tests)."""
        self._dyn.check_invariants()

"""Low-diameter decomposition ([MPX13] Algorithm 7) as a standalone API.

The exponential-shift clustering that powers Lemma 3.3 and Lemma 6.4 is,
by itself, the classic parallel low-diameter decomposition: every cluster
has (strong) radius O(log n / β) w.h.p., and each edge is cut between
clusters with probability O(β) (Lemma 6.5).  Exposed here because the
decomposition is useful well beyond spanners (and it makes the Lemma 6.5
cut-probability claim directly testable).
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.graph.dynamic_graph import Edge, norm_edge
from repro.spanner.shift_clustering import sample_shifts, static_clusters

__all__ = ["LowDiameterDecomposition", "low_diameter_decomposition"]


class LowDiameterDecomposition:
    """Result of one decomposition: cluster labels + the radius structure."""

    def __init__(
        self,
        n: int,
        cluster: list[int],
        parent: list[int | None],
        shifts: np.ndarray,
        beta: float,
    ) -> None:
        self.n = n
        self.cluster = cluster
        self.parent = parent
        self.shifts = shifts
        self.beta = beta

    def clusters(self) -> dict[int, list[int]]:
        """center -> sorted member list."""
        out: dict[int, list[int]] = {}
        for v, c in enumerate(self.cluster):
            out.setdefault(c, []).append(v)
        return {c: sorted(vs) for c, vs in out.items()}

    def forest_edges(self) -> set[Edge]:
        """Per-cluster BFS-tree edges (the spanning structure the spanner
        algorithms keep)."""
        return {
            norm_edge(p, v)
            for v, p in enumerate(self.parent)
            if p is not None
        }

    def cut_edges(self, edges: Iterable[Edge]) -> set[Edge]:
        """The inter-cluster edges of the decomposition."""
        return {
            norm_edge(u, v)
            for u, v in edges
            if self.cluster[u] != self.cluster[v]
        }

    def radius_bound(self) -> float:
        """Every vertex is within this many hops of its cluster center."""
        return float(self.shifts.max()) if self.n else 0.0

    def max_cluster_radius(self) -> int:
        """Exact max hop distance to the center along the cluster forest."""
        depth = [0] * self.n
        # parents always have strictly smaller shifted distance, so a
        # simple fixpoint over parent chains terminates
        order = sorted(
            range(self.n),
            key=lambda v: 0 if self.parent[v] is None else 1,
        )
        # iterate until stable (forest depth ≤ n)
        changed = True
        while changed:
            changed = False
            for v in range(self.n):
                p = self.parent[v]
                if p is not None and depth[v] != depth[p] + 1:
                    depth[v] = depth[p] + 1
                    changed = True
        return max(depth) if self.n else 0


def low_diameter_decomposition(
    n: int,
    edges: Iterable[Edge],
    beta: float,
    seed: int | None = None,
    cap: float | None = None,
) -> LowDiameterDecomposition:
    """Compute one exponential-shift decomposition.

    Guarantees (w.h.p.): cluster radius ≤ ``cap`` (default
    ``2 ln(10 n)/β`` = O(log n / β)); each edge cut with probability
    O(β) — Lemma 6.5.
    """
    if beta <= 0:
        raise ValueError("beta must be positive")
    edges = [norm_edge(u, v) for u, v in edges]
    rng = np.random.default_rng(seed)
    if cap is None:
        cap = 2.0 * math.log(10 * max(n, 2)) / beta
    shifts = sample_shifts(n, beta=beta, cap=cap, rng=rng)
    cluster, parent, _ = static_clusters(n, edges, shifts)
    return LowDiameterDecomposition(n, cluster, parent, shifts, beta)

"""Spanner algorithms: static baselines, decremental (Lemma 3.3), and the
fully-dynamic Theorem 1.1 structure."""

from repro.spanner.decremental import DecrementalSpanner
from repro.spanner.dynamizer import BentleySaxeDynamizer
from repro.spanner.fully_dynamic import FullyDynamicSpanner
from repro.spanner.shift_clustering import (
    ShiftedClustering,
    sample_shifts,
    static_clusters,
)
from repro.spanner.incremental_greedy import IncrementalGreedySpanner
from repro.spanner.ldd import (
    LowDiameterDecomposition,
    low_diameter_decomposition,
)
from repro.spanner.static_baswana_sen import baswana_sen_spanner
from repro.spanner.static_mpvx import mpvx_spanner
from repro.spanner.weighted import (
    baswana_sen_weighted_spanner,
    weighted_spanner_stretch,
)
from repro.spanner.weighted_dynamic import WeightedFullyDynamicSpanner

__all__ = [
    "BentleySaxeDynamizer",
    "IncrementalGreedySpanner",
    "LowDiameterDecomposition",
    "low_diameter_decomposition",
    "DecrementalSpanner",
    "FullyDynamicSpanner",
    "ShiftedClustering",
    "baswana_sen_spanner",
    "baswana_sen_weighted_spanner",
    "mpvx_spanner",
    "sample_shifts",
    "static_clusters",
    "WeightedFullyDynamicSpanner",
    "weighted_spanner_stretch",
]

"""Exponential start-time clustering, maintained under deletion batches.

This is the engine of Section 3.3: the clustering of [MPVX15]/[EN18b] is
reduced to a shortest-path tree in the *augmented* digraph G′

* vertices ``0..n-1`` are the original graph, ``n..n+t-1`` are the path
  vertices ``p_0..p_{t-1}`` (``p_i`` has id ``n + i``),
* every undirected edge contributes both directions,
* ``p_i -> p_{i+1}`` chains the path, and ``p_{t-1-d_v} -> v`` gives vertex
  ``v`` its head start ``d_v = floor(delta_v)``,

so that the parent chain from ``p_0`` encodes ``CLUSTER(v) = argmin_u
(dist(u, v) - delta_u)``, with ties broken toward the largest fractional part
``f_u`` (implemented as the PRIORITY permutation).  Each ``IN(v)`` is ordered
by the *composite priority* ``PRIORITY(CLUSTER(w)) * (n + 1) + tiebreak`` so
the Even–Shiloach scan pointer always rests on the maximum-priority valid
parent.

Under a deletion batch, the ES tree fixes distances/parents first (stale
priorities are fine: the cluster cascade re-examines every edge it re-keys),
then the cluster-change cascade of the paper runs: a vertex that changed
cluster re-keys all its out-edges, each re-keyed target either keeps,
switches, or re-scans its parent, and inherited cluster changes propagate
recursively.

The structure is Las Vegas: with the randomness (``deltas``) fixed, the
maintained ``cluster`` array always equals :func:`static_clusters` of the
remaining graph — which is exactly how the tests verify it.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterable, Sequence

import numpy as np

from repro.graph.dynamic_graph import Edge, norm_edge
from repro.bfs.es_tree import BatchDynamicESTree
from repro.pram.cost import NULL_COST_MODEL, CostModel

__all__ = [
    "ShiftedClustering",
    "static_clusters",
    "sample_shifts",
    "ClusterChange",
    "TreeEdgeChange",
]


class ClusterChange:
    """Record of one vertex's cluster reassignment."""
    __slots__ = ("vertex", "old_cluster", "new_cluster")

    def __init__(self, vertex: int, old_cluster: int, new_cluster: int):
        self.vertex = vertex
        self.old_cluster = old_cluster
        self.new_cluster = new_cluster

    def __repr__(self) -> str:  # pragma: no cover
        return f"ClusterChange({self.vertex}: {self.old_cluster}->{self.new_cluster})"


class TreeEdgeChange:
    """A change of the *real* (original-graph) parent edge of a vertex.

    ``old``/``new`` are normalized undirected edges or None (None means the
    vertex was/is attached directly to a path vertex, i.e. is a center)."""

    __slots__ = ("vertex", "old", "new")

    def __init__(self, vertex: int, old: Edge | None, new: Edge | None):
        self.vertex = vertex
        self.old = old
        self.new = new

    def __repr__(self) -> str:  # pragma: no cover
        return f"TreeEdgeChange({self.vertex}: {self.old}->{self.new})"


def sample_shifts(
    n: int,
    beta: float,
    cap: float,
    rng: np.random.Generator,
    max_retries: int = 1000,
) -> np.ndarray:
    """Sample ``delta_u ~ Exp(beta)`` i.i.d., resampling the whole vector
    until ``max delta_u < cap`` (the Las Vegas loop of Algorithm 2)."""
    for _ in range(max_retries):
        deltas = rng.exponential(scale=1.0 / beta, size=n)
        if n == 0 or deltas.max() < cap:
            return deltas
    raise RuntimeError(
        f"failed to sample shifts below cap={cap} after {max_retries} tries"
    )


def _priority_ranks(deltas: Sequence[float]) -> list[int]:
    """PRIORITY permutation: rank 1..n by increasing fractional part, so a
    larger fractional part means a larger (better) priority."""
    n = len(deltas)
    fracs = [(d - math.floor(d), v) for v, d in enumerate(deltas)]
    pri = [0] * n
    for rank, (_, v) in enumerate(sorted(fracs), start=1):
        pri[v] = rank
    return pri


def static_clusters(
    n: int,
    edges: Iterable[Edge],
    deltas: Sequence[float],
) -> tuple[list[int], list[int | None], list[int]]:
    """Reference (static) computation of the clustering.

    Returns ``(cluster, parent, dist)`` where ``dist`` is the distance from
    ``p_0`` in G′, ``parent`` the G′-parent restricted to original vertices
    (None when the parent is a path vertex), and ``cluster[v]`` the center
    whose shifted distance ``dist(u, v) - delta_u`` is minimal, ties broken
    by the PRIORITY permutation.  Runs a level-by-level sweep; used as the
    oracle for :class:`ShiftedClustering`.
    """
    pri = _priority_ranks(deltas)
    d_int = [int(math.floor(d)) for d in deltas]
    t = (max(d_int) + 1) if n else 1

    adj: list[list[int]] = [[] for _ in range(n)]
    for u, v in edges:
        adj[u].append(v)
        adj[v].append(u)

    # dist'(v) in G': BFS by levels. Level of p_i is i; vertex v gets a
    # "free" arrival at level t - d_v via its head-start edge.
    INF = t + 1
    dist = [INF] * n
    by_level: list[list[int]] = [[] for _ in range(t + 1)]
    for v in range(n):
        by_level[t - d_int[v]].append(v)

    cluster = [-1] * n
    parent: list[int | None] = [None] * n
    # key(v) = composite priority of v's chosen parent edge; used to pick
    # max-priority parents deterministically.
    frontier_key = [-1] * n

    def composite(center: int, tiebreak: int) -> int:
        return pri[center] * (n + 1) + tiebreak

    settled: list[list[int]] = [[] for _ in range(t + 1)]
    for level in range(t + 1):
        # head-start arrivals at this level
        for v in by_level[level]:
            if dist[v] > level:
                dist[v] = level
                cluster[v] = v
                parent[v] = None
                frontier_key[v] = composite(v, n)
            elif dist[v] == level:
                key = composite(v, n)
                if key > frontier_key[v]:
                    cluster[v] = v
                    parent[v] = None
                    frontier_key[v] = key
        for v in range(n):
            if dist[v] == level:
                settled[level].append(v)
        if level == t:
            break
        # relax edges from level to level + 1
        for u in settled[level]:
            for w in adj[u]:
                if dist[w] < level + 1:
                    continue
                key = composite(cluster[u], u)
                if dist[w] > level + 1:
                    dist[w] = level + 1
                    cluster[w] = cluster[u]
                    parent[w] = u
                    frontier_key[w] = key
                elif key > frontier_key[w]:
                    cluster[w] = cluster[u]
                    parent[w] = u
                    frontier_key[w] = key
    return cluster, parent, dist


class ShiftedClustering:
    """Decremental exponential-shift clustering (Section 3.3 machinery)."""

    def __init__(
        self,
        n: int,
        edges: Iterable[Edge],
        deltas: Sequence[float],
        cost: CostModel = NULL_COST_MODEL,
        cascade_cap: int | None = None,
    ) -> None:
        self.n = n
        self._cost = cost
        edges = [norm_edge(u, v) for u, v in edges]
        if len(set(edges)) != len(edges):
            raise ValueError("duplicate undirected edges")
        self.pri = _priority_ranks(deltas)
        self.d_int = [int(math.floor(d)) for d in deltas]
        self.t = (max(self.d_int) + 1) if n else 1
        self._cascade_cap = cascade_cap

        # --- build G' --------------------------------------------------
        # ids: 0..n-1 originals, n+i = p_i.
        n_aug = n + self.t
        self._path0 = n  # p_0
        # Universe for composite priorities: pri in [1, n], tiebreak in
        # [0, n] -> composite <= n*(n+1)+n.
        self._universe = n * (n + 1) + n + 2 if n else 4

        # Clusters must be known before edge priorities can be assigned;
        # compute them statically first (level sweep), then build the ES
        # tree with the final composite priorities.  The ES tree's own
        # parent selection reproduces the same clusters (asserted below).
        cluster0, _, _ = static_clusters(n, edges, deltas)

        dir_edges: list[tuple[int, int]] = []
        priority: dict[tuple[int, int], int] = {}
        for u, v in edges:
            dir_edges.append((u, v))
            priority[(u, v)] = self._composite(cluster0[u], u)
            dir_edges.append((v, u))
            priority[(v, u)] = self._composite(cluster0[v], v)
        for i in range(self.t - 1):
            dir_edges.append((n + i, n + i + 1))
            priority[(n + i, n + i + 1)] = 1
        for v in range(n):
            head = n + (self.t - 1 - self.d_int[v])
            dir_edges.append((head, v))
            priority[(head, v)] = self._composite(v, n)

        self.es = BatchDynamicESTree(
            n_aug,
            dir_edges,
            source=self._path0,
            limit=self.t,
            priority=priority,
            universe=self._universe,
            cost=cost,
        )
        # Derive clusters from the tree parents; must agree with the sweep.
        self.cluster: list[int] = [-1] * n
        for v in self._vertices_by_level():
            p = self.es.parent_of(v)
            assert p is not None, f"vertex {v} unreachable in G'"
            self.cluster[v] = v if p >= n else self.cluster[p]
        assert self.cluster == cluster0, "ES-tree clusters diverge from sweep"
        #: instrumentation: total cluster reassignments over the lifetime
        #: (Lemma 3.6 bounds the per-vertex expectation by 2 t log n)
        self.total_cluster_changes = 0

    # -- helpers ------------------------------------------------------------

    def _composite(self, center: int, tiebreak: int) -> int:
        return self.pri[center] * (self.n + 1) + tiebreak

    def _vertices_by_level(self) -> list[int]:
        order = [v for v in range(self.n)]
        order.sort(key=lambda v: self.es.dist_of(v))
        return order

    def _real_parent_edge(self, v: int) -> Edge | None:
        p = self.es.parent_of(v)
        if p is None or p >= self.n:
            return None
        return norm_edge(p, v)

    # -- queries --------------------------------------------------------------

    def cluster_of(self, v: int) -> int:
        """Current cluster (center) of ``v``."""
        return self.cluster[v]

    def clusters(self) -> list[int]:
        """Copy of the full cluster array."""
        return list(self.cluster)

    def tree_edges(self) -> set[Edge]:
        """Intra-cluster forest edges (original-graph edges only)."""
        out: set[Edge] = set()
        for v in range(self.n):
            e = self._real_parent_edge(v)
            if e is not None:
                out.add(e)
        return out

    def is_alive(self, u: int, v: int) -> bool:
        """Whether the directed edge ``u -> v`` survives in G′."""
        return self.es.is_alive(u, v)

    # -- deletion batch --------------------------------------------------------

    def batch_delete(
        self, edges: Iterable[Edge]
    ) -> tuple[list[TreeEdgeChange], list[ClusterChange]]:
        """Delete undirected edges; returns tree-edge and cluster changes in
        chronological order."""
        edges = [norm_edge(u, v) for u, v in edges]
        tree_changes: list[TreeEdgeChange] = []
        cluster_changes: list[ClusterChange] = []

        dir_batch: list[tuple[int, int]] = []
        for u, v in edges:
            dir_batch.append((u, v))
            dir_batch.append((v, u))

        parent_events = self.es.batch_delete(dir_batch)

        queue: deque[int] = deque()
        queued: set[int] = set()

        # Every vertex settles at most once per ES batch, so each event's
        # old_parent is the pre-batch parent and the live parent is the
        # settle-time parent.
        for ev in parent_events:
            v = ev.vertex
            if v >= self.n:
                continue
            before = (
                None
                if ev.old_parent is None or ev.old_parent >= self.n
                else norm_edge(ev.old_parent, v)
            )
            after = self._real_parent_edge(v)
            if after != before:
                tree_changes.append(TreeEdgeChange(v, before, after))
            if v not in queued:
                queue.append(v)
                queued.add(v)

        # --- cluster cascade, processed in BFS waves -------------------------
        # Each wave handles all currently-queued vertices "in parallel"
        # (sum of work, max of depth), so the charged depth scales with the
        # propagation distance — the paper's O(k log^2 n) — rather than the
        # number of affected vertices.
        steps = 0
        cap = self._cascade_cap or (
            100 * (self.n + 1) * (self.t + 1) + 100
        )
        while queue:
            wave = list(queue)
            queue.clear()
            queued.clear()
            steps += len(wave)
            if steps > cap:
                raise RuntimeError("cluster cascade failed to terminate")
            with self._cost.parallel() as par:
                for v in wave:
                    p = self.es.parent_of(v)
                    assert p is not None, f"vertex {v} unreachable in G'"
                    newc = v if p >= self.n else self.cluster[p]
                    if newc == self.cluster[v]:
                        continue
                    oldc = self.cluster[v]
                    self.cluster[v] = newc
                    cluster_changes.append(ClusterChange(v, oldc, newc))
                    with par.task():
                        # Re-key all out-edges of v and re-examine each
                        # target's parent (nested parallel loop).  The new
                        # composite priority depends only on v, so hoist it
                        # and skip the branches whose edge already carries
                        # it — those were charge-free no-ops inside the
                        # region, so eliding their task frames leaves the
                        # (sum-work, max-depth) total unchanged.
                        new_pri = self._composite(newc, v)
                        edge_pri = self.es.edge_pri
                        # Each branch re-keys a distinct (v, w) edge, so
                        # the skip test commutes with the rekeys and the
                        # loop routes through the backend seam as a map
                        # (inline under any backend: _rekey_edge mutates
                        # the shared ES tree).
                        ws = [
                            w for w in sorted(self.es.out_adj[v])
                            if w < self.n and edge_pri[(v, w)] != new_pri
                        ]
                        with self._cost.parallel() as inner:
                            inner.map(
                                ws,
                                lambda w: self._rekey_edge(
                                    v, w, new_pri, queue, queued,
                                    tree_changes,
                                ),
                            )
        self.total_cluster_changes += len(cluster_changes)
        return tree_changes, cluster_changes

    def _rekey_edge(
        self,
        v: int,
        w: int,
        new_pri: int,
        queue: deque[int],
        queued: set[int],
        tree_changes: list[TreeEdgeChange],
    ) -> None:
        """Update the priority of the edge ``v -> w`` to ``new_pri`` after
        ``v`` moved clusters, switching ``w``'s parent when the
        maximum-priority rule demands it (the paper's single-NextWith
        detection).  The caller guarantees ``new_pri`` differs from the
        edge's current priority."""
        es = self.es
        old_pri = es.edge_pri[(v, w)]
        before = self._real_parent_edge(w)
        if es.parent_of(w) == v:
            es.update_edge_priority(v, w, new_pri)
            if new_pri < old_pri:
                # Parent demoted: one rescan from the old slot finds the
                # best candidate among v and anything that overtook it.
                cand = es.find_parent_candidate(w)
                assert cand is not None
                es.set_parent(w, cand)
        else:
            es.update_edge_priority(v, w, new_pri)
            cur = es.parent_edge_priority(w)
            if (
                cur is not None
                and new_pri > cur
                and es.is_alive(v, w)
                and es.dist_of(v) == es.dist_of(w) - 1
            ):
                es.set_parent(w, v)
        after = self._real_parent_edge(w)
        if after != before:
            tree_changes.append(TreeEdgeChange(w, before, after))
        # Whether or not the parent identity changed, w's inherited cluster
        # may have: re-evaluate w.
        p = es.parent_of(w)
        inherited = w if (p is None or p >= self.n) else self.cluster[p]
        if inherited != self.cluster[w] and w not in queued:
            queue.append(w)
            queued.add(w)

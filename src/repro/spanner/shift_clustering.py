"""Exponential start-time clustering, maintained under deletion batches.

This is the engine of Section 3.3: the clustering of [MPVX15]/[EN18b] is
reduced to a shortest-path tree in the *augmented* digraph G′

* vertices ``0..n-1`` are the original graph, ``n..n+t-1`` are the path
  vertices ``p_0..p_{t-1}`` (``p_i`` has id ``n + i``),
* every undirected edge contributes both directions,
* ``p_i -> p_{i+1}`` chains the path, and ``p_{t-1-d_v} -> v`` gives vertex
  ``v`` its head start ``d_v = floor(delta_v)``,

so that the parent chain from ``p_0`` encodes ``CLUSTER(v) = argmin_u
(dist(u, v) - delta_u)``, with ties broken toward the largest fractional part
``f_u`` (implemented as the PRIORITY permutation).  Each ``IN(v)`` is ordered
by the *composite priority* ``PRIORITY(CLUSTER(w)) * (n + 1) + tiebreak`` so
the Even–Shiloach scan pointer always rests on the maximum-priority valid
parent.

Under a deletion batch, the ES tree fixes distances/parents first (stale
priorities are fine: the cluster cascade re-examines every edge it re-keys),
then the cluster-change cascade of the paper runs: a vertex that changed
cluster re-keys all its out-edges, each re-keyed target either keeps,
switches, or re-scans its parent, and inherited cluster changes propagate
recursively.

The structure is Las Vegas: with the randomness (``deltas``) fixed, the
maintained ``cluster`` array always equals :func:`static_clusters` of the
remaining graph — which is exactly how the tests verify it.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterable, Sequence

import numpy as np

from repro.graph.dynamic_graph import Edge, norm_edge
from repro.bfs.es_tree import BatchDynamicESTree
from repro.pram.cost import NULL_COST_MODEL, CostModel

__all__ = [
    "ShiftedClustering",
    "static_clusters",
    "sample_shifts",
    "ClusterChange",
    "TreeEdgeChange",
]


class ClusterChange:
    """Record of one vertex's cluster reassignment."""
    __slots__ = ("vertex", "old_cluster", "new_cluster")

    def __init__(self, vertex: int, old_cluster: int, new_cluster: int):
        self.vertex = vertex
        self.old_cluster = old_cluster
        self.new_cluster = new_cluster

    def __repr__(self) -> str:  # pragma: no cover
        return f"ClusterChange({self.vertex}: {self.old_cluster}->{self.new_cluster})"


class TreeEdgeChange:
    """A change of the *real* (original-graph) parent edge of a vertex.

    ``old``/``new`` are normalized undirected edges or None (None means the
    vertex was/is attached directly to a path vertex, i.e. is a center)."""

    __slots__ = ("vertex", "old", "new")

    def __init__(self, vertex: int, old: Edge | None, new: Edge | None):
        self.vertex = vertex
        self.old = old
        self.new = new

    def __repr__(self) -> str:  # pragma: no cover
        return f"TreeEdgeChange({self.vertex}: {self.old}->{self.new})"


def _edge_array(edges) -> np.ndarray:
    """Normalize an undirected edge collection to an ``(m, 2)`` int64
    array with each row sorted ``(min, max)`` — the vectorized counterpart
    of mapping :func:`norm_edge` over the list (same self-loop error)."""
    if isinstance(edges, np.ndarray):
        arr = edges.astype(np.int64, copy=False).reshape(-1, 2)
    else:
        arr = np.asarray(list(edges), dtype=np.int64).reshape(-1, 2)
    if len(arr):
        loops = arr[:, 0] == arr[:, 1]
        if loops.any():
            u = int(arr[loops][0, 0])
            raise ValueError(f"self-loop ({u}, {u})")
        arr = np.sort(arr, axis=1)
    return arr


def sample_shifts(
    n: int,
    beta: float,
    cap: float,
    rng: np.random.Generator,
    max_retries: int = 1000,
) -> np.ndarray:
    """Sample ``delta_u ~ Exp(beta)`` i.i.d., resampling the whole vector
    until ``max delta_u < cap`` (the Las Vegas loop of Algorithm 2)."""
    for _ in range(max_retries):
        deltas = rng.exponential(scale=1.0 / beta, size=n)
        if n == 0 or deltas.max() < cap:
            return deltas
    raise RuntimeError(
        f"failed to sample shifts below cap={cap} after {max_retries} tries"
    )


def _priority_ranks(deltas: Sequence[float]) -> list[int]:
    """PRIORITY permutation: rank 1..n by increasing fractional part, so a
    larger fractional part means a larger (better) priority.  (Vectorized;
    ties in the fractional part break by vertex id, exactly as sorting
    ``(frac, v)`` pairs does.)"""
    d = np.asarray(deltas, dtype=np.float64)
    n = len(d)
    order = np.lexsort((np.arange(n), d - np.floor(d)))
    pri = np.empty(n, dtype=np.int64)
    pri[order] = np.arange(1, n + 1)
    return pri.tolist()


def static_clusters(
    n: int,
    edges: Iterable[Edge],
    deltas: Sequence[float],
) -> tuple[list[int], list[int | None], list[int]]:
    """Reference (static) computation of the clustering.

    Returns ``(cluster, parent, dist)`` where ``dist`` is the distance from
    ``p_0`` in G′, ``parent`` the G′-parent restricted to original vertices
    (None when the parent is a path vertex), and ``cluster[v]`` the center
    whose shifted distance ``dist(u, v) - delta_u`` is minimal, ties broken
    by the PRIORITY permutation.  Runs a level-by-level sweep; used as the
    oracle for :class:`ShiftedClustering`.
    """
    if n == 0:
        return [], [], []
    pri = np.asarray(_priority_ranks(deltas), dtype=np.int64)
    darr = np.asarray(deltas, dtype=np.float64)
    d_int = np.floor(darr).astype(np.int64)
    t = int(d_int.max()) + 1

    earr = _edge_array(edges)
    # both directions of every edge, for whole-frontier relaxation
    su = np.concatenate([earr[:, 0], earr[:, 1]])
    sw = np.concatenate([earr[:, 1], earr[:, 0]])

    # dist'(v) in G': BFS by levels, one vectorized wave per level.  Level
    # of p_i is i; vertex v gets a "free" arrival at level t - d_v via its
    # head-start edge.  key(v) = composite priority of v's chosen parent
    # edge, used to pick max-priority parents deterministically; keys are
    # distinct per target (the tiebreak component is the relaxing vertex),
    # so the scalar "first maximum wins" sweep is exactly a grouped max.
    INF = t + 1
    np1 = n + 1
    head_level = t - d_int
    head_key = pri * np1 + n  # composite(v, n)
    dist = np.full(n, INF, dtype=np.int64)
    cluster = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)  # -1 encodes None
    frontier_key = np.full(n, -1, dtype=np.int64)

    for level in range(t + 1):
        # head-start arrivals at this level (each v arrives exactly once)
        hv = np.nonzero(head_level == level)[0]
        if len(hv):
            fresh = dist[hv] > level
            tie = (dist[hv] == level) & (head_key[hv] > frontier_key[hv])
            take = hv[fresh | tie]
            dist[take] = level
            cluster[take] = take
            parent[take] = -1
            frontier_key[take] = head_key[take]
        if level == t:
            break
        # relax all edges out of the level-``level`` frontier at once
        from_mask = dist[su] == level
        cu, cw = su[from_mask], sw[from_mask]
        open_mask = dist[cw] >= level + 1
        cu, cw = cu[open_mask], cw[open_mask]
        if len(cw) == 0:
            continue
        keys = pri[cluster[cu]] * np1 + cu
        order = np.lexsort((keys, cw))
        cu, cw, keys = cu[order], cw[order], keys[order]
        last = np.ones(len(cw), dtype=bool)
        last[:-1] = cw[1:] != cw[:-1]
        gu, gw, gk = cu[last], cw[last], keys[last]
        dist[gw] = level + 1
        cluster[gw] = cluster[gu]
        parent[gw] = gu
        frontier_key[gw] = gk
    par_list: list[int | None] = [
        None if p < 0 else p for p in parent.tolist()
    ]
    return cluster.tolist(), par_list, dist.tolist()


class ShiftedClustering:
    """Decremental exponential-shift clustering (Section 3.3 machinery)."""

    def __init__(
        self,
        n: int,
        edges: Iterable[Edge],
        deltas: Sequence[float],
        cost: CostModel = NULL_COST_MODEL,
        cascade_cap: int | None = None,
    ) -> None:
        self.n = n
        self._cost = cost
        earr0 = _edge_array(edges)
        if len(earr0):
            enc = earr0[:, 0] * n + earr0[:, 1]
            if len(np.unique(enc)) != len(enc):
                raise ValueError("duplicate undirected edges")
        self.pri = _priority_ranks(deltas)
        d_arr = np.floor(
            np.asarray(deltas, dtype=np.float64)
        ).astype(np.int64)
        self.d_int = d_arr.tolist()
        self.t = (int(d_arr.max()) + 1) if n else 1
        self._cascade_cap = cascade_cap

        # --- build G' --------------------------------------------------
        # ids: 0..n-1 originals, n+i = p_i.
        n_aug = n + self.t
        self._path0 = n  # p_0
        # Universe for composite priorities: pri in [1, n], tiebreak in
        # [0, n] -> composite <= n*(n+1)+n.
        self._universe = n * (n + 1) + n + 2 if n else 4

        # Clusters must be known before edge priorities can be assigned;
        # compute them statically first (level sweep), then build the ES
        # tree with the final composite priorities.  The ES tree's own
        # parent selection reproduces the same clusters (asserted below).
        cluster0, _, _ = static_clusters(n, earr0, deltas)

        # G' as flat arrays: both directions of every original edge, the
        # path chain, and one head-start edge per vertex, with composite
        # priorities computed as whole-array gathers.  The array-native ES
        # constructor is charge-identical to the scalar one over the same
        # edge multiset (order within the arrays is immaterial: per-vertex
        # IN arrays sort by priority and the init charges are closed-form).
        t = self.t
        eu, ev = earr0[:, 0], earr0[:, 1]
        pri_arr = np.asarray(self.pri, dtype=np.int64)
        cl0 = np.asarray(cluster0, dtype=np.int64)
        d_arr = np.asarray(self.d_int, dtype=np.int64)
        chain = np.arange(t - 1, dtype=np.int64)
        vids = np.arange(n, dtype=np.int64)
        src = np.concatenate([eu, ev, n + chain, n + (t - 1) - d_arr])
        dst = np.concatenate([ev, eu, n + chain + 1, vids])
        np1 = n + 1
        pri = np.concatenate([
            pri_arr[cl0[eu]] * np1 + eu,
            pri_arr[cl0[ev]] * np1 + ev,
            np.ones(t - 1, dtype=np.int64),
            pri_arr * np1 + n,
        ])
        self.es = BatchDynamicESTree.from_arrays(
            n_aug,
            src,
            dst,
            pri,
            source=self._path0,
            limit=t,
            universe=self._universe,
            cost=cost,
        )
        # Derive clusters from the tree parents (level by level, so a
        # parent's cluster is settled before its children read it); must
        # agree with the sweep.
        par_n = self.es.parent[:n]
        assert None not in par_n, "original vertex unreachable in G'"
        par_arr = np.asarray(par_n, dtype=np.int64)
        dist_n = np.asarray(self.es.dist[:n], dtype=np.int64)
        cl_arr = np.full(n, -1, dtype=np.int64)
        centers = par_arr >= n
        cl_arr[centers] = np.nonzero(centers)[0]
        for level in range(1, t + 1):
            vs = np.nonzero(~centers & (dist_n == level))[0]
            if len(vs):
                cl_arr[vs] = cl_arr[par_arr[vs]]
        self.cluster: list[int] = cl_arr.tolist()
        assert self.cluster == cluster0, "ES-tree clusters diverge from sweep"
        #: instrumentation: total cluster reassignments over the lifetime
        #: (Lemma 3.6 bounds the per-vertex expectation by 2 t log n)
        self.total_cluster_changes = 0

    # -- helpers ------------------------------------------------------------

    def _composite(self, center: int, tiebreak: int) -> int:
        return self.pri[center] * (self.n + 1) + tiebreak

    def _real_parent_edge(self, v: int) -> Edge | None:
        p = self.es.parent_of(v)
        if p is None or p >= self.n:
            return None
        return norm_edge(p, v)

    # -- queries --------------------------------------------------------------

    def cluster_of(self, v: int) -> int:
        """Current cluster (center) of ``v``."""
        return self.cluster[v]

    def clusters(self) -> list[int]:
        """Copy of the full cluster array."""
        return list(self.cluster)

    def tree_edges(self) -> set[Edge]:
        """Intra-cluster forest edges (original-graph edges only)."""
        out: set[Edge] = set()
        for v in range(self.n):
            e = self._real_parent_edge(v)
            if e is not None:
                out.add(e)
        return out

    def is_alive(self, u: int, v: int) -> bool:
        """Whether the directed edge ``u -> v`` survives in G′."""
        return self.es.is_alive(u, v)

    # -- deletion batch --------------------------------------------------------

    def batch_delete(
        self, edges: Iterable[Edge]
    ) -> tuple[list[TreeEdgeChange], list[ClusterChange]]:
        """Delete undirected edges; returns tree-edge and cluster changes in
        chronological order."""
        edges = [norm_edge(u, v) for u, v in edges]
        tree_changes: list[TreeEdgeChange] = []
        cluster_changes: list[ClusterChange] = []

        dir_batch: list[tuple[int, int]] = []
        for u, v in edges:
            dir_batch.append((u, v))
            dir_batch.append((v, u))

        parent_events = self.es.batch_delete(dir_batch)

        queue: deque[int] = deque()
        queued: set[int] = set()

        # Every vertex settles at most once per ES batch, so each event's
        # old_parent is the pre-batch parent and the live parent is the
        # settle-time parent.
        for ev in parent_events:
            v = ev.vertex
            if v >= self.n:
                continue
            before = (
                None
                if ev.old_parent is None or ev.old_parent >= self.n
                else norm_edge(ev.old_parent, v)
            )
            after = self._real_parent_edge(v)
            if after != before:
                tree_changes.append(TreeEdgeChange(v, before, after))
            if v not in queued:
                queue.append(v)
                queued.add(v)

        # --- cluster cascade, processed in BFS waves -------------------------
        # Each wave handles all currently-queued vertices "in parallel"
        # (sum of work, max of depth), so the charged depth scales with the
        # propagation distance — the paper's O(k log^2 n) — rather than the
        # number of affected vertices.
        steps = 0
        cap = self._cascade_cap or (
            100 * (self.n + 1) * (self.t + 1) + 100
        )
        while queue:
            wave = list(queue)
            queue.clear()
            queued.clear()
            steps += len(wave)
            if steps > cap:
                raise RuntimeError("cluster cascade failed to terminate")
            with self._cost.parallel() as par:
                for v in wave:
                    p = self.es.parent_of(v)
                    assert p is not None, f"vertex {v} unreachable in G'"
                    newc = v if p >= self.n else self.cluster[p]
                    if newc == self.cluster[v]:
                        continue
                    oldc = self.cluster[v]
                    self.cluster[v] = newc
                    cluster_changes.append(ClusterChange(v, oldc, newc))
                    with par.task():
                        # Re-key all out-edges of v and re-examine each
                        # target's parent (nested parallel loop).  The new
                        # composite priority depends only on v, so hoist it
                        # and skip the branches whose edge already carries
                        # it — those were charge-free no-ops inside the
                        # region, so eliding their task frames leaves the
                        # (sum-work, max-depth) total unchanged.
                        new_pri = self._composite(newc, v)
                        edge_pri = self.es.edge_pri
                        # Each branch re-keys a distinct (v, w) edge, so
                        # the skip test commutes with the rekeys and the
                        # loop routes through the backend seam as a map
                        # (inline under any backend: _rekey_edge mutates
                        # the shared ES tree).
                        ws = [
                            w for w in sorted(self.es.out_adj[v])
                            if w < self.n and edge_pri[(v, w)] != new_pri
                        ]
                        with self._cost.parallel() as inner:
                            inner.map(
                                ws,
                                lambda w: self._rekey_edge(
                                    v, w, new_pri, queue, queued,
                                    tree_changes,
                                ),
                            )
        self.total_cluster_changes += len(cluster_changes)
        return tree_changes, cluster_changes

    def _rekey_edge(
        self,
        v: int,
        w: int,
        new_pri: int,
        queue: deque[int],
        queued: set[int],
        tree_changes: list[TreeEdgeChange],
    ) -> None:
        """Update the priority of the edge ``v -> w`` to ``new_pri`` after
        ``v`` moved clusters, switching ``w``'s parent when the
        maximum-priority rule demands it (the paper's single-NextWith
        detection).  The caller guarantees ``new_pri`` differs from the
        edge's current priority."""
        es = self.es
        old_pri = es.edge_pri[(v, w)]
        before = self._real_parent_edge(w)
        if es.parent_of(w) == v:
            es.update_edge_priority(v, w, new_pri)
            if new_pri < old_pri:
                # Parent demoted: one rescan from the old slot finds the
                # best candidate among v and anything that overtook it.
                cand = es.find_parent_candidate(w)
                assert cand is not None
                es.set_parent(w, cand)
        else:
            es.update_edge_priority(v, w, new_pri)
            cur = es.parent_edge_priority(w)
            if (
                cur is not None
                and new_pri > cur
                and es.is_alive(v, w)
                and es.dist_of(v) == es.dist_of(w) - 1
            ):
                es.set_parent(w, v)
        after = self._real_parent_edge(w)
        if after != before:
            tree_changes.append(TreeEdgeChange(w, before, after))
        # Whether or not the parent identity changed, w's inherited cluster
        # may have: re-evaluate w.
        p = es.parent_of(w)
        inherited = w if (p is None or p >= self.n) else self.cluster[p]
        if inherited != self.cluster[w] and w not in queued:
            queue.append(w)
            queued.add(w)

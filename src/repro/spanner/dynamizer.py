"""Generic Bentley–Saxe dynamization for decomposable problems (§3.4).

[BS80] turns a *decremental* structure for a decomposable problem (spanners,
Observation 3.7; spectral sparsifiers, Lemma 6.7) into a fully-dynamic one:
maintain a partition ``E = E_0 ∪ E_1 ∪ ... ∪ E_b`` with Invariant B1
``|E_i| <= 2^i * base`` where ``E_0`` is kept verbatim in the output and each
``E_i (i >= 1)`` runs its own decremental instance.  Insertions are chunked
into power-of-two blocks that cascade-merge into the first empty slot;
deletions are routed through the global ``INDEX`` table.

The per-partition structure must provide::

    output_edges() -> set[Edge]          # current contribution
    batch_delete(edges) -> (ins, dels)   # net output delta

Partitions hold disjoint edge sets, so the global output is the disjoint
union of contributions and deltas merge by simple set algebra.
"""

from __future__ import annotations

from typing import Callable, Iterable, Protocol

from repro.graph.dynamic_graph import Edge, norm_edge
from repro.pram.cost import NULL_COST_MODEL, CostModel

__all__ = ["BentleySaxeDynamizer", "DecrementalStructure"]


class DecrementalStructure(Protocol):
    """Protocol the per-partition decremental structures must satisfy."""

    def output_edges(self) -> set[Edge]:
        """Current output contribution of this partition."""
        ...

    def batch_delete(
        self, edges: Iterable[Edge]
    ) -> tuple[set[Edge], set[Edge]]:
        """Delete a batch; returns the net output delta ``(ins, dels)``."""
        ...


class _Part:
    """One partition: a plain edge set for level 0, a decremental structure
    above."""

    __slots__ = ("edges", "struct", "out")

    def __init__(self, edges: set[Edge], struct, out: set[Edge]):
        self.edges = edges
        self.struct = struct
        self.out = out


class BentleySaxeDynamizer:
    """Fully-dynamic wrapper over a decremental-structure factory.

    Parameters
    ----------
    edges:
        Initial edge set.
    factory:
        ``factory(edges) -> DecrementalStructure`` building a fresh
        decremental instance over ``edges``.
    base_capacity:
        ``2^{l_0}``: level-``i`` partitions hold at most
        ``base_capacity * 2^i`` edges; level 0 is kept verbatim in the
        output.
    """

    def __init__(
        self,
        edges: Iterable[Edge],
        factory: Callable[[list[Edge]], DecrementalStructure],
        base_capacity: int,
        cost: CostModel = NULL_COST_MODEL,
        restart_every: int | None = None,
    ) -> None:
        """``restart_every``: rebuild the whole partition structure from
        the current edge set after that many processed updates — the
        paper's periodic restart that keeps Φ (and the random-value
        collision budget) polynomially bounded over unboundedly long
        update sequences.  Amortized O(1) extra work per update when set
        to Ω(m)."""
        if base_capacity < 1:
            raise ValueError("base_capacity must be >= 1")
        if restart_every is not None and restart_every < 1:
            raise ValueError("restart_every must be >= 1")
        self._factory = factory
        self._base = base_capacity
        self._cost = cost
        self._parts: dict[int, _Part] = {}
        self._index: dict[Edge, int] = {}
        self._restart_every = restart_every
        self._updates_since_restart = 0
        self.restart_count = 0  # instrumentation: full restarts performed
        self.rebuild_count = 0  # instrumentation: structures built so far
        self.rebuilt_edge_count = 0  # edges fed through initializations

        edges = [norm_edge(u, v) for u, v in edges]
        if len(set(edges)) != len(edges):
            raise ValueError("duplicate edges")
        if edges:
            j = 0
            while len(edges) > self._cap(j):
                j += 1
            self._build(j, set(edges))

    # -- helpers ------------------------------------------------------------

    def _cap(self, i: int) -> int:
        return self._base << i

    def _build(self, j: int, edges: set[Edge]) -> set[Edge]:
        """Create partition ``j`` over ``edges``; returns its output set."""
        assert j not in self._parts
        assert len(edges) <= self._cap(j), (len(edges), j)
        self._cost.charge_hash_op(len(edges))
        for e in edges:
            self._index[e] = j
        if j == 0:
            part = _Part(edges, None, set(edges))
        else:
            struct = self._factory(sorted(edges))
            part = _Part(edges, struct, set(struct.output_edges()))
            self.rebuild_count += 1
            self.rebuilt_edge_count += len(edges)
        self._parts[j] = part
        return part.out

    def _first_empty(self, at_least: int) -> int:
        j = at_least
        while j in self._parts:
            j += 1
        return j

    # -- queries ------------------------------------------------------------

    def output_edges(self) -> set[Edge]:
        """Union of every partition's output (the maintained solution)."""
        out: set[Edge] = set()
        for part in self._parts.values():
            out |= part.out
        return out

    def output_size(self) -> int:
        """Number of output edges, without materializing the union
        (partitions hold disjoint edge sets, so outputs are disjoint)."""
        return sum(len(part.out) for part in self._parts.values())

    @property
    def m(self) -> int:
        return len(self._index)

    def edges(self) -> set[Edge]:
        """The full current edge set (union of all partitions)."""
        return set(self._index)

    def __contains__(self, edge: Edge) -> bool:
        u, v = edge
        return norm_edge(u, v) in self._index

    def level_sizes(self) -> dict[int, int]:
        """Occupied level -> partition edge count (diagnostics)."""
        return {i: len(p.edges) for i, p in self._parts.items()}

    # -- updates --------------------------------------------------------------

    def update(
        self,
        insertions: Iterable[Edge] = (),
        deletions: Iterable[Edge] = (),
    ) -> tuple[set[Edge], set[Edge]]:
        """Apply a batch (deletions first, then insertions); returns the net
        output delta ``(ins, dels)``."""
        net: dict[Edge, int] = {}

        def bump(e: Edge, d: int) -> None:
            c = net.get(e, 0) + d
            if c == 0:
                net.pop(e, None)
            else:
                net[e] = c

        deletions = [norm_edge(u, v) for u, v in deletions]
        insertions = [norm_edge(u, v) for u, v in insertions]
        self._delete(deletions, bump)
        self._insert(insertions, bump)
        self._updates_since_restart += len(deletions) + len(insertions)
        if (
            self._restart_every is not None
            and self._updates_since_restart >= self._restart_every
        ):
            self._restart(bump)
        ins = {e for e, c in net.items() if c > 0}
        dels = {e for e, c in net.items() if c < 0}
        assert all(abs(c) == 1 for c in net.values())
        return ins, dels

    def _restart(self, bump) -> None:
        """Tear down every partition and rebuild from the live edge set."""
        edges = set(self._index)
        for part in self._parts.values():
            for e in part.out:
                bump(e, -1)
        self._parts.clear()
        self._index.clear()
        self._updates_since_restart = 0
        self.restart_count += 1
        if edges:
            j = 0
            while len(edges) > self._cap(j):
                j += 1
            out = self._build(j, edges)
            for e in out:
                bump(e, +1)

    def _delete(self, edges: list[Edge], bump) -> None:
        by_level: dict[int, list[Edge]] = {}
        self._cost.charge_hash_op(len(edges))
        for e in edges:
            if e not in self._index:
                raise KeyError(f"edge {e} not present")
            by_level.setdefault(self._index[e], []).append(e)
        for i, batch in sorted(by_level.items()):
            part = self._parts[i]
            for e in batch:
                del self._index[e]
                part.edges.remove(e)
            if i == 0:
                for e in batch:
                    part.out.remove(e)
                    bump(e, -1)
            else:
                p_ins, p_dels = part.struct.batch_delete(batch)
                for e in p_dels:
                    part.out.remove(e)
                    bump(e, -1)
                for e in p_ins:
                    part.out.add(e)
                    bump(e, +1)
            if not part.edges:
                del self._parts[i]

    def _insert(self, edges: list[Edge], bump) -> None:
        if not edges:
            return
        for e in edges:
            if e in self._index:
                raise ValueError(f"duplicate edge {e}")
        if len(set(edges)) != len(edges):
            raise ValueError("duplicate edges within batch")

        self._cost.charge_hash_op(len(edges))
        base = self._base
        q, r = divmod(len(edges), base)
        # Chunk U into U_i of size base * 2^i per the set bits of q, highest
        # first (the paper's processing order), then the remainder U_r.
        pos = 0
        for i in reversed(range(q.bit_length())):
            if not (q >> i) & 1:
                continue
            size = base << i
            chunk = edges[pos : pos + size]
            pos += size
            self._merge_into_empty(i, set(chunk), bump)
        remainder = edges[pos:]
        if not remainder:
            return
        part0 = self._parts.get(0)
        if len(remainder) + (len(part0.edges) if part0 else 0) <= base:
            if part0 is None:
                self._apply_build(0, set(remainder), bump)
            else:
                for e in remainder:
                    self._index[e] = 0
                    part0.edges.add(e)
                    part0.out.add(e)
                    bump(e, +1)
        else:
            self._merge_into_empty(0, set(remainder), bump)

    def _merge_into_empty(self, i: int, chunk: set[Edge], bump) -> None:
        """Place ``chunk`` (destined for level ``i``) into the first empty
        slot ``j >= i``, absorbing partitions ``i..j-1``."""
        j = self._first_empty(i)
        merged = set(chunk)
        for lvl in range(i, j):
            part = self._parts.pop(lvl, None)
            if part is None:
                continue
            merged |= part.edges
            for e in part.out:
                bump(e, -1)
        self._apply_build(j, merged, bump)

    def _apply_build(self, j: int, edges: set[Edge], bump) -> None:
        out = self._build(j, edges)
        for e in out:
            bump(e, +1)

    # -- invariants (tests) -------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify Invariant B1, the INDEX table, and outputs (tests)."""
        seen: set[Edge] = set()
        for i, part in self._parts.items():
            assert part.edges, f"empty partition {i} retained"
            assert len(part.edges) <= self._cap(i), f"partition {i} overfull"
            assert not (part.edges & seen)
            seen |= part.edges
            for e in part.edges:
                assert self._index[e] == i
            if i == 0:
                assert part.out == part.edges
            else:
                assert part.out == part.struct.output_edges()
                assert part.out <= part.edges
        assert seen == set(self._index)

"""Static (2k−1)-spanner of Baswana–Sen [BS07] — the classic baseline.

The randomized clustering algorithm: ``k-1`` rounds of cluster sampling with
probability ``n^{-1/k}`` followed by a final inter-cluster round.  Expected
size ``O(k * n^{1+1/k})``; stretch ``2k - 1`` always.

This is the *static recompute* baseline for the dynamic-vs-static crossover
experiment (F3): a batch-dynamic algorithm must beat rerunning this from
scratch once batches are small relative to ``m``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.graph.dynamic_graph import Edge, norm_edge
from repro.pram.cost import NULL_COST_MODEL, CostModel, log2ceil

__all__ = ["baswana_sen_spanner"]


def baswana_sen_spanner(
    n: int,
    edges: Iterable[Edge],
    k: int,
    seed: int | None = None,
    cost: CostModel = NULL_COST_MODEL,
) -> set[Edge]:
    """Compute a (2k−1)-spanner with expected ``O(k n^{1+1/k})`` edges.

    Follows [BS07]: clusters start as singletons; each of the ``k-1``
    phases samples clusters, joins adjacent vertices to sampled clusters,
    and discharges unsampled neighborhoods with one edge per adjacent
    cluster; the final phase discharges everything.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    rng = np.random.default_rng(seed)
    edges = [norm_edge(u, v) for u, v in edges]
    if k == 1:
        return set(edges)

    # adjacency as dict-of-dicts: adj[u][v] present iff edge alive
    adj: list[dict[int, bool]] = [dict() for _ in range(n)]
    for u, v in edges:
        adj[u][v] = True
        adj[v][u] = True

    spanner: set[Edge] = set()
    # cluster[v]: id of v's cluster, or None if v was discharged
    cluster: list[int | None] = list(range(n))
    p = float(n) ** (-1.0 / k) if n > 1 else 0.5
    logn = log2ceil(max(n, 2))

    def discharge(v: int, sampled_ids: set[int] | None) -> None:
        """Add one edge from v to each adjacent (unsampled) cluster and
        remove those neighborhoods from the working graph."""
        best: dict[int, int] = {}
        for w in adj[v]:
            cw = cluster[w]
            if cw is None:
                continue
            if sampled_ids is not None and cw in sampled_ids:
                continue
            if cw not in best or w < best[cw]:
                best[cw] = w
        for w in best.values():
            spanner.add(norm_edge(v, w))
        # remove edges to the discharged clusters
        gone = [
            w
            for w in adj[v]
            if cluster[w] is not None
            and (sampled_ids is None or cluster[w] not in sampled_ids)
        ]
        for w in gone:
            del adj[v][w]
            del adj[w][v]
        cost.charge(work=(len(gone) + 1) * logn, depth=logn)

    for _phase in range(k - 1):
        ids = {c for c in cluster if c is not None}
        sampled_ids = {c for c in ids if rng.random() < p}
        new_cluster: list[int | None] = list(cluster)
        with cost.parallel() as par:
            for v in range(n):
                if cluster[v] is None or cluster[v] in sampled_ids:
                    continue
                with par.task():
                    # v's cluster was not sampled: join an adjacent sampled
                    # cluster if any, then discharge the unsampled
                    # neighborhood (one representative edge per cluster).
                    join = None
                    for w in adj[v]:
                        cw = cluster[w]
                        if cw is not None and cw in sampled_ids:
                            if join is None or (cw, w) < join:
                                join = (cw, w)
                    cost.charge(work=(len(adj[v]) + 1) * logn, depth=logn)
                    if join is not None:
                        # join the sampled cluster; in the unweighted case
                        # only the edges into the joined cluster get
                        # discharged (all edges have equal weight, so no
                        # "strictly shorter" neighborhoods exist).
                        cid, w = join
                        spanner.add(norm_edge(v, w))
                        new_cluster[v] = cid
                        gone = [x for x in adj[v] if cluster[x] == cid]
                        for x in gone:
                            del adj[v][x]
                            del adj[x][v]
                        cost.charge(work=(len(gone) + 1) * logn, depth=logn)
                    else:
                        # no sampled neighbor: one representative edge per
                        # adjacent cluster, then retire v entirely.
                        new_cluster[v] = None
                        discharge(v, sampled_ids)
        cluster = new_cluster

    # final phase: discharge every remaining vertex fully
    with cost.parallel() as par:
        for v in range(n):
            with par.task():
                discharge(v, None)
    return spanner

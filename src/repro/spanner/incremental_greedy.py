"""Incremental greedy (2k−1)-spanner — the classic [ADD+93] construction
as an insertion-only dynamic baseline.

On inserting edge (u, v): if the current spanner already connects u and v
within 2k−1 hops, discard the edge; otherwise keep it.  The kept graph has
girth > 2k, hence at most O(n^{1+1/k}) edges — the *optimal* size bound
(no log factor), and it never removes a spanner edge (zero recourse).

This is the natural comparison point for the paper's Theorem 1.1 on
insertion-only streams (cf. Elkin [Elk11]'s O(1)-expected-time incremental
algorithm): greedy has the best possible size/stretch but pays a BFS per
insertion and cannot handle deletions at all — exactly the gap the
batch-dynamic algorithm closes.
"""

from __future__ import annotations

from typing import Iterable

from repro.graph.dynamic_graph import Edge, norm_edge
from repro.graph.traversal import bfs_distances_bounded
from repro.pram.cost import NULL_COST_MODEL, CostModel, log2ceil

__all__ = ["IncrementalGreedySpanner"]


class IncrementalGreedySpanner:
    """Insertion-only greedy (2k−1)-spanner.

    Supports the same ``update`` signature as the dynamic structures so
    harness code can drive it, but raises on deletions.
    """

    def __init__(
        self,
        n: int,
        edges: Iterable[Edge] = (),
        k: int = 2,
        cost: CostModel = NULL_COST_MODEL,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.n = n
        self.k = k
        self._cost = cost
        self._adj: list[set[int]] = [set() for _ in range(n)]
        self._edges: set[Edge] = set()
        self._spanner: set[Edge] = set()
        if edges:
            self.update(insertions=edges)

    @property
    def stretch(self) -> int:
        return 2 * self.k - 1

    @property
    def m(self) -> int:
        return len(self._edges)

    def spanner_edges(self) -> set[Edge]:
        """The kept (greedy) spanner edges."""
        return set(self._spanner)

    def spanner_size(self) -> int:
        """Number of kept edges."""
        return len(self._spanner)

    def update(
        self,
        insertions: Iterable[Edge] = (),
        deletions: Iterable[Edge] = (),
    ) -> tuple[set[Edge], set[Edge]]:
        """Insert a batch (sorted for determinism); deletions unsupported."""
        deletions = list(deletions)
        if deletions:
            raise NotImplementedError(
                "greedy spanner is insertion-only — this is precisely the "
                "limitation Theorem 1.1 removes"
            )
        ins: set[Edge] = set()
        for e in sorted(norm_edge(u, v) for u, v in insertions):
            u, v = e
            if e in self._edges:
                raise ValueError(f"duplicate edge {e}")
            self._edges.add(e)
            # one bounded BFS in the current spanner per insertion
            dist = bfs_distances_bounded(self._adj, u, self.stretch)
            self._cost.charge(
                work=len(self._spanner) + 1,
                depth=self.stretch * log2ceil(max(self.n, 2)),
            )
            if dist.get(v, self.stretch + 1) > self.stretch:
                self._spanner.add(e)
                self._adj[u].add(v)
                self._adj[v].add(u)
                ins.add(e)
        return ins, set()

    def check_invariants(self) -> None:
        """Verify the girth property that bounds greedy's size (tests)."""
        assert self._spanner <= self._edges
        # girth > 2k: every spanner edge, when removed, leaves its
        # endpoints at distance > 2k - 2 in the remaining spanner
        for u, v in self._spanner:
            self._adj[u].discard(v)
            self._adj[v].discard(u)
            d = bfs_distances_bounded(self._adj, u, 2 * self.k - 1).get(v)
            self._adj[u].add(v)
            self._adj[v].add(u)
            assert d is None or d > 2 * self.k - 2

"""Static exponential-shift spanner (Algorithm 2: [MPVX15] as modified by
the paper to be Las Vegas).

Cluster by ``argmin_u (dist(u, v) - delta_u)`` with ``delta_u ~
Exp(log(10n)/k)``; the spanner is the union of the cluster forest and one
edge per (vertex, adjacent foreign cluster) pair.  Lines 1–3 of Algorithm 2
resample until ``max delta_u < k``, which upgrades the Monte Carlo stretch
guarantee of [MPVX15] to Las Vegas; pass ``las_vegas=False`` to get the
original single-shot behaviour (ablation A1).
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.graph.dynamic_graph import Edge, norm_edge
from repro.pram.cost import NULL_COST_MODEL, CostModel
from repro.spanner.shift_clustering import sample_shifts, static_clusters

__all__ = ["mpvx_spanner", "spanner_from_clustering"]


def spanner_from_clustering(
    n: int,
    edges: list[Edge],
    cluster: list[int],
    parent: list[int | None],
) -> set[Edge]:
    """Assemble Algorithm 2's output from a clustering: forest edges plus
    one representative per (vertex, foreign adjacent cluster)."""
    spanner: set[Edge] = set()
    for v in range(n):
        if parent[v] is not None:
            spanner.add(norm_edge(parent[v], v))
    best: dict[tuple[int, int], int] = {}
    for u, v in edges:
        cu, cv = cluster[u], cluster[v]
        if cu == cv:
            continue
        for a, b in ((u, v), (v, u)):
            key = (a, cluster[b])
            if key not in best or b < best[key]:
                best[key] = b
    for (a, _c), b in best.items():
        spanner.add(norm_edge(a, b))
    return spanner


def mpvx_spanner(
    n: int,
    edges: Iterable[Edge],
    k: int,
    seed: int | None = None,
    las_vegas: bool = True,
    cost: CostModel = NULL_COST_MODEL,
) -> set[Edge]:
    """Static spanner of Algorithm 2.

    With ``las_vegas=True`` the stretch is (2k−1) with high probability
    (resampling loop); with ``False`` it is (2k−1) only with constant
    probability (the [MPVX15] original), which ablation A1 measures.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    edges = [norm_edge(u, v) for u, v in edges]
    rng = np.random.default_rng(seed)
    beta = math.log(10 * max(n, 2)) / k
    if las_vegas:
        deltas = sample_shifts(n, beta=beta, cap=float(k), rng=rng)
    else:
        deltas = rng.exponential(scale=1.0 / beta, size=n)
    cluster, parent, _ = static_clusters(n, edges, deltas)
    cost.charge(
        work=(len(edges) + n + 1) * max(1, int(math.log2(max(n, 2)))),
        depth=max(1, int(math.log2(max(n, 2)))) * (int(max(deltas, default=1)) + 2),
    )
    return spanner_from_clustering(n, edges, cluster, parent)

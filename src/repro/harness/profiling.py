"""Profiling helpers — "no optimization without measuring".

Thin wrappers over :mod:`cProfile` that profile a workload run through any
dynamic structure and report where the time actually goes (the hpc-parallel
guides' first rule).  Used by ``python -m repro.cli ... --profile`` and
directly in notebooks/tests.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Any, Callable

from repro.workloads.streams import Workload

__all__ = ["profile_callable", "profile_workload"]


def profile_callable(
    fn: Callable[[], Any],
    top: int = 15,
    sort: str = "cumulative",
) -> tuple[Any, str]:
    """Run ``fn`` under cProfile; returns ``(result, report_text)``."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    return result, buf.getvalue()


def profile_workload(
    workload: Workload,
    build: Callable[[list], Any],
    top: int = 15,
) -> str:
    """Profile one full workload run (init + every batch); returns the
    report text.

    ``build(initial_edges)`` must return a structure exposing
    ``update(insertions, deletions)``.
    """

    def run():
        struct = build(workload.initial_edges)
        for batch in workload.batches:
            struct.update(
                insertions=batch.insertions, deletions=batch.deletions
            )
        return struct

    _, report = profile_callable(run, top=top)
    return report

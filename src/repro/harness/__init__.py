"""Experiment runner, table formatting, and text figures for the
benchmark suite."""

from repro.harness.figures import ascii_plot, sparkline
from repro.harness.profiling import profile_callable, profile_workload
from repro.harness.runner import RunStats, format_table, run_workload

__all__ = [
    "RunStats",
    "ascii_plot",
    "format_table",
    "profile_callable",
    "profile_workload",
    "run_workload",
    "sparkline",
]

"""Experiment harness: drive a dynamic structure over a workload while
recording wall time, cost-model work/depth, and recourse.

Every benchmark in ``benchmarks/`` reduces to: build a structure, run a
:class:`~repro.workloads.Workload` through it, and report a
:class:`RunStats` row.  The harness owns that loop so the benchmarks stay
declarative.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

from repro.pram.cost import Cost, CostModel, brent_time
from repro.workloads.streams import Workload

__all__ = ["RunStats", "run_workload", "format_table"]


class _DynamicStructure(Protocol):
    def update(self, insertions=(), deletions=()):
        ...


@dataclass
class RunStats:
    """Aggregate statistics of one workload run."""

    label: str
    n: int
    initial_edges: int
    total_updates: int
    num_batches: int
    init_seconds: float
    update_seconds: float
    init_cost: Cost
    update_cost: Cost
    total_recourse: int
    max_batch_depth: int
    output_size_final: int
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def recourse_per_update(self) -> float:
        return self.total_recourse / max(self.total_updates, 1)

    @property
    def work_per_update(self) -> float:
        return self.update_cost.work / max(self.total_updates, 1)

    @property
    def seconds_per_update(self) -> float:
        return self.update_seconds / max(self.total_updates, 1)

    def simulated_time(self, processors: int) -> float:
        """Brent bound for the whole update phase on ``p`` processors."""
        return brent_time(self.update_cost, processors)

    def row(self) -> dict[str, Any]:
        """Flatten the stats into a table row (dict)."""
        out = {
            "label": self.label,
            "n": self.n,
            "m0": self.initial_edges,
            "updates": self.total_updates,
            "batches": self.num_batches,
            "init_s": round(self.init_seconds, 4),
            "upd_s": round(self.update_seconds, 4),
            "work/upd": round(self.work_per_update, 1),
            "maxdepth": self.max_batch_depth,
            "recourse/upd": round(self.recourse_per_update, 3),
            "|H|": self.output_size_final,
        }
        out.update(self.extra)
        return out


def run_workload(
    label: str,
    workload: Workload,
    build: Callable[[list, CostModel], _DynamicStructure],
    output_size: Callable[[Any], int] | None = None,
    per_batch: Callable[[Any, int], dict[str, Any]] | None = None,
) -> RunStats:
    """Run ``workload`` through the structure ``build(initial_edges, cost)``.

    ``build`` receives the initial edges and a fresh :class:`CostModel`; the
    structure must expose ``update(insertions, deletions) -> (ins, dels)``.
    ``per_batch(structure, batch_index)`` may collect extra diagnostics;
    its last non-empty result lands in ``RunStats.extra``.
    """
    cost = CostModel()
    t0 = time.perf_counter()
    struct = build(workload.initial_edges, cost)
    init_seconds = time.perf_counter() - t0
    init_cost = cost.snapshot()
    cost.reset()

    total_recourse = 0
    max_batch_depth = 0
    extra: dict[str, Any] = {}
    t0 = time.perf_counter()
    for idx, batch in enumerate(workload.batches):
        with cost.frame() as fr:
            ins, dels = struct.update(
                insertions=batch.insertions, deletions=batch.deletions
            )
        total_recourse += len(ins) + len(dels)
        max_batch_depth = max(max_batch_depth, fr.depth)
        if per_batch is not None:
            got = per_batch(struct, idx)
            if got:
                extra.update(got)
    update_seconds = time.perf_counter() - t0

    if output_size is None:
        def output_size(s):  # type: ignore[no-redef]
            if hasattr(s, "spanner_size"):
                return s.spanner_size()
            if hasattr(s, "sparsifier_size"):
                return s.sparsifier_size()
            return len(s.output_edges())

    return RunStats(
        label=label,
        n=workload.n,
        initial_edges=len(workload.initial_edges),
        total_updates=workload.total_updates,
        num_batches=len(workload.batches),
        init_seconds=init_seconds,
        update_seconds=update_seconds,
        init_cost=init_cost,
        update_cost=cost.snapshot(),
        total_recourse=total_recourse,
        max_batch_depth=max_batch_depth,
        output_size_final=output_size(struct),
        extra=extra,
    )


def format_table(rows: list[dict[str, Any]], title: str = "") -> str:
    """Render result rows as an aligned text table (the bench output the
    EXPERIMENTS.md figures quote)."""
    if not rows:
        return f"{title}\n(no rows)"
    cols: list[str] = []
    for row in rows:
        for key in row:
            if key not in cols:
                cols.append(key)
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows))
        for c in cols
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).rjust(widths[c]) for c in cols)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            "  ".join(str(row.get(c, "")).rjust(widths[c]) for c in cols)
        )
    return "\n".join(lines)

"""Plain-text figure rendering for benchmark output.

No plotting dependencies are available offline, so the "figures" of
EXPERIMENTS.md are rendered as text: :func:`sparkline` for one-line trend
summaries and :func:`ascii_plot` for small multi-series scatter/line plots
in bench output.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["sparkline", "ascii_plot"]

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line bar sketch of a series (min..max scaled to 8 levels)."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if math.isclose(lo, hi):
        return _BARS[3] * len(vals)
    span = hi - lo
    return "".join(
        _BARS[min(len(_BARS) - 1, int((v - lo) / span * (len(_BARS) - 1)))]
        for v in vals
    )


def ascii_plot(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    logx: bool = False,
    logy: bool = False,
    title: str = "",
) -> str:
    """Render multiple y-series against shared x-values as an ASCII plot.

    Each series gets a marker character; axes are annotated with the data
    ranges.  Intended for the scaling figures (F1–F4) where the *shape* is
    the message.
    """
    if not xs or not series:
        return f"{title}\n(no data)"
    markers = "ox+*#@%&"

    def tx(v: float) -> float:
        return math.log10(v) if logx else v

    def ty(v: float) -> float:
        return math.log10(v) if logy else v

    all_y = [ty(v) for ys in series.values() for v in ys]
    gx = [tx(v) for v in xs]
    x_lo, x_hi = min(gx), max(gx)
    y_lo, y_hi = min(all_y), max(all_y)
    if math.isclose(x_lo, x_hi):
        x_hi = x_lo + 1.0
    if math.isclose(y_lo, y_hi):
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        mark = markers[si % len(markers)]
        for x, y in zip(gx, (ty(v) for v in ys)):
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = mark

    lines = []
    if title:
        lines.append(title)
    y_hi_label = f"{10 ** y_hi if logy else y_hi:.3g}"
    y_lo_label = f"{10 ** y_lo if logy else y_lo:.3g}"
    lines.append(f"{y_hi_label:>10} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo_label:>10} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + " └" + "─" * width)
    x_lo_label = f"{10 ** x_lo if logx else x_lo:.3g}"
    x_hi_label = f"{10 ** x_hi if logx else x_hi:.3g}"
    pad = width - len(x_lo_label) - len(x_hi_label)
    lines.append(
        " " * 12 + x_lo_label + " " * max(pad, 1) + x_hi_label
    )
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)

"""Fully-dynamic spectral sparsifier (Theorem 1.6).

Lemma 6.7 makes spectral sparsifiers decomposable, so the same Bentley–Saxe
dynamization as Theorem 1.1 applies: partitions ``E_0..E_b`` with Invariant
B2 (``|E_i| <= 2^{i+l_0}``, ``2^{l_0} >= n``), level 0 verbatim in the
output (weight 1), every other level a decremental chain of Lemma 6.6.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.graph.dynamic_graph import Edge, norm_edge
from repro.pram.cost import NULL_COST_MODEL, CostModel
from repro.sparsifier.chain import DecrementalSpectralSparsifier
from repro.spanner.dynamizer import BentleySaxeDynamizer

__all__ = ["FullyDynamicSpectralSparsifier"]


class FullyDynamicSpectralSparsifier:
    """Theorem 1.6: fully-dynamic (1±ε)-spectral sparsifier.

    The approximation quality is governed by the per-level bundle size
    ``t`` exactly as in Lemma 6.6 (the paper's asymptotic choice is
    :func:`repro.sparsifier.chain.paper_bundle_size`).
    """

    def __init__(
        self,
        n: int,
        edges: Iterable[Edge] = (),
        t: int = 2,
        k: int | None = None,
        seed: int | None = None,
        instances: int | None = None,
        beta: float = 0.25,
        cap: float | None = None,
        base_capacity: int | None = None,
        cost: CostModel = NULL_COST_MODEL,
    ) -> None:
        self.n = n
        self._cost = cost
        self._rng = np.random.default_rng(seed)
        self._t = t
        self._k = k
        self._instances = instances
        self._beta = beta
        self._cap = cap
        if base_capacity is None:
            base_capacity = 1 << max(1, math.ceil(math.log2(max(n, 2))))
        self._dyn = BentleySaxeDynamizer(
            edges, self._make_instance, base_capacity, cost=cost
        )

    def _make_instance(self, edges: list[Edge]) -> DecrementalSpectralSparsifier:
        return DecrementalSpectralSparsifier(
            self.n,
            edges,
            t=self._t,
            k=self._k,
            seed=int(self._rng.integers(0, 2**63 - 1)),
            instances=self._instances,
            beta=self._beta,
            cap=self._cap,
            cost=self._cost,
        )

    # -- queries ------------------------------------------------------------

    def weighted_edges(self) -> dict[Edge, float]:
        """The sparsifier with weights (Lemma 6.7 union across partitions;
        level-0 edges carry weight 1)."""
        out: dict[Edge, float] = {}
        for i, part in sorted(self._dyn._parts.items()):
            if i == 0:
                for e in part.out:
                    out[e] = 1.0
            else:
                for e, w in part.struct.weighted_edges().items():
                    assert e not in out
                    out[e] = w
        return out

    def output_edges(self) -> set[Edge]:
        """The sparsifier's edge set (weights via :meth:`weighted_edges`)."""
        return self._dyn.output_edges()

    def sparsifier_size(self) -> int:
        """Number of edges in the sparsifier."""
        return len(self._dyn.output_edges())

    @property
    def m(self) -> int:
        return self._dyn.m

    def edges(self) -> set[Edge]:
        """The current graph's edge set."""
        return self._dyn.edges()

    def __contains__(self, edge: Edge) -> bool:
        return edge in self._dyn

    # -- updates --------------------------------------------------------------

    def update(
        self,
        insertions: Iterable[Edge] = (),
        deletions: Iterable[Edge] = (),
    ) -> tuple[set[Edge], set[Edge]]:
        """Apply one batch; returns the net output-edge delta."""
        return self._dyn.update(insertions, deletions)

    def insert_batch(self, edges):
        """Insert-only convenience wrapper around :meth:`update`."""
        return self.update(insertions=edges)

    def delete_batch(self, edges):
        """Delete-only convenience wrapper around :meth:`update`."""
        return self.update(deletions=edges)

    def check_invariants(self) -> None:
        """Verify the partitions and every per-partition chain (tests)."""
        self._dyn.check_invariants()
        for i, part in self._dyn._parts.items():
            if i > 0:
                part.struct.check_invariants()

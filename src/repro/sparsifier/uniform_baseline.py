"""Uniform-sampling sparsifier baseline (what the bundles are *for*).

Sampling every edge with probability ``p`` and weight ``1/p`` preserves
cut *expectations* but catastrophically misses low-connectivity structure:
a bridge survives only with probability ``p``.  [ADK+16]/Koutis-style
bundle sparsifiers first secure a t-bundle (which always contains every
bridge and, more generally, certifies connectivity ``t``) and only sample
the well-connected remainder — this module provides the naive baseline the
E7/A5 benches compare against.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.graph.dynamic_graph import Edge, norm_edge

__all__ = ["uniform_sample_sparsifier"]


def uniform_sample_sparsifier(
    edges: Iterable[Edge],
    p: float,
    seed: int | None = None,
) -> dict[Edge, float]:
    """Keep each edge independently with probability ``p`` at weight
    ``1/p``."""
    if not 0 < p <= 1:
        raise ValueError("p must be in (0, 1]")
    rng = np.random.default_rng(seed)
    edges = [norm_edge(u, v) for u, v in edges]
    coins = rng.random(len(edges)) < p
    return {e: 1.0 / p for e, keep in zip(edges, coins) if keep}

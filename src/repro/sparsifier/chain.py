"""Decremental spectral sparsifier chain (Algorithms 9–10, Lemma 6.6).

``Spectral-Sparsify`` stacks ``k = ceil(log m)`` rounds of
``Light-Spectral-Sparsify``: round ``i`` peels a t-bundle ``B_i`` off
``G_{i-1}`` and samples each remaining edge into ``G_i`` with probability
1/4.  All graphs stay unweighted during maintenance; weights are assigned
at read time — bundle ``B_i`` edges carry ``4^{i-1}``, the final residual
``G_k`` carries ``4^k`` (the paper's closing observation in §6.4).

Deletions cascade: a batch hitting ``G_{i-1}`` updates ``B_i``; the edges
the bundle newly absorbed (``δH_ins``) must leave ``G_i`` together with the
deleted edges that had been sampled into it.  Edge coins are fixed at
initialization (decremental structure — no new edges ever enter a level),
preserving the uniform-and-independent sampling the [ADK+16] analysis
needs.

The paper's t is ``Θ(ε^{-2} log² m log³ n)`` — astronomically large at
laptop scale, so ``t`` is an explicit knob here; EXPERIMENTS.md records the
quality-vs-t tradeoff (bench E7) instead of hardwiring the constant.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.bundle.tbundle import DecrementalTBundle
from repro.graph.dynamic_graph import Edge, norm_edge
from repro.pram.cost import NULL_COST_MODEL, CostModel

__all__ = ["DecrementalSpectralSparsifier", "paper_bundle_size"]


def paper_bundle_size(n: int, m: int, epsilon: float) -> int:
    """The paper's t = Θ(ε⁻² log² m log³ n) with unit constant."""
    ln = math.log2(max(n, 2))
    lm = math.log2(max(m, 2))
    return max(1, math.ceil(epsilon**-2 * lm**2 * ln**3))


class DecrementalSpectralSparsifier:
    """Lemma 6.6 structure.

    Parameters
    ----------
    t:
        Bundle size per level (see :func:`paper_bundle_size` for the paper's
        asymptotic choice; benches sweep this).
    k:
        Number of sampling rounds (default ``ceil(log2 m)``); rounds stop
        early once a level's residual is below ``4 log2 n`` edges.
    """

    def __init__(
        self,
        n: int,
        edges: Iterable[Edge],
        t: int = 2,
        k: int | None = None,
        seed: int | None = None,
        instances: int | None = None,
        beta: float = 0.25,
        cap: float | None = None,
        cost: CostModel = NULL_COST_MODEL,
    ) -> None:
        self.n = n
        self._cost = cost
        edges = [norm_edge(u, v) for u, v in edges]
        m = len(edges)
        if k is None:
            k = max(1, math.ceil(math.log2(max(m, 2))))
        self.k_requested = k
        rng = np.random.default_rng(seed)
        min_residual = 4 * math.log2(max(n, 2))

        self.bundles: list[DecrementalTBundle] = []
        #: per level: the fixed sampled subset of the level's residual
        self._levels: list[set[Edge]] = []
        cur = list(edges)
        for _i in range(k):
            if len(cur) <= min_residual:
                break
            bundle = DecrementalTBundle(
                n, cur, t=t,
                seed=int(rng.integers(0, 2**63 - 1)),
                beta=beta, instances=instances, cap=cap, cost=cost,
            )
            self.bundles.append(bundle)
            rest = sorted(bundle.non_bundle_edges())
            coins = rng.random(len(rest)) < 0.25
            nxt = {e for e, keep in zip(rest, coins) if keep}
            self._levels.append(nxt)
            cur = sorted(nxt)
        self._residual: set[Edge] = set(cur)

    # -- queries -----------------------------------------------------------

    @property
    def k(self) -> int:
        """Number of Light-Spectral-Sparsify rounds actually built."""
        return len(self.bundles)

    def weighted_edges(self) -> dict[Edge, float]:
        """The sparsifier: bundles at ``4^{i-1}``, residual at ``4^k``."""
        out: dict[Edge, float] = {}
        for i, bundle in enumerate(self.bundles):
            w = 4.0**i
            for e in bundle.bundle_edges():
                assert e not in out
                out[e] = w
        w = 4.0 ** len(self.bundles)
        for e in self._residual:
            assert e not in out
            out[e] = w
        return out

    def output_edges(self) -> set[Edge]:
        """The sparsifier's edge set (weights via :meth:`weighted_edges`)."""
        out: set[Edge] = set(self._residual)
        for bundle in self.bundles:
            out |= bundle.bundle_edges()
        return out

    def weight_of(self, e: Edge) -> float:
        """Weight of one output edge (``4^i`` by the level holding it)."""
        e = norm_edge(*e)
        for i, bundle in enumerate(self.bundles):
            if e in bundle.bundle_edges():
                return 4.0**i
        if e in self._residual:
            return 4.0 ** len(self.bundles)
        raise KeyError(e)

    def sparsifier_size(self) -> int:
        """Number of edges in the sparsifier."""
        return len(self._residual) + sum(
            b.bundle_size() for b in self.bundles
        )

    @property
    def m(self) -> int:
        return self.bundles[0].m if self.bundles else len(self._residual)

    # -- updates -----------------------------------------------------------------

    def batch_delete(self, edges: Iterable[Edge]) -> tuple[set[Edge], set[Edge]]:
        """Delete graph edges; returns the net output-edge delta (weights
        via :meth:`weight_of`)."""
        cur_del = [norm_edge(u, v) for u, v in edges]
        net: dict[Edge, int] = {}

        def bump(e: Edge, d: int) -> None:
            c = net.get(e, 0) + d
            if c == 0:
                net.pop(e, None)
            else:
                net[e] = c

        for i, bundle in enumerate(self.bundles):
            if not cur_del:
                break
            ins_b, dels_b = bundle.batch_delete(cur_del)
            for e in ins_b:
                bump(e, +1)
            for e in dels_b:
                bump(e, -1)
            # edges leaving level i's residual: deleted-and-sampled, plus
            # newly absorbed bundle edges that had been sampled.
            level = self._levels[i]
            nxt: list[Edge] = []
            for e in list(cur_del) + sorted(ins_b):
                if e in level:
                    level.remove(e)
                    nxt.append(e)
            cur_del = nxt
        for e in cur_del:
            if e in self._residual:
                self._residual.remove(e)
                bump(e, -1)
            elif not self.bundles:
                raise KeyError(f"edge {e} not present")
        ins = {e for e, c in net.items() if c > 0}
        dels = {e for e, c in net.items() if c < 0}
        return ins, dels

    # -- invariants (tests) ----------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify the level chain and weighted view (tests)."""
        for i, bundle in enumerate(self.bundles):
            bundle.check_invariants()
            # level residual = sampled subset of the bundle's non-bundle
            assert self._levels[i] <= bundle.non_bundle_edges()
            nxt_graph = (
                set(self.bundles[i + 1]._graph)
                if i + 1 < len(self.bundles)
                else self._residual
            )
            assert nxt_graph == self._levels[i], f"level {i} diverged"
        # weighted view is consistent
        w = self.weighted_edges()
        assert set(w) == self.output_edges()

"""Spectral sparsifiers: decremental chain (Lemma 6.6) and the
fully-dynamic Theorem 1.6 structure."""

from repro.sparsifier.chain import (
    DecrementalSpectralSparsifier,
    paper_bundle_size,
)
from repro.sparsifier.fully_dynamic import FullyDynamicSpectralSparsifier
from repro.sparsifier.uniform_baseline import uniform_sample_sparsifier

__all__ = [
    "DecrementalSpectralSparsifier",
    "FullyDynamicSpectralSparsifier",
    "paper_bundle_size",
    "uniform_sample_sparsifier",
]

"""repro — Parallel batch-dynamic spanners and sparsifiers.

Reproduction of *"Parallel Batch-Dynamic Algorithms for Spanners, and
Extensions"* (Ghaffari & Koo, SPAA 2025).

Public API highlights
---------------------
- :class:`repro.spanner.FullyDynamicSpanner` — Theorem 1.1, fully-dynamic
  (2k−1)-spanner under batch updates.
- :class:`repro.bfs.BatchDynamicESTree` — Theorem 1.2, batch-decremental
  shallow shortest-path tree.
- :class:`repro.contraction.SparseSpannerDynamic` — Theorem 1.3, O(n)-edge
  sparse spanner via nested contractions.
- :class:`repro.ultrasparse.UltraSparseSpannerDynamic` — Theorem 1.4,
  n + O(n/x)-edge ultra-sparse spanner.
- :class:`repro.bundle.DecrementalTBundle` — Theorem 1.5, decremental
  t-bundle spanner.
- :class:`repro.sparsifier.FullyDynamicSpectralSparsifier` — Theorem 1.6,
  fully-dynamic (1±ε) spectral sparsifier.
- :mod:`repro.pram` — the work/depth cost model all of the above report
  their parallel costs through.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]

"""Batch-dynamic ultra-sparse spanner (Theorem 1.4).

One ``ContractUltra`` level (Section 5) on top of the Theorem 1.3 sparse
spanner:

* per-vertex randomness ``(unmark, rand)`` fixed at construction (oblivious
  adversary), heavy/light split by current degree against ``10 x log x``,
* ``HEAD`` maintained by the update rule of §5.2: recompute the changed
  heavy endpoints (``R``), then every light vertex the Algorithm 6 bounded
  BFS reaches from the updated endpoints,
* the output spanner is ``H_1`` (one ``(par(v), v)`` edge per clustered
  vertex) ∪ ``H_2`` (HDT spanning forest over the ⊥-induced subgraph —
  the [AABD19] stand-in) ∪ the pulled-back Theorem 1.3 spanner of the
  contracted graph.

Substitution note (documented in DESIGN.md): the paper's white-box tweak of
Theorem 1.3 (squaring the compression rates so the inner spanner has
``O(n/x)`` edges over the padded vertex set) is replaced by running
Theorem 1.3 unchanged — its size already scales with the number of
non-isolated vertices, which is what the tweak buys.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterable

import numpy as np

from repro.connectivity import DynamicSpanningForest
from repro.contraction.nested import SparseSpannerDynamic
from repro.graph.dynamic_graph import Edge, norm_edge
from repro.pram.cost import NULL_COST_MODEL, CostModel, log2ceil
from repro.ultrasparse.heads import (
    BOTTOM,
    HeadInfo,
    compute_all_heads,
    compute_head_heavy,
    compute_head_light,
    threshold,
)

__all__ = ["UltraSparseSpannerDynamic"]


class UltraSparseSpannerDynamic:
    """Theorem 1.4: n + O(n/x) edges, Õ(x log x · log n) stretch."""

    def __init__(
        self,
        n: int,
        edges: Iterable[Edge] = (),
        x: float = 2.0,
        seed: int | None = None,
        inner_rates: list[float] | None = None,
        k_final: int | None = None,
        base_capacity: int | None = None,
        cost: CostModel = NULL_COST_MODEL,
    ) -> None:
        if x < 2:
            raise ValueError("x must be >= 2")
        self.n = n
        self.x = x
        self.T = threshold(x)
        self._cost = cost
        rng = np.random.default_rng(seed)
        self.unmark: list[int] = (rng.random(n) >= 1.0 / x).astype(int).tolist()
        self.rand: list[float] = rng.random(n).tolist()

        self.adj: list[set[int]] = [set() for _ in range(n)]
        self.info: list[HeadInfo] = [
            HeadInfo(v, None, 0) if self.unmark[v] == 0
            else HeadInfo(BOTTOM, None, 0)
            for v in range(n)
        ]
        self.head: list[int] = [i.head for i in self.info]
        # which rule produced each stored info (drives Algorithm 6's R set)
        self._heavy_flag: list[bool] = [False] * n

        # contracted-edge buckets (NEXTLEVELEDGES + correspondences)
        self._buckets: dict[Edge, set[Edge]] = {}
        self._rep: dict[Edge, Edge] = {}
        self._image: dict[Edge, Edge | None] = {}

        self._dsf = DynamicSpanningForest(
            n, seed=None if seed is None else seed + 1, cost=cost
        )
        self.inner = SparseSpannerDynamic(
            n,
            rates=inner_rates,
            k_final=k_final,
            seed=None if seed is None else seed + 2,
            base_capacity=base_capacity,
            cost=cost,
        )
        # output bookkeeping: H1 (par edges) ⊎ H2 (forest) ⊎ pulled reps
        self._h1: dict[int, Edge] = {}  # vertex -> its (par, v) edge
        self._pull: dict[Edge, Edge] = {}
        self._out: dict[Edge, int] = {}

        if edges:
            self.update(insertions=edges)

    # -- helpers -----------------------------------------------------------

    def _is_heavy(self, v: int) -> bool:
        return len(self.adj[v]) >= self.T

    def _image_of(self, e: Edge) -> Edge | None:
        u, v = e
        hu, hv = self.head[u], self.head[v]
        if hu == BOTTOM or hv == BOTTOM or hu == hv:
            return None
        return norm_edge(hu, hv)

    def _in_dsf(self, e: Edge) -> bool:
        u, v = e
        return self.head[u] == BOTTOM and self.head[v] == BOTTOM

    # -- queries --------------------------------------------------------------

    def spanner_edges(self) -> set[Edge]:
        """The maintained ultra-sparse spanner."""
        return {e for e, c in self._out.items() if c > 0}

    def spanner_size(self) -> int:
        """Number of edges in the maintained spanner."""
        return len(self._out)

    def head_of(self, v: int) -> int:
        """``HEAD(v)`` (-1 encodes ⊥)."""
        return self.head[v]

    def stretch_bound(self) -> float:
        """Lemma 5.1 composition: ``21 x log x * (L + 1)`` where ``L`` is
        the inner sparse spanner's stretch bound."""
        inner_l = self.inner.stretch_bound()
        return 21.0 * self.x * math.log2(max(self.x, 2.0)) * (inner_l + 1)

    @property
    def m(self) -> int:
        return sum(len(a) for a in self.adj) // 2

    # -- the update procedure (Section 5.2) --------------------------------------

    def update(
        self,
        insertions: Iterable[Edge] = (),
        deletions: Iterable[Edge] = (),
    ) -> tuple[set[Edge], set[Edge]]:
        """Apply one batch (§5.2 procedure); returns the net spanner delta."""
        insertions = [norm_edge(u, v) for u, v in insertions]
        deletions = [norm_edge(u, v) for u, v in deletions]
        logn = log2ceil(max(self.n, 2))
        net: dict[Edge, int] = {}

        def bump(e: Edge, d: int) -> None:
            c = net.get(e, 0) + d
            if c == 0:
                net.pop(e, None)
            else:
                net[e] = c

        def inc(e: Edge) -> None:
            c = self._out.get(e, 0)
            self._out[e] = c + 1
            if c == 0:
                bump(e, +1)

        def dec(e: Edge) -> None:
            c = self._out[e]
            if c == 1:
                del self._out[e]
                bump(e, -1)
            else:
                self._out[e] = c - 1

        touched: set[int] = set()
        dirty: set[Edge] = set()

        # Phase A: adjacency + per-edge bookkeeping.
        for e in deletions:
            u, v = e
            if v not in self.adj[u]:
                raise KeyError(f"edge {e} not present")
            self.adj[u].remove(v)
            self.adj[v].remove(u)
            img = self._image.pop(e)
            if img is not None:
                self._buckets[img].remove(e)
                dirty.add(img)
            if e in self._dsf:
                removed, repl = self._dsf.delete(u, v)
                if removed is not None:
                    dec(removed)
                if repl is not None:
                    inc(repl)
            touched.add(u)
            touched.add(v)
            self._cost.charge(work=4 * logn, depth=0)
        for e in insertions:
            u, v = e
            if v in self.adj[u]:
                raise ValueError(f"duplicate edge {e}")
            self.adj[u].add(v)
            self.adj[v].add(u)
            touched.add(u)
            touched.add(v)
            self._cost.charge(work=4 * logn, depth=0)
        self._cost.charge(work=0, depth=2 * logn)

        # Phase B: head recomputation.
        # B1: heavy endpoints first (light BFS reads heavy heads).
        info_changed: list[int] = []
        branch_extra: set[int] = set()  # the Algorithm-6 set R
        for v in sorted(touched):
            if not self._is_heavy(v):
                self._heavy_flag[v] = False
                continue
            new = compute_head_heavy(v, self.adj[v], self.unmark, self.rand)
            self._cost.charge(work=logn, depth=0)
            if new != self.info[v] or not self._heavy_flag[v]:
                # changed head, or a light->heavy transition: both alter
                # what nearby light BFS runs can see, so v joins R.
                branch_extra.add(v)
            if new != self.info[v]:
                self._apply_info(v, new, inc, dec)
                info_changed.append(v)
            self._heavy_flag[v] = True
        # heavy->light transitions also sit in `touched`: they seed the
        # Algorithm 6 BFS and, being light now, it branches through them.

        # B2: Algorithm 6 — light vertices needing recomputation.
        lights = self._light_need_recomputation(sorted(touched), branch_extra)
        for v in sorted(lights):
            new = compute_head_light(
                v, self.adj, self.unmark, self.rand, self.head,
                self._is_heavy, self.T,
            )
            self._cost.charge(work=self.T * logn, depth=0)
            self._heavy_flag[v] = False
            if new != self.info[v]:
                self._apply_info(v, new, inc, dec)
                info_changed.append(v)
        self._cost.charge(work=0, depth=4 * logn)

        # Phase C: re-image edges incident to head-changed vertices (their
        # head values are already final) and fix DSF membership.
        head_changed = [
            v for v in info_changed
        ]
        affected: set[Edge] = set(insertions)
        for v in head_changed:
            for w in self.adj[v]:
                affected.add(norm_edge(v, w))
        for e in sorted(affected):
            u, v = e
            if v not in self.adj[u]:
                continue  # deleted within this batch
            old_img = self._image.get(e, "absent")
            new_img = self._image_of(e)
            if old_img != new_img:
                if old_img not in (None, "absent"):
                    self._buckets[old_img].remove(e)
                    dirty.add(old_img)
                if new_img is not None:
                    self._buckets.setdefault(new_img, set()).add(e)
                    dirty.add(new_img)
            self._image[e] = new_img
            want_dsf = self._in_dsf(e)
            have_dsf = e in self._dsf
            if want_dsf and not have_dsf:
                joined = self._dsf.insert(u, v)
                if joined is not None:
                    inc(joined)
            elif have_dsf and not want_dsf:
                removed, repl = self._dsf.delete(u, v)
                if removed is not None:
                    dec(removed)
                if repl is not None:
                    inc(repl)
            self._cost.charge(work=4 * logn, depth=0)
        self._cost.charge(work=0, depth=2 * logn)

        # Phase D: reconcile buckets, drive the inner Theorem 1.3 spanner,
        # and fold its delta back through the representatives.
        next_ins: list[Edge] = []
        next_del: list[Edge] = []
        rep_changes: list[tuple[Edge, Edge, Edge]] = []
        for key in sorted(dirty):
            bucket = self._buckets.get(key)
            old_rep = self._rep.get(key)
            if not bucket:
                self._buckets.pop(key, None)
                if old_rep is not None:
                    del self._rep[key]
                    next_del.append(key)
            elif old_rep is None:
                self._rep[key] = min(bucket)
                next_ins.append(key)
            elif old_rep not in bucket:
                new_rep = min(bucket)
                self._rep[key] = new_rep
                rep_changes.append((key, old_rep, new_rep))
            self._cost.charge(work=logn, depth=0)
        self._cost.charge(work=0, depth=logn)

        inner_ins, inner_del = self.inner.update(
            insertions=next_ins, deletions=next_del
        )
        for key, old_rep, new_rep in rep_changes:
            if key in self._pull:
                assert self._pull[key] == old_rep
                dec(old_rep)
                inc(new_rep)
                self._pull[key] = new_rep
        for key in inner_del:
            dec(self._pull.pop(key))
        for key in inner_ins:
            e = self._rep[key]
            assert key not in self._pull
            self._pull[key] = e
            inc(e)

        ins = {e for e, c in net.items() if c > 0}
        dels = {e for e, c in net.items() if c < 0}
        return ins, dels

    def _apply_info(self, v: int, new: HeadInfo, inc, dec) -> None:
        old_h1 = self._h1.get(v)
        new_h1 = (
            norm_edge(new.par, v) if new.par is not None and new.head != v
            else None
        )
        if old_h1 != new_h1:
            if old_h1 is not None:
                del self._h1[v]
                dec(old_h1)
            if new_h1 is not None:
                self._h1[v] = new_h1
                inc(new_h1)
        self.info[v] = new
        self.head[v] = new.head

    def _light_need_recomputation(
        self, seeds: list[int], branch_extra: set[int]
    ) -> set[int]:
        """Algorithm 6: bounded BFS from the updated endpoints, branching
        on light vertices and on the recomputed heavy set ``R``."""
        visited: set[int] = set(seeds)
        frontier = list(seeds)
        for _depth in range(self.T):
            nxt: list[int] = []
            for u in frontier:
                if self._is_heavy(u) and u not in branch_extra:
                    continue
                for w in self.adj[u]:
                    if w not in visited:
                        visited.add(w)
                        nxt.append(w)
            frontier = nxt
            self._cost.charge(work=len(nxt) + 1, depth=1)
        return {v for v in visited if not self._is_heavy(v)}

    # -- invariants (tests) -----------------------------------------------------

    def check_invariants(self) -> None:
        """Verify heads vs static recompute, buckets, DSF, and output composition (tests)."""
        infos = compute_all_heads(
            self.n, self.adj, self.unmark, self.rand, self.x
        )
        got = [i.head for i in self.info]
        want = [i.head for i in infos]
        assert got == want, (
            f"heads diverged: {[(v, a, b) for v, (a, b) in enumerate(zip(got, want)) if a != b]}"
        )
        # full info equality (par/dist used for H1)
        assert self.info == infos, "head infos diverged"
        # buckets/images
        want_buckets: dict[Edge, set[Edge]] = {}
        for u in range(self.n):
            for v in self.adj[u]:
                if u < v:
                    e = (u, v)
                    img = self._image_of(e)
                    assert self._image[e] == img, f"stale image for {e}"
                    if img is not None:
                        want_buckets.setdefault(img, set()).add(e)
        got_buckets = {k: s for k, s in self._buckets.items() if s}
        assert got_buckets == want_buckets
        assert set(self._rep) == set(got_buckets)
        for k, r in self._rep.items():
            assert r in self._buckets[k]
        # DSF holds exactly the bottom-bottom edges
        for u in range(self.n):
            for v in self.adj[u]:
                if u < v:
                    assert ((u, v) in self._dsf) == self._in_dsf((u, v))
        self._dsf.check_invariants()
        # inner graph == contracted edges
        assert self.inner.graph_edges() == set(got_buckets)
        # output composition
        want_out: dict[Edge, int] = {}
        for e in self._h1.values():
            want_out[e] = want_out.get(e, 0) + 1
        for e in self._dsf.forest_edges():
            want_out[e] = want_out.get(e, 0) + 1
        inner_span = self.inner.spanner_edges()
        assert self._pull.keys() == inner_span
        for key in inner_span:
            e = self._pull[key]
            assert e == self._rep[key]
            want_out[e] = want_out.get(e, 0) + 1
        assert want_out == self._out, "output refcounts diverged"
        self.inner.check_invariants()

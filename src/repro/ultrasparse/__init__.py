"""Ultra-sparse spanners via a single heavy/light contraction (Theorem 1.4)."""

from repro.ultrasparse.dynamic import UltraSparseSpannerDynamic
from repro.ultrasparse.heads import (
    BOTTOM,
    HeadInfo,
    compute_all_heads,
    compute_head_heavy,
    compute_head_light,
    threshold,
)

__all__ = [
    "BOTTOM",
    "HeadInfo",
    "UltraSparseSpannerDynamic",
    "compute_all_heads",
    "compute_head_heavy",
    "compute_head_light",
    "threshold",
]

"""Head (cluster) assignment rules of Section 5 (ContractUltra).

Given per-vertex randomness (``unmark[v]`` — 0 iff sampled into ``D`` —
and ``rand[v]``, the tie-breaking permutation ``P``), the head of a vertex
is a deterministic function of the current graph:

* **heavy** vertices (degree >= ``10 x log x``): the closest sampled vertex
  in the closed neighborhood, ties by ``rand`` (itself if sampled; a
  minimum-``rand`` sampled neighbor otherwise; else itself, joining ``D'``).
  Heavy heads are never ⊥.
* **light** vertices: Algorithm 5's bounded BFS of depth ``10 x log x``
  that does not branch on heavy vertices; candidates are visited sampled
  light vertices (at their BFS distance) and the heads of visited heavy
  vertices (at the head's own distance when visited, else ``dist(w) + 1``);
  the candidate minimizing ``(distance, rand, id)`` wins, and ⊥ (-1) is
  returned when no candidate exists.

Both the static oracle (:func:`compute_all_heads`) and the dynamic
structure use the same functions, so "dynamic state == static recompute"
is an exact test.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Sequence

__all__ = [
    "threshold",
    "HeadInfo",
    "compute_head_heavy",
    "compute_head_light",
    "compute_all_heads",
]

BOTTOM = -1


def threshold(x: float) -> int:
    """The heavy/light degree threshold ``10 x log2 x`` (>= 2)."""
    return max(2, math.ceil(10.0 * x * math.log2(max(x, 2.0))))


class HeadInfo:
    """Result of a head computation: the head, the first hop of a shortest
    intra-cluster path toward it (the ``par`` vertex feeding ``H_1``), and
    the realized distance."""

    __slots__ = ("head", "par", "dist")

    def __init__(self, head: int, par: int | None, dist: int):
        self.head = head
        self.par = par
        self.dist = dist

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, HeadInfo)
            and (self.head, self.par, self.dist)
            == (other.head, other.par, other.dist)
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"HeadInfo(head={self.head}, par={self.par}, dist={self.dist})"


def compute_head_heavy(
    v: int,
    neighbors,
    unmark: Sequence[int],
    rand: Sequence[float],
) -> HeadInfo:
    """Head of a heavy vertex: itself if sampled, else the min-``rand``
    sampled neighbor, else itself (unclustered, member of ``D'``)."""
    if unmark[v] == 0:
        return HeadInfo(v, None, 0)
    best: tuple[float, int] | None = None
    for w in neighbors:
        if unmark[w] == 0 and (best is None or (rand[w], w) < best):
            best = (rand[w], w)
    if best is None:
        return HeadInfo(v, None, 0)
    return HeadInfo(best[1], best[1], 1)


def compute_head_light(
    v: int,
    adj: Sequence[set[int]] | list[set[int]],
    unmark: Sequence[int],
    rand: Sequence[float],
    head: Sequence[int],
    is_heavy,
    limit: int,
) -> HeadInfo:
    """Algorithm 5 for a light vertex.

    ``head`` supplies the current heads of heavy vertices; ``is_heavy`` is
    a predicate on vertex ids.  Returns ``HeadInfo(BOTTOM, None, 0)`` when
    no candidate is reachable.
    """
    dist: dict[int, int] = {v: 0}
    first_hop: dict[int, int | None] = {v: None}
    frontier = [v]
    heavies: list[int] = []
    # (dist, rand, candidate) ordering; remember the hop realizing it.
    best: tuple[int, float, int] | None = None
    best_hop: int | None = None

    def consider(c: int, d: int, hop: int | None) -> None:
        nonlocal best, best_hop
        key = (d, rand[c], c)
        if best is None or key < best:
            best = key
            best_hop = hop

    if unmark[v] == 0:
        consider(v, 0, None)
    for depth in range(1, limit + 1):
        nxt: list[int] = []
        for u in frontier:
            if u != v and is_heavy(u):
                continue  # do not branch on heavy vertices
            for w in adj[u]:
                if w in dist:
                    continue
                dist[w] = depth
                first_hop[w] = w if u == v else first_hop[u]
                nxt.append(w)
                if is_heavy(w):
                    heavies.append(w)
                elif unmark[w] == 0:
                    consider(w, depth, first_hop[w])
        frontier = nxt
    # heads of visited heavy vertices (Algorithm 5 lines 21-25)
    for w in heavies:
        h = head[w]
        assert h != BOTTOM, "heavy heads are never bottom"
        if h in dist:
            consider(h, dist[h], first_hop[h])
        else:
            consider(h, dist[w] + 1, first_hop[w])
    if best is None:
        return HeadInfo(BOTTOM, None, 0)
    d, _r, c = best
    if c == v:
        return HeadInfo(v, None, 0)
    return HeadInfo(c, best_hop, d)


def compute_all_heads(
    n: int,
    adj: Sequence[set[int]],
    unmark: Sequence[int],
    rand: Sequence[float],
    x: float,
) -> list[HeadInfo]:
    """Static oracle: every vertex's head under the Section 5 rules."""
    t = threshold(x)

    def is_heavy(v: int) -> bool:
        return len(adj[v]) >= t

    head = [BOTTOM] * n
    infos: list[HeadInfo | None] = [None] * n
    # heavy first (light heads read heavy heads)
    for v in range(n):
        if is_heavy(v):
            infos[v] = compute_head_heavy(v, adj[v], unmark, rand)
            head[v] = infos[v].head
    for v in range(n):
        if not is_heavy(v):
            infos[v] = compute_head_light(
                v, adj, unmark, rand, head, is_heavy, t
            )
            head[v] = infos[v].head
    return infos  # type: ignore[return-value]

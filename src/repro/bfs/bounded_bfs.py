"""Bounded parallel BFS (Lemma 3.2).

Computes, for a directed unweighted graph and source ``s``, the array
``DIST`` where ``DIST[v]`` is the length of the shortest path from ``s`` when
that length is at most ``L``, and ``L + 1`` otherwise.

The paper's algorithm peels BFS levels ``S(0), S(1), ...``; each level is a
parallel round over the out-edges of the frontier with O(log n) work per edge
(binary-search-tree bookkeeping), for O(m log n) total work and O(L log n)
depth.  We execute the rounds sequentially and charge that model.
"""

from __future__ import annotations

from typing import Sequence

from repro.pram.cost import NULL_COST_MODEL, CostModel, log2ceil

__all__ = ["bounded_bfs_directed"]


def bounded_bfs_directed(
    n: int,
    out_adj: Sequence[Sequence[int]],
    source: int,
    limit: int,
    cost: CostModel = NULL_COST_MODEL,
) -> list[int]:
    """Return ``DIST`` per Lemma 3.2 (``limit + 1`` marks "farther than
    limit")."""
    if not 0 <= source < n:
        raise ValueError(f"source {source} outside [0, {n})")
    if limit < 0:
        raise ValueError("limit must be >= 0")
    logn = log2ceil(max(n, 2))
    dist = [limit + 1] * n
    dist[source] = 0
    frontier = [source]
    level = 0
    while frontier and level < limit:
        # One parallel round: iterate all out-edges of the frontier.
        with cost.parallel() as par:
            next_frontier: list[int] = []
            for u in frontier:
                with par.task():
                    for w in out_adj[u]:
                        cost.charge(work=logn, depth=0)
                        if dist[w] > limit:
                            dist[w] = level + 1
                            next_frontier.append(w)
                    cost.charge(work=0, depth=logn)
        frontier = next_frontier
        level += 1
    return dist

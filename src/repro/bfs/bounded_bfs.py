"""Bounded parallel BFS (Lemma 3.2).

Computes, for a directed unweighted graph and source ``s``, the array
``DIST`` where ``DIST[v]`` is the length of the shortest path from ``s`` when
that length is at most ``L``, and ``L + 1`` otherwise.

The paper's algorithm peels BFS levels ``S(0), S(1), ...``; each level is a
parallel round over the out-edges of the frontier with O(log n) work per edge
(binary-search-tree bookkeeping), for O(m log n) total work and O(L log n)
depth.  We execute the rounds sequentially and charge that model.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.pram.cost import NULL_COST_MODEL, CostModel, log2ceil

__all__ = ["bounded_bfs_directed", "bounded_bfs_csr"]


def bounded_bfs_directed(
    n: int,
    out_adj: Sequence[Sequence[int]],
    source: int,
    limit: int,
    cost: CostModel = NULL_COST_MODEL,
) -> list[int]:
    """Return ``DIST`` per Lemma 3.2 (``limit + 1`` marks "farther than
    limit")."""
    if not 0 <= source < n:
        raise ValueError(f"source {source} outside [0, {n})")
    if limit < 0:
        raise ValueError("limit must be >= 0")
    logn = log2ceil(max(n, 2))
    dist = [limit + 1] * n
    dist[source] = 0
    frontier = [source]
    level = 0
    while frontier and level < limit:
        # One parallel round: iterate all out-edges of the frontier.
        with cost.parallel() as par:
            next_frontier: list[int] = []
            for u in frontier:
                with par.task():
                    for w in out_adj[u]:
                        cost.charge(work=logn, depth=0)
                        if dist[w] > limit:
                            dist[w] = level + 1
                            next_frontier.append(w)
                    cost.charge(work=0, depth=logn)
        frontier = next_frontier
        level += 1
    return dist


def bounded_bfs_csr(
    n: int,
    indptr,
    indices,
    source: int,
    limit: int,
    cost: CostModel = NULL_COST_MODEL,
):
    """Vectorized Lemma 3.2 over a CSR ``(indptr, indices)`` out-adjacency.

    Whole-frontier expansion: each level gathers every frontier vertex's
    out-slice in one numpy operation.  Returns the ``DIST`` array as an
    int64 ndarray (``limit + 1`` marks "farther than limit").

    The charge per level is the closed form of the scalar round — a
    parallel region with one task per frontier vertex, ``log n`` work per
    scanned out-edge and ``log n`` task depth — so the accumulated
    work/depth is byte-identical to :func:`bounded_bfs_directed` on the
    same graph.
    """
    if not 0 <= source < n:
        raise ValueError(f"source {source} outside [0, {n})")
    if limit < 0:
        raise ValueError("limit must be >= 0")
    logn = log2ceil(max(n, 2))
    dist = np.full(n, limit + 1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while len(frontier) and level < limit:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        scanned = int(counts.sum())
        if scanned:
            firsts = np.cumsum(counts) - counts
            offs = np.arange(scanned, dtype=np.int64) - np.repeat(
                firsts, counts
            )
            nbrs = indices[np.repeat(starts, counts) + offs]
            new = np.unique(nbrs[dist[nbrs] > limit])
        else:
            new = frontier[:0]
        dist[new] = level + 1
        # one parallel round: work = scanned edges * log n, depth = the
        # max task depth = log n (every frontier vertex's task ends with
        # a depth-log n charge, scanned edges add work only)
        cost.charge_many(work=scanned * logn, depth=logn)
        frontier = new
        level += 1
    return dist

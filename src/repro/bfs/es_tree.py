"""Parallel batch-dynamic decremental Even–Shiloach tree (Theorem 1.2).

Maintains a shortest-path tree of depth at most ``L`` from a fixed source in
a *directed* unweighted graph, under batches of edge deletions, with

* initialization: O(m log n) work, O(L log n + log² n) depth,
* per deletion batch: O(L log n) amortized work per deleted edge and
  O(L log² n) worst-case depth.

Structure (Section 3.2 of the paper):

* ``IN(v)`` — a :class:`~repro.structures.PriorityArray` of the in-edges of
  ``v``, positions ordered by decreasing priority.  Deleted edges stay in the
  array marked dead so that scan positions remain stable.
* ``SCAN(v)`` — the scan pointer (Invariant A1: it rests on the parent edge,
  the first valid in-edge at level ``DIST(v) - 1``).  We store it as the
  *priority* of the parent edge; the position is recovered with ``count_ge``
  so that priority reorders elsewhere in the array cannot corrupt it.
* deletions are processed in phases ``i = 1..L`` over buckets of vertices
  whose distance may grow past ``i`` (Invariants A2–A4); each phase is one
  parallel round of ``NextWith`` scans.

Priorities
----------
The spanner of Section 3.3 orders each ``IN(v)`` by cluster priority and
*updates* priorities as clusters move; plain Theorem 1.2 usage does not care.
Callers may pass per-edge priorities (distinct within each ``IN(v)``); by
default edges are prioritized arbitrarily.  :meth:`update_edge_priority` and
:meth:`find_parent_candidate` expose the hooks the spanner layer needs.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Iterator, Sequence

from repro.pram.cost import NULL_COST_MODEL, CostModel, log2ceil
from repro.structures.priority_array import PriorityArray

__all__ = ["BatchDynamicESTree", "ParentChange"]

DirEdge = tuple[int, int]


class ParentChange:
    """Record of one parent-pointer change during a deletion batch.

    ``new_parent is None`` means the vertex fell out of the depth-``L`` tree
    (its distance is now ``L + 1``).
    """

    __slots__ = ("vertex", "old_parent", "new_parent", "old_dist", "new_dist")

    def __init__(self, vertex, old_parent, new_parent, old_dist, new_dist):
        self.vertex = vertex
        self.old_parent = old_parent
        self.new_parent = new_parent
        self.old_dist = old_dist
        self.new_dist = new_dist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParentChange(v={self.vertex}, {self.old_parent}->"
            f"{self.new_parent}, d {self.old_dist}->{self.new_dist})"
        )


class BatchDynamicESTree:
    """Theorem 1.2 data structure.

    Parameters
    ----------
    n:
        Number of vertices (ids ``0..n-1``).
    edges:
        Directed edges ``(u, v)`` meaning ``u -> v``.  Duplicates rejected.
    source:
        BFS root.
    limit:
        Tree depth bound ``L``; vertices farther than ``L`` carry distance
        ``L + 1`` and no parent.
    priority:
        Optional map ``(u, v) -> int`` giving the initial priority of the
        edge inside ``IN(v)``; priorities must be distinct per target vertex
        and fit in ``universe``.  Default: arbitrary distinct values.
    universe:
        Priority universe size (default ``max(n^2, 4)``, enough for the
        default assignment).
    """

    def __init__(
        self,
        n: int,
        edges: Iterable[DirEdge],
        source: int,
        limit: int,
        priority: dict[DirEdge, int] | None = None,
        universe: int | None = None,
        cost: CostModel = NULL_COST_MODEL,
    ) -> None:
        self.n = n
        self.L = limit
        self.source = source
        self._cost = cost
        edges = list(edges)
        if len(set(edges)) != len(edges):
            raise ValueError("duplicate directed edges")
        self._universe = universe if universe is not None else max(n * n, 4)

        self.out_adj: list[set[int]] = [set() for _ in range(n)]
        in_items: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        self.edge_pri: dict[DirEdge, int] = {}
        self.alive: set[DirEdge] = set()
        default_counter = 0
        for u, v in edges:
            if priority is not None:
                p = priority[(u, v)]
            else:
                p = default_counter
                default_counter += 1
            if p >= self._universe:
                raise ValueError("priority exceeds universe")
            self.out_adj[u].add(v)
            in_items[v].append((u, p))
            self.edge_pri[(u, v)] = p
            self.alive.add((u, v))

        self.in_arr: list[PriorityArray] = [
            PriorityArray(self._universe, [(u, p) for u, p in in_items[v]], cost=cost)
            for v in range(n)
        ]

        # Lemma 3.2 initialization of distances.
        from repro.bfs.bounded_bfs import bounded_bfs_directed

        self.dist: list[int] = bounded_bfs_directed(
            n, [sorted(s) for s in self.out_adj], source, limit, cost=cost
        )
        self.parent: list[int | None] = [None] * n
        # scan pointer, stored as the parent edge's priority (None = no
        # parent / scan from the start of the list).
        self._scan_pri: list[int | None] = [None] * n
        def init_attach(v: int) -> None:
            q = self.in_arr[v].next_with(1, self._parent_pred(v))
            assert q <= len(self.in_arr[v]), (
                f"no parent for reachable vertex {v}"
            )
            self._attach(v, q)

        candidates = [
            v for v in range(n)
            if v != source and 1 <= self.dist[v] <= limit
        ]
        # Routed through ParallelScope.map so an installed execution
        # backend sees the region; the closure mutates shared tree state,
        # so backends run it inline (charge-identical to the plain loop).
        with cost.parallel() as par:
            par.map(candidates, init_attach)

    # -- helpers ---------------------------------------------------------

    def _parent_pred(self, v: int) -> Callable[[int], bool]:
        want = self.dist[v] - 1
        return lambda u: (u, v) in self.alive and self.dist[u] == want

    def _attach(self, v: int, position: int) -> None:
        """Make the edge at ``position`` of ``IN(v)`` the parent edge."""
        u = self.in_arr[v].query(position)
        self.parent[v] = u
        self._scan_pri[v] = self.in_arr[v].priority_at(position)

    def _scan_position(self, v: int) -> int:
        """Current scan position in ``IN(v)`` (1-based)."""
        sp = self._scan_pri[v]
        if sp is None:
            return 1
        # Number of entries with priority >= sp = position of the scan edge
        # (or of its successor block if the edge's priority moved).
        return max(self.in_arr[v].count_ge(sp), 1)

    # -- queries -----------------------------------------------------------

    def dist_of(self, v: int) -> int:
        """Current distance label of ``v`` (``L + 1`` = beyond the tree)."""
        return self.dist[v]

    def parent_of(self, v: int) -> int | None:
        """Current tree parent of ``v`` (None for the source / detached)."""
        return self.parent[v]

    def distances(self) -> list[int]:
        """Copy of the full distance array."""
        return list(self.dist)

    def tree_edges(self) -> Iterator[DirEdge]:
        """Current shortest-path-tree edges ``(parent, child)``."""
        for v in range(self.n):
            if self.parent[v] is not None:
                yield (self.parent[v], v)

    def is_alive(self, u: int, v: int) -> bool:
        """Whether the directed edge ``u -> v`` is still present."""
        return (u, v) in self.alive

    # -- the Theorem 1.2 deletion procedure ---------------------------------

    def batch_delete(self, edges: Iterable[DirEdge]) -> list[ParentChange]:
        """Delete a batch of directed edges; returns every parent change.

        Phases follow Algorithm 1: bucket ``i`` holds the vertices whose
        distance-``i`` label must be revalidated; a vertex that finds no
        parent at level ``i - 1`` moves to bucket ``i + 1`` with its scan
        pointer reset, orphaning its tree children.
        """
        edges = list(edges)
        logn = log2ceil(max(self.n, 2))
        changes: list[ParentChange] = []
        buckets: dict[int, set[int]] = {}
        old_parent: dict[int, int | None] = {}
        old_dist: dict[int, int] = {}

        def orphan(v: int) -> None:
            if v not in old_parent:
                old_parent[v] = self.parent[v]
                old_dist[v] = self.dist[v]
            buckets.setdefault(self.dist[v], set()).add(v)

        # Step 1: mark edges dead; collect orphans (one parallel round).
        # Every branch charges the same (logn, logn), so the whole round is
        # one aggregate pfor charge: work = |edges| * logn, depth = logn.
        for u, v in edges:
            if (u, v) not in self.alive:
                raise KeyError(f"edge {(u, v)} not alive")
            self.alive.remove((u, v))
            self.out_adj[u].discard(v)
            if self.parent[v] == u:
                orphan(v)
                self.parent[v] = None
        self._cost.pfor_cost(len(edges), logn, depth=logn)

        # Step 2: phases i = 1..L (Invariants A2-A4).
        for i in range(1, self.L + 1):
            bucket = buckets.pop(i, None)
            if not bucket:
                continue
            # One parallel level scan, routed through the backend seam
            # (inline under any backend: _process_vertex mutates the
            # shared tree, so it is not shippable to worker processes).
            with self._cost.parallel() as par:
                par.map(
                    sorted(bucket),
                    lambda v: self._process_vertex(
                        v, i, orphan, changes, old_parent, old_dist
                    ),
                )
        assert not buckets, f"unprocessed buckets at levels {sorted(buckets)}"
        return changes

    def _process_vertex(
        self,
        v: int,
        i: int,
        orphan: Callable[[int], None],
        changes: list[ParentChange],
        old_parent: dict[int, int | None],
        old_dist: dict[int, int],
    ) -> None:
        """Phase-``i`` rescan of vertex ``v`` (current dist ``i``)."""
        assert self.dist[v] == i
        arr = self.in_arr[v]
        pos = self._scan_position(v)
        q = arr.next_with(pos, self._parent_pred(v))
        if q <= len(arr):
            # Found a parent at level i - 1; distance stays i.
            self._attach(v, q)
            if self.parent[v] != old_parent[v] or i != old_dist[v]:
                changes.append(
                    ParentChange(v, old_parent[v], self.parent[v],
                                 old_dist[v], i)
                )
            else:
                del old_parent[v], old_dist[v]
            return
        # No parent at this level: distance grows, scan resets, children
        # are orphaned (they sit at level i + 1 and re-bucket there).
        self.parent[v] = None
        self._scan_pri[v] = None
        children = self.out_adj[v]
        for w in sorted(children):
            if self.parent[w] == v:
                orphan(w)
                self.parent[w] = None
        # one parallel round over the children: work = deg, depth = 1
        self._cost.charge_many(work=len(children), depth=1)
        if i + 1 <= self.L:
            self.dist[v] = i + 1
            orphan(v)  # rebucket at level i + 1 (orphan() reads dist[v])
        else:
            self.dist[v] = self.L + 1
            changes.append(
                ParentChange(v, old_parent[v], None, old_dist[v], self.L + 1)
            )

    # -- hooks for the spanner layer (Section 3.3) ---------------------------

    def update_edge_priority(self, u: int, v: int, new_priority: int) -> None:
        """Re-key the edge ``u -> v`` inside ``IN(v)``.

        If the edge is ``v``'s parent edge the scan pointer follows it when
        the priority increases; when it decreases the pointer keeps the *old*
        slot so that a single :meth:`find_parent_candidate` call from there
        sees every edge that jumped over the parent (the paper's "single
        NextWith" detection).
        """
        old_p = self.edge_pri[(u, v)]
        if old_p == new_priority:
            return
        _, k = self.in_arr[v].find(old_p)
        self.in_arr[v].update_priority(k, new_priority)
        self.edge_pri[(u, v)] = new_priority
        if self.parent[v] == u and new_priority > (self._scan_pri[v] or 0):
            self._scan_pri[v] = new_priority
        # On decrease, _scan_pri[v] intentionally keeps the old value.

    def find_parent_candidate(self, v: int, from_start: bool = False) -> int | None:
        """Best (highest-priority) valid parent of ``v`` scanning from the
        current pointer (or the list head).  Returns the vertex or None."""
        if v == self.source or self.dist[v] > self.L or self.dist[v] == 0:
            return None
        arr = self.in_arr[v]
        pos = 1 if from_start else self._scan_position(v)
        q = arr.next_with(pos, self._parent_pred(v))
        if q > len(arr):
            return None
        return arr.query(q)

    def set_parent(self, v: int, u: int) -> None:
        """Adopt ``u`` as parent of ``v`` (must be a valid candidate)."""
        if (u, v) not in self.alive or self.dist[u] != self.dist[v] - 1:
            raise ValueError(f"{u} is not a valid parent for {v}")
        self.parent[v] = u
        self._scan_pri[v] = self.edge_pri[(u, v)]

    def parent_edge_priority(self, v: int) -> int | None:
        """Priority of ``v``'s current parent edge (None if no parent)."""
        if self.parent[v] is None:
            return None
        return self.edge_pri[(self.parent[v], v)]

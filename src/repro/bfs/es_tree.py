"""Parallel batch-dynamic decremental Even–Shiloach tree (Theorem 1.2).

Maintains a shortest-path tree of depth at most ``L`` from a fixed source in
a *directed* unweighted graph, under batches of edge deletions, with

* initialization: O(m log n) work, O(L log n + log² n) depth,
* per deletion batch: O(L log n) amortized work per deleted edge and
  O(L log² n) worst-case depth.

Structure (Section 3.2 of the paper):

* ``IN(v)`` — a :class:`~repro.structures.PriorityArray` of the in-edges of
  ``v``, positions ordered by decreasing priority.  Deleted edges stay in the
  array marked dead so that scan positions remain stable.
* ``SCAN(v)`` — the scan pointer (Invariant A1: it rests on the parent edge,
  the first valid in-edge at level ``DIST(v) - 1``).  We store it as the
  *priority* of the parent edge; the position is recovered with ``count_ge``
  so that priority reorders elsewhere in the array cannot corrupt it.
* deletions are processed in phases ``i = 1..L`` over buckets of vertices
  whose distance may grow past ``i`` (Invariants A2–A4); each phase is one
  parallel round of ``NextWith`` scans.

Priorities
----------
The spanner of Section 3.3 orders each ``IN(v)`` by cluster priority and
*updates* priorities as clusters move; plain Theorem 1.2 usage does not care.
Callers may pass per-edge priorities (distinct within each ``IN(v)``); by
default edges are prioritized arbitrarily.  :meth:`update_edge_priority` and
:meth:`find_parent_candidate` expose the hooks the spanner layer needs.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Iterator, Sequence

import numpy as np

from repro.pram.cost import NULL_COST_MODEL, CostModel, log2ceil
from repro.structures.priority_array import PriorityArray

__all__ = ["BatchDynamicESTree", "ParentChange", "scan_bucket_kernel"]

DirEdge = tuple[int, int]


def scan_bucket_kernel(args, shared, cost):
    """Pool-shippable phase-``i`` scan kernel (Algorithm 1's level scan).

    ``args`` is ``{"universe": U, "items": [spec, ...]}`` where each spec
    ``(v, scan_pri, want, pris, vals, dists, dead)`` carries everything a
    vertex's rescan reads: its ``IN(v)`` contents (ascending priorities +
    position-ordered values), its scan-pointer priority, the target parent
    level ``want = i - 1``, the current distance of every candidate parent,
    and the deleted in-edge sources.  Scans within a phase are independent
    of each other's mutations (a phase only moves distances ``i -> i + 1``,
    never to ``i - 1``, and aliveness is fixed before phase 1), so shipping
    them is partition-safe.

    Returns ``[(v, q, work, depth), ...]`` — the found position plus the
    *exact* scalar charges, reproduced by replaying ``_scan_position`` +
    ``next_with`` on a reconstructed :class:`PriorityArray` under a
    recording model; the caller re-charges them inside its own parallel
    region so the merged totals are byte-identical to the inline phase.
    """
    universe = args["universe"]
    out = []
    for v, scan_pri, want, pris, vals, dists, dead in args["items"]:
        pa = PriorityArray.__new__(PriorityArray)
        pa._universe = universe
        pa._cost = cost
        pa._bulk_pri = np.asarray(pris, dtype=np.int64)
        pa._bulk_vals = list(vals)
        pa._values = None
        pa._sorted = None
        du = dict(zip(vals, dists))
        ds = set(dead)
        with cost.frame() as fr:
            pos = (
                max(pa.count_ge(scan_pri), 1)
                if scan_pri is not None else 1
            )
            q = pa.next_with(
                pos, lambda u: u not in ds and du[u] == want
            )
        out.append((v, q, fr.work, fr.depth))
    return out


class ParentChange:
    """Record of one parent-pointer change during a deletion batch.

    ``new_parent is None`` means the vertex fell out of the depth-``L`` tree
    (its distance is now ``L + 1``).
    """

    __slots__ = ("vertex", "old_parent", "new_parent", "old_dist", "new_dist")

    def __init__(self, vertex, old_parent, new_parent, old_dist, new_dist):
        self.vertex = vertex
        self.old_parent = old_parent
        self.new_parent = new_parent
        self.old_dist = old_dist
        self.new_dist = new_dist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParentChange(v={self.vertex}, {self.old_parent}->"
            f"{self.new_parent}, d {self.old_dist}->{self.new_dist})"
        )


class _LazyInArrays:
    """List-like view of the per-vertex ``IN(v)`` PriorityArrays, carved
    out of the globally (target, priority)-sorted edge arrays.

    Each :class:`PriorityArray` object materializes on first index — the
    batch-deletion path only ever touches the vertices it rescans, so an
    array-built tree never pays for the arrays it does not visit.  The
    Lemma 3.1 initialization charge for *all* ``n`` arrays is taken
    up-front by the constructor (see
    :meth:`BatchDynamicESTree.from_arrays`), exactly as the scalar
    constructor does; indexing here is charge-free.
    """

    __slots__ = ("_arrs", "_pv", "_uv", "_ipt", "_universe", "_cost")

    def __init__(self, n, pv, uv, ipt, universe, cost) -> None:
        self._arrs: list[PriorityArray | None] = [None] * n
        self._pv = pv
        self._uv = uv
        self._ipt = ipt
        self._universe = universe
        self._cost = cost

    def __len__(self) -> int:
        return len(self._arrs)

    def __getitem__(self, v: int) -> PriorityArray:
        pa = self._arrs[v]
        if pa is None:
            a, b = self._ipt[v], self._ipt[v + 1]
            pa = PriorityArray.__new__(PriorityArray)
            pa._universe = self._universe
            pa._cost = self._cost
            pa._bulk_pri = self._pv[a:b]
            pa._bulk_vals = self._uv[a:b][::-1]
            pa._values = None
            pa._sorted = None
            self._arrs[v] = pa
        return pa


class _LazyOutAdj:
    """List-like view of the per-vertex out-neighbor sets, carved out of
    the out-CSR on first index.

    Safe to build lazily from the *original* CSR even after deletions:
    every deletion of ``u -> v`` performs ``out_adj[u].discard(v)`` at
    deletion time (see :meth:`BatchDynamicESTree.batch_delete` step 1),
    which materializes ``u``'s set first — so a set built later from the
    CSR belongs to a vertex whose out-edges were never touched.
    """

    __slots__ = ("_sets", "_ipt", "_nbrs")

    def __init__(self, n, indptr, indices) -> None:
        self._sets: list[set[int] | None] = [None] * n
        self._ipt = indptr.tolist()
        self._nbrs = indices.tolist()

    def __len__(self) -> int:
        return len(self._sets)

    def __getitem__(self, v: int) -> set[int]:
        s = self._sets[v]
        if s is None:
            s = set(self._nbrs[self._ipt[v]:self._ipt[v + 1]])
            self._sets[v] = s
        return s


class BatchDynamicESTree:
    """Theorem 1.2 data structure.

    Parameters
    ----------
    n:
        Number of vertices (ids ``0..n-1``).
    edges:
        Directed edges ``(u, v)`` meaning ``u -> v``.  Duplicates rejected.
    source:
        BFS root.
    limit:
        Tree depth bound ``L``; vertices farther than ``L`` carry distance
        ``L + 1`` and no parent.
    priority:
        Optional map ``(u, v) -> int`` giving the initial priority of the
        edge inside ``IN(v)``; priorities must be distinct per target vertex
        and fit in ``universe``.  Default: arbitrary distinct values.
    universe:
        Priority universe size (default ``max(n^2, 4)``, enough for the
        default assignment).
    """

    def __init__(
        self,
        n: int,
        edges: Iterable[DirEdge],
        source: int,
        limit: int,
        priority: dict[DirEdge, int] | None = None,
        universe: int | None = None,
        cost: CostModel = NULL_COST_MODEL,
    ) -> None:
        self.n = n
        self.L = limit
        self.source = source
        self._cost = cost
        edges = list(edges)
        if len(set(edges)) != len(edges):
            raise ValueError("duplicate directed edges")
        self._universe = universe if universe is not None else max(n * n, 4)
        self._edge_arrays = None  # scalar path: adjacency built eagerly
        self._dead_in: dict[int, set[int]] = {}

        self._out_adj: list[set[int]] = [set() for _ in range(n)]
        in_items: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        self._edge_pri: dict[DirEdge, int] = {}
        self._alive: set[DirEdge] = set()
        default_counter = 0
        for u, v in edges:
            if priority is not None:
                p = priority[(u, v)]
            else:
                p = default_counter
                default_counter += 1
            if p >= self._universe:
                raise ValueError("priority exceeds universe")
            self._out_adj[u].add(v)
            in_items[v].append((u, p))
            self._edge_pri[(u, v)] = p
            self._alive.add((u, v))

        self.in_arr: list[PriorityArray] = [
            PriorityArray(self._universe, [(u, p) for u, p in in_items[v]], cost=cost)
            for v in range(n)
        ]

        # Lemma 3.2 initialization of distances.
        from repro.bfs.bounded_bfs import bounded_bfs_directed

        self.dist: list[int] = bounded_bfs_directed(
            n, [sorted(s) for s in self.out_adj], source, limit, cost=cost
        )
        self.parent: list[int | None] = [None] * n
        # scan pointer, stored as the parent edge's priority (None = no
        # parent / scan from the start of the list).
        self._scan_pri: list[int | None] = [None] * n
        def init_attach(v: int) -> None:
            q = self.in_arr[v].next_with(1, self._parent_pred(v))
            assert q <= len(self.in_arr[v]), (
                f"no parent for reachable vertex {v}"
            )
            self._attach(v, q)

        candidates = [
            v for v in range(n)
            if v != source and 1 <= self.dist[v] <= limit
        ]
        # Routed through ParallelScope.map so an installed execution
        # backend sees the region; the closure mutates shared tree state,
        # so backends run it inline (charge-identical to the plain loop).
        with cost.parallel() as par:
            par.map(candidates, init_attach)

    @classmethod
    def from_arrays(
        cls,
        n: int,
        src,
        dst,
        pri,
        source: int,
        limit: int,
        *,
        universe: int,
        cost: CostModel = NULL_COST_MODEL,
    ) -> "BatchDynamicESTree":
        """Array-native construction: directed edges ``src[i] -> dst[i]``
        with priority ``pri[i]`` inside ``IN(dst[i])``.

        Functionally identical to ``BatchDynamicESTree(n, edges, ...)`` with
        an explicit priority map, but every initialization stage runs as
        whole-array numpy operations — the ``IN(v)`` arrays are carved out
        of one global lexsort, distances come from the CSR bounded BFS, and
        the initial parent attachment is a single grouped reduction instead
        of per-vertex galloping scans.  Charged work/depth is byte-identical
        to the scalar constructor (the charges are closed-form functions of
        the item counts and scan schedules; see Lemma 3.1/3.2), which the
        cross-substrate equivalence tests pin.

        The scalar mutation state (``out_adj``/``edge_pri``/``alive``)
        materializes lazily on first access, so instances that are only
        ever queried never build the per-edge dicts at all.
        """
        self = cls.__new__(cls)
        self.n = n
        self.L = limit
        self.source = source
        self._cost = cost
        self._universe = universe
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        pri = np.ascontiguousarray(pri, dtype=np.int64)
        m = len(src)
        if len(dst) != m or len(pri) != m:
            raise ValueError("src/dst/pri length mismatch")
        if m and (pri >= universe).any():
            raise ValueError("priority exceeds universe")
        if m and not (
            0 <= int(src.min())
            and int(src.max()) < n
            and 0 <= int(dst.min())
            and int(dst.max()) < n
        ):
            raise IndexError("edge endpoint outside [0, n)")
        logu = log2ceil(universe)

        # IN(v) storage: one global sort by (target, priority); each
        # vertex's slice is ascending-priority, exactly the bulk layout
        # PriorityArray uses.
        order_in = np.lexsort((pri, dst))
        dv, pv, uv = dst[order_in], pri[order_in], src[order_in]
        if m > 1:
            same_v = dv[1:] == dv[:-1]
            if (same_v & (uv[1:] == uv[:-1])).any():
                raise ValueError("duplicate directed edges")
            dup = same_v & (pv[1:] == pv[:-1])
            if dup.any():
                raise ValueError(
                    f"duplicate priority {int(pv[1:][dup][0])}"
                )
        in_counts = np.bincount(dv, minlength=n) if m else np.zeros(
            n, dtype=np.int64
        )
        in_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(in_counts, out=in_indptr[1:])
        self._edge_arrays = (dv, pv, uv)
        self._out_adj = None
        self._edge_pri = None
        self._alive = None
        self._dead_in = {}

        self.in_arr = _LazyInArrays(
            n, pv, uv, in_indptr.tolist(), universe, cost
        )
        # n sequential PriorityArray initializations, (l_v log U, log U)
        # each -- identical accumulation to the scalar constructor's loop.
        cost.charge_many(work=m * logu, depth=n * logu)

        # Lemma 3.2 initialization of distances (CSR fast path).
        from repro.bfs.bounded_bfs import bounded_bfs_csr

        order_out = np.argsort(src, kind="stable")
        out_indptr = np.zeros(n + 1, dtype=np.int64)
        if m:
            np.cumsum(np.bincount(src, minlength=n), out=out_indptr[1:])
        out_indices = dst[order_out]
        self._out_csr = (out_indptr, out_indices)
        dist_arr = bounded_bfs_csr(
            n, out_indptr, out_indices, source, limit, cost=cost
        )
        self.dist = dist_arr.tolist()
        self.parent = [None] * n
        self._scan_pri = [None] * n
        self._attach_all(dist_arr, dv, pv, uv, in_indptr, in_counts)
        return self

    def _attach_all(self, dist_arr, dv, pv, uv, in_indptr, in_counts):
        """Vectorized initial parent attachment.

        For every candidate ``v`` (``1 <= dist[v] <= L``) the scalar path
        gallops ``IN(v)`` from position 1 for the first in-edge ``(u, v)``
        with ``dist[u] == dist[v] - 1``; at init every edge is alive, so
        validity is one array comparison and the found position is the
        minimum valid position per target — a grouped reduction.  The
        parent region's charge is reconstructed in closed form: a scan
        that answers at position ``q`` runs ``P = bitlength(q)`` phases
        touching ``min(2^P - 1, l)`` slots, plus the two ``_attach`` tree
        ops, with the region contributing (sum of works, max of depths).
        """
        n, limit, logu = self.n, self.L, log2ceil(self._universe)
        m = len(dv)
        cand_total = int(
            ((dist_arr >= 1) & (dist_arr <= limit)).sum()
        )
        if m == 0 or cand_total == 0:
            assert cand_total == 0, "reachable vertex with no in-edges"
            return
        # position of each in-edge in IN(dst), 1-based, descending priority
        local = np.arange(m, dtype=np.int64) - np.repeat(
            in_indptr[:-1], in_counts
        )
        pos_desc = in_counts[dv] - local
        valid = dist_arr[uv] == dist_arr[dv] - 1
        valid &= (dist_arr[dv] >= 1) & (dist_arr[dv] <= limit)
        vs = dv[valid]
        if len(vs) == 0:
            raise AssertionError("no parent for any reachable vertex")
        # within each dv-group priorities ascend, so positions descend:
        # the last valid entry per group is the minimum position q.
        ends = np.nonzero(vs[1:] != vs[:-1])[0]
        ends = np.concatenate([ends, [len(vs) - 1]])
        cand_v = vs[ends]
        assert len(cand_v) == cand_total, (
            "no parent for some reachable vertex"
        )
        q_arr = pos_desc[valid][ends]
        par_u = uv[valid][ends]
        par_p = pv[valid][ends]
        for v, u, p in zip(
            cand_v.tolist(), par_u.tolist(), par_p.tolist()
        ):
            self.parent[v] = u
            self._scan_pri[v] = p
        # region charge: per candidate next_with(1, .) ending at q plus
        # two charge_tree_op(universe) calls from _attach.
        phases = np.frexp(q_arr.astype(np.float64))[1].astype(np.int64)
        scanned = np.minimum(
            (1 << phases) - 1, in_counts[cand_v]
        )
        work = int(((scanned + 2) * logu).sum())
        depth = int((int(phases.max()) + 2) * logu)
        self._cost.charge_many(work=work, depth=depth)

    # -- lazy scalar mutation state (array-native construction) ----------

    def _materialize_adj(self) -> None:
        """Expand the edge arrays into the per-edge dict/set mutation
        state (``out_adj``/``edge_pri``/``alive``).  Only reached when an
        array-built tree is first *mutated* (or its adjacency inspected);
        query-only instances skip it entirely."""
        dv, pv, uv = self._edge_arrays
        pairs = list(zip(uv.tolist(), dv.tolist()))
        self._edge_pri = dict(zip(pairs, pv.tolist()))
        self._alive = set(pairs)
        indptr, indices = self._out_csr
        self._out_adj = _LazyOutAdj(self.n, indptr, indices)

    @property
    def out_adj(self) -> list[set[int]]:
        if self._out_adj is None:
            self._materialize_adj()
        return self._out_adj

    @property
    def edge_pri(self) -> dict[DirEdge, int]:
        if self._edge_pri is None:
            self._materialize_adj()
        return self._edge_pri

    @property
    def alive(self) -> set[DirEdge]:
        if self._alive is None:
            self._materialize_adj()
        return self._alive

    # -- helpers ---------------------------------------------------------

    def _parent_pred(self, v: int) -> Callable[[int], bool]:
        want = self.dist[v] - 1
        return lambda u: (u, v) in self.alive and self.dist[u] == want

    def _attach(self, v: int, position: int) -> None:
        """Make the edge at ``position`` of ``IN(v)`` the parent edge."""
        u = self.in_arr[v].query(position)
        self.parent[v] = u
        self._scan_pri[v] = self.in_arr[v].priority_at(position)

    def _scan_position(self, v: int) -> int:
        """Current scan position in ``IN(v)`` (1-based)."""
        sp = self._scan_pri[v]
        if sp is None:
            return 1
        # Number of entries with priority >= sp = position of the scan edge
        # (or of its successor block if the edge's priority moved).
        return max(self.in_arr[v].count_ge(sp), 1)

    # -- queries -----------------------------------------------------------

    def dist_of(self, v: int) -> int:
        """Current distance label of ``v`` (``L + 1`` = beyond the tree)."""
        return self.dist[v]

    def parent_of(self, v: int) -> int | None:
        """Current tree parent of ``v`` (None for the source / detached)."""
        return self.parent[v]

    def distances(self) -> list[int]:
        """Copy of the full distance array."""
        return list(self.dist)

    def tree_edges(self) -> Iterator[DirEdge]:
        """Current shortest-path-tree edges ``(parent, child)``."""
        for v in range(self.n):
            if self.parent[v] is not None:
                yield (self.parent[v], v)

    def is_alive(self, u: int, v: int) -> bool:
        """Whether the directed edge ``u -> v`` is still present."""
        return (u, v) in self.alive

    # -- the Theorem 1.2 deletion procedure ---------------------------------

    def batch_delete(self, edges: Iterable[DirEdge]) -> list[ParentChange]:
        """Delete a batch of directed edges; returns every parent change.

        Phases follow Algorithm 1: bucket ``i`` holds the vertices whose
        distance-``i`` label must be revalidated; a vertex that finds no
        parent at level ``i - 1`` moves to bucket ``i + 1`` with its scan
        pointer reset, orphaning its tree children.
        """
        edges = list(edges)
        logn = log2ceil(max(self.n, 2))
        changes: list[ParentChange] = []
        buckets: dict[int, set[int]] = {}
        old_parent: dict[int, int | None] = {}
        old_dist: dict[int, int] = {}

        def orphan(v: int) -> None:
            if v not in old_parent:
                old_parent[v] = self.parent[v]
                old_dist[v] = self.dist[v]
            buckets.setdefault(self.dist[v], set()).add(v)

        # Step 1: mark edges dead; collect orphans (one parallel round).
        # Every branch charges the same (logn, logn), so the whole round is
        # one aggregate pfor charge: work = |edges| * logn, depth = logn.
        for u, v in edges:
            if (u, v) not in self.alive:
                raise KeyError(f"edge {(u, v)} not alive")
            self.alive.remove((u, v))
            self.out_adj[u].discard(v)
            self._dead_in.setdefault(v, set()).add(u)
            if self.parent[v] == u:
                orphan(v)
                self.parent[v] = None
        self._cost.pfor_cost(len(edges), logn, depth=logn)

        # Step 2: phases i = 1..L (Invariants A2-A4).  With a pool backend
        # installed on the cost model the phase's *scans* ship to worker
        # processes (they are read-only and independent within a phase —
        # see :func:`scan_bucket_kernel`) and the mutations apply inline
        # from the returned positions; otherwise the phase runs inline via
        # the backend seam as before.  Charges identical either way.
        backend = self._cost.backend
        for i in range(1, self.L + 1):
            bucket = buckets.pop(i, None)
            if not bucket:
                continue
            vs = sorted(bucket)
            if (
                backend is not None
                and backend.workers > 1
                and len(vs) >= backend.min_items
            ):
                self._pool_phase(
                    backend, vs, i, orphan, changes, old_parent, old_dist
                )
                continue
            with self._cost.parallel() as par:
                par.map(
                    vs,
                    lambda v: self._process_vertex(
                        v, i, orphan, changes, old_parent, old_dist
                    ),
                )
        assert not buckets, f"unprocessed buckets at levels {sorted(buckets)}"
        return changes

    def _pool_phase(
        self, backend, vs, i, orphan, changes, old_parent, old_dist
    ) -> None:
        """Run one phase with its scans shipped to the pool (the PR 8
        follow-on): extract each vertex's scan inputs, fan the chunks out
        through :meth:`ExecutionBackend.map_chunks`, then apply mutations
        inline in canonical (sorted) order.  Each applied branch first
        re-charges the scan's exact ``(work, depth)`` so the parallel
        region accumulates the byte-identical totals of the inline phase
        (scan + apply compose sequentially *within* a branch)."""
        dist = self.dist
        specs = []
        for v in vs:
            assert dist[v] == i
            pa = self.in_arr[v]
            if pa._bulk_pri is not None:
                pris = pa._bulk_pri.tolist()
                bv = pa._bulk_vals
                vals = bv.tolist() if isinstance(bv, np.ndarray) else list(bv)
            else:
                pris = list(pa._sorted)
                vals = [pa._values[p] for p in reversed(pa._sorted)]
            dead = self._dead_in.get(v)
            specs.append((
                v, self._scan_pri[v], i - 1, pris, vals,
                [dist[u] for u in vals],
                sorted(dead) if dead else (),
            ))
        per = max(1, -(-len(specs) // (2 * backend.workers)))
        chunks = [
            {"universe": self._universe, "items": specs[j:j + per]}
            for j in range(0, len(specs), per)
        ]
        results = backend.map_chunks(scan_bucket_kernel, chunks)
        with self._cost.parallel() as par:
            for res in results:
                for v, q, w, d in res.value:
                    with par.task():
                        self._cost.charge_many(work=w, depth=d)
                        self._apply_scan(
                            v, i, q, orphan, changes, old_parent, old_dist
                        )

    def _process_vertex(
        self,
        v: int,
        i: int,
        orphan: Callable[[int], None],
        changes: list[ParentChange],
        old_parent: dict[int, int | None],
        old_dist: dict[int, int],
    ) -> None:
        """Phase-``i`` rescan of vertex ``v`` (current dist ``i``)."""
        assert self.dist[v] == i
        arr = self.in_arr[v]
        pos = self._scan_position(v)
        q = arr.next_with(pos, self._parent_pred(v))
        self._apply_scan(v, i, q, orphan, changes, old_parent, old_dist)

    def _apply_scan(
        self,
        v: int,
        i: int,
        q: int,
        orphan: Callable[[int], None],
        changes: list[ParentChange],
        old_parent: dict[int, int | None],
        old_dist: dict[int, int],
    ) -> None:
        """Apply the outcome of ``v``'s phase-``i`` scan (found position
        ``q``, or past-the-end for "no parent at level ``i - 1``")."""
        arr = self.in_arr[v]
        if q <= len(arr):
            # Found a parent at level i - 1; distance stays i.
            self._attach(v, q)
            if self.parent[v] != old_parent[v] or i != old_dist[v]:
                changes.append(
                    ParentChange(v, old_parent[v], self.parent[v],
                                 old_dist[v], i)
                )
            else:
                del old_parent[v], old_dist[v]
            return
        # No parent at this level: distance grows, scan resets, children
        # are orphaned (they sit at level i + 1 and re-bucket there).
        self.parent[v] = None
        self._scan_pri[v] = None
        children = self.out_adj[v]
        for w in sorted(children):
            if self.parent[w] == v:
                orphan(w)
                self.parent[w] = None
        # one parallel round over the children: work = deg, depth = 1
        self._cost.charge_many(work=len(children), depth=1)
        if i + 1 <= self.L:
            self.dist[v] = i + 1
            orphan(v)  # rebucket at level i + 1 (orphan() reads dist[v])
        else:
            self.dist[v] = self.L + 1
            changes.append(
                ParentChange(v, old_parent[v], None, old_dist[v], self.L + 1)
            )

    # -- hooks for the spanner layer (Section 3.3) ---------------------------

    def update_edge_priority(self, u: int, v: int, new_priority: int) -> None:
        """Re-key the edge ``u -> v`` inside ``IN(v)``.

        If the edge is ``v``'s parent edge the scan pointer follows it when
        the priority increases; when it decreases the pointer keeps the *old*
        slot so that a single :meth:`find_parent_candidate` call from there
        sees every edge that jumped over the parent (the paper's "single
        NextWith" detection).
        """
        old_p = self.edge_pri[(u, v)]
        if old_p == new_priority:
            return
        _, k = self.in_arr[v].find(old_p)
        self.in_arr[v].update_priority(k, new_priority)
        self.edge_pri[(u, v)] = new_priority
        if self.parent[v] == u and new_priority > (self._scan_pri[v] or 0):
            self._scan_pri[v] = new_priority
        # On decrease, _scan_pri[v] intentionally keeps the old value.

    def find_parent_candidate(self, v: int, from_start: bool = False) -> int | None:
        """Best (highest-priority) valid parent of ``v`` scanning from the
        current pointer (or the list head).  Returns the vertex or None."""
        if v == self.source or self.dist[v] > self.L or self.dist[v] == 0:
            return None
        arr = self.in_arr[v]
        pos = 1 if from_start else self._scan_position(v)
        q = arr.next_with(pos, self._parent_pred(v))
        if q > len(arr):
            return None
        return arr.query(q)

    def set_parent(self, v: int, u: int) -> None:
        """Adopt ``u`` as parent of ``v`` (must be a valid candidate)."""
        if (u, v) not in self.alive or self.dist[u] != self.dist[v] - 1:
            raise ValueError(f"{u} is not a valid parent for {v}")
        self.parent[v] = u
        self._scan_pri[v] = self.edge_pri[(u, v)]

    def parent_edge_priority(self, v: int) -> int | None:
        """Priority of ``v``'s current parent edge (None if no parent)."""
        if self.parent[v] is None:
            return None
        return self.edge_pri[(self.parent[v], v)]

"""Bounded BFS (Lemma 3.2) and the batch-dynamic Even–Shiloach tree
(Theorem 1.2)."""

from repro.bfs.bounded_bfs import bounded_bfs_directed
from repro.bfs.es_tree import BatchDynamicESTree, ParentChange

__all__ = ["BatchDynamicESTree", "ParentChange", "bounded_bfs_directed"]

"""Parallel-charged data structures (Lemma 3.1, [PP01], [GMV91])."""

from repro.structures.hashdict import BatchDict, BatchSet
from repro.structures.ordered_list import OrderedMap
from repro.structures.priority_array import PriorityArray, VectorPredicate

__all__ = [
    "BatchDict", "BatchSet", "OrderedMap", "PriorityArray",
    "VectorPredicate",
]

"""Batch hash table — the stand-in for the parallel hash table of [GMV91].

[GMV91] gives a CRCW-PRAM hash table with O(1) work per element and
O(log* n) depth per batch operation, w.h.p.  A Python ``dict`` already gives
O(1) expected work per element; we wrap it so batch operations charge the
paper's work/depth model and so call sites read like the paper
(``BatchDict``, ``BatchSet``).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator

from repro.pram.cost import NULL_COST_MODEL, CostModel

__all__ = ["BatchDict", "BatchSet"]


class BatchDict:
    """dict with batch insert/delete entry points charged per [GMV91]."""

    def __init__(
        self,
        items: Iterable[tuple[Hashable, Any]] = (),
        cost: CostModel = NULL_COST_MODEL,
    ) -> None:
        self._cost = cost
        self._data: dict[Hashable, Any] = dict(items)
        if self._data:
            cost.charge_hash_op(len(self._data))

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        self._cost.charge_hash_op()
        return key in self._data

    def __getitem__(self, key: Hashable) -> Any:
        self._cost.charge_hash_op()
        return self._data[key]

    def __setitem__(self, key: Hashable, value: Any) -> None:
        self._cost.charge_hash_op()
        self._data[key] = value

    def __delitem__(self, key: Hashable) -> None:
        self._cost.charge_hash_op()
        del self._data[key]

    def get(self, key: Hashable, default: Any = None) -> Any:
        """dict.get with an O(1) hash charge."""
        self._cost.charge_hash_op()
        return self._data.get(key, default)

    def pop(self, key: Hashable, *default: Any) -> Any:
        """dict.pop with an O(1) hash charge."""
        self._cost.charge_hash_op()
        return self._data.pop(key, *default)

    def setdefault(self, key: Hashable, default: Any = None) -> Any:
        """dict.setdefault with an O(1) hash charge."""
        self._cost.charge_hash_op()
        return self._data.setdefault(key, default)

    def batch_set(self, items: Iterable[tuple[Hashable, Any]]) -> None:
        """Insert/overwrite many pairs as one parallel hash batch."""
        items = list(items)
        self._cost.charge_hash_op(len(items))
        self._data.update(items)

    def batch_delete(self, keys: Iterable[Hashable]) -> None:
        """Delete many keys as one parallel hash batch."""
        keys = list(keys)
        self._cost.charge_hash_op(len(keys))
        for key in keys:
            del self._data[key]

    def keys(self) -> Iterator[Hashable]:
        """Iterate keys."""
        return iter(self._data)

    def values(self) -> Iterator[Any]:
        """Iterate values."""
        return iter(self._data.values())

    def items(self) -> Iterator[tuple[Hashable, Any]]:
        """Iterate items."""
        return iter(self._data.items())

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._data)


class BatchSet:
    """set with batch entry points charged per [GMV91]."""

    def __init__(
        self,
        items: Iterable[Hashable] = (),
        cost: CostModel = NULL_COST_MODEL,
    ) -> None:
        self._cost = cost
        self._data: set[Hashable] = set(items)
        if self._data:
            cost.charge_hash_op(len(self._data))

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        self._cost.charge_hash_op()
        return key in self._data

    def add(self, key: Hashable) -> None:
        """set.add with an O(1) hash charge."""
        self._cost.charge_hash_op()
        self._data.add(key)

    def discard(self, key: Hashable) -> None:
        """set.discard with an O(1) hash charge."""
        self._cost.charge_hash_op()
        self._data.discard(key)

    def remove(self, key: Hashable) -> None:
        """set.remove with an O(1) hash charge."""
        self._cost.charge_hash_op()
        self._data.remove(key)

    def pop_any(self) -> Hashable:
        """Remove and return an arbitrary element."""
        self._cost.charge_hash_op()
        return self._data.pop()

    def peek_any(self) -> Hashable:
        """Return an arbitrary element without removing it."""
        self._cost.charge_hash_op()
        return next(iter(self._data))

    def batch_add(self, keys: Iterable[Hashable]) -> None:
        """Add many elements as one parallel hash batch."""
        keys = list(keys)
        self._cost.charge_hash_op(len(keys))
        self._data.update(keys)

    def batch_discard(self, keys: Iterable[Hashable]) -> None:
        """Discard many elements as one parallel hash batch."""
        keys = list(keys)
        self._cost.charge_hash_op(len(keys))
        self._data.difference_update(keys)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._data)

"""Balanced ordered map — the stand-in for the parallel red-black tree [PP01].

The paper uses a parallel red-black tree to maintain ordered lists with
O(log n) work per element and O(log n) depth per batch operation.  We use a
randomized treap, which gives the same expected bounds and the same batch
charge model, and expose batch insert/delete entry points so callers charge
one O(log n)-depth round per batch rather than per element.

Keys may be any totally-ordered values (the contraction layers use
``(unmark, rand, vertex)`` tuples).
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Iterator, Optional

from repro.pram.cost import NULL_COST_MODEL, CostModel, log2ceil

__all__ = ["OrderedMap"]


class _TNode:
    __slots__ = ("key", "value", "prio", "left", "right", "size")

    def __init__(self, key: Any, value: Any, prio: float) -> None:
        self.key = key
        self.value = value
        self.prio = prio
        self.left: Optional[_TNode] = None
        self.right: Optional[_TNode] = None
        self.size = 1


def _size(node: Optional[_TNode]) -> int:
    return node.size if node is not None else 0


def _pull(node: _TNode) -> None:
    node.size = 1 + _size(node.left) + _size(node.right)


def _merge(a: Optional[_TNode], b: Optional[_TNode]) -> Optional[_TNode]:
    if a is None:
        return b
    if b is None:
        return a
    if a.prio < b.prio:
        a.right = _merge(a.right, b)
        _pull(a)
        return a
    b.left = _merge(a, b.left)
    _pull(b)
    return b


def _split(
    node: Optional[_TNode], key: Any
) -> tuple[Optional[_TNode], Optional[_TNode]]:
    """Split into (< key, >= key)."""
    if node is None:
        return None, None
    if node.key < key:
        left, right = _split(node.right, key)
        node.right = left
        _pull(node)
        return node, right
    left, right = _split(node.left, key)
    node.left = right
    _pull(node)
    return left, node


class OrderedMap:
    """Ordered key->value map with order-statistics.

    Supports the operations the contraction layers need: insert, delete,
    minimum, k-th smallest, rank, and ordered iteration.  Duplicate keys are
    rejected (the paper guarantees distinct random keys w.h.p.).
    """

    def __init__(
        self,
        items: Iterable[tuple[Any, Any]] = (),
        cost: CostModel = NULL_COST_MODEL,
        seed: int | None = None,
    ) -> None:
        self._root: Optional[_TNode] = None
        self._rng = random.Random(seed)
        self._cost = cost
        items = list(items)
        for key, value in items:
            self._insert_one(key, value)
        if items:
            cost.charge(
                work=len(items) * log2ceil(len(items) + 1),
                depth=log2ceil(len(items) + 1),
            )

    def __len__(self) -> int:
        return _size(self._root)

    def __contains__(self, key: Any) -> bool:
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return True
        return False

    # -- single-element operations ------------------------------------------

    def _insert_one(self, key: Any, value: Any) -> None:
        if key in self:
            raise ValueError(f"duplicate key {key!r}")
        left, right = _split(self._root, key)
        node = _TNode(key, value, self._rng.random())
        self._root = _merge(_merge(left, node), right)

    def insert(self, key: Any, value: Any = None) -> None:
        """Insert one pair (O(log n) charge); duplicate keys rejected."""
        self._cost.charge_tree_op(len(self) + 1)
        self._insert_one(key, value)

    def delete(self, key: Any) -> Any:
        """Remove a key and return its value (O(log n) charge)."""
        self._cost.charge_tree_op(max(len(self), 1))
        # rest holds keys >= key; its leftmost node is the only candidate.
        left, rest = _split(self._root, key)
        mid, right = _split_first(rest)
        if mid is None or mid.key != key:
            # reassemble before raising
            self._root = _merge(left, _merge(mid, right))
            raise KeyError(key)
        self._root = _merge(left, right)
        return mid.value

    def get(self, key: Any, default: Any = None) -> Any:
        """Value for ``key`` or ``default`` (no charge — read-only probe)."""
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return node.value
        return default

    # -- batch operations -----------------------------------------------------

    def batch_insert(self, items: Iterable[tuple[Any, Any]]) -> None:
        """Insert many pairs: O(log n) work/element, O(log n) batch depth."""
        items = list(items)
        if not items:
            return
        n = len(self) + len(items)
        self._cost.charge(
            work=len(items) * log2ceil(n), depth=log2ceil(n)
        )
        for key, value in items:
            self._insert_one(key, value)

    def batch_delete(self, keys: Iterable[Any]) -> list[Any]:
        """Delete many keys: O(log n) work/element, O(log n) batch depth."""
        keys = list(keys)
        if not keys:
            return []
        n = max(len(self), 1)
        self._cost.charge(
            work=len(keys) * log2ceil(n), depth=log2ceil(n)
        )
        out = []
        for key in keys:
            left, rest = _split(self._root, key)
            mid, right = _split_first(rest)
            if mid is None or mid.key != key:
                self._root = _merge(left, _merge(mid, right))
                raise KeyError(key)
            self._root = _merge(left, right)
            out.append(mid.value)
        return out

    # -- order statistics -----------------------------------------------------

    def min_item(self) -> tuple[Any, Any]:
        """Smallest ``(key, value)``; raises if empty."""
        if self._root is None:
            raise KeyError("min of empty OrderedMap")
        self._cost.charge_tree_op(len(self))
        node = self._root
        while node.left is not None:
            node = node.left
        return node.key, node.value

    def kth(self, k: int) -> tuple[Any, Any]:
        """The k-th smallest ``(key, value)`` (1-based)."""
        if not 1 <= k <= len(self):
            raise IndexError(k)
        self._cost.charge_tree_op(len(self))
        node = self._root
        while True:
            ls = _size(node.left)
            if k <= ls:
                node = node.left
            elif k == ls + 1:
                return node.key, node.value
            else:
                k -= ls + 1
                node = node.right

    def rank(self, key: Any) -> int:
        """Number of keys strictly smaller than ``key``."""
        self._cost.charge_tree_op(max(len(self), 1))
        node, r = self._root, 0
        while node is not None:
            if key < node.key:
                node = node.left
            elif node.key < key:
                r += _size(node.left) + 1
                node = node.right
            else:
                return r + _size(node.left)
        return r

    def items(self) -> Iterator[tuple[Any, Any]]:
        """In-order iteration (O(n); charged O(n) work, O(log n) depth)."""
        self._cost.charge(
            work=max(len(self), 1), depth=log2ceil(len(self) + 1)
        )
        yield from _inorder(self._root)

    def keys(self) -> Iterator[Any]:
        """In-order key iteration."""
        for key, _ in self.items():
            yield key


def _split_first(
    node: Optional[_TNode],
) -> tuple[Optional[_TNode], Optional[_TNode]]:
    """Detach the leftmost node: returns (leftmost or None, rest)."""
    if node is None:
        return None, None
    if node.left is None:
        rest = node.right
        node.right = None
        node.size = 1
        return node, rest
    first, newleft = _split_first(node.left)
    node.left = newleft
    _pull(node)
    return first, node


def _inorder(node: Optional[_TNode]) -> Iterator[tuple[Any, Any]]:
    stack: list[_TNode] = []
    cur = node
    while stack or cur is not None:
        while cur is not None:
            stack.append(cur)
            cur = cur.left
        cur = stack.pop()
        yield cur.key, cur.value
        cur = cur.right

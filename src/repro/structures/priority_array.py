"""The priority-indexed array of Lemma 3.1.

The structure stores values keyed by *distinct* integer priorities drawn from
a bounded universe ``[0, universe)`` and exposes the element list as if it
were an array sorted in **decreasing** priority order (position 1 holds the
largest priority, matching the paper's 1-based indexing).

Implementation: a sorted list of priorities (ascending) maintained with
``bisect``, plus a dict mapping priority -> value.  Rank and selection are
O(log l) probes into the list; ``NextWith`` runs the paper's exponential
(galloping) search over positions.  An earlier revision used a sparse
segment tree over the universe; the list is behaviourally identical but
allocates no per-priority nodes, which matters on the serving hot path
where thousands of small arrays are built per run.  The *charges* below are
the analytic Lemma 3.1 costs of the paper's (parallel, universe-indexed)
structure and are independent of this sequential implementation choice.

Array-native fast paths (the substrate refactor): a batch constructor call
with integer priorities takes a **bulk path** — one ``np.argsort`` over the
priority array instead of per-item validation and insertion-sort — and the
scalar dict/list state materializes lazily on the first operation that
needs it.  ``next_with`` accepts a :class:`VectorPredicate`, whose batch
evaluator runs each galloping phase as one numpy comparison over the
position-ordered value array instead of per-position Python calls.  Both
paths charge the identical closed-form Lemma 3.1 costs (the charges are
functions of the item count and the scan schedule, not of the loop shape),
so ``tools/bench_gate.py``'s pinned work/depth constants hold byte-for-byte.

Work/depth charges (Lemma 3.1):

=====================  ====================  ===========
operation              work                  depth
=====================  ====================  ===========
initialize(l items)    O(l log U)            O(log U)
update_value           O(log U)              O(log U)
update_priority        O(log U)              O(log U)
query / find           O(log U)              O(log U)
next_with(k, f)        O((q - k + 1) log U)  O(log^2 U)
=====================  ====================  ===========
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Any, Callable, Iterator

import numpy as np

from repro.pram.cost import NULL_COST_MODEL, CostModel, log2ceil

__all__ = ["PriorityArray", "VectorPredicate"]


class VectorPredicate:
    """A ``next_with`` predicate with a batch evaluator.

    ``scalar`` is the usual per-value callable; ``vector`` maps a numpy
    array of values to a boolean mask with the same semantics.  The two
    must agree — ``next_with`` uses whichever fits the storage it scans,
    and the answer (and charge) is identical either way.
    """

    __slots__ = ("scalar", "vector")

    def __init__(
        self,
        scalar: Callable[[Any], bool],
        vector: Callable[[np.ndarray], np.ndarray],
    ) -> None:
        self.scalar = scalar
        self.vector = vector

    def __call__(self, value: Any) -> bool:
        return self.scalar(value)


class PriorityArray:
    """Array-of-elements ordered by decreasing priority (Lemma 3.1).

    Parameters
    ----------
    universe:
        Priorities must lie in ``[0, universe)``.
    items:
        Optional initial ``(value, priority)`` pairs; priorities must be
        distinct.
    cost:
        Work/depth accounting sink.
    """

    __slots__ = ("_universe", "_cost", "_values", "_sorted",
                 "_bulk_pri", "_bulk_vals")

    def __init__(
        self,
        universe: int,
        items: Iterator[tuple[Any, int]] | list[tuple[Any, int]] = (),
        cost: CostModel = NULL_COST_MODEL,
    ) -> None:
        if universe < 1:
            raise ValueError("universe must be positive")
        self._universe = universe
        self._cost = cost
        # lazy bulk state: priorities ascending + values in *position*
        # (descending-priority) order; scalar dict/list state materializes
        # on the first operation that needs it
        self._bulk_pri: np.ndarray | None = None
        self._bulk_vals: list[Any] | np.ndarray | None = None
        n = self._init_items(items)
        # Initialization: O(l log U) work, O(log U) depth (parallel descent).
        cost.charge(work=n * log2ceil(universe), depth=log2ceil(universe))

    def _init_items(self, items) -> int:
        if not isinstance(items, (list, tuple)):
            items = list(items)
        if len(items) >= 32:
            n = self._try_bulk_init(items)
            if n is not None:
                return n
        self._values = {}
        n = 0
        for value, priority in items:
            self._check_priority(priority)
            if priority in self._values:
                raise ValueError(f"duplicate priority {priority}")
            self._values[priority] = value
            n += 1
        self._sorted: list[int] = sorted(self._values)
        return n

    def _try_bulk_init(self, items: list) -> int | None:
        """Vectorized batch build; None = fall back to the scalar loop
        (non-integer priorities or a validation error that the scalar
        loop reports with its exact per-item message)."""
        vals = [it[0] for it in items]
        try:
            pri = np.asarray([it[1] for it in items])
        except (ValueError, TypeError):
            return None
        if pri.dtype.kind not in "iu" or pri.ndim != 1:
            return None
        if ((pri < 0) | (pri >= self._universe)).any():
            return None  # scalar loop raises the exact range error
        order = np.argsort(pri, kind="stable")
        spri = pri[order]
        if len(spri) > 1 and (spri[1:] == spri[:-1]).any():
            return None  # scalar loop raises the exact duplicate error
        self._bulk_pri = spri.astype(np.int64)
        # values in position order (position 1 = largest priority)
        rev = order[::-1]
        varr = np.asarray(vals)
        if varr.dtype != object and varr.shape == (len(items),):
            self._bulk_vals = varr[rev]
        else:
            self._bulk_vals = [vals[i] for i in rev.tolist()]
        self._values = None  # type: ignore[assignment]
        self._sorted = None  # type: ignore[assignment]
        return len(items)

    @classmethod
    def from_arrays(
        cls,
        universe: int,
        values,
        priorities,
        cost: CostModel = NULL_COST_MODEL,
    ) -> "PriorityArray":
        """Array-native bulk builder: aligned ``values``/``priorities``.

        The fully vectorized construction path — validation (range,
        distinctness) and ordering are numpy operations, no per-item
        Python.  Charges the identical Lemma 3.1 initialization cost as
        ``PriorityArray(universe, items)`` over the same item count, and
        the resulting structure is behaviourally identical.
        """
        if universe < 1:
            raise ValueError("universe must be positive")
        pri = np.asarray(priorities)
        vals = np.asarray(values)
        if pri.ndim != 1 or pri.dtype.kind not in "iu":
            raise ValueError("priorities must be a 1-d integer array")
        if vals.shape[:1] != pri.shape:
            raise ValueError("values/priorities length mismatch")
        if len(pri):
            bad = (pri < 0) | (pri >= universe)
            if bad.any():
                raise ValueError(
                    f"priority {int(pri[bad][0])} outside universe "
                    f"[0, {universe})"
                )
        order = np.argsort(pri, kind="stable")
        spri = pri[order].astype(np.int64)
        if len(spri) > 1:
            dup = spri[1:] == spri[:-1]
            if dup.any():
                d = int(spri[int(np.nonzero(dup)[0][0]) + 1])
                raise ValueError(f"duplicate priority {d}")
        pa = cls.__new__(cls)
        pa._universe = universe
        pa._cost = cost
        pa._bulk_pri = spri
        pa._bulk_vals = vals[order[::-1]]
        pa._values = None  # type: ignore[assignment]
        pa._sorted = None  # type: ignore[assignment]
        cost.charge(
            work=len(pri) * log2ceil(universe), depth=log2ceil(universe)
        )
        return pa

    def _materialize(self) -> None:
        """Expand lazy bulk state into the scalar dict + sorted list."""
        if self._bulk_pri is None:
            return
        pri = self._bulk_pri.tolist()
        vals = self._bulk_vals
        if isinstance(vals, np.ndarray):
            vals = vals.tolist()
        self._sorted = pri
        self._values = dict(zip(reversed(pri), vals))
        self._bulk_pri = None
        self._bulk_vals = None

    # -- internal ordered index ---------------------------------------------

    def _insert(self, priority: int, value: Any) -> None:
        self._materialize()
        self._check_priority(priority)
        if priority in self._values:
            raise ValueError(f"duplicate priority {priority}")
        self._values[priority] = value
        insort(self._sorted, priority)

    def _delete(self, priority: int) -> Any:
        self._materialize()
        value = self._values.pop(priority)
        del self._sorted[bisect_left(self._sorted, priority)]
        return value

    def _kth_largest(self, k: int) -> int:
        """Priority of the element at (1-based) position ``k``."""
        self._materialize()
        return self._sorted[-k]

    def _rank_from_top(self, priority: int) -> int:
        """Number of stored priorities >= ``priority`` (1-based position if
        ``priority`` itself is stored)."""
        self._materialize()
        return len(self._sorted) - bisect_left(self._sorted, priority)

    def _check_priority(self, priority: int) -> None:
        if not 0 <= priority < self._universe:
            raise ValueError(
                f"priority {priority} outside universe [0, {self._universe})"
            )

    # -- Lemma 3.1 interface -------------------------------------------------

    def __len__(self) -> int:
        if self._bulk_pri is not None:
            return len(self._bulk_pri)
        return len(self._sorted)

    @property
    def universe(self) -> int:
        return self._universe

    def query(self, k: int) -> Any:
        """Return the value of the element with the k-th largest priority
        (1-based)."""
        if not 1 <= k <= len(self):
            raise IndexError(f"position {k} out of range [1, {len(self)}]")
        self._cost.charge_tree_op(self._universe)
        if self._bulk_pri is not None:
            v = self._bulk_vals[k - 1]
            return v.item() if isinstance(v, np.generic) else v
        return self._values[self._sorted[-k]]

    def priority_at(self, k: int) -> int:
        """Priority of the element at position ``k`` (1-based)."""
        if not 1 <= k <= len(self):
            raise IndexError(f"position {k} out of range [1, {len(self)}]")
        self._cost.charge_tree_op(self._universe)
        if self._bulk_pri is not None:
            return int(self._bulk_pri[-k])
        return self._sorted[-k]

    def find(self, priority: int) -> tuple[Any, int]:
        """Return ``(value, position)`` of the element with ``priority``;
        the position equals the number of elements with priority >= it."""
        self._materialize()
        self._check_priority(priority)
        if priority not in self._values:
            raise KeyError(f"no element with priority {priority}")
        self._cost.charge_tree_op(self._universe)
        return self._values[priority], self._rank_from_top(priority)

    def count_ge(self, priority: int) -> int:
        """Number of stored elements with priority >= ``priority`` (which
        need not itself be stored)."""
        self._check_priority(priority)
        self._cost.charge_tree_op(self._universe)
        if self._bulk_pri is not None:
            return len(self._bulk_pri) - int(
                np.searchsorted(self._bulk_pri, priority, side="left")
            )
        return self._rank_from_top(priority)

    def update_value(self, k: int, value: Any) -> None:
        """Set the value of the element at position ``k``."""
        self._materialize()
        if not 1 <= k <= len(self):
            raise IndexError(f"position {k} out of range [1, {len(self)}]")
        self._cost.charge_tree_op(self._universe)
        self._values[self._sorted[-k]] = value

    def update_priority(self, k: int, priority: int) -> None:
        """Move the element at position ``k`` to a new (distinct) priority."""
        self._materialize()
        if not 1 <= k <= len(self):
            raise IndexError(f"position {k} out of range [1, {len(self)}]")
        self._check_priority(priority)
        old = self._sorted[-k]
        if old == priority:
            return
        if priority in self._values:
            raise ValueError(f"duplicate priority {priority}")
        value = self._delete(old)
        self._insert(priority, value)
        self._cost.charge_tree_op(self._universe, count=2)

    def insert(self, value: Any, priority: int) -> None:
        """Add a new element (extension used by dynamic-graph callers)."""
        self._insert(priority, value)
        self._cost.charge_tree_op(self._universe)

    def delete_priority(self, priority: int) -> Any:
        """Remove and return the element with ``priority`` (extension)."""
        self._materialize()
        self._check_priority(priority)
        if priority not in self._values:
            raise KeyError(f"no element with priority {priority}")
        self._cost.charge_tree_op(self._universe)
        return self._delete(priority)

    def next_with(self, k: int, predicate: Callable[[Any], bool]) -> int:
        """Smallest position ``q >= k`` whose value satisfies ``predicate``;
        ``len(self) + 1`` if none exists (the paper's NextWith).

        Runs the exponential-search schedule of Lemma 3.1: phase ``i`` scans
        positions ``[p, p + 2^i)`` in parallel.  With a
        :class:`VectorPredicate` on numeric bulk storage each phase is one
        vectorized comparison; the phase schedule — and therefore the
        charge — is identical to the scalar scan.
        """
        n = len(self)
        if k < 1:
            raise IndexError("position must be >= 1")
        logu = log2ceil(self._universe)
        vec = getattr(predicate, "vector", None)
        varr: np.ndarray | None = None
        if vec is not None and self._bulk_pri is not None and isinstance(
            self._bulk_vals, np.ndarray
        ):
            varr = self._bulk_vals
        if varr is None:
            self._materialize()
            values = self._values
            order = self._sorted
        pos = k
        span = 1
        while pos <= n:
            end = min(pos + span - 1, n)
            # One phase: scan positions [pos, end] "in parallel".
            self._cost.charge(
                work=(end - pos + 1) * logu, depth=logu
            )
            if varr is not None:
                mask = np.asarray(vec(varr[pos - 1:end]))
                if mask.any():
                    return pos + int(mask.argmax())
            else:
                for q in range(pos, end + 1):
                    if predicate(values[order[-q]]):
                        return q
            pos = end + 1
            span *= 2
        return n + 1

    # -- iteration helpers (testing / debugging) ----------------------------

    def items_by_position(self) -> Iterator[tuple[int, int, Any]]:
        """Yield ``(position, priority, value)`` in position order."""
        self._materialize()
        for k, p in enumerate(reversed(self._sorted), start=1):
            yield k, p, self._values[p]

    def priorities(self) -> set[int]:
        """The set of stored priorities (testing helper)."""
        if self._bulk_pri is not None:
            return set(self._bulk_pri.tolist())
        return set(self._values)

"""The priority-indexed array of Lemma 3.1.

The structure stores values keyed by *distinct* integer priorities drawn from
a bounded universe ``[0, universe)`` and exposes the element list as if it
were an array sorted in **decreasing** priority order (position 1 holds the
largest priority, matching the paper's 1-based indexing).

Implementation: a sorted list of priorities (ascending) maintained with
``bisect``, plus a dict mapping priority -> value.  Rank and selection are
O(log l) probes into the list; ``NextWith`` runs the paper's exponential
(galloping) search over positions.  An earlier revision used a sparse
segment tree over the universe; the list is behaviourally identical but
allocates no per-priority nodes, which matters on the serving hot path
where thousands of small arrays are built per run.  The *charges* below are
the analytic Lemma 3.1 costs of the paper's (parallel, universe-indexed)
structure and are independent of this sequential implementation choice.

Work/depth charges (Lemma 3.1):

=====================  ====================  ===========
operation              work                  depth
=====================  ====================  ===========
initialize(l items)    O(l log U)            O(log U)
update_value           O(log U)              O(log U)
update_priority        O(log U)              O(log U)
query / find           O(log U)              O(log U)
next_with(k, f)        O((q - k + 1) log U)  O(log^2 U)
=====================  ====================  ===========
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Any, Callable, Iterator

from repro.pram.cost import NULL_COST_MODEL, CostModel, log2ceil

__all__ = ["PriorityArray"]


class PriorityArray:
    """Array-of-elements ordered by decreasing priority (Lemma 3.1).

    Parameters
    ----------
    universe:
        Priorities must lie in ``[0, universe)``.
    items:
        Optional initial ``(value, priority)`` pairs; priorities must be
        distinct.
    cost:
        Work/depth accounting sink.
    """

    __slots__ = ("_universe", "_cost", "_values", "_sorted")

    def __init__(
        self,
        universe: int,
        items: Iterator[tuple[Any, int]] | list[tuple[Any, int]] = (),
        cost: CostModel = NULL_COST_MODEL,
    ) -> None:
        if universe < 1:
            raise ValueError("universe must be positive")
        self._universe = universe
        self._cost = cost
        self._values: dict[int, Any] = {}
        n = 0
        for value, priority in items:
            self._check_priority(priority)
            if priority in self._values:
                raise ValueError(f"duplicate priority {priority}")
            self._values[priority] = value
            n += 1
        self._sorted: list[int] = sorted(self._values)
        # Initialization: O(l log U) work, O(log U) depth (parallel descent).
        cost.charge(work=n * log2ceil(universe), depth=log2ceil(universe))

    # -- internal ordered index ---------------------------------------------

    def _insert(self, priority: int, value: Any) -> None:
        self._check_priority(priority)
        if priority in self._values:
            raise ValueError(f"duplicate priority {priority}")
        self._values[priority] = value
        insort(self._sorted, priority)

    def _delete(self, priority: int) -> Any:
        value = self._values.pop(priority)
        del self._sorted[bisect_left(self._sorted, priority)]
        return value

    def _kth_largest(self, k: int) -> int:
        """Priority of the element at (1-based) position ``k``."""
        return self._sorted[-k]

    def _rank_from_top(self, priority: int) -> int:
        """Number of stored priorities >= ``priority`` (1-based position if
        ``priority`` itself is stored)."""
        return len(self._sorted) - bisect_left(self._sorted, priority)

    def _check_priority(self, priority: int) -> None:
        if not 0 <= priority < self._universe:
            raise ValueError(
                f"priority {priority} outside universe [0, {self._universe})"
            )

    # -- Lemma 3.1 interface -------------------------------------------------

    def __len__(self) -> int:
        return len(self._sorted)

    @property
    def universe(self) -> int:
        return self._universe

    def query(self, k: int) -> Any:
        """Return the value of the element with the k-th largest priority
        (1-based)."""
        if not 1 <= k <= len(self):
            raise IndexError(f"position {k} out of range [1, {len(self)}]")
        self._cost.charge_tree_op(self._universe)
        return self._values[self._sorted[-k]]

    def priority_at(self, k: int) -> int:
        """Priority of the element at position ``k`` (1-based)."""
        if not 1 <= k <= len(self):
            raise IndexError(f"position {k} out of range [1, {len(self)}]")
        self._cost.charge_tree_op(self._universe)
        return self._sorted[-k]

    def find(self, priority: int) -> tuple[Any, int]:
        """Return ``(value, position)`` of the element with ``priority``;
        the position equals the number of elements with priority >= it."""
        self._check_priority(priority)
        if priority not in self._values:
            raise KeyError(f"no element with priority {priority}")
        self._cost.charge_tree_op(self._universe)
        return self._values[priority], self._rank_from_top(priority)

    def count_ge(self, priority: int) -> int:
        """Number of stored elements with priority >= ``priority`` (which
        need not itself be stored)."""
        self._check_priority(priority)
        self._cost.charge_tree_op(self._universe)
        return self._rank_from_top(priority)

    def update_value(self, k: int, value: Any) -> None:
        """Set the value of the element at position ``k``."""
        if not 1 <= k <= len(self):
            raise IndexError(f"position {k} out of range [1, {len(self)}]")
        self._cost.charge_tree_op(self._universe)
        self._values[self._sorted[-k]] = value

    def update_priority(self, k: int, priority: int) -> None:
        """Move the element at position ``k`` to a new (distinct) priority."""
        if not 1 <= k <= len(self):
            raise IndexError(f"position {k} out of range [1, {len(self)}]")
        self._check_priority(priority)
        old = self._sorted[-k]
        if old == priority:
            return
        if priority in self._values:
            raise ValueError(f"duplicate priority {priority}")
        value = self._delete(old)
        self._insert(priority, value)
        self._cost.charge_tree_op(self._universe, count=2)

    def insert(self, value: Any, priority: int) -> None:
        """Add a new element (extension used by dynamic-graph callers)."""
        self._insert(priority, value)
        self._cost.charge_tree_op(self._universe)

    def delete_priority(self, priority: int) -> Any:
        """Remove and return the element with ``priority`` (extension)."""
        self._check_priority(priority)
        if priority not in self._values:
            raise KeyError(f"no element with priority {priority}")
        self._cost.charge_tree_op(self._universe)
        return self._delete(priority)

    def next_with(self, k: int, predicate: Callable[[Any], bool]) -> int:
        """Smallest position ``q >= k`` whose value satisfies ``predicate``;
        ``len(self) + 1`` if none exists (the paper's NextWith).

        Runs the exponential-search schedule of Lemma 3.1: phase ``i`` scans
        positions ``[p, p + 2^i)`` in parallel.
        """
        n = len(self)
        if k < 1:
            raise IndexError("position must be >= 1")
        logu = log2ceil(self._universe)
        values = self._values
        order = self._sorted
        pos = k
        span = 1
        while pos <= n:
            end = min(pos + span - 1, n)
            # One phase: scan positions [pos, end] "in parallel".
            self._cost.charge(
                work=(end - pos + 1) * logu, depth=logu
            )
            for q in range(pos, end + 1):
                if predicate(values[order[-q]]):
                    return q
            pos = end + 1
            span *= 2
        return n + 1

    # -- iteration helpers (testing / debugging) ----------------------------

    def items_by_position(self) -> Iterator[tuple[int, int, Any]]:
        """Yield ``(position, priority, value)`` in position order."""
        for k, p in enumerate(reversed(self._sorted), start=1):
            yield k, p, self._values[p]

    def priorities(self) -> set[int]:
        """The set of stored priorities (testing helper)."""
        return set(self._values)

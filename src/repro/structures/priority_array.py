"""The priority-indexed array of Lemma 3.1.

The structure stores values keyed by *distinct* integer priorities drawn from
a bounded universe ``[0, universe)`` and exposes the element list as if it
were an array sorted in **decreasing** priority order (position 1 holds the
largest priority, matching the paper's 1-based indexing).

Implementation: a lazily-allocated (sparse) segment tree over the priority
universe, each node holding the count of stored priorities in its interval,
plus a dict mapping priority -> value.  ``NextWith`` runs the paper's
exponential (galloping) search over positions.

Work/depth charges (Lemma 3.1):

=====================  ====================  ===========
operation              work                  depth
=====================  ====================  ===========
initialize(l items)    O(l log U)            O(log U)
update_value           O(log U)              O(log U)
update_priority        O(log U)              O(log U)
query / find           O(log U)              O(log U)
next_with(k, f)        O((q - k + 1) log U)  O(log^2 U)
=====================  ====================  ===========
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.pram.cost import NULL_COST_MODEL, CostModel, log2ceil

__all__ = ["PriorityArray"]


class _Node:
    __slots__ = ("count", "left", "right")

    def __init__(self) -> None:
        self.count: int = 0
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None


class PriorityArray:
    """Array-of-elements ordered by decreasing priority (Lemma 3.1).

    Parameters
    ----------
    universe:
        Priorities must lie in ``[0, universe)``.
    items:
        Optional initial ``(value, priority)`` pairs; priorities must be
        distinct.
    cost:
        Work/depth accounting sink.
    """

    def __init__(
        self,
        universe: int,
        items: Iterator[tuple[Any, int]] | list[tuple[Any, int]] = (),
        cost: CostModel = NULL_COST_MODEL,
    ) -> None:
        if universe < 1:
            raise ValueError("universe must be positive")
        self._universe = universe
        self._cost = cost
        self._root = _Node()
        self._values: dict[int, Any] = {}
        items = list(items)
        for value, priority in items:
            self._insert(priority, value)
        # Initialization: O(l log U) work, O(log U) depth (parallel descent).
        cost.charge(
            work=len(items) * log2ceil(universe), depth=log2ceil(universe)
        )

    # -- internal segment tree ---------------------------------------------

    def _insert(self, priority: int, value: Any) -> None:
        self._check_priority(priority)
        if priority in self._values:
            raise ValueError(f"duplicate priority {priority}")
        self._values[priority] = value
        node, lo, hi = self._root, 0, self._universe
        node.count += 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if priority < mid:
                if node.left is None:
                    node.left = _Node()
                node, hi = node.left, mid
            else:
                if node.right is None:
                    node.right = _Node()
                node, lo = node.right, mid
            node.count += 1

    def _delete(self, priority: int) -> Any:
        value = self._values.pop(priority)
        node, lo, hi = self._root, 0, self._universe
        node.count -= 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if priority < mid:
                node, hi = node.left, mid
            else:
                node, lo = node.right, mid
            node.count -= 1
        return value

    def _kth_largest(self, k: int) -> int:
        """Priority of the element at (1-based) position ``k``."""
        node, lo, hi = self._root, 0, self._universe
        while hi - lo > 1:
            mid = (lo + hi) // 2
            right_count = node.right.count if node.right else 0
            if k <= right_count:
                node, lo = node.right, mid
            else:
                k -= right_count
                node, hi = node.left, mid
        return lo

    def _rank_from_top(self, priority: int) -> int:
        """Number of stored priorities >= ``priority`` (1-based position if
        ``priority`` itself is stored)."""
        node, lo, hi = self._root, 0, self._universe
        rank = 0
        while hi - lo > 1 and node is not None:
            mid = (lo + hi) // 2
            if priority < mid:
                rank += node.right.count if node.right else 0
                node, hi = node.left, mid
            else:
                node, lo = node.right, mid
        if node is not None:
            rank += node.count
        return rank

    def _check_priority(self, priority: int) -> None:
        if not 0 <= priority < self._universe:
            raise ValueError(
                f"priority {priority} outside universe [0, {self._universe})"
            )

    # -- Lemma 3.1 interface -------------------------------------------------

    def __len__(self) -> int:
        return self._root.count

    @property
    def universe(self) -> int:
        return self._universe

    def query(self, k: int) -> Any:
        """Return the value of the element with the k-th largest priority
        (1-based)."""
        if not 1 <= k <= len(self):
            raise IndexError(f"position {k} out of range [1, {len(self)}]")
        self._cost.charge_tree_op(self._universe)
        return self._values[self._kth_largest(k)]

    def priority_at(self, k: int) -> int:
        """Priority of the element at position ``k`` (1-based)."""
        if not 1 <= k <= len(self):
            raise IndexError(f"position {k} out of range [1, {len(self)}]")
        self._cost.charge_tree_op(self._universe)
        return self._kth_largest(k)

    def find(self, priority: int) -> tuple[Any, int]:
        """Return ``(value, position)`` of the element with ``priority``;
        the position equals the number of elements with priority >= it."""
        self._check_priority(priority)
        if priority not in self._values:
            raise KeyError(f"no element with priority {priority}")
        self._cost.charge_tree_op(self._universe)
        return self._values[priority], self._rank_from_top(priority)

    def count_ge(self, priority: int) -> int:
        """Number of stored elements with priority >= ``priority`` (which
        need not itself be stored)."""
        self._check_priority(priority)
        self._cost.charge_tree_op(self._universe)
        return self._rank_from_top(priority)

    def update_value(self, k: int, value: Any) -> None:
        """Set the value of the element at position ``k``."""
        if not 1 <= k <= len(self):
            raise IndexError(f"position {k} out of range [1, {len(self)}]")
        self._cost.charge_tree_op(self._universe)
        self._values[self._kth_largest(k)] = value

    def update_priority(self, k: int, priority: int) -> None:
        """Move the element at position ``k`` to a new (distinct) priority."""
        if not 1 <= k <= len(self):
            raise IndexError(f"position {k} out of range [1, {len(self)}]")
        self._check_priority(priority)
        old = self._kth_largest(k)
        if old == priority:
            return
        if priority in self._values:
            raise ValueError(f"duplicate priority {priority}")
        value = self._delete(old)
        self._insert(priority, value)
        self._cost.charge_tree_op(self._universe, count=2)

    def insert(self, value: Any, priority: int) -> None:
        """Add a new element (extension used by dynamic-graph callers)."""
        self._insert(priority, value)
        self._cost.charge_tree_op(self._universe)

    def delete_priority(self, priority: int) -> Any:
        """Remove and return the element with ``priority`` (extension)."""
        self._check_priority(priority)
        if priority not in self._values:
            raise KeyError(f"no element with priority {priority}")
        self._cost.charge_tree_op(self._universe)
        return self._delete(priority)

    def next_with(self, k: int, predicate: Callable[[Any], bool]) -> int:
        """Smallest position ``q >= k`` whose value satisfies ``predicate``;
        ``len(self) + 1`` if none exists (the paper's NextWith).

        Runs the exponential-search schedule of Lemma 3.1: phase ``i`` scans
        positions ``[p, p + 2^i)`` in parallel.
        """
        n = len(self)
        if k < 1:
            raise IndexError("position must be >= 1")
        logu = log2ceil(self._universe)
        pos = k
        span = 1
        while pos <= n:
            end = min(pos + span - 1, n)
            # One phase: scan positions [pos, end] "in parallel".
            self._cost.charge(
                work=(end - pos + 1) * logu, depth=logu
            )
            for q in range(pos, end + 1):
                if predicate(self._values[self._kth_largest(q)]):
                    return q
            pos = end + 1
            span *= 2
        return n + 1

    # -- iteration helpers (testing / debugging) ----------------------------

    def items_by_position(self) -> Iterator[tuple[int, int, Any]]:
        """Yield ``(position, priority, value)`` in position order."""
        for k in range(1, len(self) + 1):
            p = self._kth_largest(k)
            yield k, p, self._values[p]

    def priorities(self) -> set[int]:
        """The set of stored priorities (testing helper)."""
        return set(self._values)

"""Fault tolerance for the serving engine (WAL, checkpoints, chaos).

The batch-dynamic setting makes recovery unusually cheap to make exact:
a structure's state is fully determined by its initial graph plus the
sequence of applied batches, so durability is just *log the batches*
(:mod:`~repro.resilience.wal`), *snapshot the per-shard edge sets now and
then* (:mod:`~repro.resilience.checkpoint`), and *replay the tail* on
restart (:mod:`~repro.resilience.manager`).  The shard supervisor in
:class:`~repro.service.shard.ShardedExecutor` uses the same machinery to
restart crashed or hung workers mid-flight, and the deterministic chaos
harness (:mod:`~repro.resilience.chaos`) proves the whole loop closed by
injecting seeded faults and checking the recovered state against the
``Workload.replay`` ground truth through the differential oracle.

See ``docs/resilience.md`` for the failure model and formats.
"""

from repro.resilience.chaos import (
    CHAOS_PLAN_KINDS,
    REPLICA_PLAN_KINDS,
    ChaosConfig,
    ChaosReport,
    ChaosRunResult,
    run_chaos_campaign,
    run_chaos_once,
    run_replica_chaos_campaign,
    run_replica_chaos_once,
)
from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointError,
    CheckpointStore,
)
from repro.resilience.faults import (
    NULL_INJECTOR,
    CheckpointInterrupted,
    FaultInjector,
)
from repro.resilience.manager import (
    RecoveryManager,
    ResilienceConfig,
    SupervisionConfig,
    bootstrap_executor,
)
from repro.resilience.wal import (
    WalCorruptionError,
    WalFollower,
    WalReadResult,
    WalRecord,
    WalStreamDecoder,
    WalTruncatedError,
    WalWriter,
    corrupt_record,
    read_wal,
)

__all__ = [
    "CHAOS_PLAN_KINDS",
    "REPLICA_PLAN_KINDS",
    "ChaosConfig",
    "ChaosReport",
    "ChaosRunResult",
    "Checkpoint",
    "CheckpointError",
    "CheckpointInterrupted",
    "CheckpointStore",
    "FaultInjector",
    "NULL_INJECTOR",
    "RecoveryManager",
    "ResilienceConfig",
    "SupervisionConfig",
    "WalCorruptionError",
    "WalFollower",
    "WalReadResult",
    "WalRecord",
    "WalStreamDecoder",
    "WalTruncatedError",
    "WalWriter",
    "bootstrap_executor",
    "corrupt_record",
    "read_wal",
    "run_chaos_campaign",
    "run_chaos_once",
    "run_replica_chaos_campaign",
    "run_replica_chaos_once",
]

"""Recovery manager: one directory holding a WAL plus checkpoints.

Ties :mod:`repro.resilience.wal` and :mod:`repro.resilience.checkpoint`
into the single object the serving engine talks to:

* after every applied batch the engine calls :meth:`log_applied`;
* every ``checkpoint_interval`` commits it calls :meth:`write_checkpoint`
  with the executor's per-shard graph edge sets, which also truncates the
  absorbed WAL prefix;
* a restarting shard asks :meth:`shard_recovery_plan` for its base edge
  set and the WAL-tail sub-batches to replay (routing is re-derived with
  the deterministic :func:`~repro.service.shard.edge_shard` router, so a
  single global log serves every shard);
* a cold-started engine calls :func:`bootstrap_executor` to rebuild the
  whole sharded state before serving resumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.graph.dynamic_graph import Edge
from repro.resilience.checkpoint import Checkpoint, CheckpointStore
from repro.resilience.faults import NULL_INJECTOR, FaultInjector
from repro.resilience.wal import WalReadResult, WalRecord, WalWriter, read_wal
from repro.workloads.streams import UpdateBatch

__all__ = [
    "RecoveryManager",
    "ResilienceConfig",
    "SupervisionConfig",
    "bootstrap_executor",
]


@dataclass
class ResilienceConfig:
    """Durability knobs (see docs/resilience.md)."""

    directory: str | Path = "wal"
    checkpoint_interval: int = 64   # commits between checkpoints
    sync: bool = False              # fsync each WAL append


@dataclass
class SupervisionConfig:
    """Shard-supervision knobs used by ShardedExecutor."""

    recv_deadline: float = 5.0      # seconds to wait on a shard's reply
    max_batch_attempts: int = 2     # crash-loops on one batch → quarantine
    backoff_base: float = 0.05      # first restart delay (doubles per retry)
    backoff_cap: float = 2.0        # ceiling on the restart delay
    heartbeat_interval: float = 1.0  # background liveness-probe period


class RecoveryManager:
    """WAL + checkpoint lifecycle for one service instance."""

    def __init__(
        self,
        config: ResilienceConfig,
        injector: FaultInjector | None = None,
    ) -> None:
        self.config = config
        self.injector = injector or NULL_INJECTOR
        self.directory = Path(config.directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.wal_path = self.directory / "wal.log"
        self.checkpoints = CheckpointStore(self.directory)
        self._recovered = self._recover()
        dropped = self._recovered[1].dropped_tail_bytes
        if dropped:
            # chop the torn tail off before appending, or new records
            # would land after garbage and be unreachable to the reader
            size = self.wal_path.stat().st_size
            with open(self.wal_path, "r+b") as fh:
                fh.truncate(size - dropped)
        self._writer = WalWriter(self.wal_path, sync=config.sync)
        self.last_seq = max(
            self._recovered[1].last_seq,
            self._recovered[0].epoch if self._recovered[0] else 0,
        )
        self._since_checkpoint = len(self._recovered[1].records)

    def _recover(self) -> tuple[Checkpoint | None, WalReadResult]:
        checkpoint = self.checkpoints.load()
        wal = read_wal(self.wal_path)
        if checkpoint is not None:
            wal.records = [r for r in wal.records if r.seq > checkpoint.epoch]
        return checkpoint, wal

    # -- recovered state -----------------------------------------------------

    @property
    def checkpoint(self) -> Checkpoint | None:
        return self._recovered[0]

    @property
    def tail(self) -> list[WalRecord]:
        """WAL records newer than the checkpoint epoch."""
        return self._recovered[1].records

    @property
    def dropped_tail_bytes(self) -> int:
        """Bytes of torn/corrupt tail the WAL reader ignored on recovery."""
        return self._recovered[1].dropped_tail_bytes

    @property
    def dropped_tail_seq(self) -> int | None:
        return self._recovered[1].dropped_tail_seq

    @property
    def wal_bytes(self) -> int:
        return self._writer.bytes_written

    def base_edges(self, shard_idx: int, shards: int,
                   initial: list[Edge]) -> set[Edge]:
        """Shard's graph edges as of the checkpoint epoch (or construction)."""
        ckpt = self.checkpoint
        if ckpt is not None:
            if ckpt.shards != shards:
                raise ValueError(
                    f"checkpoint has {ckpt.shards} shard(s), executor has "
                    f"{shards}; resharding a checkpointed log is unsupported"
                )
            return set(ckpt.shard_edges[shard_idx])
        from repro.service.shard import split_by_shard

        return set(split_by_shard(initial, shards)[shard_idx])

    def shard_recovery_plan(
        self, shard_idx: int, shards: int, initial: list[Edge],
        skip_seqs: set[int] | None = None,
    ) -> tuple[set[Edge], list[UpdateBatch]]:
        """(base edges, ordered WAL-tail sub-batches) for one shard.

        Re-reads the log from disk so a live restart sees every commit,
        including ones logged after this manager object recovered.

        ``skip_seqs`` holds commit seqs whose sub-batch this shard
        *quarantined* as poison: the full batch is in the WAL (the other
        shards applied their parts), but replaying it here would re-crash
        the worker and desynchronize the supervisor's bookkeeping.  Only a
        live restart passes this; a cold restart replays the full log,
        which is both legal and the better state.
        """
        from repro.service.shard import split_by_shard

        base = self.base_edges(shard_idx, shards, initial)
        epoch = self.checkpoint.epoch if self.checkpoint else 0
        wal = read_wal(self.wal_path)
        replay: list[UpdateBatch] = []
        for rec in wal.records:
            if rec.seq <= epoch:
                continue
            if skip_seqs and rec.seq in skip_seqs:
                continue
            sub = UpdateBatch(
                insertions=split_by_shard(rec.batch.insertions,
                                          shards)[shard_idx],
                deletions=split_by_shard(rec.batch.deletions,
                                         shards)[shard_idx],
            )
            if sub.size:
                replay.append(sub)
        return base, replay

    # -- logging -------------------------------------------------------------

    def log_applied(self, seq: int, batch: UpdateBatch) -> int:
        """Append one committed batch; returns bytes written."""
        if seq <= self.last_seq:
            raise ValueError(
                f"commit seq {seq} is not past last logged {self.last_seq}"
            )
        n = self._writer.append(seq, batch,
                                mutate=self.injector.on_wal_record)
        self.last_seq = seq
        self._since_checkpoint += 1
        return n

    def should_checkpoint(self) -> bool:
        """True once ``checkpoint_interval`` commits accumulated."""
        return self._since_checkpoint >= self.config.checkpoint_interval

    def write_checkpoint(self, epoch: int,
                         shard_edges: list[set[Edge]]) -> None:
        """Persist per-shard state at ``epoch`` and truncate the WAL."""
        self.checkpoints.save(epoch, shard_edges,
                              interrupt=self.injector.on_checkpoint)
        self._writer.truncate_through(epoch)
        self._recovered = (Checkpoint(epoch, [set(s) for s in shard_edges]),
                           WalReadResult())
        self._since_checkpoint = 0

    def close(self) -> None:
        """Close the WAL writer (idempotent)."""
        self._writer.close()


def bootstrap_executor(
    spec: dict,
    shards: int,
    manager: RecoveryManager,
    processes: bool = False,
    start_method: str | None = None,
    supervision: SupervisionConfig | None = None,
    injector: FaultInjector | None = None,
):
    """Cold-start recovery: rebuild a ShardedExecutor from durable state.

    Returns ``(executor, last_seq)``.  The executor is constructed on the
    checkpointed edge sets (falling back to ``spec['edges']`` when no
    checkpoint exists) and the WAL tail is replayed through it batch by
    batch, so the caller can resume committing at ``last_seq + 1``.
    """
    from repro.service.shard import ShardedExecutor

    initial = [tuple(e) for e in spec.get("edges", ())]
    base_union: set[Edge] = set()
    for i in range(shards):
        base_union |= manager.base_edges(i, shards, initial)
    boot_spec = dict(spec)
    boot_spec["edges"] = sorted(base_union)
    executor = ShardedExecutor(
        boot_spec, shards, processes=processes, start_method=start_method,
        supervision=supervision, recovery=manager, injector=injector,
    )
    for rec in manager.tail:
        executor.apply(rec.batch, seq=rec.seq)
    return executor, manager.last_seq

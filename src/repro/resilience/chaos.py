"""Deterministic chaos harness for the serving engine.

Runs the end-to-end service (queue → batcher → supervised shards →
WAL/checkpoints) under seeded fault plans injected through the production
hooks (:mod:`repro.resilience.faults`), then asserts that the recovered
state is *exactly* the ``Workload.replay`` ground truth of the committed
batch log, cross-checked structurally through the differential oracle
(:func:`repro.oracle.verify_service`).  Every plan, seed, and batch
boundary is deterministic, so a failing campaign run is a reproducer, not
an anecdote — the same discipline arXiv:2506.16477 applies to dynamic
trees with adversarial batch schedules.

Plan catalogue (``CHAOS_PLAN_KINDS``):

``kill_pre_apply``    worker killed just before applying its sub-batch
``kill_post_apply``   worker killed right after applying (reply may be
                      consumed or lost — both must converge)
``drop_reply``        the shard's reply is lost; the deadline must fire
``delay_reply``       the reply stalls past the deadline (hung worker)
``poison_batch``      the worker dies on *every* attempt of one batch —
                      must quarantine after the crash-loop budget
``corrupt_wal_live``  a WAL record is corrupted on disk, then a worker is
                      killed — recovery must detect the damage and fall
                      back to the in-memory history
``corrupt_wal_tail``  the final WAL record is damaged, then the engine is
                      cold-restarted — the torn tail must be dropped
``checkpoint_crash``  the process "dies" between writing and publishing a
                      checkpoint — the orphan must be ignored and the WAL
                      kept un-truncated

Used by ``python -m repro.cli chaos`` and the ``chaos-smoke`` CI job.
"""

from __future__ import annotations

import os
import shutil
import signal
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.resilience.faults import CheckpointInterrupted, FaultInjector
from repro.resilience.manager import (
    RecoveryManager,
    ResilienceConfig,
    SupervisionConfig,
    bootstrap_executor,
)
from repro.resilience.wal import corrupt_record
from repro.workloads.streams import UpdateBatch, Workload, request_stream

__all__ = [
    "CHAOS_PLAN_KINDS",
    "NET_PLAN_KINDS",
    "REPLICA_PLAN_KINDS",
    "ChaosConfig",
    "ChaosInjector",
    "ChaosPlan",
    "ChaosReport",
    "ChaosRunResult",
    "recovery_latency_sweep",
    "run_chaos_campaign",
    "run_chaos_once",
    "run_net_chaos_campaign",
    "run_net_chaos_once",
    "run_replica_chaos_campaign",
    "run_replica_chaos_once",
]

CHAOS_PLAN_KINDS = (
    "kill_pre_apply",
    "kill_post_apply",
    "drop_reply",
    "delay_reply",
    "poison_batch",
    "corrupt_wal_live",
    "corrupt_wal_tail",
    "checkpoint_crash",
)

# plans whose live run must end byte-identical to the replay ground truth
_EXACT_PLANS = frozenset(CHAOS_PLAN_KINDS) - {"poison_batch"}
# plans for which the post-run cold restart is checked too
_COLD_RESTART_PLANS = frozenset({
    "kill_pre_apply", "kill_post_apply", "drop_reply", "delay_reply",
    "corrupt_wal_tail", "checkpoint_crash",
})


@dataclass
class ChaosPlan:
    """One seeded fault plan: what fires, where, and when."""

    kind: str
    shard: int
    at_seq: int               # first commit seq at which the fault may fire
    corrupt_seq: int | None = None  # for corrupt_wal_live


@dataclass
class ChaosConfig:
    n: int = 48
    m: int = 160
    requests: int = 2500
    shards: int = 2
    seeds: int = 5
    seed0: int = 0
    plans: tuple[str, ...] = CHAOS_PLAN_KINDS
    processes: bool = False
    checkpoint_interval: int = 8
    max_batch: int = 24
    recv_deadline: float = 0.25
    backoff_base: float = 0.001
    query_prob: float = 0.1
    deep_verify: bool = False
    workdir: str | None = None     # None = fresh tempdir, removed after


@dataclass
class ChaosRunResult:
    """Outcome of one seeded run under one fault plan."""

    plan: ChaosPlan
    seed: int
    fired: int = 0                 # fault injections that actually happened
    commits: int = 0
    recoveries: int = 0
    restarts: int = 0
    quarantined: int = 0
    checkpoint_failures: int = 0
    wal_fallbacks: int = 0
    recovery_latency_s: float = 0.0
    wall_seconds: float = 0.0
    divergences: list[str] = field(default_factory=list)
    # net-campaign observations (``run_net_chaos_once``); zero elsewhere
    client_retries: int = 0
    reconnects: int = 0
    dedup_hits: int = 0
    hedged_reads: int = 0
    breaker_trips: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences


@dataclass
class ChaosReport:
    config: ChaosConfig
    runs: list[ChaosRunResult] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.runs)

    @property
    def divergence_count(self) -> int:
        return sum(len(r.divergences) for r in self.runs)

    def rows(self) -> list[dict]:
        """Per-plan aggregate table (the CLI's output)."""
        by_kind: dict[str, list[ChaosRunResult]] = {}
        for r in self.runs:
            by_kind.setdefault(r.plan.kind, []).append(r)
        rows = []
        for kind in sorted(by_kind):
            rs = by_kind[kind]
            n_rec = sum(r.recoveries for r in rs)
            lat = [r.recovery_latency_s / max(r.recoveries, 1)
                   for r in rs if r.recoveries]
            rows.append({
                "plan": kind,
                "runs": len(rs),
                "fired": sum(r.fired for r in rs),
                "recoveries": n_rec,
                "restarts": sum(r.restarts for r in rs),
                "quarantined": sum(r.quarantined for r in rs),
                "mean_recovery_ms": round(
                    1000 * sum(lat) / len(lat), 2) if lat else 0.0,
                "divergences": sum(len(r.divergences) for r in rs),
            })
        return rows

    def net_rows(self) -> list[dict]:
        """Per-plan aggregate table for the wire-fault campaign (RSL2)."""
        by_kind: dict[str, list[ChaosRunResult]] = {}
        for r in self.runs:
            by_kind.setdefault(r.plan.kind, []).append(r)
        rows = []
        for kind in sorted(by_kind):
            rs = by_kind[kind]
            rows.append({
                "plan": kind,
                "runs": len(rs),
                "fired": sum(r.fired for r in rs),
                "commits": sum(r.commits for r in rs),
                "retries": sum(r.client_retries for r in rs),
                "reconnects": sum(r.reconnects for r in rs),
                "dedup_hits": sum(r.dedup_hits for r in rs),
                "hedged_reads": sum(r.hedged_reads for r in rs),
                "breaker_trips": sum(r.breaker_trips for r in rs),
                "worker_restarts": sum(r.restarts for r in rs),
                "replica_rebuilds": sum(r.recoveries for r in rs),
                "divergences": sum(len(r.divergences) for r in rs),
            })
        return rows


class ChaosInjector(FaultInjector):
    """Executes one :class:`ChaosPlan` through the production hooks."""

    def __init__(self, plan: ChaosPlan) -> None:
        self.plan = plan
        self.fired = 0
        self.restarts_seen = 0

    def _due(self, shard: int, seq: int | None) -> bool:
        return (shard == self.plan.shard and seq is not None
                and seq >= self.plan.at_seq and self.fired == 0)

    def on_apply(self, shard: int, when: str, seq: int | None):
        """Kill the target worker pre/post apply per the plan."""
        kind = self.plan.kind
        if kind == "kill_pre_apply" and when == "pre" \
                and self._due(shard, seq):
            self.fired += 1
            return "kill"
        if kind == "kill_post_apply" and when == "post" \
                and self._due(shard, seq):
            self.fired += 1
            return "kill"
        if kind == "corrupt_wal_live" and when == "pre" \
                and self._due(shard, seq):
            self.fired += 1
            return "kill"
        return None

    def _poison(self, shard: int, seq: int | None) -> bool:
        # latch onto the first eligible seq we ever see, then make every
        # attempt of that one batch fail — on_recv runs on retries too
        # (unlike on_apply), so the supervisor's crash-loop budget drains
        if shard != self.plan.shard or seq is None:
            return False
        latched = getattr(self, "_latched", None)
        if latched is None:
            if seq < self.plan.at_seq:
                return False
            self._latched = latched = seq
        return seq == latched

    def on_recv(self, shard: int, seq: int | None):
        """Drop or delay the target shard's reply per the plan."""
        if self.plan.kind == "poison_batch" and self._poison(shard, seq):
            self.fired += 1
            return "drop"
        if self.plan.kind == "drop_reply" and self._due(shard, seq):
            self.fired += 1
            return "drop"
        if self.plan.kind == "delay_reply" and self._due(shard, seq):
            self.fired += 1
            return ("delay", 0.3)
        return None

    def on_wal_record(self, seq: int, data: bytes) -> bytes:
        """Flip a payload byte of the plan's target WAL record."""
        if (self.plan.kind == "corrupt_wal_live"
                and seq == self.plan.corrupt_seq):
            # flip the final payload byte; the header (and its CRC) stay,
            # so the reader sees a checksum mismatch mid-log later
            return data[:-1] + bytes([data[-1] ^ 0xFF])
        return data

    def on_checkpoint(self, epoch: int) -> None:
        """Simulate a crash between checkpoint tmp-write and publish."""
        if self.plan.kind == "checkpoint_crash" and self.fired == 0:
            self.fired += 1
            raise CheckpointInterrupted(
                f"simulated crash publishing checkpoint epoch={epoch}"
            )

    def on_restart(self, shard: int, attempt: int) -> None:
        """Count worker restarts (observation only)."""
        self.restarts_seen += 1


def _make_plan(kind: str, rng: np.random.Generator,
               shards: int) -> ChaosPlan:
    at_seq = int(rng.integers(3, 9))
    plan = ChaosPlan(kind=kind, shard=int(rng.integers(0, shards)),
                     at_seq=at_seq)
    if kind == "corrupt_wal_live":
        plan.corrupt_seq = max(1, at_seq - 2)
    return plan


def run_chaos_once(cfg: ChaosConfig, plan: ChaosPlan, seed: int,
                   workdir: str | Path) -> ChaosRunResult:
    """One seeded service run under one fault plan (see module docstring)."""
    from repro.oracle.service import verify_service
    from repro.service.admission import AdmissionConfig
    from repro.service.batcher import BatcherConfig
    from repro.service.driver import SimClock
    from repro.service.engine import ServiceConfig, SpannerService
    from repro.service.shard import ShardedExecutor

    t0 = time.perf_counter()
    result = ChaosRunResult(plan=plan, seed=seed)
    rundir = Path(workdir) / f"{plan.kind}-{seed}"
    initial_edges, requests = request_stream(
        cfg.n, cfg.m, cfg.requests, seed=seed,
        query_prob=cfg.query_prob,
    )
    spec = {
        "kind": "spanner", "n": cfg.n, "edges": initial_edges,
        "seed": seed + 1000, "k": 2,
        "base_capacity": max(16, cfg.m // max(1, 4 * cfg.shards)),
    }
    injector = ChaosInjector(plan)
    supervision = SupervisionConfig(
        recv_deadline=cfg.recv_deadline,
        backoff_base=cfg.backoff_base,
        backoff_cap=max(0.02, cfg.backoff_base * 8),
    )
    # the tail-corruption plan damages the *last* WAL record post-run, so
    # its log must never be truncated away by a checkpoint mid-run
    interval = (10**9 if plan.kind == "corrupt_wal_tail"
                else cfg.checkpoint_interval)
    manager = RecoveryManager(
        ResilienceConfig(directory=rundir, checkpoint_interval=interval),
        injector=injector,
    )
    executor = ShardedExecutor(
        spec, cfg.shards, processes=cfg.processes,
        supervision=supervision, recovery=manager, injector=injector,
    )
    clock = SimClock()
    service = SpannerService(
        executor,
        config=ServiceConfig(
            batcher=BatcherConfig(max_batch=cfg.max_batch, max_delay=0.002),
            admission=AdmissionConfig(max_pending=100 * cfg.max_batch),
        ),
        clock=clock.now,
        recovery=manager,
    )
    committed: list[tuple[int, UpdateBatch]] = []
    service.commit_hooks.append(lambda s, b: committed.append((s, b)))

    for op, payload in requests:
        clock.advance(2e-5)
        service.pump()
        if op == "query":
            service.query("distance", payload)
        else:
            service.submit_update(op, *payload)
    service.flush()

    snap = service.metrics.snapshot()
    result.fired = injector.fired
    result.commits = len(committed)
    result.recoveries = snap.get("recoveries", 0)
    result.restarts = snap.get("shard_restarts", 0)
    result.quarantined = snap.get("quarantined_batches", 0)
    result.checkpoint_failures = snap.get("checkpoint_failures", 0)
    result.wal_fallbacks = snap.get("wal_fallbacks", 0)
    result.recovery_latency_s = (
        snap.get("recovery_latency_s.mean", 0.0)
        * snap.get("recovery_latency_s.count", 0)
    )

    def diverge(msg: str) -> None:
        result.divergences.append(f"{plan.kind} seed={seed}: {msg}")

    # ground truth: replaying the committed batch log from the initial graph
    truth = set(initial_edges)
    wl = Workload(cfg.n, list(initial_edges), [b for _, b in committed])
    try:
        for _, truth in wl.replay():
            pass
    except ValueError as exc:
        diverge(f"committed log is not sequentially legal: {exc}")

    if injector.fired == 0 and plan.kind != "corrupt_wal_tail":
        # corrupt_wal_tail injects nothing during the run: the damage is
        # done to the finished log below, before the cold restart
        diverge("fault plan never fired (plan/seed mismatch)")
    if plan.kind in _EXACT_PLANS:
        live = executor.graph_union()
        if live != truth:
            diverge(f"graph union != replay truth "
                    f"({len(live ^ truth)} edge(s) differ)")
        if service.graph_edges() != truth:
            diverge("coalescing-queue view != replay truth")
        verification = verify_service(service, executor,
                                      deep=cfg.deep_verify)
        if not verification.ok:
            diverge(f"oracle: {verification}")
        if plan.kind not in ("checkpoint_crash", "corrupt_wal_tail") \
                and result.recoveries == 0:
            diverge("no recovery was recorded despite an injected fault")
    else:  # poison_batch: liveness + quarantine, not equivalence
        if result.quarantined == 0:
            diverge("poison batch was never quarantined")
        if not executor.quarantined:
            diverge("executor kept no quarantine record")
        # the engine must still be serving: a fresh gather answers
        if not isinstance(executor.gather_edges(), set):
            diverge("gather failed after quarantine")  # pragma: no cover
    if plan.kind == "checkpoint_crash" and result.checkpoint_failures == 0:
        diverge("mid-checkpoint crash never happened")
    if plan.kind == "corrupt_wal_live" and result.wal_fallbacks == 0 \
            and result.recoveries > 0:
        diverge("corrupt WAL never forced the in-memory fallback")

    # crash-style shutdown: no final flush/checkpoint, workers just die
    executor.close()
    manager.close()

    if plan.kind in _COLD_RESTART_PLANS and result.ok:
        expected = truth
        if plan.kind == "corrupt_wal_tail" and committed:
            last_seq = committed[-1][0]
            if not corrupt_record(manager.wal_path, last_seq):
                diverge(f"could not corrupt WAL record seq={last_seq}")
            # the damaged tail record must be dropped: expected state is
            # the replay of every committed batch but the last
            expected = set(initial_edges)
            prefix = Workload(cfg.n, list(initial_edges),
                              [b for _, b in committed[:-1]])
            for _, expected in prefix.replay():
                pass
        manager2 = RecoveryManager(ResilienceConfig(directory=rundir))
        try:
            ex2, _last = bootstrap_executor(
                spec, cfg.shards, manager2, processes=False,
                supervision=supervision,
            )
            rebuilt = ex2.graph_union()
            if rebuilt != expected:
                diverge(f"cold restart diverged "
                        f"({len(rebuilt ^ expected)} edge(s) differ)")
            ex2.close()
        finally:
            manager2.close()

    result.wall_seconds = time.perf_counter() - t0
    return result


def run_chaos_campaign(cfg: ChaosConfig, log=None) -> ChaosReport:
    """Sweep every configured plan × seed; returns the full report."""
    t0 = time.perf_counter()
    report = ChaosReport(config=cfg)
    workdir = cfg.workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    cleanup = cfg.workdir is None
    try:
        for kind in cfg.plans:
            for s in range(cfg.seeds):
                seed = cfg.seed0 + s
                # NB: not hash() — PYTHONHASHSEED would break determinism
                kind_salt = sum(kind.encode()) % 1000
                rng = np.random.default_rng(seed * 7919 + kind_salt)
                plan = _make_plan(kind, rng, cfg.shards)
                run = run_chaos_once(cfg, plan, seed, workdir)
                report.runs.append(run)
                if log is not None:
                    status = "ok" if run.ok else "DIVERGED"
                    log(f"{kind} seed={seed} shard={plan.shard} "
                        f"at_seq={plan.at_seq}: {status} "
                        f"(fired={run.fired}, recoveries={run.recoveries})")
    finally:
        if cleanup:
            shutil.rmtree(workdir, ignore_errors=True)
    report.wall_seconds = time.perf_counter() - t0
    return report


# -- replica fault plans ------------------------------------------------------

#: Log-shipping replica fault catalogue (``python -m repro.cli chaos
#: --replica``):
#:
#: ``replica_crash_catchup``  a replica dies partway through catch-up; a
#:                            freshly bootstrapped replacement replaying
#:                            the shipped log from byte 0 must converge to
#:                            the primary's *exact* state
#: ``replica_lag``            the replica's poll loop is suspended while
#:                            the primary keeps committing — the lag gauge
#:                            must rise and every read must carry the
#:                            ``stale`` tag until catch-up clears both
REPLICA_PLAN_KINDS = ("replica_crash_catchup", "replica_lag")

NET_PLAN_KINDS = (
    "net_partition",    # black-hole the client link; timed heal
    "net_latency",      # per-chunk delay window; hedged reads kick in
    "net_torn_frame",   # cut frames mid-length on client + replica links
    "net_reset",        # hard RST storms on client and replica links
    "net_worker_kill",  # SIGKILL a pool worker mid-dispatch under traffic
)


class _LocalShippingClient:
    """Duck-typed stand-in for :class:`repro.net.client.NetClient`.

    Serves ``sync`` / ``wal_fetch`` straight from a primary tenant in this
    process — no sockets — so replica chaos plans are deterministic and
    exercise exactly the shipping semantics (chunking, torn mid-record
    fetches, cursors), not TCP.
    """

    def __init__(self, tenant) -> None:
        self._tenant = tenant

    def sync_info(self) -> dict:
        return self._tenant.sync_info()

    def wal_fetch(self, offset: int,
                  max_bytes: int = 1 << 20) -> tuple[bytes, int, int]:
        log = self._tenant.replication
        return log.read(offset, max_bytes), log.size, log.last_seq

    def close(self) -> None:
        pass


def run_replica_chaos_once(cfg: ChaosConfig, kind: str,
                           seed: int) -> ChaosRunResult:
    """One seeded log-shipping run under one replica fault plan."""
    from repro.net.replica import LogShippingReplica, ReplicaConfig
    from repro.net.tenants import TenantConfig, TenantManager
    from repro.oracle.service import verify_replica

    t0 = time.perf_counter()
    kind_salt = sum(kind.encode()) % 1000
    rng = np.random.default_rng(seed * 7919 + kind_salt)
    plan = ChaosPlan(kind=kind, shard=0, at_seq=int(rng.integers(3, 9)))
    result = ChaosRunResult(plan=plan, seed=seed)
    initial_edges, requests = request_stream(
        cfg.n, cfg.m, cfg.requests, seed=seed, query_prob=0.0,
    )
    spec = {"kind": "spanner", "n": cfg.n, "edges": initial_edges,
            "seed": seed + 1000, "k": 2}
    committed: list[tuple[int, UpdateBatch]] = []
    # tiny seeded fetch chunks tear records mid-boundary on purpose: the
    # stream decoder must reassemble them exactly like a torn WAL tail
    chunk = int(rng.integers(8, 96))

    def diverge(msg: str) -> None:
        result.divergences.append(f"{kind} seed={seed}: {msg}")

    def make_replica(primary_tenant) -> LogShippingReplica:
        return LogShippingReplica(
            _LocalShippingClient(primary_tenant),
            ReplicaConfig(chunk_bytes=chunk),
        )

    with TenantManager() as tenants:
        tenant = tenants.create(TenantConfig(
            name="default", spec=spec, shards=cfg.shards, autostart=False,
        ))
        service = tenant.service
        service.commit_hooks.append(lambda s, b: committed.append((s, b)))
        half = len(requests) // 2
        for op, (u, v) in requests[:half]:
            service.submit_update(op, u, v)
        service.flush()

        replica = make_replica(tenant)
        if kind == "replica_crash_catchup":
            partial = int(rng.integers(1, 6))
            replica.catch_up(max_records=partial)
            result.fired = 1
            # crash mid-catch-up: the half-caught-up replica is gone; a
            # replacement bootstraps fresh and replays the log from byte 0
            replica.close()
            replica = make_replica(tenant)
            result.recoveries = 1

        for op, (u, v) in requests[half:]:
            service.submit_update(op, u, v)
        service.flush()

        if kind == "replica_lag":
            # the poll loop was suspended this whole window; the replica
            # must know it is behind and say so on every read
            replica.note_primary_seq(service.committed_seq)
            result.fired = 1
            if replica.lag <= 0:
                diverge("no lag observed during the suspended poll window")
            gauge = replica.service.metrics.gauge(
                "replica_lag_commits").value
            if gauge <= 0:
                diverge("replica_lag_commits gauge was not raised")
            info = replica.service.query_info("size")
            if not info.stale:
                diverge("lagging replica served a read without the "
                        "stale tag")

        replica.catch_up()
        result.commits = len(committed)
        if replica.lag != 0:
            diverge(f"lag is {replica.lag} after full catch-up")
        info = replica.service.query_info("size")
        if info.stale:
            diverge("caught-up replica still tags reads stale")

        truth = set(initial_edges)
        wl = Workload(cfg.n, list(initial_edges), [b for _, b in committed])
        try:
            for _, truth in wl.replay():
                pass
        except ValueError as exc:
            diverge(f"committed log is not sequentially legal: {exc}")
        if replica.service.graph_edges() != truth:
            diverge("replica graph view != replay ground truth")
        verification = verify_replica(service, replica.service)
        if not verification.ok:
            diverge(f"oracle: {verification}")
        replica.close()

    result.wall_seconds = time.perf_counter() - t0
    return result


def run_replica_chaos_campaign(cfg: ChaosConfig, log=None) -> ChaosReport:
    """Sweep the replica fault plans × seeds (``cli chaos --replica``)."""
    t0 = time.perf_counter()
    report = ChaosReport(config=cfg)
    kinds = tuple(p for p in cfg.plans if p in REPLICA_PLAN_KINDS) \
        or REPLICA_PLAN_KINDS
    for kind in kinds:
        for s in range(cfg.seeds):
            seed = cfg.seed0 + s
            run = run_replica_chaos_once(cfg, kind, seed)
            report.runs.append(run)
            if log is not None:
                status = "ok" if run.ok else "DIVERGED"
                log(f"{kind} seed={seed}: {status} "
                    f"(commits={run.commits}, "
                    f"recoveries={run.recoveries})")
    report.wall_seconds = time.perf_counter() - t0
    return report


def _net_pool_kernel(payload, shared, cost=None):
    """Side-computation kernel for the worker-kill plan.

    Module-level so the dispatch pickle can find it in forked workers;
    deliberately slow enough (``sleep_s``) that a SIGKILL reliably lands
    mid-dispatch.
    """
    time.sleep(payload["sleep_s"])
    return sorted(x * x for x in payload["items"])


def _kill_quietly(pid: int) -> None:
    try:
        os.kill(pid, signal.SIGKILL)
    except ProcessLookupError:
        pass


def _pool_kill_exercise(rng: np.random.Generator, result: ChaosRunResult,
                        diverge) -> None:
    """SIGKILL one pool worker mid-dispatch; supervision must requeue the
    lost task, fork a replacement, and return byte-identical results."""
    from repro.parallel.pool import ProcessPoolBackend

    pool = ProcessPoolBackend(2, restart_backoff_s=0.01)
    try:
        chunks = [{"items": list(range(8 * c, 8 * c + 8)), "sleep_s": 0.02}
                  for c in range(8)]
        expect = [sorted(x * x for x in ch["items"]) for ch in chunks]
        victim = pool._procs[int(rng.integers(0, pool.workers))]
        timer = threading.Timer(float(rng.uniform(0.02, 0.06)),
                                _kill_quietly, args=(victim.pid,))
        timer.start()
        for rnd in range(2):
            vals = [r.value
                    for r in pool.map_chunks(_net_pool_kernel, chunks)]
            if vals != expect:
                diverge(f"pool round {rnd} diverged after worker kill")
        timer.join()
        vals = [r.value for r in pool.map_chunks(_net_pool_kernel, chunks)]
        if vals != expect:
            diverge("pool post-kill round diverged")
        if pool.worker_restarts_total < 1:
            diverge("worker kill produced no supervised restart")
        result.restarts += pool.worker_restarts_total
    finally:
        pool.close()


def run_net_chaos_once(cfg: ChaosConfig, kind: str,
                       seed: int) -> ChaosRunResult:
    """One seeded client/server/replica run under one wire-fault plan.

    Topology: a real :class:`~repro.net.server.ThreadedServer` primary, a
    :class:`~repro.net.faultproxy.FaultProxy` on the client link (and a
    second one on the replica link for the torn/reset plans), a
    :class:`~repro.net.resilient.ResilientClient` issuing a seeded toggle
    workload through the proxy, and a log-shipping replica.

    The client tracks the *expected* edge set from its own acked submits;
    at the end the full replication log is fetched from byte 0, replayed
    through :class:`~repro.workloads.streams.Workload` (which raises on
    any sequentially-illegal — i.e. double- or lost-applied — op), and
    the replay ground truth must equal the client's expectation, the
    primary's live edge set, and the replica's state.
    """
    from repro.net.client import NetClient
    from repro.net.faultproxy import FaultProxy
    from repro.net.replica import LogShippingReplica, ReplicaConfig
    from repro.net.resilient import ResilientClient, RetryPolicy
    from repro.net.server import NetServerConfig, ThreadedServer
    from repro.net.tenants import TenantConfig, TenantManager
    from repro.oracle.service import verify_replica
    from repro.resilience.wal import WalStreamDecoder
    from repro.service.admission import AdmissionConfig
    from repro.service.batcher import BatcherConfig

    t0 = time.perf_counter()
    kind_salt = sum(kind.encode()) % 1000
    rng = np.random.default_rng(seed * 7919 + kind_salt)
    n_req = cfg.requests
    plan = ChaosPlan(kind=kind, shard=0,
                     at_seq=int(rng.integers(3, 9)))
    result = ChaosRunResult(plan=plan, seed=seed)

    def diverge(msg: str) -> None:
        result.divergences.append(f"{kind} seed={seed}: {msg}")

    initial_edges, _ = request_stream(cfg.n, cfg.m, 1, seed=seed,
                                      query_prob=0.0)
    spec = {"kind": "spanner", "n": cfg.n, "edges": initial_edges,
            "seed": seed + 1000, "k": 2}
    universe = [(a, b) for a in range(cfg.n) for b in range(a + 1, cfg.n)]
    expected: set[tuple[int, int]] = {tuple(e) for e in initial_edges}

    # all seeded draws happen up front so the schedule never depends on
    # runtime interleaving
    fire_at = sorted(int(x) for x in rng.integers(
        max(2, n_req // 5), max(3, 4 * n_req // 5), size=3))
    for i in range(1, 3):               # force distinct, ordered indices
        if fire_at[i] <= fire_at[i - 1]:
            fire_at[i] = fire_at[i - 1] + 3
    heal_delay = float(rng.uniform(0.25, 0.5))
    latency_s = float(rng.uniform(0.025, 0.04))
    latency_end = fire_at[0] + int(rng.integers(25, 45))
    flush_every = int(rng.integers(16, 48))
    read_every = 10
    rep_chunk = int(rng.integers(96, 512))

    replicated = kind in ("net_partition", "net_latency")
    proxied_replica = kind in ("net_torn_frame", "net_reset")
    policy = RetryPolicy(
        deadline_s=20.0, attempt_timeout_s=0.5,
        backoff_base_s=0.01, backoff_cap_s=0.25,
        breaker_threshold=3, breaker_reset_s=0.1,
        hedge_after_s=(0.02 if kind == "net_latency" else None),
        seed=seed * 7919 + kind_salt,
    )

    with TenantManager() as tenants:
        tenant = tenants.create(TenantConfig(
            name="default", spec=spec, shards=cfg.shards,
            batcher=BatcherConfig(max_batch=cfg.max_batch, max_delay=0.002),
            admission=AdmissionConfig(max_pending=100 * cfg.max_batch),
            autostart=False,
        ))
        with ThreadedServer(tenants, NetServerConfig()) as srv, \
                FaultProxy(srv.host, srv.port) as proxy, \
                FaultProxy(srv.host, srv.port) as rproxy:
            rep_host, rep_port = ((rproxy.host, rproxy.port)
                                  if proxied_replica
                                  else (srv.host, srv.port))

            def make_replica() -> LogShippingReplica:
                return LogShippingReplica(
                    NetClient(rep_host, rep_port),
                    ReplicaConfig(chunk_bytes=rep_chunk),
                )

            replica = make_replica()
            rsrv = (ThreadedServer(replica.tenants,
                                   NetServerConfig(read_only=True)).start()
                    if replicated else None)

            def rebuild_replica() -> None:
                nonlocal replica
                replica.close()
                replica = make_replica()
                result.recoveries += 1

            def sync_replica() -> None:
                try:
                    replica.catch_up()
                except Exception:
                    rebuild_replica()
                    replica.catch_up()

            client = ResilientClient(
                proxy.host, proxy.port,
                replicas=([(rsrv.host, rsrv.port)] if rsrv else ()),
                policy=policy,
                client_id=f"chaos-{kind}-{seed}",
            )
            heal_timer: threading.Timer | None = None
            try:
                for i in range(n_req):
                    if kind == "net_partition" and i == fire_at[0]:
                        proxy.partition()
                        result.fired += 1
                        heal_timer = threading.Timer(heal_delay, proxy.heal)
                        heal_timer.start()
                    elif kind == "net_latency":
                        if i == fire_at[0]:
                            proxy.set_latency(latency_s)
                            result.fired += 1
                        elif i == latency_end:
                            proxy.set_latency(0.0)
                    elif kind == "net_torn_frame":
                        if i == fire_at[0]:
                            # tear the next ACK: the op commits but the
                            # client never hears — the retry must dedup
                            proxy.tear_next("s2c")
                            result.fired += 1
                        elif i == fire_at[1]:
                            proxy.tear_next("c2s", rst=True)
                            result.fired += 1
                        elif i == fire_at[2]:
                            rproxy.tear_next("s2c")
                            result.fired += 1
                    elif kind == "net_reset":
                        if i in (fire_at[0], fire_at[1]):
                            proxy.reset_all()
                            result.fired += 1
                        elif i == fire_at[2]:
                            rproxy.reset_all()
                            result.fired += 1
                    elif kind == "net_worker_kill" and i == fire_at[0]:
                        result.fired += 1
                        _pool_kill_exercise(rng, result, diverge)

                    a, b = universe[int(rng.integers(len(universe)))]
                    op = "delete" if (a, b) in expected else "insert"
                    info = client.submit_info(op, a, b)
                    status = info.get("status")
                    if status not in ("accepted", "coalesced_dedup",
                                      "coalesced_cancel"):
                        diverge(f"unexpected submit outcome {status!r} "
                                f"for {op} ({a}, {b})")
                    expected.symmetric_difference_update({(a, b)})
                    if (i + 1) % flush_every == 0:
                        client.flush()
                        sync_replica()
                    if (i + 1) % read_every == 0:
                        client.query_info("size")
            except Exception as exc:      # noqa: BLE001 - recorded verbatim
                diverge(f"workload died at request {i}: {exc!r}")
            finally:
                if heal_timer is not None:
                    heal_timer.cancel()
                proxy.clear_faults()
                proxy.heal()
                rproxy.clear_faults()
                rproxy.heal()

            # settle over healed links, then verify everything against the
            # shipped log
            try:
                client.flush()
                sync_replica()
            except Exception as exc:      # noqa: BLE001
                diverge(f"post-fault settle failed: {exc!r}")

            direct = NetClient(srv.host, srv.port)
            decoder = WalStreamDecoder()
            records = []
            while True:
                chunk, _log_size, _last = direct.wal_fetch(
                    decoder.offset + decoder.pending_bytes, 1 << 16)
                if not chunk:
                    break
                records.extend(decoder.feed(chunk))
            result.commits = len(records)
            truth = {tuple(e) for e in initial_edges}
            wl = Workload(cfg.n, [tuple(e) for e in initial_edges],
                          [r.batch for r in records])
            try:
                for _, truth in wl.replay():
                    pass
            except ValueError as exc:
                diverge("shipped log is not sequentially legal "
                        f"(double/lost apply): {exc}")
            if truth != expected:
                diverge("log-replay truth != acked-client expectation "
                        f"({len(truth ^ expected)} edge(s) differ)")
            live = direct.edges()
            if live != truth:
                diverge(f"primary live edges != log replay "
                        f"({len(live ^ truth)} differ)")
            if replica.service.graph_edges() != truth:
                diverge("replica state != log replay")
            verification = verify_replica(tenant.service, replica.service)
            if not verification.ok:
                diverge(f"oracle: {verification}")
            direct.close()

            # plan-specific liveness assertions: the fault must actually
            # have exercised the resilience path it targets
            if kind == "net_torn_frame" and tenant.idempotency.dedup_hits < 1:
                diverge("torn ACK was not absorbed by idempotency dedup")
            if kind == "net_partition" and client.retries < 1:
                diverge("partition produced no client retries")
            if kind == "net_reset" and client.reconnects < 1:
                diverge("resets produced no client reconnects")
            if kind == "net_latency" and client.hedged < 1:
                diverge("latency window produced no hedged reads")

            result.client_retries = client.retries
            result.reconnects = client.reconnects
            result.dedup_hits = tenant.idempotency.dedup_hits
            result.hedged_reads = client.hedged
            result.breaker_trips = client.breaker_trips
            client.close()
            if rsrv is not None:
                rsrv.stop()
            replica.close()

    result.wall_seconds = time.perf_counter() - t0
    return result


def run_net_chaos_campaign(cfg: ChaosConfig, log=None) -> ChaosReport:
    """Sweep the wire-fault plans × seeds (``cli chaos --net``)."""
    t0 = time.perf_counter()
    report = ChaosReport(config=cfg)
    kinds = tuple(p for p in cfg.plans if p in NET_PLAN_KINDS) \
        or NET_PLAN_KINDS
    for kind in kinds:
        for s in range(cfg.seeds):
            seed = cfg.seed0 + s
            run = run_net_chaos_once(cfg, kind, seed)
            report.runs.append(run)
            if log is not None:
                status = "ok" if run.ok else "DIVERGED"
                log(f"{kind} seed={seed}: {status} "
                    f"(commits={run.commits}, retries={run.client_retries}, "
                    f"dedup={run.dedup_hits})")
    report.wall_seconds = time.perf_counter() - t0
    return report


def recovery_latency_sweep(
    cfg: ChaosConfig, intervals=(4, 16, 64), runs: int = 3
) -> list[dict]:
    """RSL1: mean shard-recovery latency vs checkpoint interval.

    Longer intervals mean longer WAL tails to replay on restart, so
    recovery latency should grow with the interval — the table quantifies
    the durability-overhead/recovery-time trade.
    """
    rows = []
    for interval in intervals:
        sub = ChaosConfig(
            **{**cfg.__dict__, "checkpoint_interval": interval,
               "plans": ("kill_pre_apply",), "seeds": runs},
        )
        report = run_chaos_campaign(sub)
        recs = sum(r.recoveries for r in report.runs)
        lat = sum(r.recovery_latency_s for r in report.runs)
        rows.append({
            "checkpoint_interval": interval,
            "runs": len(report.runs),
            "recoveries": recs,
            "mean_recovery_ms": round(1000 * lat / recs, 2) if recs else 0.0,
            "divergences": report.divergence_count,
        })
    return rows

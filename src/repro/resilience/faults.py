"""Fault-injection hooks threaded through the serving engine.

The supervisor, WAL, and checkpoint code each consult a
:class:`FaultInjector` at the moments where real deployments fail:
immediately before/after a shard applies a sub-batch, while the parent
waits on a shard's reply, while a WAL record is encoded, and between
writing and publishing a checkpoint.  The default injector does nothing;
the chaos harness (:mod:`repro.resilience.chaos`) substitutes seeded
plans.  Keeping the hooks in the production path (rather than
monkey-patching) is what makes chaos runs deterministic and cheap.
"""

from __future__ import annotations

__all__ = [
    "CheckpointInterrupted",
    "FaultInjector",
    "NULL_INJECTOR",
]


class CheckpointInterrupted(RuntimeError):
    """Raised by an injector to simulate a crash mid-checkpoint."""


class FaultInjector:
    """No-op base class; override the hooks you want to fire.

    Hooks return *actions* the caller executes, so the injector never
    touches engine internals directly:

    * :meth:`on_apply` → ``None`` or ``"kill"`` (kill the shard's worker
      at that point);
    * :meth:`on_recv` → ``None``, ``"drop"`` (discard the shard's reply so
      the deadline expires), or ``("delay", seconds)`` (stall past the
      deadline);
    * :meth:`on_wal_record` → the bytes to actually write (corruption);
    * :meth:`on_checkpoint` → may raise :class:`CheckpointInterrupted`;
    * :meth:`on_restart` → pure observation (tests assert degraded-mode
      behaviour from inside the recovery window).
    """

    def on_apply(self, shard: int, when: str, seq: int | None):
        """Called with ``when`` in ``("pre", "post")`` around each apply."""
        return None

    def on_recv(self, shard: int, seq: int | None):
        """Called before the parent waits for shard's reply."""
        return None

    def on_wal_record(self, seq: int, data: bytes) -> bytes:
        """Called with each encoded WAL record before it hits disk."""
        return data

    def on_checkpoint(self, epoch: int) -> None:
        """Called between the checkpoint tmp-write and its publish."""

    def on_restart(self, shard: int, attempt: int) -> None:
        """Called after a shard worker has been restarted."""


NULL_INJECTOR = FaultInjector()

"""Write-ahead log of applied update batches.

The serving engine's state is fully determined by its initial graph plus
the sequence of coalesced batches it applied (the structures are seeded
Las Vegas — same inputs, same state).  Persisting that sequence is
therefore a complete recovery story: a crashed worker, or the whole
engine, rebuilds by replaying the log on top of the last checkpoint.

Format (all integers little-endian)::

    header   8 bytes   b"RWAL1\\x00\\x00\\x00"
    record   [u32 length][u32 crc32(payload)][payload]
    payload  [u64 seq][u32 n_ins][u32 n_del][u32 u, u32 v] * (n_ins+n_del)

Failure semantics, chosen to match what a ``kill -9`` can actually
produce:

* a record whose bytes run past end-of-file is a **torn tail** — the
  writer died mid-append; the reader drops it and reports how many bytes
  it ignored;
* a checksum mismatch on the **final** record is treated the same way
  (the tail was partially overwritten, e.g. by a crash during append);
* a checksum mismatch on a **mid-log** record means the log itself was
  damaged after the fact; that is not survivable by truncation, so the
  reader raises :class:`WalCorruptionError` naming the sequence number;
* sequence numbers must be strictly increasing; a regression raises
  :class:`WalCorruptionError` too.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.workloads.streams import UpdateBatch

__all__ = [
    "WAL_MAGIC",
    "WalCorruptionError",
    "WalFollower",
    "WalReadResult",
    "WalRecord",
    "WalStreamDecoder",
    "WalTruncatedError",
    "WalWriter",
    "corrupt_record",
    "decode_record",
    "encode_record",
    "read_wal",
]

WAL_MAGIC = b"RWAL1\x00\x00\x00"
_HEADER = struct.Struct("<II")          # length, crc32
_PAYLOAD_FIXED = struct.Struct("<QII")  # seq, n_ins, n_del
_EDGE = struct.Struct("<II")


class WalCorruptionError(RuntimeError):
    """A WAL record failed validation in a way truncation cannot repair."""

    def __init__(self, message: str, seq: int | None = None) -> None:
        super().__init__(message)
        self.seq = seq


class WalTruncatedError(WalCorruptionError):
    """The log shrank under a live follower (it was rewritten/truncated).

    A follower's byte offset is only meaningful against an append-only
    stream; once :meth:`WalWriter.truncate_through` rewrites the file the
    follower must be discarded and the consumer re-bootstrapped."""


@dataclass(frozen=True)
class WalRecord:
    """One logged batch: its commit sequence number plus the batch."""

    seq: int
    batch: UpdateBatch


@dataclass
class WalReadResult:
    """Everything :func:`read_wal` recovered from a log file."""

    records: list[WalRecord] = field(default_factory=list)
    dropped_tail_bytes: int = 0   # torn/corrupt tail ignored by the reader
    dropped_tail_seq: int | None = None  # seq of the dropped record, if parsed

    @property
    def last_seq(self) -> int:
        return self.records[-1].seq if self.records else 0


def encode_record(seq: int, batch: UpdateBatch) -> bytes:
    """Serialize one record (header + checksummed payload)."""
    parts = [_PAYLOAD_FIXED.pack(seq, len(batch.insertions),
                                 len(batch.deletions))]
    for u, v in batch.insertions:
        parts.append(_EDGE.pack(u, v))
    for u, v in batch.deletions:
        parts.append(_EDGE.pack(u, v))
    payload = b"".join(parts)
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_record(payload: bytes) -> WalRecord:
    """Parse a record payload (already checksum-verified)."""
    seq, n_ins, n_del = _PAYLOAD_FIXED.unpack_from(payload, 0)
    need = _PAYLOAD_FIXED.size + (n_ins + n_del) * _EDGE.size
    if len(payload) != need:
        raise WalCorruptionError(
            f"record seq={seq}: payload is {len(payload)} bytes, "
            f"edge counts imply {need}", seq=seq,
        )
    off = _PAYLOAD_FIXED.size
    edges = [_EDGE.unpack_from(payload, off + i * _EDGE.size)
             for i in range(n_ins + n_del)]
    return WalRecord(seq, UpdateBatch(
        insertions=[(u, v) for u, v in edges[:n_ins]],
        deletions=[(u, v) for u, v in edges[n_ins:]],
    ))


class WalWriter:
    """Append-only writer; creates the file (with magic) on first use."""

    def __init__(self, path: str | Path, sync: bool = False) -> None:
        self.path = Path(path)
        self.sync = sync
        new = not self.path.exists() or self.path.stat().st_size == 0
        self._fh = open(self.path, "ab")
        if new:
            self._fh.write(WAL_MAGIC)
            self._fh.flush()
        self.bytes_written = self.path.stat().st_size

    def append(self, seq: int, batch: UpdateBatch,
               mutate=None) -> int:
        """Log one applied batch; returns bytes appended.

        ``mutate`` is a fault-injection hook: it receives the encoded
        record and returns the bytes actually written (the chaos harness
        uses it to plant corrupt records).
        """
        data = encode_record(seq, batch)
        if mutate is not None:
            data = mutate(seq, data)
        self._fh.write(data)
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())
        self.bytes_written += len(data)
        return len(data)

    def close(self) -> None:
        """Release the file handle (appends after close are an error)."""
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - already closed by the OS
            pass

    def truncate_through(self, epoch: int) -> None:
        """Drop every record with ``seq <= epoch`` (checkpoint absorbed it).

        Rewrites atomically (tmp + rename) so a crash mid-truncation
        leaves either the old or the new log, never a half-written one.
        """
        kept = [r for r in read_wal(self.path).records if r.seq > epoch]
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(WAL_MAGIC)
            for r in kept:
                fh.write(encode_record(r.seq, r.batch))
            fh.flush()
            os.fsync(fh.fileno())
        self._fh.close()
        os.replace(tmp, self.path)
        self._fh = open(self.path, "ab")
        self.bytes_written = self.path.stat().st_size


def read_wal(path: str | Path) -> WalReadResult:
    """Read a log tolerantly (see module docstring for the tail rules)."""
    path = Path(path)
    result = WalReadResult()
    if not path.exists():
        return result
    data = path.read_bytes()
    if not data:
        return result
    if not data.startswith(WAL_MAGIC):
        raise WalCorruptionError(f"{path}: bad WAL magic")
    off = len(WAL_MAGIC)
    last_seq = 0
    while off < len(data):
        if off + _HEADER.size > len(data):
            result.dropped_tail_bytes = len(data) - off
            break
        length, crc = _HEADER.unpack_from(data, off)
        start = off + _HEADER.size
        end = start + length
        if end > len(data):  # torn tail: writer died mid-append
            result.dropped_tail_bytes = len(data) - off
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            if end == len(data):
                # final record: treat like a torn tail, but remember which
                # seq was lost if the (unverified) payload still parses
                result.dropped_tail_bytes = len(data) - off
                try:
                    result.dropped_tail_seq = decode_record(payload).seq
                except Exception:
                    result.dropped_tail_seq = None
                break
            raise WalCorruptionError(
                f"{path}: checksum mismatch on record seq={last_seq + 1} "
                f"(after seq={last_seq}, offset {off}); the log is damaged "
                "mid-stream and cannot be repaired by truncation",
                seq=last_seq + 1,
            )
        record = decode_record(payload)
        if record.seq <= last_seq:
            raise WalCorruptionError(
                f"{path}: sequence regression {last_seq} -> {record.seq} "
                f"at offset {off}", seq=record.seq,
            )
        result.records.append(record)
        last_seq = record.seq
        off = end
    return result


class WalStreamDecoder:
    """Incremental decoder for the WAL byte stream (magic + records).

    Feed arbitrarily-chunked bytes — a file tail, a replication fetch, a
    socket read — and get back every record that *completes*; a torn tail
    (header or payload still in flight) is buffered until later bytes
    finish it, exactly the semantics :func:`read_wal` applies at end of
    file.  A checksum mismatch is only tolerated on the stream's current
    tail (the bytes may still be mid-append/mid-flight); the moment bytes
    *beyond* the bad record arrive it is mid-stream damage and raises
    :class:`WalCorruptionError`.

    ``offset`` is the count of fully-consumed stream bytes (magic plus
    whole records); it is the resume cursor for log-shipping replicas.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self.offset = 0          # stream bytes fully consumed
        self.last_seq = 0
        self._saw_magic = False

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete record."""
        return len(self._buf)

    def discard_pending(self) -> int:
        """Drop the held torn tail; returns the byte count dropped.

        For when the *producer* is known to have rewritten its tail: a
        crashed writer's recovery truncates a partial final record, so
        the prefix this decoder buffered will never be completed — the
        next bytes at ``offset`` are a fresh continuation of the stream.
        """
        n = len(self._buf)
        self._buf.clear()
        return n

    def feed(self, data: bytes) -> list[WalRecord]:
        """Consume ``data``; return the records it completed, in order."""
        self._buf += data
        out: list[WalRecord] = []
        if not self._saw_magic:
            if len(self._buf) < len(WAL_MAGIC):
                return out
            if bytes(self._buf[: len(WAL_MAGIC)]) != WAL_MAGIC:
                raise WalCorruptionError("bad WAL magic in stream")
            del self._buf[: len(WAL_MAGIC)]
            self.offset += len(WAL_MAGIC)
            self._saw_magic = True
        while True:
            if len(self._buf) < _HEADER.size:
                return out
            length, crc = _HEADER.unpack_from(self._buf, 0)
            end = _HEADER.size + length
            if len(self._buf) < end:
                return out          # torn tail: wait for the rest
            payload = bytes(self._buf[_HEADER.size: end])
            if zlib.crc32(payload) != crc:
                if len(self._buf) == end:
                    # bad checksum on the very tail: may still be a
                    # partially-flushed append — hold, do not consume
                    return out
                raise WalCorruptionError(
                    f"stream checksum mismatch after seq={self.last_seq}",
                    seq=self.last_seq + 1,
                )
            record = decode_record(payload)
            if record.seq <= self.last_seq:
                raise WalCorruptionError(
                    f"stream sequence regression {self.last_seq} -> "
                    f"{record.seq}", seq=record.seq,
                )
            del self._buf[:end]
            self.offset += end
            self.last_seq = record.seq
            out.append(record)


class WalFollower:
    """Incremental tail-reader of a WAL file (log-shipping primitive).

    Unlike :func:`read_wal`, which re-reads the whole log on every call, a
    follower remembers its byte ``offset`` and each :meth:`poll` returns
    only the records appended since — honoring the torn-tail rules (a
    partial final record is held, not dropped, and delivered once a later
    append completes it; a checksum-failing final record is held too, and
    becomes a :class:`WalCorruptionError` only if bytes ever land beyond
    it).  Used by the replication path (:mod:`repro.net.replica`) and the
    replica chaos plans.

    Raises :class:`WalTruncatedError` when the file shrinks below the
    follower's consumed offset (e.g. a checkpoint truncated the log): the
    byte cursor is void and the consumer must re-bootstrap.
    """

    def __init__(self, path: str | Path, offset: int = 0) -> None:
        self.path = Path(path)
        self._decoder = WalStreamDecoder()
        if offset:
            raise ValueError(
                "WalFollower resumes only from offset 0; to resume "
                "mid-stream keep the follower object alive"
            )

    @property
    def offset(self) -> int:
        """Stream bytes fully consumed (resume cursor)."""
        return self._decoder.offset

    @property
    def last_seq(self) -> int:
        return self._decoder.last_seq

    def poll(self) -> list[WalRecord]:
        """Return every record appended (and completed) since last poll."""
        if not self.path.exists():
            return []
        size = self.path.stat().st_size
        read_from = self.offset + self._decoder.pending_bytes
        if size < self.offset:
            raise WalTruncatedError(
                f"{self.path}: shrank to {size} bytes below follower "
                f"offset {self.offset}; re-bootstrap the follower"
            )
        if size < read_from:
            # the file shrank into the torn tail we were holding: the
            # writer restarted and its crash recovery truncated the
            # partial record.  Our buffered prefix will never be
            # completed — drop it and resume from the consumed offset,
            # where the restarted writer's re-append continues the stream.
            self._decoder.discard_pending()
            read_from = self.offset
        if size == read_from:
            return []
        with open(self.path, "rb") as fh:
            fh.seek(read_from)
            chunk = fh.read(size - read_from)
        return self._decoder.feed(chunk)


def corrupt_record(path: str | Path, seq: int) -> bool:
    """Flip one payload byte of record ``seq`` in place (chaos/test helper).

    Returns True if the record was found and damaged.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    off = len(WAL_MAGIC)
    while off + _HEADER.size <= len(data):
        length, _crc = _HEADER.unpack_from(data, off)
        start = off + _HEADER.size
        end = start + length
        if end > len(data):
            return False
        rec_seq = _PAYLOAD_FIXED.unpack_from(data, start)[0]
        if rec_seq == seq:
            # flip the *last* payload byte: the checksum breaks but the
            # seq field stays parseable, so tail-drop reporting can still
            # name which record was lost
            data[end - 1] ^= 0xFF
            path.write_bytes(bytes(data))
            return True
        off = end
    return False

"""Write-ahead log of applied update batches.

The serving engine's state is fully determined by its initial graph plus
the sequence of coalesced batches it applied (the structures are seeded
Las Vegas — same inputs, same state).  Persisting that sequence is
therefore a complete recovery story: a crashed worker, or the whole
engine, rebuilds by replaying the log on top of the last checkpoint.

Format (all integers little-endian)::

    header   8 bytes   b"RWAL1\\x00\\x00\\x00"
    record   [u32 length][u32 crc32(payload)][payload]
    payload  [u64 seq][u32 n_ins][u32 n_del][u32 u, u32 v] * (n_ins+n_del)

Failure semantics, chosen to match what a ``kill -9`` can actually
produce:

* a record whose bytes run past end-of-file is a **torn tail** — the
  writer died mid-append; the reader drops it and reports how many bytes
  it ignored;
* a checksum mismatch on the **final** record is treated the same way
  (the tail was partially overwritten, e.g. by a crash during append);
* a checksum mismatch on a **mid-log** record means the log itself was
  damaged after the fact; that is not survivable by truncation, so the
  reader raises :class:`WalCorruptionError` naming the sequence number;
* sequence numbers must be strictly increasing; a regression raises
  :class:`WalCorruptionError` too.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.workloads.streams import UpdateBatch

__all__ = [
    "WAL_MAGIC",
    "WalCorruptionError",
    "WalReadResult",
    "WalRecord",
    "WalWriter",
    "corrupt_record",
    "decode_record",
    "encode_record",
    "read_wal",
]

WAL_MAGIC = b"RWAL1\x00\x00\x00"
_HEADER = struct.Struct("<II")          # length, crc32
_PAYLOAD_FIXED = struct.Struct("<QII")  # seq, n_ins, n_del
_EDGE = struct.Struct("<II")


class WalCorruptionError(RuntimeError):
    """A WAL record failed validation in a way truncation cannot repair."""

    def __init__(self, message: str, seq: int | None = None) -> None:
        super().__init__(message)
        self.seq = seq


@dataclass(frozen=True)
class WalRecord:
    """One logged batch: its commit sequence number plus the batch."""

    seq: int
    batch: UpdateBatch


@dataclass
class WalReadResult:
    """Everything :func:`read_wal` recovered from a log file."""

    records: list[WalRecord] = field(default_factory=list)
    dropped_tail_bytes: int = 0   # torn/corrupt tail ignored by the reader
    dropped_tail_seq: int | None = None  # seq of the dropped record, if parsed

    @property
    def last_seq(self) -> int:
        return self.records[-1].seq if self.records else 0


def encode_record(seq: int, batch: UpdateBatch) -> bytes:
    """Serialize one record (header + checksummed payload)."""
    parts = [_PAYLOAD_FIXED.pack(seq, len(batch.insertions),
                                 len(batch.deletions))]
    for u, v in batch.insertions:
        parts.append(_EDGE.pack(u, v))
    for u, v in batch.deletions:
        parts.append(_EDGE.pack(u, v))
    payload = b"".join(parts)
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_record(payload: bytes) -> WalRecord:
    """Parse a record payload (already checksum-verified)."""
    seq, n_ins, n_del = _PAYLOAD_FIXED.unpack_from(payload, 0)
    need = _PAYLOAD_FIXED.size + (n_ins + n_del) * _EDGE.size
    if len(payload) != need:
        raise WalCorruptionError(
            f"record seq={seq}: payload is {len(payload)} bytes, "
            f"edge counts imply {need}", seq=seq,
        )
    off = _PAYLOAD_FIXED.size
    edges = [_EDGE.unpack_from(payload, off + i * _EDGE.size)
             for i in range(n_ins + n_del)]
    return WalRecord(seq, UpdateBatch(
        insertions=[(u, v) for u, v in edges[:n_ins]],
        deletions=[(u, v) for u, v in edges[n_ins:]],
    ))


class WalWriter:
    """Append-only writer; creates the file (with magic) on first use."""

    def __init__(self, path: str | Path, sync: bool = False) -> None:
        self.path = Path(path)
        self.sync = sync
        new = not self.path.exists() or self.path.stat().st_size == 0
        self._fh = open(self.path, "ab")
        if new:
            self._fh.write(WAL_MAGIC)
            self._fh.flush()
        self.bytes_written = self.path.stat().st_size

    def append(self, seq: int, batch: UpdateBatch,
               mutate=None) -> int:
        """Log one applied batch; returns bytes appended.

        ``mutate`` is a fault-injection hook: it receives the encoded
        record and returns the bytes actually written (the chaos harness
        uses it to plant corrupt records).
        """
        data = encode_record(seq, batch)
        if mutate is not None:
            data = mutate(seq, data)
        self._fh.write(data)
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())
        self.bytes_written += len(data)
        return len(data)

    def close(self) -> None:
        """Release the file handle (appends after close are an error)."""
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - already closed by the OS
            pass

    def truncate_through(self, epoch: int) -> None:
        """Drop every record with ``seq <= epoch`` (checkpoint absorbed it).

        Rewrites atomically (tmp + rename) so a crash mid-truncation
        leaves either the old or the new log, never a half-written one.
        """
        kept = [r for r in read_wal(self.path).records if r.seq > epoch]
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(WAL_MAGIC)
            for r in kept:
                fh.write(encode_record(r.seq, r.batch))
            fh.flush()
            os.fsync(fh.fileno())
        self._fh.close()
        os.replace(tmp, self.path)
        self._fh = open(self.path, "ab")
        self.bytes_written = self.path.stat().st_size


def read_wal(path: str | Path) -> WalReadResult:
    """Read a log tolerantly (see module docstring for the tail rules)."""
    path = Path(path)
    result = WalReadResult()
    if not path.exists():
        return result
    data = path.read_bytes()
    if not data:
        return result
    if not data.startswith(WAL_MAGIC):
        raise WalCorruptionError(f"{path}: bad WAL magic")
    off = len(WAL_MAGIC)
    last_seq = 0
    while off < len(data):
        if off + _HEADER.size > len(data):
            result.dropped_tail_bytes = len(data) - off
            break
        length, crc = _HEADER.unpack_from(data, off)
        start = off + _HEADER.size
        end = start + length
        if end > len(data):  # torn tail: writer died mid-append
            result.dropped_tail_bytes = len(data) - off
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            if end == len(data):
                # final record: treat like a torn tail, but remember which
                # seq was lost if the (unverified) payload still parses
                result.dropped_tail_bytes = len(data) - off
                try:
                    result.dropped_tail_seq = decode_record(payload).seq
                except Exception:
                    result.dropped_tail_seq = None
                break
            raise WalCorruptionError(
                f"{path}: checksum mismatch on record seq={last_seq + 1} "
                f"(after seq={last_seq}, offset {off}); the log is damaged "
                "mid-stream and cannot be repaired by truncation",
                seq=last_seq + 1,
            )
        record = decode_record(payload)
        if record.seq <= last_seq:
            raise WalCorruptionError(
                f"{path}: sequence regression {last_seq} -> {record.seq} "
                f"at offset {off}", seq=record.seq,
            )
        result.records.append(record)
        last_seq = record.seq
        off = end
    return result


def corrupt_record(path: str | Path, seq: int) -> bool:
    """Flip one payload byte of record ``seq`` in place (chaos/test helper).

    Returns True if the record was found and damaged.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    off = len(WAL_MAGIC)
    while off + _HEADER.size <= len(data):
        length, _crc = _HEADER.unpack_from(data, off)
        start = off + _HEADER.size
        end = start + length
        if end > len(data):
            return False
        rec_seq = _PAYLOAD_FIXED.unpack_from(data, start)[0]
        if rec_seq == seq:
            # flip the *last* payload byte: the checksum breaks but the
            # seq field stays parseable, so tail-drop reporting can still
            # name which record was lost
            data[end - 1] ^= 0xFF
            path.write_bytes(bytes(data))
            return True
        off = end
    return False

"""Periodic checkpoints of per-shard graph state.

A checkpoint captures, for every shard, the *graph* edge set the shard is
responsible for, plus the WAL epoch (the last commit sequence number the
snapshot includes).  Recovery rebuilds a shard by constructing a fresh
seeded structure on the checkpointed edges and replaying the WAL tail
(``seq > epoch``) — the batch-dynamic determinism argument makes that
reproduce a valid state byte-for-byte on every attempt.

Checkpoints are written atomically (tmp file + ``os.replace``) and carry a
CRC over their canonical JSON body, so a crash mid-checkpoint leaves a
``.tmp`` orphan the loader ignores, and bit rot is detected rather than
replayed.  Only the newest valid checkpoint is kept.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.graph.dynamic_graph import Edge

__all__ = ["Checkpoint", "CheckpointStore", "CheckpointError"]

_PREFIX = "checkpoint-"
_SUFFIX = ".json"


class CheckpointError(RuntimeError):
    """A checkpoint file exists but cannot be trusted."""


@dataclass
class Checkpoint:
    """Epoch + per-shard graph edge sets."""

    epoch: int
    shard_edges: list[set[Edge]]

    @property
    def shards(self) -> int:
        return len(self.shard_edges)


def _body(epoch: int, shard_edges: list[set[Edge]]) -> dict:
    return {
        "epoch": epoch,
        "shards": [sorted([int(u), int(v)] for u, v in edges)
                   for edges in shard_edges],
    }


def _crc(body: dict) -> int:
    return zlib.crc32(json.dumps(body, sort_keys=True).encode())


class CheckpointStore:
    """Atomic write / newest-valid load over a checkpoint directory."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, epoch: int) -> Path:
        return self.directory / f"{_PREFIX}{epoch:012d}{_SUFFIX}"

    def save(self, epoch: int, shard_edges: list[set[Edge]],
             interrupt=None) -> Path:
        """Write checkpoint ``epoch`` atomically; prunes older ones.

        ``interrupt`` is a fault-injection hook called between writing the
        tmp file and publishing it — raising there simulates a crash
        mid-checkpoint (the orphaned ``.tmp`` must be ignored on load).
        """
        body = _body(epoch, shard_edges)
        body["crc"] = _crc({k: body[k] for k in ("epoch", "shards")})
        path = self._path(epoch)
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "w") as fh:
            json.dump(body, fh)
            fh.flush()
            os.fsync(fh.fileno())
        if interrupt is not None:
            interrupt(epoch)
        os.replace(tmp, path)
        for old in self.directory.glob(f"{_PREFIX}*{_SUFFIX}"):
            if old != path:
                old.unlink(missing_ok=True)
        return path

    def load(self) -> Checkpoint | None:
        """Newest valid checkpoint, or None.  Orphaned ``.tmp`` files and
        checksum-damaged checkpoints are skipped (older valid ones win);
        if damaged checkpoints exist but no valid one does, raise
        :class:`CheckpointError` rather than silently restart from zero.
        """
        candidates = sorted(
            self.directory.glob(f"{_PREFIX}*{_SUFFIX}"), reverse=True
        )
        damaged: list[str] = []
        for path in candidates:
            try:
                body = json.loads(path.read_text())
                expected = body.get("crc")
                core = {"epoch": body["epoch"], "shards": body["shards"]}
                if expected != _crc(core):
                    raise ValueError("crc mismatch")
            except (ValueError, KeyError, json.JSONDecodeError) as exc:
                damaged.append(f"{path.name}: {exc}")
                continue
            return Checkpoint(
                epoch=int(body["epoch"]),
                shard_edges=[{(int(u), int(v)) for u, v in part}
                             for part in body["shards"]],
            )
        if damaged:
            raise CheckpointError(
                "no valid checkpoint; damaged candidates: "
                + "; ".join(damaged)
            )
        return None
